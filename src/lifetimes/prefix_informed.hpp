// Prefix-informed operational lifetimes — the refinement the paper's
// Limitations section (8) sketches: instead of splitting lives on the
// 30-day inactivity timeout alone, consider *what* the ASN announces.
//
//   * a sub-timeout gap still splits two lives when the announced prefix
//     set changes completely (a re-purposed or squatted ASN resuming with
//     someone else's space is a new life, even after a short pause);
//   * a slightly-over-timeout gap does NOT split when the prefix set
//     resumes unchanged (a long outage of the same network).
#pragma once

#include <functional>
#include <set>

#include "bgp/prefix.hpp"
#include "lifetimes/op.hpp"

namespace pl::lifetimes {

/// Supplies the set of prefixes an ASN originated over a run of active
/// days. Backed by RouteGenerator in simulations, by prefix-level BGP data
/// in deployments.
using PrefixSetProvider = std::function<std::set<bgp::Prefix>(
    asn::Asn, const util::DayInterval&)>;

struct PrefixInformedConfig {
  int timeout_days = kPaperTimeoutDays;
  /// Gaps up to timeout*extend_factor still merge when prefix continuity is
  /// high.
  double extend_factor = 3.0;
  /// Jaccard similarity below which a sub-timeout gap splits anyway.
  double split_below = 0.1;
  /// Jaccard similarity at or above which an extended gap merges.
  double merge_at = 0.6;
};

/// Like build_op_lifetimes, but consulting prefix continuity across gaps.
OpDataset build_prefix_informed_lifetimes(const bgp::ActivityTable& activity,
                                          const PrefixSetProvider& prefixes,
                                          const PrefixInformedConfig& config
                                          = {});

/// Jaccard similarity of two prefix sets (1.0 when both empty).
double prefix_jaccard(const std::set<bgp::Prefix>& a,
                      const std::set<bgp::Prefix>& b);

}  // namespace pl::lifetimes
