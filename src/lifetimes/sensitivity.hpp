// Timeout sensitivity analysis (paper 4.2 / Fig. 3 / Appendix C): the two
// curves that justify the 30-day inactivity threshold.
#pragma once

#include <vector>

#include "bgp/activity.hpp"
#include "lifetimes/admin.hpp"
#include "lifetimes/op.hpp"

namespace pl::lifetimes {

struct SensitivityCurves {
  std::vector<int> timeouts;            ///< x axis
  std::vector<double> gap_cdf;          ///< fraction of activity gaps <= t
  std::vector<double> one_or_less_cdf;  ///< fraction of admin lives with
                                        ///< <= 1 operational life at t
};

/// Evaluate both Fig. 3 curves over `timeouts` (must be ascending).
SensitivityCurves analyze_timeout_sensitivity(
    const bgp::ActivityTable& activity, const AdminDataset& admin,
    std::vector<int> timeouts);

/// The paper's rule of thumb: the chosen timeout sits near the knee, at the
/// given fractions of each curve (70.1% of gaps, 83% of admin lives).
struct TimeoutChoice {
  int timeout = kPaperTimeoutDays;
  double gap_fraction = 0;          ///< gap CDF value at the timeout
  double one_or_less_fraction = 0;  ///< admin-lives CDF value at the timeout
};

TimeoutChoice evaluate_choice(const bgp::ActivityTable& activity,
                              const AdminDataset& admin, int timeout);

}  // namespace pl::lifetimes
