#include "lifetimes/prefix_informed.hpp"

#include <algorithm>

namespace pl::lifetimes {

double prefix_jaccard(const std::set<bgp::Prefix>& a,
                      const std::set<bgp::Prefix>& b) {
  if (a.empty() && b.empty()) return 1.0;
  std::size_t common = 0;
  auto it_a = a.begin();
  auto it_b = b.begin();
  while (it_a != a.end() && it_b != b.end()) {
    if (*it_a < *it_b) {
      ++it_a;
    } else if (*it_b < *it_a) {
      ++it_b;
    } else {
      ++common;
      ++it_a;
      ++it_b;
    }
  }
  const std::size_t united = a.size() + b.size() - common;
  return united == 0 ? 1.0
                     : static_cast<double>(common) /
                           static_cast<double>(united);
}

OpDataset build_prefix_informed_lifetimes(const bgp::ActivityTable& activity,
                                          const PrefixSetProvider& prefixes,
                                          const PrefixInformedConfig&
                                              config) {
  OpDataset dataset;
  const auto extended_timeout = static_cast<std::int64_t>(
      config.timeout_days * config.extend_factor);

  for (const auto& [asn, days] : activity.entries()) {
    const auto& runs = days.runs();
    if (runs.empty()) continue;

    std::vector<util::DayInterval> lives;
    lives.push_back(runs.front());
    std::set<bgp::Prefix> current_prefixes = prefixes(asn, runs.front());

    for (std::size_t r = 1; r < runs.size(); ++r) {
      const util::DayInterval& run = runs[r];
      const std::int64_t gap =
          static_cast<std::int64_t>(run.first) - lives.back().last - 1;
      const std::set<bgp::Prefix> next_prefixes = prefixes(asn, run);
      const double similarity =
          prefix_jaccard(current_prefixes, next_prefixes);

      bool merge;
      if (gap <= config.timeout_days) {
        // Sub-timeout gap: merge unless the announced space changed
        // completely (re-purposed / squatted ASN).
        merge = similarity >= config.split_below;
      } else if (gap <= extended_timeout) {
        // Over-timeout gap: merge only with strong prefix continuity.
        merge = similarity >= config.merge_at;
      } else {
        merge = false;
      }

      if (merge) {
        lives.back().last = run.last;
        current_prefixes.insert(next_prefixes.begin(), next_prefixes.end());
      } else {
        lives.push_back(run);
        current_prefixes = next_prefixes;
      }
    }

    auto& indices = dataset.by_asn[asn.value];
    for (const util::DayInterval& life : lives) {
      indices.push_back(dataset.lifetimes.size());
      dataset.lifetimes.push_back(OpLifetime{asn, life});
    }
  }
  return dataset;
}

}  // namespace pl::lifetimes
