#include "lifetimes/op.hpp"

#include <utility>
#include <vector>

#include "check/contracts.hpp"
#include "exec/pool.hpp"

namespace pl::lifetimes {

OpDataset build_op_lifetimes(const bgp::ActivityTable& activity,
                             int timeout_days) {
  // Coalescing is independent per ASN: shard over the (ordered) activity
  // entries, coalesce each into its own slot, then fill the dataset in
  // entry order — identical to the serial per-entry loop.
  std::vector<std::pair<asn::Asn, const util::IntervalSet*>> entries;
  entries.reserve(activity.entries().size());
  for (const auto& [asn, days] : activity.entries())
    entries.emplace_back(asn, &days);

  std::vector<std::vector<util::DayInterval>> lives_by_entry(entries.size());
  exec::parallel_for(
      entries.size(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          PL_ASSERT_DISJOINT(entries[i].second->runs(),
                             "activity runs entering the lifetime builder");
          lives_by_entry[i] = entries[i].second->coalesce(timeout_days);
          PL_ASSERT_SORTED(lives_by_entry[i],
                           [](const util::DayInterval& a,
                              const util::DayInterval& b) {
                             return a.first < b.first;
                           },
                           "coalesced op lives per ASN");
        }
      },
      /*grain=*/128);

  OpDataset dataset;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    // Entries arrive in ascending ASN order, so hinting at end() makes each
    // index-map insert O(1) instead of a tree descent.
    auto& indices =
        dataset.by_asn
            .emplace_hint(dataset.by_asn.end(), entries[i].first.value,
                          std::vector<std::size_t>{})
            ->second;
    for (const util::DayInterval& life : lives_by_entry[i]) {
      indices.push_back(dataset.lifetimes.size());
      dataset.lifetimes.push_back(OpLifetime{entries[i].first, life});
    }
  }
  return dataset;
}

void record_metrics(const OpDataset& dataset, obs::Registry& metrics) {
  metrics.counter("pl_op_lifetimes")
      .add(static_cast<std::int64_t>(dataset.lifetimes.size()));
  metrics.gauge("pl_op_asns")
      .set(static_cast<std::int64_t>(dataset.asn_count()));
  obs::Histogram& duration = metrics.histogram(
      "pl_op_duration_days", {30, 90, 365, 1825, 3650, 7300});
  for (const OpLifetime& life : dataset.lifetimes)
    duration.observe(life.days.length());
}

}  // namespace pl::lifetimes
