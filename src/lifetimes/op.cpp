#include "lifetimes/op.hpp"

namespace pl::lifetimes {

OpDataset build_op_lifetimes(const bgp::ActivityTable& activity,
                             int timeout_days) {
  OpDataset dataset;
  for (const auto& [asn, days] : activity.entries()) {
    const auto lives = days.coalesce(timeout_days);
    auto& indices = dataset.by_asn[asn.value];
    for (const util::DayInterval& life : lives) {
      indices.push_back(dataset.lifetimes.size());
      dataset.lifetimes.push_back(OpLifetime{asn, life});
    }
  }
  return dataset;
}

}  // namespace pl::lifetimes
