#include "lifetimes/sensitivity.hpp"

#include <algorithm>

namespace pl::lifetimes {

namespace {

/// All activity gaps (days) across ASNs — the red curve's sample.
std::vector<std::int64_t> collect_gaps(const bgp::ActivityTable& activity) {
  std::vector<std::int64_t> gaps;
  for (const auto& [asn, days] : activity.entries()) {
    const auto asn_gaps = days.gaps();
    gaps.insert(gaps.end(), asn_gaps.begin(), asn_gaps.end());
  }
  std::sort(gaps.begin(), gaps.end());
  return gaps;
}

/// Largest internal activity gap per admin life (and whether the life has
/// any activity runs at all). A life has <= 1 op life at timeout t iff its
/// max internal gap is <= t.
std::vector<std::int64_t> collect_max_internal_gaps(
    const bgp::ActivityTable& activity, const AdminDataset& admin) {
  std::vector<std::int64_t> max_gaps;
  max_gaps.reserve(admin.lifetimes.size());
  for (const AdminLifetime& life : admin.lifetimes) {
    const util::IntervalSet* days = activity.activity(life.asn);
    std::int64_t max_gap = 0;
    if (days != nullptr) {
      const auto& runs = days->runs();
      const util::DayInterval* previous = nullptr;
      for (const util::DayInterval& run : runs) {
        if (!run.overlaps(life.days)) {
          if (run.first > life.days.last) break;
          continue;
        }
        if (previous != nullptr)
          max_gap = std::max<std::int64_t>(
              max_gap, static_cast<std::int64_t>(run.first) -
                           previous->last - 1);
        previous = &run;
      }
    }
    max_gaps.push_back(max_gap);
  }
  std::sort(max_gaps.begin(), max_gaps.end());
  return max_gaps;
}

double fraction_at_most(const std::vector<std::int64_t>& sorted,
                        std::int64_t threshold) {
  if (sorted.empty()) return 0;
  const auto it =
      std::upper_bound(sorted.begin(), sorted.end(), threshold);
  return static_cast<double>(it - sorted.begin()) /
         static_cast<double>(sorted.size());
}

}  // namespace

SensitivityCurves analyze_timeout_sensitivity(
    const bgp::ActivityTable& activity, const AdminDataset& admin,
    std::vector<int> timeouts) {
  SensitivityCurves curves;
  curves.timeouts = std::move(timeouts);
  const auto gaps = collect_gaps(activity);
  const auto max_gaps = collect_max_internal_gaps(activity, admin);
  curves.gap_cdf.reserve(curves.timeouts.size());
  curves.one_or_less_cdf.reserve(curves.timeouts.size());
  for (const int t : curves.timeouts) {
    curves.gap_cdf.push_back(fraction_at_most(gaps, t));
    curves.one_or_less_cdf.push_back(fraction_at_most(max_gaps, t));
  }
  return curves;
}

TimeoutChoice evaluate_choice(const bgp::ActivityTable& activity,
                              const AdminDataset& admin, int timeout) {
  const SensitivityCurves curves =
      analyze_timeout_sensitivity(activity, admin, {timeout});
  TimeoutChoice choice;
  choice.timeout = timeout;
  choice.gap_fraction = curves.gap_cdf.front();
  choice.one_or_less_fraction = curves.one_or_less_cdf.front();
  return choice;
}

}  // namespace pl::lifetimes
