// Administrative lifetime inference (paper 4.1): turning restored per-RIR
// status spans into ASN allocation lifetimes, applying the merge rules:
//
//   * reserved interruption (or disappearance in the regular-file era)
//     followed by re-allocation with the *same* registration date — same
//     holder, one life;
//   * AfriNIC exception — reserved then re-allocated without passing through
//     available is one life even with a *new* registration date;
//   * registration-date change while continuously allocated — administrative
//     correction, one life;
//   * inter-RIR transfer — one life iff the spans are gap-free across
//     registries.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "obs/metrics.hpp"
#include "restore/types.hpp"

namespace pl::lifetimes {

/// One administrative lifetime (Listing 1 "Administrative Dataset" record).
struct AdminLifetime {
  asn::Asn asn;
  util::Day registration_date = 0;
  util::DayInterval days;
  asn::Rir registry = asn::Rir::kArin;  ///< allocating registry
  asn::CountryCode country;
  std::uint64_t opaque_id = 0;          ///< holder organization handle
  bool open_ended = false;              ///< still allocated at archive end
  bool transferred = false;             ///< crossed registries mid-life

  friend bool operator==(const AdminLifetime&, const AdminLifetime&) = default;
};

struct AdminBuildConfig {
  /// Gap tolerance (days) for the inter-RIR transfer merge. The paper
  /// requires "no gaps"; 0 means strictly adjacent.
  int transfer_gap_tolerance = 0;

  friend bool operator==(const AdminBuildConfig&,
                         const AdminBuildConfig&) = default;
};

struct AdminDataset {
  std::vector<AdminLifetime> lifetimes;  ///< sorted by (asn, start)
  std::map<std::uint32_t, std::vector<std::size_t>> by_asn;
  util::Day archive_end = 0;

  std::size_t asn_count() const noexcept { return by_asn.size(); }

  void index();
};

/// Build the administrative dataset from the restored archive.
AdminDataset build_admin_lifetimes(const restore::RestoredArchive& archive,
                                   util::Day archive_end,
                                   const AdminBuildConfig& config = {});

/// One ASN's restored span lists, one pointer per registry in `kAllRirs`
/// order (nullptr where that registry never listed the ASN).
using AsnSpansByRegistry =
    std::array<const std::vector<restore::StateSpan>*, asn::kRirCount>;

/// Each registry's first observed day — the minimum span start across its
/// ASNs, i.e. the day its first published file landed. `nullopt` for a
/// registry with no spans at all. This is the backdating anchor
/// `build_admin_lifetimes` derives internally; the serving layer keeps it
/// alongside its working set so incremental rebuilds anchor identically.
std::array<std::optional<util::Day>, asn::kRirCount> registry_first_observed(
    const restore::RestoredArchive& archive);

/// Lifetimes of a single ASN from its per-registry restored spans — the
/// per-ASN core of `build_admin_lifetimes`, exposed so the serving layer's
/// `advance_day()` can rebuild exactly the ASNs a new day touched. For any
/// ASN, feeding the slices of a full archive through this function yields
/// the same lifetimes the full builder produces (the differential tests
/// lock this).
std::vector<AdminLifetime> build_asn_admin_lifetimes(
    std::uint32_t asn_value, const AsnSpansByRegistry& spans,
    const std::array<std::optional<util::Day>, asn::kRirCount>& first_observed,
    util::Day archive_end, const AdminBuildConfig& config = {});

/// Publish the admin-dataset census (lifetime/ASN totals, open-ended and
/// transferred counts, the duration distribution) into the metrics
/// registry.
void record_metrics(const AdminDataset& dataset, obs::Registry& metrics);

}  // namespace pl::lifetimes
