// Administrative lifetime inference (paper 4.1): turning restored per-RIR
// status spans into ASN allocation lifetimes, applying the merge rules:
//
//   * reserved interruption (or disappearance in the regular-file era)
//     followed by re-allocation with the *same* registration date — same
//     holder, one life;
//   * AfriNIC exception — reserved then re-allocated without passing through
//     available is one life even with a *new* registration date;
//   * registration-date change while continuously allocated — administrative
//     correction, one life;
//   * inter-RIR transfer — one life iff the spans are gap-free across
//     registries.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "obs/metrics.hpp"
#include "restore/types.hpp"

namespace pl::lifetimes {

/// One administrative lifetime (Listing 1 "Administrative Dataset" record).
struct AdminLifetime {
  asn::Asn asn;
  util::Day registration_date = 0;
  util::DayInterval days;
  asn::Rir registry = asn::Rir::kArin;  ///< allocating registry
  asn::CountryCode country;
  std::uint64_t opaque_id = 0;          ///< holder organization handle
  bool open_ended = false;              ///< still allocated at archive end
  bool transferred = false;             ///< crossed registries mid-life
};

struct AdminBuildConfig {
  /// Gap tolerance (days) for the inter-RIR transfer merge. The paper
  /// requires "no gaps"; 0 means strictly adjacent.
  int transfer_gap_tolerance = 0;
};

struct AdminDataset {
  std::vector<AdminLifetime> lifetimes;  ///< sorted by (asn, start)
  std::map<std::uint32_t, std::vector<std::size_t>> by_asn;
  util::Day archive_end = 0;

  std::size_t asn_count() const noexcept { return by_asn.size(); }

  void index();
};

/// Build the administrative dataset from the restored archive.
AdminDataset build_admin_lifetimes(const restore::RestoredArchive& archive,
                                   util::Day archive_end,
                                   const AdminBuildConfig& config = {});

/// Publish the admin-dataset census (lifetime/ASN totals, open-ended and
/// transferred counts, the duration distribution) into the metrics
/// registry.
void record_metrics(const AdminDataset& dataset, obs::Registry& metrics);

}  // namespace pl::lifetimes
