#include "lifetimes/dataset_io.hpp"

#include "util/csv.hpp"

namespace pl::lifetimes {

std::string admin_record_json(const AdminLifetime& life) {
  std::string out;
  out += "{\"ASN\":";
  out += asn::to_string(life.asn);
  out += ",\"regDate\":\"";
  out += util::format_iso(life.registration_date);
  out += "\",\"startdate\":\"";
  out += util::format_iso(life.days.first);
  out += "\",\"enddate\":\"";
  out += util::format_iso(life.days.last);
  out += "\",\"status\":\"allocated\",\"registry\":\"";
  out += asn::file_token(life.registry);
  out += "\"}";
  return out;
}

std::string op_record_json(const OpLifetime& life) {
  std::string out;
  out += "{\"ASN\":";
  out += asn::to_string(life.asn);
  out += ",\"startdate\":\"";
  out += util::format_iso(life.days.first);
  out += "\",\"enddate\":\"";
  out += util::format_iso(life.days.last);
  out += "\"}";
  return out;
}

void write_admin_json(std::ostream& out, const AdminDataset& dataset) {
  for (const AdminLifetime& life : dataset.lifetimes)
    out << admin_record_json(life) << '\n';
}

void write_op_json(std::ostream& out, const OpDataset& dataset) {
  for (const OpLifetime& life : dataset.lifetimes)
    out << op_record_json(life) << '\n';
}

void write_admin_csv(std::ostream& out, const AdminDataset& dataset) {
  util::CsvWriter writer(out);
  writer.write_row({"asn", "reg_date", "start_date", "end_date", "registry",
                    "country", "open_ended", "transferred"});
  for (const AdminLifetime& life : dataset.lifetimes)
    writer.write_row({asn::to_string(life.asn),
                      util::format_iso(life.registration_date),
                      util::format_iso(life.days.first),
                      util::format_iso(life.days.last),
                      std::string(asn::file_token(life.registry)),
                      life.country.to_string(),
                      life.open_ended ? "1" : "0",
                      life.transferred ? "1" : "0"});
}

void write_op_csv(std::ostream& out, const OpDataset& dataset) {
  util::CsvWriter writer(out);
  writer.write_row({"asn", "start_date", "end_date"});
  for (const OpLifetime& life : dataset.lifetimes)
    writer.write_row({asn::to_string(life.asn),
                      util::format_iso(life.days.first),
                      util::format_iso(life.days.last)});
}

}  // namespace pl::lifetimes
