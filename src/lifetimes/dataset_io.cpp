#include "lifetimes/dataset_io.hpp"

#include <algorithm>
#include <fstream>
#include <optional>
#include <string_view>

#include "util/csv.hpp"
#include "util/strings.hpp"

namespace pl::lifetimes {

namespace {

/// Value of `"key":"..."` in a Listing-1 JSON line; nullopt when absent.
std::optional<std::string_view> string_field(std::string_view line,
                                             std::string_view key) {
  std::string needle = "\"";
  needle += key;
  needle += "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string_view::npos) return std::nullopt;
  const std::size_t begin = at + needle.size();
  const std::size_t end = line.find('"', begin);
  if (end == std::string_view::npos) return std::nullopt;
  return line.substr(begin, end - begin);
}

/// Value of `"key":123`; nullopt when absent or not a number.
std::optional<std::string_view> number_field(std::string_view line,
                                             std::string_view key) {
  std::string needle = "\"";
  needle += key;
  needle += "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string_view::npos) return std::nullopt;
  std::size_t begin = at + needle.size();
  std::size_t end = begin;
  while (end < line.size() && line[end] >= '0' && line[end] <= '9') ++end;
  if (end == begin) return std::nullopt;
  return line.substr(begin, end - begin);
}

pl::Status malformed(std::string_view what, std::size_t line_number) {
  std::string message = "malformed ";
  message += what;
  message += " record on line ";
  message += std::to_string(line_number);
  return pl::data_loss_error(std::move(message));
}

pl::Status stream_write_error(std::string_view what) {
  std::string message = "stream write failed while saving ";
  message += what;
  return pl::unavailable_error(std::move(message));
}

pl::Status overlapping(std::string_view what, asn::Asn asn) {
  std::string message = "duplicate or overlapping ";
  message += what;
  message += " lifetimes for AS";
  message += asn::to_string(asn);
  return pl::data_loss_error(std::move(message));
}

}  // namespace

std::string admin_record_json(const AdminLifetime& life) {
  std::string out;
  out += "{\"ASN\":";
  out += asn::to_string(life.asn);
  out += ",\"regDate\":\"";
  out += util::format_iso(life.registration_date);
  out += "\",\"startdate\":\"";
  out += util::format_iso(life.days.first);
  out += "\",\"enddate\":\"";
  out += util::format_iso(life.days.last);
  out += "\",\"status\":\"allocated\",\"registry\":\"";
  out += asn::file_token(life.registry);
  out += "\"}";
  return out;
}

std::string op_record_json(const OpLifetime& life) {
  std::string out;
  out += "{\"ASN\":";
  out += asn::to_string(life.asn);
  out += ",\"startdate\":\"";
  out += util::format_iso(life.days.first);
  out += "\",\"enddate\":\"";
  out += util::format_iso(life.days.last);
  out += "\"}";
  return out;
}

pl::Status save_admin_json(std::ostream& out, const AdminDataset& dataset) {
  for (const AdminLifetime& life : dataset.lifetimes)
    out << admin_record_json(life) << '\n';
  if (!out) return stream_write_error("admin dataset");
  return {};
}

pl::Status save_op_json(std::ostream& out, const OpDataset& dataset) {
  for (const OpLifetime& life : dataset.lifetimes)
    out << op_record_json(life) << '\n';
  if (!out) return stream_write_error("op dataset");
  return {};
}

pl::Status save_admin_csv(std::ostream& out, const AdminDataset& dataset) {
  util::CsvWriter writer(out);
  writer.write_row({"asn", "reg_date", "start_date", "end_date", "registry",
                    "country", "open_ended", "transferred"});
  for (const AdminLifetime& life : dataset.lifetimes)
    writer.write_row({asn::to_string(life.asn),
                      util::format_iso(life.registration_date),
                      util::format_iso(life.days.first),
                      util::format_iso(life.days.last),
                      std::string(asn::file_token(life.registry)),
                      life.country.to_string(),
                      life.open_ended ? "1" : "0",
                      life.transferred ? "1" : "0"});
  if (!out) return stream_write_error("admin dataset (csv)");
  return {};
}

pl::Status save_op_csv(std::ostream& out, const OpDataset& dataset) {
  util::CsvWriter writer(out);
  writer.write_row({"asn", "start_date", "end_date"});
  for (const OpLifetime& life : dataset.lifetimes)
    writer.write_row({asn::to_string(life.asn),
                      util::format_iso(life.days.first),
                      util::format_iso(life.days.last)});
  if (!out) return stream_write_error("op dataset (csv)");
  return {};
}

pl::Status save_admin_json(const std::string& path,
                           const AdminDataset& dataset) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return pl::unavailable_error("cannot open " + path);
  return save_admin_json(static_cast<std::ostream&>(out), dataset);
}

pl::Status save_op_json(const std::string& path, const OpDataset& dataset) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return pl::unavailable_error("cannot open " + path);
  return save_op_json(static_cast<std::ostream&>(out), dataset);
}

pl::StatusOr<AdminDataset> load_admin_json(std::istream& in) {
  AdminDataset dataset;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    const auto asn_text = number_field(trimmed, "ASN");
    const auto reg_text = string_field(trimmed, "regDate");
    const auto start_text = string_field(trimmed, "startdate");
    const auto end_text = string_field(trimmed, "enddate");
    const auto registry_text = string_field(trimmed, "registry");
    if (!asn_text || !reg_text || !start_text || !end_text || !registry_text)
      return malformed("admin", line_number);
    const auto asn = asn::parse_asn(*asn_text);
    const auto reg = util::parse_iso_date(*reg_text);
    const auto start = util::parse_iso_date(*start_text);
    const auto end = util::parse_iso_date(*end_text);
    const auto registry = asn::parse_rir(*registry_text);
    if (!asn || !reg || !start || !end || !registry || *end < *start)
      return malformed("admin", line_number);
    AdminLifetime life;
    life.asn = *asn;
    life.registration_date = *reg;
    life.days = util::DayInterval{*start, *end};
    life.registry = *registry;
    dataset.lifetimes.push_back(life);
    dataset.archive_end = std::max(dataset.archive_end, *end);
  }
  if (in.bad()) return pl::unavailable_error("stream read failed");
  dataset.index();
  // index() sorted by (asn, start): any same-ASN neighbour whose intervals
  // touch is a duplicate or an overlap — the builder never emits those, so
  // the file is damaged or hand-edited. Reject rather than serve it.
  for (std::size_t i = 1; i < dataset.lifetimes.size(); ++i) {
    const AdminLifetime& prev = dataset.lifetimes[i - 1];
    const AdminLifetime& cur = dataset.lifetimes[i];
    if (prev.asn == cur.asn && prev.days.last >= cur.days.first)
      return overlapping("admin", cur.asn);
  }
  return dataset;
}

pl::StatusOr<OpDataset> load_op_json(std::istream& in) {
  OpDataset dataset;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    const auto asn_text = number_field(trimmed, "ASN");
    const auto start_text = string_field(trimmed, "startdate");
    const auto end_text = string_field(trimmed, "enddate");
    if (!asn_text || !start_text || !end_text)
      return malformed("op", line_number);
    const auto asn = asn::parse_asn(*asn_text);
    const auto start = util::parse_iso_date(*start_text);
    const auto end = util::parse_iso_date(*end_text);
    if (!asn || !start || !end || *end < *start)
      return malformed("op", line_number);
    dataset.lifetimes.push_back(
        OpLifetime{*asn, util::DayInterval{*start, *end}});
  }
  if (in.bad()) return pl::unavailable_error("stream read failed");
  // Restore the (asn, start) order and by_asn index the builder guarantees.
  std::sort(dataset.lifetimes.begin(), dataset.lifetimes.end(),
            [](const OpLifetime& a, const OpLifetime& b) {
              if (a.asn != b.asn) return a.asn < b.asn;
              return a.days.first < b.days.first;
            });
  for (std::size_t i = 0; i < dataset.lifetimes.size(); ++i)
    dataset.by_asn[dataset.lifetimes[i].asn.value].push_back(i);
  for (std::size_t i = 1; i < dataset.lifetimes.size(); ++i) {
    const OpLifetime& prev = dataset.lifetimes[i - 1];
    const OpLifetime& cur = dataset.lifetimes[i];
    if (prev.asn == cur.asn && prev.days.last >= cur.days.first)
      return overlapping("op", cur.asn);
  }
  return dataset;
}

pl::StatusOr<AdminDataset> load_admin_json(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return pl::unavailable_error("cannot open " + path);
  return load_admin_json(static_cast<std::istream&>(in));
}

pl::StatusOr<OpDataset> load_op_json(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return pl::unavailable_error("cannot open " + path);
  return load_op_json(static_cast<std::istream&>(in));
}

}  // namespace pl::lifetimes
