// Dataset serialization in the shape the paper publishes (Listing 1):
// JSON-lines records for administrative and operational lifetimes, plus a
// CSV form for spreadsheet users.
#pragma once

#include <ostream>
#include <string>

#include "lifetimes/admin.hpp"
#include "lifetimes/op.hpp"

namespace pl::lifetimes {

/// One JSON object per line, fields matching the paper's Listing 1:
/// {"ASN":..,"regDate":"..","startdate":"..","enddate":"..",
///  "status":"allocated","registry":".."}
void write_admin_json(std::ostream& out, const AdminDataset& dataset);

/// {"ASN":..,"startdate":"..","enddate":".."}
void write_op_json(std::ostream& out, const OpDataset& dataset);

/// CSV with a header row.
void write_admin_csv(std::ostream& out, const AdminDataset& dataset);
void write_op_csv(std::ostream& out, const OpDataset& dataset);

/// Single-record renderers (used by examples and tests).
std::string admin_record_json(const AdminLifetime& life);
std::string op_record_json(const OpLifetime& life);

}  // namespace pl::lifetimes
