// Dataset serialization in the shape the paper publishes (Listing 1):
// JSON-lines records for administrative and operational lifetimes, plus a
// CSV form for spreadsheet users.
//
// Every entry point returns pl::Status / pl::StatusOr — the bool/exception
// mix older callers juggled is gone, and the legacy void `write_*` shims
// are gone with it. Loaders validate shape as well as syntax: duplicate or
// overlapping lifetimes for one ASN are kDataLoss, not silently indexed.
#pragma once

#include <istream>
#include <ostream>
#include <string>

#include "lifetimes/admin.hpp"
#include "lifetimes/op.hpp"
#include "util/status.hpp"

namespace pl::lifetimes {

/// One JSON object per line, fields matching the paper's Listing 1:
/// {"ASN":..,"regDate":"..","startdate":"..","enddate":"..",
///  "status":"allocated","registry":".."}
pl::Status save_admin_json(std::ostream& out, const AdminDataset& dataset);

/// {"ASN":..,"startdate":"..","enddate":".."}
pl::Status save_op_json(std::ostream& out, const OpDataset& dataset);

/// CSV with a header row.
pl::Status save_admin_csv(std::ostream& out, const AdminDataset& dataset);
pl::Status save_op_csv(std::ostream& out, const OpDataset& dataset);

/// File-path variants (open + save + flush; kUnavailable on I/O failure).
pl::Status save_admin_json(const std::string& path,
                           const AdminDataset& dataset);
pl::Status save_op_json(const std::string& path, const OpDataset& dataset);

/// Parse a Listing-1 JSON-lines stream back into a dataset. Blank lines are
/// skipped; a malformed line fails with kDataLoss naming the line number.
/// The JSON form carries only the Listing-1 fields, so `country`,
/// `opaque_id`, `open_ended` and `transferred` come back defaulted; the
/// dataset is re-indexed and `archive_end` is set to the latest end date.
pl::StatusOr<AdminDataset> load_admin_json(std::istream& in);
pl::StatusOr<OpDataset> load_op_json(std::istream& in);

/// File-path variants (kUnavailable when the file cannot be opened).
pl::StatusOr<AdminDataset> load_admin_json(const std::string& path);
pl::StatusOr<OpDataset> load_op_json(const std::string& path);

/// Single-record renderers (used by examples and tests).
std::string admin_record_json(const AdminLifetime& life);
std::string op_record_json(const OpLifetime& life);

}  // namespace pl::lifetimes
