#include "lifetimes/admin.hpp"

#include <algorithm>
#include <array>
#include <optional>
#include <span>
#include <utility>

#include "check/contracts.hpp"
#include "exec/pool.hpp"

namespace pl::lifetimes {

namespace {

using restore::StateSpan;
using util::Day;
using util::DayInterval;

/// A delegated span tagged with its registry, plus what filled the gap
/// before it in the same registry's timeline.
struct Piece {
  DayInterval days;
  asn::Rir rir;
  Day registration_date;
  asn::CountryCode country;
  std::uint64_t opaque_id;
  /// True when the same registry reported `reserved` for the entire gap
  /// between the previous delegated span and this one (never `available`) —
  /// the AfriNIC-exception precondition.
  bool gap_was_reserved_only = false;
};

/// Extract one ASN's delegated pieces from one registry's span list (in
/// span order), appending to `out`. `first_observed` is the registry's first
/// published day: lives already present in that first file are backdated to
/// their registration date.
void gather_asn_pieces(const std::vector<StateSpan>& spans, asn::Rir rir,
                       Day first_observed, std::vector<Piece>& out) {
  std::optional<std::size_t> previous_delegated;
  for (std::size_t s = 0; s < spans.size(); ++s) {
    const StateSpan& span = spans[s];
    if (!dele::is_delegated(span.state.status)) continue;
    Piece piece;
    piece.days = span.days;
    piece.rir = rir;
    piece.registration_date =
        span.state.registration_date.value_or(span.days.first);
    piece.country = span.state.country;
    piece.opaque_id = span.state.opaque_id;
    // Inspect the gap back to the previous delegated span within this
    // registry: reserved-only gaps trigger the AfriNIC exception.
    if (previous_delegated) {
      bool reserved_only = true;
      bool covered = true;
      Day cursor = spans[*previous_delegated].days.last + 1;
      for (std::size_t g = *previous_delegated + 1; g < s; ++g) {
        if (dele::is_delegated(spans[g].state.status)) continue;
        if (spans[g].days.first > cursor) covered = false;
        if (spans[g].state.status != dele::Status::kReserved)
          reserved_only = false;
        cursor = std::max<Day>(cursor, spans[g].days.last + 1);
      }
      if (cursor < piece.days.first) covered = false;
      piece.gap_was_reserved_only =
          reserved_only && covered && cursor == piece.days.first;
    }
    // Backdate first-file lives to their registration date.
    if (piece.days.first == first_observed &&
        piece.registration_date < piece.days.first)
      piece.days.first = piece.registration_date;
    previous_delegated = s;
    out.push_back(piece);
  }
}

/// Extract the delegated pieces of one registry into flat (asn, piece)
/// pairs. `registry.spans` iterates in ascending-ASN order, so `out` comes
/// back sorted by ASN with per-ASN pieces in span order — no per-ASN map
/// slot (or temporary vector) needed.
void gather_registry_pieces(
    const restore::RestoredRegistry& registry, Day first_observed,
    std::vector<std::pair<std::uint32_t, Piece>>& out) {
  std::vector<Piece> scratch;
  for (const auto& [asn, spans] : registry.spans) {
    scratch.clear();
    gather_asn_pieces(spans, registry.rir, first_observed, scratch);
    for (const Piece& piece : scratch) out.emplace_back(asn, piece);
  }
}

/// Merge one ASN's pieces (sorted in place by start day) into lifetimes,
/// applying the 4.1 continuation rules. `pieces` is a mutable slice of the
/// caller's flat piece array.
void build_asn_lifetimes(std::uint32_t asn_value, Piece* pieces_begin,
                         std::size_t piece_count, Day archive_end,
                         const AdminBuildConfig& config,
                         std::vector<AdminLifetime>& out) {
  const std::span<Piece> pieces(pieces_begin, piece_count);
  std::sort(pieces.begin(), pieces.end(),
            [](const Piece& a, const Piece& b) {
              return a.days.first < b.days.first;
            });
  PL_ASSERT_SORTED(pieces,
                   [](const Piece& a, const Piece& b) {
                     return a.days.first < b.days.first;
                   },
                   "admin pieces before 4.1 merge");

  AdminLifetime current;
  asn::Rir tail_rir = asn::Rir::kArin;  ///< registry of the last piece
  bool open = false;

  const auto flush = [&] {
    if (!open) return;
    PL_ENSURE(current.days.first <= current.days.last,
              "an admin lifetime must cover at least one day");
    PL_ENSURE(out.empty() || out.back().days.last < current.days.first,
              "per-ASN admin lifetimes must be disjoint and ascending (4.1 "
              "merge rules never emit overlapping lives)");
    current.open_ended = current.days.last >= archive_end;
    out.push_back(current);
    open = false;
  };

  for (const Piece& piece : pieces) {
    if (!open) {
      current = AdminLifetime{};
      current.asn = asn::Asn{asn_value};
      current.registration_date = piece.registration_date;
      current.days = piece.days;
      current.registry = piece.rir;
      current.country = piece.country;
      current.opaque_id = piece.opaque_id;
      tail_rir = piece.rir;
      open = true;
      continue;
    }

    const Day gap = static_cast<Day>(piece.days.first) -
                    current.days.last - 1;
    bool merge = false;
    if (piece.rir == tail_rir) {  // same-registry continuation rules
      if (gap <= 0) {
        // Continuously allocated; a registration-date change here is an
        // administrative correction (same life).
        merge = true;
      } else if (piece.registration_date == current.registration_date) {
        // Returned to the previous owner after reserved/disappearance.
        merge = true;
      } else if (piece.rir == asn::Rir::kAfrinic &&
                 piece.gap_was_reserved_only) {
        // AfriNIC exception: reserved -> allocated without available is a
        // re-allocation to the same holder even with a new date.
        merge = true;
      }
    } else {
      // Cross-registry: inter-RIR transfer iff gap-free.
      if (gap <= config.transfer_gap_tolerance) {
        merge = true;
        current.transferred = true;
      }
    }

    if (merge) {
      current.days.last = std::max<Day>(current.days.last, piece.days.last);
      if (gap <= 0) {
        // Continuously allocated with a changed date: an administrative
        // correction — the newest reported date is authoritative (4.1).
        current.registration_date = piece.registration_date;
      } else {
        // Reserved-gap / AfriNIC-exception merges keep the life's
        // original date (all RIRs but AfriNIC preserve it; for AfriNIC
        // the paper still counts one life under the original).
        current.registration_date =
            std::min(current.registration_date, piece.registration_date);
      }
      tail_rir = piece.rir;
    } else {
      flush();
      current = AdminLifetime{};
      current.asn = asn::Asn{asn_value};
      current.registration_date = piece.registration_date;
      current.days = piece.days;
      current.registry = piece.rir;
      current.country = piece.country;
      current.opaque_id = piece.opaque_id;
      tail_rir = piece.rir;
      open = true;
    }
  }
  flush();
}

}  // namespace

void AdminDataset::index() {
  by_asn.clear();
  std::sort(lifetimes.begin(), lifetimes.end(),
            [](const AdminLifetime& a, const AdminLifetime& b) {
              if (a.asn != b.asn) return a.asn < b.asn;
              return a.days.first < b.days.first;
            });
  // Lifetimes are sorted by ASN, so keys arrive ascending: the end-hint
  // makes every map insert O(1) instead of a fresh root-down walk.
  std::vector<std::size_t>* slot = nullptr;
  for (std::size_t i = 0; i < lifetimes.size(); ++i) {
    const std::uint32_t asn = lifetimes[i].asn.value;
    if (slot == nullptr || by_asn.rbegin()->first != asn)
      slot = &by_asn
                  .emplace_hint(by_asn.end(), asn,
                                std::vector<std::size_t>{})
                  ->second;
    slot->push_back(i);
  }
  PL_ASSERT_SORTED(lifetimes,
                   [](const AdminLifetime& a, const AdminLifetime& b) {
                     if (a.asn != b.asn) return a.asn < b.asn;
                     return a.days.first < b.days.first;
                   },
                   "AdminDataset::lifetimes after index()");
}

std::array<std::optional<util::Day>, asn::kRirCount> registry_first_observed(
    const restore::RestoredArchive& archive) {
  std::array<std::optional<util::Day>, asn::kRirCount> first_observed;
  for (const restore::RestoredRegistry& registry : archive.registries) {
    auto& first = first_observed[asn::index_of(registry.rir)];
    for (const auto& [asn, spans] : registry.spans)
      for (const restore::StateSpan& span : spans)
        if (!first || span.days.first < *first) first = span.days.first;
  }
  return first_observed;
}

std::vector<AdminLifetime> build_asn_admin_lifetimes(
    std::uint32_t asn_value, const AsnSpansByRegistry& spans,
    const std::array<std::optional<util::Day>, asn::kRirCount>& first_observed,
    util::Day archive_end, const AdminBuildConfig& config) {
  // Assemble pieces in kAllRirs order — the order the full builder folds
  // its per-registry maps, which fixes the (deterministic) sort below.
  std::vector<Piece> pieces;
  for (std::size_t r = 0; r < asn::kRirCount; ++r) {
    if (spans[r] == nullptr) continue;
    gather_asn_pieces(*spans[r], asn::kAllRirs[r],
                      first_observed[r].value_or(archive_end), pieces);
  }
  std::vector<AdminLifetime> lifetimes;
  build_asn_lifetimes(asn_value, pieces.data(), pieces.size(), archive_end,
                      config, lifetimes);
  return lifetimes;
}

AdminDataset build_admin_lifetimes(const restore::RestoredArchive& archive,
                                   util::Day archive_end,
                                   const AdminBuildConfig& config) {
  AdminDataset dataset;
  dataset.archive_end = archive_end;

  // Each registry's first observed day (its first published file): lives
  // already present in the first file are backdated to their registration
  // date — the paper's lifetimes reach back to 1992 through this field
  // (Fig. 10), since the archive cannot witness their true start. A
  // registry with no spans gets the archive-end sentinel (no ASN can match
  // it, so no backdating happens).
  const std::array<std::optional<util::Day>, asn::kRirCount> observed =
      registry_first_observed(archive);
  std::array<util::Day, asn::kRirCount> first_observed;
  for (std::size_t r = 0; r < asn::kRirCount; ++r)
    first_observed[r] = observed[r].value_or(archive_end);

  // Gather delegated pieces, sharded by registry: each of the five
  // registries fills its own flat (asn, piece) vector (already sorted by
  // ASN — see gather_registry_pieces), and the vectors fold together below
  // into ascending-ASN groups whose per-ASN piece order matches the old
  // registry-order map fold.
  std::array<std::vector<std::pair<std::uint32_t, Piece>>, asn::kRirCount>
      pieces_by_registry;
  exec::parallel_for(
      archive.registries.size(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r)
          gather_registry_pieces(
              archive.registries[r],
              first_observed[asn::index_of(archive.registries[r].rir)],
              pieces_by_registry[r]);
      },
      /*grain=*/1);

  std::size_t piece_total = 0;
  for (const auto& registry_pieces : pieces_by_registry)
    piece_total += registry_pieces.size();
  std::vector<std::pair<std::uint32_t, Piece>> pieces;
  pieces.reserve(piece_total);
  for (const auto& registry_pieces : pieces_by_registry)
    pieces.insert(pieces.end(), registry_pieces.begin(),
                  registry_pieces.end());
  // Stable by-ASN sort of the registry-order concatenation: each ASN's
  // group keeps registry order, the per-ASN sequence the serial fold built.
  std::stable_sort(pieces.begin(), pieces.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });

  // Per-ASN lifetime construction is independent across ASNs: compute each
  // ASN group's lifetimes into its own slot, then concatenate in
  // ascending-ASN order (the group order — exactly the serial append
  // order).
  struct Group {
    std::uint32_t asn;
    std::size_t begin;
    std::size_t count;
  };
  std::vector<Group> groups;
  for (std::size_t i = 0; i < pieces.size();) {
    const std::uint32_t asn = pieces[i].first;
    const std::size_t begin = i;
    while (i < pieces.size() && pieces[i].first == asn) ++i;
    groups.push_back(Group{asn, begin, i - begin});
  }
  // The grouped pairs are (asn, piece); build_asn_lifetimes wants a bare
  // Piece slice, so copy each group into a scratch run. One flat scratch
  // array shared by all groups keeps this allocation-free per group.
  std::vector<Piece> scratch(pieces.size());
  for (std::size_t i = 0; i < pieces.size(); ++i)
    scratch[i] = pieces[i].second;
  std::vector<std::vector<AdminLifetime>> lifetimes_by_asn(groups.size());
  exec::parallel_for(
      groups.size(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t n = begin; n < end; ++n)
          build_asn_lifetimes(groups[n].asn, scratch.data() + groups[n].begin,
                              groups[n].count, archive_end, config,
                              lifetimes_by_asn[n]);
      },
      /*grain=*/64);

  std::size_t life_total = 0;
  for (const std::vector<AdminLifetime>& per_asn : lifetimes_by_asn)
    life_total += per_asn.size();
  dataset.lifetimes.reserve(life_total);
  for (const std::vector<AdminLifetime>& per_asn : lifetimes_by_asn)
    dataset.lifetimes.insert(dataset.lifetimes.end(), per_asn.begin(),
                             per_asn.end());
  dataset.index();
  return dataset;
}

void record_metrics(const AdminDataset& dataset, obs::Registry& metrics) {
  metrics.counter("pl_admin_lifetimes")
      .add(static_cast<std::int64_t>(dataset.lifetimes.size()));
  metrics.gauge("pl_admin_asns")
      .set(static_cast<std::int64_t>(dataset.asn_count()));
  obs::Counter& open_ended = metrics.counter("pl_admin_open_ended");
  obs::Counter& transferred = metrics.counter("pl_admin_transferred");
  obs::Histogram& duration = metrics.histogram(
      "pl_admin_duration_days", {30, 90, 365, 1825, 3650, 7300});
  for (const AdminLifetime& life : dataset.lifetimes) {
    if (life.open_ended) open_ended.add(1);
    if (life.transferred) transferred.add(1);
    duration.observe(life.days.length());
  }
}

}  // namespace pl::lifetimes
