// Operational (BGP) lifetime inference (paper 4.2): daily activity runs
// separated by more than an inactivity timeout become distinct lifetimes.
// The paper selects 30 days from the sensitivity analysis in Fig. 3.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "bgp/activity.hpp"
#include "obs/metrics.hpp"
#include "util/interval.hpp"

namespace pl::lifetimes {

inline constexpr int kPaperTimeoutDays = 30;

/// One operational lifetime (Listing 1 "Operational Dataset" record).
struct OpLifetime {
  asn::Asn asn;
  util::DayInterval days;

  friend bool operator==(const OpLifetime&, const OpLifetime&) = default;
};

struct OpDataset {
  std::vector<OpLifetime> lifetimes;  ///< sorted by (asn, start)
  std::map<std::uint32_t, std::vector<std::size_t>> by_asn;

  std::size_t asn_count() const noexcept { return by_asn.size(); }
};

/// Coalesce activity runs into lifetimes using `timeout_days`.
OpDataset build_op_lifetimes(const bgp::ActivityTable& activity,
                             int timeout_days = kPaperTimeoutDays);

/// Publish the op-dataset census (lifetime/ASN totals and the duration
/// distribution) into the metrics registry.
void record_metrics(const OpDataset& dataset, obs::Registry& metrics);

}  // namespace pl::lifetimes
