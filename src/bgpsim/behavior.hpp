// Operational (BGP) behaviour models: how each administrative life shows up
// in the global routing table — or doesn't.
//
// Every behaviour class below reproduces a population the paper documents:
// canonical single-life use, under-utilization (6.1.1), intermittent and
// conference ASNs, sibling substitution, China's visibility filtering (6.3),
// failed 32-bit deployments, dangling announcements and early starts (6.2),
// dormant-ASN squatting (6.1.2), and post-deallocation squatting (6.4).
#pragma once

#include <cstdint>
#include <map>
#include <string_view>
#include <vector>

#include "bgp/activity.hpp"
#include "rirsim/truth.hpp"
#include "util/rng.hpp"

namespace pl::bgpsim {

enum class BehaviorKind : std::uint8_t {
  kCanonical,       ///< one op life well inside the admin life
  kIntermittent,    ///< several op lives, gaps > timeout
  kLargelySpaced,   ///< >=2 op lives more than a year apart
  kEventDriven,     ///< conference-style short periodic bursts (AFNOG/APNOG)
  kNeverUsed,       ///< no BGP activity at all
  kChinaFiltered,   ///< used, but paths stripped before reaching collectors
  kSiblingUnused,   ///< the org routes a sibling ASN instead
  kFailed32bit,     ///< short unused 32-bit allocation (deployment failure)
  kDanglingTail,    ///< op life continues past deallocation (6.2)
  kEarlyStart,      ///< op life starts days before the delegation files say
  kDormantThenAwake,///< long dormancy then a short awakening (squat surface)
};

std::string_view behavior_name(BehaviorKind kind) noexcept;

/// One planned operational life.
struct OpLifePlan {
  util::DayInterval days;
  int peer_visibility = 8;   ///< distinct collector peers that see the ASN
  int prefixes_per_day = 2;  ///< distinct prefixes originated while alive
  bool malicious = false;    ///< ground-truth squatting label
  std::uint32_t upstream = 0;///< first-hop ASN used in announcements (0 =
                             ///< pick a regular provider)
  /// When non-zero, announcements originate *this* ASN's prefixes instead
  /// of the origin's own — hijacked victim space (squats) or the covering
  /// provider's space (internal-use leaks, typo MOAS conflicts).
  std::uint32_t victim = 0;
};

/// All operational lives planned for one ASN, with ground-truth labels.
struct AsnOpPlan {
  asn::Asn asn;
  std::vector<OpLifePlan> lives;       ///< disjoint, sorted
  BehaviorKind kind = BehaviorKind::kCanonical;
  std::int64_t truth_life_index = -1;  ///< admin life this was planned for
                                       ///< (-1 for never-allocated ASNs)
};

/// Tuning knobs. Defaults target the paper's realized distributions.
struct OpConfig {
  std::uint64_t seed = 99;

  /// Probability a generic (non-special) life is never used in BGP, on top
  /// of the structural never-used populations (NIR blocks, siblings, CN,
  /// failed 32-bit). Total unused admin lives should land near 18%.
  double base_never_used = 0.115;

  double china_unused_fraction = 0.506;  ///< CN allocated-but-unobserved share
  double sibling_org_usage = 0.35;       ///< fraction of a gov/legacy org's
                                         ///< ASNs that are actually routed
  double nir_block_unused = 0.75;

  /// Partial-overlap shares of all lives.
  double dangling_fraction = 0.066;  ///< ~64% of the partial-overlap 3.4%
                                     ///< (applies to closed lives only)
  /// Early starts concentrate in the publication-lagged minority: lagged
  /// lives go early with `early_start_lagged`, starting after the
  /// registration date but before the file shows the allocation; unlagged
  /// lives go early with `early_start_fraction`, necessarily before the
  /// registration date (paper: 631 of 1,594 precede the regdate).
  double early_start_lagged = 0.30;
  double early_start_fraction = 0.003;

  /// Complete-overlap sub-behaviors.
  double intermittent_fraction = 0.13;
  double largely_spaced_fraction = 0.03;
  double event_driven_per_rir = 1;     ///< conference ASNs per registry
  double dormant_fraction = 0.025;     ///< long-dormancy lives (squat surface)

  /// Median operational start delay after allocation, days (>= 1 month for
  /// all RIRs, 6.1.1).
  double start_delay_median = 35;

  /// Median gap between last BGP day and deallocation, days (6+ months
  /// APNIC, 10+ elsewhere, ~530 AfriNIC).
  double dealloc_lag_median = 320;
};

/// Output of the behaviour assignment for the administrative world (attacks
/// and misconfigurations are layered on by attack.hpp / misconfig.hpp).
struct BehaviorPlan {
  std::vector<AsnOpPlan> plans;
  /// life index -> behaviour (ground truth for every admin life, including
  /// the never-used ones, which have no entry in `plans`).
  std::vector<BehaviorKind> behavior_of_life;
};

/// Assign behaviours and plan operational lives for every admin life.
BehaviorPlan plan_behaviors(const rirsim::GroundTruth& truth,
                            const OpConfig& config);

}  // namespace pl::bgpsim
