// Misconfiguration injection: never-allocated ASNs appearing in BGP
// (paper 6.4).
//
// Three documented classes:
//   * prepending typos — the origin's spelling repeated (AS3202632026 for
//     AS32026); 76% of confirmed misconfigurations;
//   * one-digit typos causing MOAS conflicts with the legitimate ASN
//     (AS419333 vs AS41933); can last months;
//   * very large internal-use ASNs leaking through a provider
//     (AS290012147 behind Verizon's AS701/AS7046), lasting years.
#pragma once

#include "bgpsim/behavior.hpp"

namespace pl::bgpsim {

enum class MisconfigKind : std::uint8_t {
  kPrependTypo,
  kDigitTypo,
  kInternalLeak,
  kUnexplained,  ///< short-lived noise the paper could not classify
};

std::string_view misconfig_name(MisconfigKind kind) noexcept;

struct MisconfigEvent {
  asn::Asn bogus_origin;
  asn::Asn legitimate;  ///< imitated / covering ASN (0 for unexplained)
  MisconfigKind kind = MisconfigKind::kUnexplained;
  util::DayInterval days;
  int prefixes_per_day = 1;
  /// True when the bogus origin announces a prefix covered by (or equal to)
  /// the legitimate ASN's prefix, creating a MOAS/SubMOAS conflict.
  bool causes_moas = false;
};

struct MisconfigConfig {
  std::uint64_t seed = 777;
  double scale = 1.0;

  int total_events = 868;         ///< never-allocated ASNs seen in BGP
  double large_asn_fraction = 0.544;  ///< internal-use leaks (472/868)
  double prepend_typo_fraction = 0.76;  ///< of the typo remainder
  /// Duration ladder: of the never-allocated ASNs, only ~427 are active
  /// more than a day, 186 more than a month, 15 more than a year.
  double active_over_1day = 0.49;
  double active_over_1month = 0.21;
  double active_over_1year = 0.017;
};

struct MisconfigPlan {
  std::vector<MisconfigEvent> events;
};

/// Appends never-allocated-origin plans to `behavior`; returns ground-truth
/// labels. Bogus ASNs are guaranteed unallocated (per `truth`) and non-bogon.
MisconfigPlan inject_misconfigs(const rirsim::GroundTruth& truth,
                                BehaviorPlan& behavior,
                                const MisconfigConfig& config);

}  // namespace pl::bgpsim
