// Malicious-activity injection: ASN squatting (paper 6.1.2 and 6.4).
//
// Two attack surfaces, both observed in the wild:
//   * dormant-ASN squatting — an allocated but long-inactive ASN suddenly
//     originates many prefixes (AS10512/Spectrum, AS7449, AS28071 cases),
//     often via a "hijack factory" upstream (AS203040) and sometimes in
//     coordinated groups (the 31 ASNs of April-July 2020);
//   * post-deallocation squatting — the ASN is abused right after leaving
//     the delegation files (AS12391 via Bitcanal AS197426).
#pragma once

#include "bgpsim/behavior.hpp"

namespace pl::bgpsim {

/// Well-known malicious upstreams used in the paper's case studies.
inline constexpr std::uint32_t kHijackFactoryAsn = 203040;  ///< NANOG-reported
inline constexpr std::uint32_t kBitcanalAsn = 197426;
inline constexpr std::uint32_t kSpammerUpstreamAsn = 52302; ///< LACNOG case

struct SquatEvent {
  asn::Asn asn;
  util::DayInterval days;
  std::uint32_t upstream = kHijackFactoryAsn;
  int prefixes_per_day = 60;
  bool post_deallocation = false;
  bool coordinated = false;
  std::int64_t truth_life_index = -1;
};

struct AttackConfig {
  std::uint64_t seed = 4242;
  double scale = 1.0;

  /// Fraction of dormant awakenings that are actually malicious squats; the
  /// rest are the benign irregular operations that make detection hard.
  double dormant_malicious_fraction = 0.05;

  /// Coordinated wake-up group (paper: 31 ASNs, Apr-Jul 2020, few /20s
  /// each — low-and-slow).
  int coordinated_group_size = 31;

  /// Post-deallocation hijacks (paper: 9 corroborated events).
  int post_deallocation_events = 9;

  /// Benign operational lives entirely outside any admin life (the bulk of
  /// the 799-ASN population in 6.4: stale configs revived, etc.).
  int benign_outside_lives = 790;
};

struct AttackPlan {
  std::vector<SquatEvent> events;
};

/// Mutates `behavior` in place: flips a subset of dormant awakenings to
/// malicious, appends coordinated wake-ups, post-deallocation squats, and
/// benign outside-delegation lives. Returns ground-truth labels.
AttackPlan inject_attacks(const rirsim::GroundTruth& truth,
                          BehaviorPlan& behavior, const AttackConfig& config);

}  // namespace pl::bgpsim
