#include "bgpsim/route_gen.hpp"

#include <algorithm>
#include <map>
#include <tuple>
#include <vector>

#include "exec/pool.hpp"

namespace pl::bgpsim {

namespace {

using bgp::Element;
using bgp::ElementType;
using bgp::Prefix;
using util::Day;
using util::DayInterval;

/// Stateless per-(asn, day, salt) hash for deterministic choices that do
/// not depend on generation order.
std::uint64_t mix(std::uint64_t a, std::uint64_t b,
                  std::uint64_t c = 0) noexcept {
  std::uint64_t state = a * 0x9e3779b97f4a7c15ULL + b;
  state ^= c + 0x517cc1b727220a95ULL + (state << 6) + (state >> 2);
  state = util::splitmix64(state);
  return state;
}

/// A deterministic transit provider ASN for an origin (stable across days).
std::uint32_t provider_for(asn::Asn origin) noexcept {
  // Providers drawn from a stable pool of "large transit" ASNs.
  constexpr std::uint32_t kProviders[] = {701,  1299, 2914, 3356, 3257,
                                          6453, 6762, 7018, 9002, 174};
  return kProviders[mix(origin.value, 0xABCD) % std::size(kProviders)];
}

}  // namespace

OpWorld build_op_world(const rirsim::GroundTruth& truth,
                       const OpWorldConfig& config) {
  OpWorld world;
  world.behavior = plan_behaviors(truth, config.behavior);
  world.attacks = inject_attacks(truth, world.behavior, config.attacks);
  world.misconfigs =
      inject_misconfigs(truth, world.behavior, config.misconfigs);

  const DayInterval window{truth.archive_begin, truth.archive_end};
  const std::vector<AsnOpPlan>& plans = world.behavior.plans;

  // Per-plan flap RNGs are forked serially in plan order — the exact fork
  // sequence the historical single-thread loop consumed — so the sharded
  // computation below stays bit-identical to it.
  util::Rng flap_rng(config.behavior.seed ^ 0xF1A9F1A9ULL);
  std::vector<util::Rng> plan_rngs(plans.size());
  for (std::size_t i = 0; i < plans.size(); ++i)
    if (!plans[i].lives.empty()) plan_rngs[i] = flap_rng.fork();

  // Shard the activity aggregation by plan (≈ by ASN): each plan computes
  // its flap-punched day set into its own slot, then the slots merge into
  // the table in plan order on this thread.
  std::vector<util::IntervalSet> days_by_plan(plans.size());
  exec::parallel_for(
      plans.size(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t p = begin; p < end; ++p) {
          const AsnOpPlan& plan = plans[p];
          if (plan.lives.empty()) continue;
          util::Rng rng = plan_rngs[p];
          util::IntervalSet days;
          for (const OpLifePlan& life : plan.lives) {
            if (life.peer_visibility < 2) continue;  // fails >1-peer rule
            const DayInterval visible = life.days.intersect(window);
            if (visible.empty()) continue;
            days.add(visible);
            // Routine BGP flaps: short sub-timeout holes in the activity
            // (routes transiently withdrawn, outages). These dominate the
            // raw activity-gap distribution (Fig. 3: ~70% of gaps are
            // <= 30 days) without splitting operational lives. Life
            // endpoints are never chipped — they are the ground truth the
            // lifetime builder must recover.
            const auto flaps = static_cast<int>(
                static_cast<double>(visible.length()) / 1500.0);
            for (int f = 0; f < flaps; ++f) {
              const util::Day hole_start =
                  visible.first + static_cast<util::Day>(
                                      rng.uniform(1, visible.length() - 2));
              const auto hole_len = 1 + rng.geometric_days(0.35, 20);
              DayInterval hole{
                  hole_start,
                  hole_start + static_cast<util::Day>(hole_len) - 1};
              hole.first = std::max<util::Day>(hole.first, visible.first + 1);
              hole.last = std::min<util::Day>(hole.last, visible.last - 1);
              if (!hole.empty()) days.subtract(hole);
            }
          }
          days_by_plan[p] = std::move(days);
        }
      },
      /*grain=*/128);
  for (std::size_t p = 0; p < plans.size(); ++p)
    world.activity.mark_active(plans[p].asn, std::move(days_by_plan[p]));
  return world;
}

RouteGenerator::RouteGenerator(
    const OpWorld& world, const bgp::CollectorInfrastructure& infrastructure,
    std::uint64_t seed, NoiseConfig noise)
    : world_(&world),
      infrastructure_(&infrastructure),
      seed_(seed),
      noise_(noise) {
  plans_.reserve(world.behavior.plans.size());
  for (const AsnOpPlan& plan : world.behavior.plans) {
    plans_.push_back(&plan);
    by_asn_[plan.asn.value].push_back(&plan);
  }
}

void RouteGenerator::emit_plan(
    const AsnOpPlan& plan, Day day,
    const std::vector<std::pair<bgp::CollectorId, asn::Asn>>& peers,
    std::vector<Element>& out) const {
  const OpLifePlan* active = nullptr;
  for (const OpLifePlan& life : plan.lives)
    if (life.days.contains(day)) {
      active = &life;
      break;
    }
  if (active == nullptr) return;
  // Honour the flap holes punched into the activity table: on a flap day
  // the routes are transiently withdrawn, so no elements are observed.
  // (China-filtered lives are absent from the table but do emit elements —
  // to their single peer — which the >1-peer rule then discards.)
  if (active->peer_visibility >= 2) {
    const util::IntervalSet* days = world_->activity.activity(plan.asn);
    if (days == nullptr || !days->contains(day)) return;
  }

  const int visibility = std::min<int>(active->peer_visibility,
                                       static_cast<int>(peers.size()));
  const std::uint32_t upstream =
      active->upstream != 0 ? active->upstream : provider_for(plan.asn);

  const asn::Asn prefix_owner =
      active->victim != 0 ? asn::Asn{active->victim} : plan.asn;
  for (int p = 0; p < active->prefixes_per_day; ++p) {
    const Prefix prefix = origin_prefix(prefix_owner, p);
    for (int v = 0; v < visibility; ++v) {
      const std::uint64_t h =
          mix(plan.asn.value, static_cast<std::uint64_t>(v), 0x9999);
      const auto& [collector, peer] = peers[h % peers.size()];
      Element element;
      element.day = day;
      element.type = ElementType::kRibEntry;
      element.collector = collector;
      element.peer = peer;
      element.prefix = prefix;
      // Path: peer .. transit .. upstream .. origin.
      std::vector<asn::Asn> hops;
      hops.push_back(peer);
      const std::uint32_t transit = provider_for(asn::Asn{upstream});
      if (transit != upstream && transit != plan.asn.value)
        hops.push_back(asn::Asn{transit});
      if (upstream != plan.asn.value) hops.push_back(asn::Asn{upstream});
      hops.push_back(plan.asn);
      element.path = bgp::AsPath(std::move(hops));
      out.push_back(std::move(element));
    }
  }
}

std::vector<Element> RouteGenerator::updates_for_day(
    Day day, const std::unordered_set<std::uint32_t>* watchlist) const {
  // Diff the (noise-free) tables of day-1 and day, keyed by (peer, prefix).
  const NoiseConfig no_noise{0, 0, 0, 0};
  RouteGenerator quiet(*world_, *infrastructure_, seed_, no_noise);
  const auto before = quiet.elements_for_day(day - 1, watchlist);
  const auto after = quiet.elements_for_day(day, watchlist);

  // A peer's table holds one best route per prefix; when a day's elements
  // carry the same (peer, prefix) twice (a MOAS at that peer), the
  // last-applied route wins — dedupe both sides before diffing.
  const auto key = [](const Element& e) {
    return std::make_tuple(e.peer.value, e.prefix);
  };
  std::map<std::tuple<std::uint32_t, Prefix>, const Element*> table_before;
  for (const Element& e : before) table_before[key(e)] = &e;
  std::map<std::tuple<std::uint32_t, Prefix>, const Element*> table_after;
  for (const Element& e : after) table_after[key(e)] = &e;

  std::vector<Element> updates;
  for (const auto& [route_key, element] : table_after) {
    const auto it = table_before.find(route_key);
    if (it != table_before.end() && it->second->path == element->path)
      continue;
    Element announce = *element;
    announce.day = day;
    announce.type = ElementType::kAnnouncement;
    updates.push_back(std::move(announce));
  }
  for (const auto& [route_key, element] : table_before) {
    if (table_after.contains(route_key)) continue;
    Element withdraw;
    withdraw.day = day;
    withdraw.type = ElementType::kWithdrawal;
    withdraw.collector = element->collector;
    withdraw.peer = element->peer;
    withdraw.prefix = element->prefix;
    updates.push_back(std::move(withdraw));
  }
  return updates;
}

Prefix RouteGenerator::origin_prefix(asn::Asn asn, int index) {
  // Deterministic /16 or /20 per (asn, index) inside 1.0.0.0..223.255.255.255.
  const std::uint64_t h = mix(asn.value, static_cast<std::uint64_t>(index));
  const auto a = static_cast<std::uint32_t>(1 + (h % 222));
  const auto b = static_cast<std::uint32_t>((h >> 16) & 0xFF);
  const auto c = static_cast<std::uint32_t>((h >> 24) & 0xF0);
  const bool wide = (h & 1) != 0;
  const std::uint32_t address =
      (a << 24) | (b << 16) | (wide ? 0u : (c << 8));
  return Prefix::ipv4(address, wide ? 16 : 20);
}

std::vector<Element> RouteGenerator::elements_for_day(
    Day day, const std::unordered_set<std::uint32_t>* watchlist) const {
  std::vector<Element> out;

  // Flattened peer list for visibility assignment.
  std::vector<std::pair<bgp::CollectorId, asn::Asn>> peers;
  for (const bgp::Collector& collector : infrastructure_->collectors)
    for (const asn::Asn peer : collector.peers)
      peers.emplace_back(collector.id, peer);
  if (peers.empty()) return out;

  if (watchlist != nullptr && watchlist->size() <= 64) {
    // Sorted drain: the watchlist is an unordered_set, so iterate its
    // elements in ASN order to keep the emitted element order (and thus the
    // downstream archives) bit-identical run to run.
    std::vector<std::uint32_t> watched(watchlist->begin(), watchlist->end());
    std::sort(watched.begin(), watched.end());
    for (const std::uint32_t asn_value : watched) {
      const auto it = by_asn_.find(asn_value);
      if (it == by_asn_.end()) continue;
      for (const AsnOpPlan* plan : it->second)
        emit_plan(*plan, day, peers, out);
    }
  } else {
    for (const AsnOpPlan* plan : plans_) {
      if (watchlist && !watchlist->contains(plan->asn.value)) continue;
      emit_plan(*plan, day, peers, out);
    }
  }

  if (watchlist != nullptr) return out;

  // Noise: bound by a slice of the day's element count, deterministic.
  const auto noise_budget = static_cast<std::size_t>(
      static_cast<double>(out.size()) *
      (noise_.long_prefix_rate + noise_.short_prefix_rate + noise_.loop_rate +
       noise_.spurious_rate));
  for (std::size_t n = 0; n < noise_budget; ++n) {
    const std::uint64_t h = mix(static_cast<std::uint64_t>(day), n, seed_);
    Element junk;
    junk.day = day;
    junk.type = ElementType::kAnnouncement;
    const auto& [collector, peer] = peers[h % peers.size()];
    junk.collector = collector;
    junk.peer = peer;
    const double kind = static_cast<double>(h >> 32) / 4294967296.0;
    const double total = noise_.long_prefix_rate + noise_.short_prefix_rate +
                         noise_.loop_rate + noise_.spurious_rate;
    const asn::Asn random_origin{
        static_cast<std::uint32_t>(1 + (h % 4000000))};
    if (kind < noise_.long_prefix_rate / total) {
      junk.prefix = Prefix::ipv4(static_cast<std::uint32_t>(h), 28);
      junk.path = bgp::AsPath({peer.value, random_origin.value});
    } else if (kind <
               (noise_.long_prefix_rate + noise_.short_prefix_rate) / total) {
      junk.prefix = Prefix::ipv4(static_cast<std::uint32_t>(h) & 0xFE000000,
                                 6);
      junk.path = bgp::AsPath({peer.value, random_origin.value});
    } else if (kind < (noise_.long_prefix_rate + noise_.short_prefix_rate +
                       noise_.loop_rate) /
                          total) {
      junk.prefix = Prefix::ipv4(static_cast<std::uint32_t>(h), 16);
      junk.path = bgp::AsPath({peer.value, random_origin.value, 3356,
                               random_origin.value});
    } else {
      // Spurious single-peer sighting of a random ASN.
      junk.prefix = Prefix::ipv4(static_cast<std::uint32_t>(h), 18);
      junk.path = bgp::AsPath({peer.value, random_origin.value});
    }
    out.push_back(std::move(junk));
  }
  return out;
}

}  // namespace pl::bgpsim
