// Assembling the operational world and generating route elements.
//
// Two consistent views of the same planned behaviour:
//   * `OpWorld::activity` — the per-ASN daily activity table after the
//     >1-peer visibility rule, built directly from the plans (the full-scale
//     fast path, mirroring what 930B records aggregate to);
//   * `RouteGenerator` — path-level BGP elements for chosen days/ASNs, used
//     to exercise the sanitizer and the prefix-origination case studies.
#pragma once

#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "bgp/activity.hpp"
#include "bgp/collector.hpp"
#include "bgpsim/attack.hpp"
#include "bgpsim/behavior.hpp"
#include "bgpsim/misconfig.hpp"

namespace pl::bgpsim {

/// The fully-assembled operational dimension plus ground-truth labels.
struct OpWorld {
  BehaviorPlan behavior;
  AttackPlan attacks;
  MisconfigPlan misconfigs;
  /// Post-visibility-rule activity, clipped to the archive window.
  bgp::ActivityTable activity;
};

struct OpWorldConfig {
  OpConfig behavior;
  AttackConfig attacks;
  MisconfigConfig misconfigs;
};

/// Build everything deterministically. `scale` in the sub-configs should
/// match the admin world's scale.
OpWorld build_op_world(const rirsim::GroundTruth& truth,
                       const OpWorldConfig& config);

/// Sanitizer-exercising noise mixed into generated elements: too-long or
/// too-short prefixes, looped paths, single-peer spurious sightings.
struct NoiseConfig {
  double long_prefix_rate = 0.01;   ///< /25../32 leaks
  double short_prefix_rate = 0.003; ///< </8 blocks
  double loop_rate = 0.004;
  double spurious_rate = 0.01;      ///< single-peer garbage ASN sightings
};

/// Generates the path-level elements a collector infrastructure would
/// record.
class RouteGenerator {
 public:
  RouteGenerator(const OpWorld& world,
                 const bgp::CollectorInfrastructure& infrastructure,
                 std::uint64_t seed = 31337, NoiseConfig noise = {});

  /// All elements for `day`. If `watchlist` is non-null, only plans whose
  /// ASN is listed generate elements (noise is suppressed too).
  std::vector<bgp::Element> elements_for_day(
      util::Day day,
      const std::unordered_set<std::uint32_t>* watchlist = nullptr) const;

  /// The update stream for `day`: announcements for routes that appeared
  /// or changed since `day - 1`, withdrawals for routes that vanished —
  /// what a collector's update dumps carry between daily RIB snapshots.
  /// Noise is excluded (it models transient garbage, not table state).
  std::vector<bgp::Element> updates_for_day(
      util::Day day,
      const std::unordered_set<std::uint32_t>* watchlist = nullptr) const;

  /// Deterministic prefix originated by `asn` as its `index`-th prefix.
  static bgp::Prefix origin_prefix(asn::Asn asn, int index);

 private:
  void emit_plan(const AsnOpPlan& plan, util::Day day,
                 const std::vector<std::pair<bgp::CollectorId, asn::Asn>>&
                     peers,
                 std::vector<bgp::Element>& out) const;

  const OpWorld* world_;
  const bgp::CollectorInfrastructure* infrastructure_;
  std::uint64_t seed_;
  NoiseConfig noise_;
  std::vector<const AsnOpPlan*> plans_;
  /// ASN -> plans, so small watchlists skip the full scan.
  std::unordered_map<std::uint32_t, std::vector<const AsnOpPlan*>> by_asn_;
};

}  // namespace pl::bgpsim
