#include "bgpsim/misconfig.hpp"

#include <algorithm>
#include <optional>
#include <set>
#include <string>

namespace pl::bgpsim {

namespace {

using rirsim::GroundTruth;
using util::Day;
using util::DayInterval;
using util::Rng;

constexpr std::string_view kMisconfigNames[] = {
    "prepend-typo", "digit-typo", "internal-leak", "unexplained"};

/// Sample an event duration (days) following the paper's ladder: about half
/// last a single day, a fifth more than a month, a handful more than a year.
std::int64_t sample_duration(const MisconfigConfig& config, Rng& rng) {
  const double roll = rng.uniform01();
  if (roll < config.active_over_1year) return rng.uniform(366, 900);
  if (roll < config.active_over_1month) return rng.uniform(32, 300);
  if (roll < config.active_over_1day) return rng.uniform(2, 31);
  return 1;
}

/// True iff `candidate` was never delegated and is not special-use.
bool usable_bogus(const GroundTruth& truth, asn::Asn candidate) {
  if (candidate.value == 0 || asn::is_bogon(candidate)) return false;
  return !truth.lives_by_asn.contains(candidate.value);
}

/// Doubled-spelling ASN (prepending typo) if it fits in 32 bits.
std::optional<asn::Asn> doubled(asn::Asn base) {
  const std::string spelling = asn::to_string(base);
  const std::string twice = spelling + spelling;
  return asn::parse_asn(twice);
}

/// Mutate one decimal digit of `base` (possibly appending one), producing a
/// fat-finger neighbour.
std::optional<asn::Asn> digit_typo(asn::Asn base, Rng& rng) {
  std::string spelling = asn::to_string(base);
  if (rng.chance(0.35)) {
    // Insert a digit (AS419333 from AS41933 style).
    const auto position = static_cast<std::size_t>(rng.uniform(
        0, static_cast<std::int64_t>(spelling.size())));
    spelling.insert(position, 1,
                    static_cast<char>('0' + rng.uniform(0, 9)));
  } else {
    const auto position = static_cast<std::size_t>(rng.uniform(
        0, static_cast<std::int64_t>(spelling.size()) - 1));
    char replacement = spelling[position];
    while (replacement == spelling[position])
      replacement = static_cast<char>('0' + rng.uniform(0, 9));
    if (position == 0 && replacement == '0') return std::nullopt;
    spelling[position] = replacement;
  }
  return asn::parse_asn(spelling);
}

}  // namespace

std::string_view misconfig_name(MisconfigKind kind) noexcept {
  return kMisconfigNames[static_cast<std::size_t>(kind)];
}

MisconfigPlan inject_misconfigs(const GroundTruth& truth,
                                BehaviorPlan& behavior,
                                const MisconfigConfig& config) {
  MisconfigPlan plan;
  Rng rng(config.seed);

  const int total = std::max(
      3, static_cast<int>(config.total_events * config.scale));

  // Candidate legitimate ASNs: lives active in the archive era with a plan.
  std::vector<std::size_t> active_plan_indices;
  for (std::size_t i = 0; i < behavior.plans.size(); ++i) {
    const AsnOpPlan& p = behavior.plans[i];
    if (p.truth_life_index < 0 || p.lives.empty()) continue;
    if (p.lives.front().peer_visibility < 2) continue;
    active_plan_indices.push_back(i);
  }
  if (active_plan_indices.empty()) return plan;

  std::set<std::uint32_t> used_bogus;
  const Day era_begin = truth.archive_begin;
  const Day era_end = truth.archive_end;

  for (int made = 0; made < total; ++made) {
    MisconfigEvent event;
    const double roll = rng.uniform01();

    if (roll < config.large_asn_fraction) {
      // Internal-use ASN leak: a number with more digits than anything ever
      // allocated, visible behind a legitimate provider for a long time.
      event.kind = MisconfigKind::kInternalLeak;
      asn::Asn bogus{0};
      do {
        bogus.value = static_cast<std::uint32_t>(
            rng.uniform(1000000000, 4199999999));  // 10 digits, non-bogon
      } while (!usable_bogus(truth, bogus) ||
               used_bogus.contains(bogus.value));
      event.bogus_origin = bogus;
      const std::size_t pick = active_plan_indices[static_cast<std::size_t>(
          rng.uniform(0,
                      static_cast<std::int64_t>(active_plan_indices.size()) -
                          1))];
      event.legitimate = behavior.plans[pick].asn;
      event.prefixes_per_day = 1;
      const std::int64_t duration = rng.uniform(60, 900);  // months..years
      const Day start = era_begin + static_cast<Day>(rng.uniform(
                            100, era_end - era_begin - 100));
      event.days = DayInterval{
          start, std::min<Day>(era_end, start + static_cast<Day>(duration))};
      event.causes_moas = false;  // leak is covered by provider's aggregate
    } else {
      // Fat-finger typo of an active ASN.
      const std::size_t pick = active_plan_indices[static_cast<std::size_t>(
          rng.uniform(0,
                      static_cast<std::int64_t>(active_plan_indices.size()) -
                          1))];
      const AsnOpPlan& victim = behavior.plans[pick];
      const bool prepend = rng.chance(config.prepend_typo_fraction);
      std::optional<asn::Asn> bogus =
          prepend ? doubled(victim.asn) : digit_typo(victim.asn, rng);
      if (!bogus || !usable_bogus(truth, *bogus) ||
          used_bogus.contains(bogus->value)) {
        --made;  // retry with another victim
        continue;
      }
      event.kind = prepend ? MisconfigKind::kPrependTypo
                           : MisconfigKind::kDigitTypo;
      event.bogus_origin = *bogus;
      event.legitimate = victim.asn;
      event.prefixes_per_day = 1;
      event.causes_moas = !prepend;
      // Anchor inside one of the victim's op lives (a typo needs the victim
      // to actually be announcing).
      const OpLifePlan& host = victim.lives[static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(victim.lives.size()) - 1))];
      const std::int64_t duration = sample_duration(config, rng);
      const Day start =
          host.days.first +
          static_cast<Day>(rng.uniform(0, std::max<std::int64_t>(
                                              0, host.days.length() - 1)));
      event.days = DayInterval{
          start,
          std::min<Day>(era_end, start + static_cast<Day>(duration) - 1)};
    }

    used_bogus.insert(event.bogus_origin.value);

    AsnOpPlan bogus_plan;
    bogus_plan.asn = event.bogus_origin;
    bogus_plan.kind = BehaviorKind::kNeverUsed;  // never *allocated*
    bogus_plan.truth_life_index = -1;
    OpLifePlan life;
    life.days = event.days;
    life.peer_visibility = static_cast<int>(rng.uniform(2, 12));
    life.prefixes_per_day = event.prefixes_per_day;
    life.upstream = event.legitimate.value;  // typo rides the victim's path
    // MOAS conflicts announce the legitimate ASN's own prefix; leaks ride
    // inside the covering provider's space.
    life.victim = event.legitimate.value;
    bogus_plan.lives.push_back(life);
    behavior.plans.push_back(std::move(bogus_plan));

    plan.events.push_back(event);
  }

  return plan;
}

}  // namespace pl::bgpsim
