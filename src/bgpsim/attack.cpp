#include "bgpsim/attack.hpp"

#include <algorithm>
#include <unordered_map>

namespace pl::bgpsim {

namespace {

using rirsim::GroundTruth;
using rirsim::TrueAdminLife;
using util::Day;
using util::DayInterval;
using util::Rng;

/// Pick a deterministic victim ASN (an allocated, long-lived number) whose
/// prefixes the squatter will originate.
std::uint32_t pick_victim(const GroundTruth& truth, Rng& rng) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    const auto index = static_cast<std::size_t>(rng.uniform(
        0, static_cast<std::int64_t>(truth.lives.size()) - 1));
    const TrueAdminLife& life = truth.lives[index];
    if (life.days.length() > 2000) return life.asn.value;
  }
  return truth.lives.front().asn.value;
}

std::uint32_t pick_malicious_upstream(Rng& rng) {
  constexpr std::uint32_t kUpstreams[] = {kHijackFactoryAsn, kBitcanalAsn,
                                          kSpammerUpstreamAsn};
  return kUpstreams[static_cast<std::size_t>(rng.uniform(0, 2))];
}

}  // namespace

AttackPlan inject_attacks(const GroundTruth& truth, BehaviorPlan& behavior,
                          const AttackConfig& config) {
  AttackPlan plan;
  Rng rng(config.seed);

  // Index plans by truth life for the post-deallocation pass.
  std::unordered_map<std::int64_t, std::size_t> plan_by_life;
  for (std::size_t i = 0; i < behavior.plans.size(); ++i)
    plan_by_life[behavior.plans[i].truth_life_index] = i;

  // --- Dormant-ASN squatting: flip a slice of the awakenings to malicious
  // high-volume announcements via a hijack-factory upstream.
  int coordinated_left = std::max(
      1, static_cast<int>(config.coordinated_group_size * config.scale));
  const DayInterval coordinated_window{util::make_day(2020, 4, 1),
                                       util::make_day(2020, 7, 31)};
  for (AsnOpPlan& asn_plan : behavior.plans) {
    if (asn_plan.kind != BehaviorKind::kDormantThenAwake) continue;
    if (asn_plan.lives.empty()) continue;
    OpLifePlan& wake = asn_plan.lives.back();

    // Coordinated group: realign some awakenings into the shared window
    // (low prefix counts — the hard-to-spot variant).
    const std::size_t life_index =
        static_cast<std::size_t>(asn_plan.truth_life_index);
    const TrueAdminLife& life = truth.lives[life_index];
    if (coordinated_left > 0 &&
        life.days.contains(coordinated_window.last) &&
        wake.days.first < coordinated_window.first - 1000 + 1 &&
        rng.chance(0.5)) {
      const Day start = coordinated_window.first +
                        static_cast<Day>(rng.uniform(0, 40));
      wake.days = DayInterval{
          start, std::min<Day>(coordinated_window.last,
                               start + static_cast<Day>(rng.uniform(10, 60)))};
      wake.malicious = true;
      wake.upstream = kHijackFactoryAsn;
      wake.victim = pick_victim(truth, rng);
      wake.prefixes_per_day = static_cast<int>(rng.uniform(2, 5));
      plan.events.push_back(SquatEvent{asn_plan.asn, wake.days, wake.upstream,
                                       wake.prefixes_per_day, false, true,
                                       asn_plan.truth_life_index});
      --coordinated_left;
      continue;
    }

    if (!rng.chance(config.dormant_malicious_fraction)) continue;
    wake.malicious = true;
    wake.upstream = pick_malicious_upstream(rng);
    wake.victim = pick_victim(truth, rng);
    wake.prefixes_per_day = static_cast<int>(rng.uniform(30, 200));
    // Squat bursts are short.
    wake.days.last = std::min<Day>(
        wake.days.last, wake.days.first + static_cast<Day>(rng.uniform(5, 31)));
    plan.events.push_back(SquatEvent{asn_plan.asn, wake.days, wake.upstream,
                                     wake.prefixes_per_day, false, false,
                                     asn_plan.truth_life_index});
  }

  // --- Post-deallocation squatting + benign outside-delegation lives.
  const int hijacks = std::max(
      1, static_cast<int>(config.post_deallocation_events * config.scale));
  const int benign = static_cast<int>(config.benign_outside_lives *
                                      config.scale);
  int hijacks_made = 0;
  int benign_made = 0;

  for (std::size_t life_index = 0; life_index < truth.lives.size();
       ++life_index) {
    if (hijacks_made >= hijacks && benign_made >= benign) break;
    const TrueAdminLife& life = truth.lives[life_index];
    if (life.open_ended) continue;
    // Need room after the life (and before the ASN's next life) for an
    // outside-delegation op life.
    Day room_end = truth.archive_end;
    const auto it = truth.lives_by_asn.find(life.asn.value);
    for (const std::size_t other : it->second) {
      const TrueAdminLife& next_life = truth.lives[other];
      if (next_life.days.first > life.days.last) {
        room_end = std::min<Day>(room_end, next_life.days.first - 1);
        break;
      }
    }
    if (room_end < life.days.last + 40) continue;
    if (life.days.last <= truth.archive_begin) continue;
    if (!rng.chance(0.04)) continue;

    const bool make_hijack =
        hijacks_made < hijacks &&
        (benign_made >= benign || rng.chance(0.05));
    if (!make_hijack && benign_made >= benign) continue;

    OpLifePlan outside;
    const Day start = life.days.last + 1 +
                      static_cast<Day>(make_hijack
                                           ? rng.uniform(2, 10)
                                           : rng.uniform(5, 300));
    if (start > room_end - 3) continue;
    outside.days = DayInterval{
        start, std::min<Day>(room_end,
                             start + static_cast<Day>(rng.uniform(3, 90)))};
    if (make_hijack) {
      outside.malicious = true;
      outside.upstream = kBitcanalAsn;
      outside.victim = pick_victim(truth, rng);
      outside.prefixes_per_day = static_cast<int>(rng.uniform(3, 12));
      plan.events.push_back(SquatEvent{life.asn, outside.days,
                                       outside.upstream,
                                       outside.prefixes_per_day, true, false,
                                       static_cast<std::int64_t>(life_index)});
      ++hijacks_made;
    } else {
      outside.peer_visibility = static_cast<int>(rng.uniform(2, 10));
      outside.prefixes_per_day = 1;
      ++benign_made;
    }

    const auto plan_it = plan_by_life.find(static_cast<std::int64_t>(
        life_index));
    if (plan_it != plan_by_life.end()) {
      auto& lives = behavior.plans[plan_it->second].lives;
      // Dangling tails may already extend past the deallocation; never let
      // the injected outside life overlap an existing one, and keep a gap
      // well beyond the 30-day timeout so the awakening forms its own
      // operational life (real cases are years from previous activity).
      bool overlaps = false;
      for (const OpLifePlan& existing : lives)
        if (existing.days.overlaps(outside.days) ||
            (existing.days.last < outside.days.first &&
             existing.days.last + 45 >= outside.days.first))
          overlaps = true;
      if (overlaps) {
        if (make_hijack) {
          plan.events.pop_back();
          --hijacks_made;
        } else {
          --benign_made;
        }
        continue;
      }
      lives.push_back(outside);
      std::sort(lives.begin(), lives.end(),
                [](const OpLifePlan& a, const OpLifePlan& b) {
                  return a.days.first < b.days.first;
                });
    } else {
      AsnOpPlan fresh;
      fresh.asn = life.asn;
      fresh.kind = BehaviorKind::kNeverUsed;  // admin life itself unused
      fresh.truth_life_index = static_cast<std::int64_t>(life_index);
      fresh.lives.push_back(outside);
      behavior.plans.push_back(std::move(fresh));
      plan_by_life[static_cast<std::int64_t>(life_index)] =
          behavior.plans.size() - 1;
    }
  }

  return plan;
}

}  // namespace pl::bgpsim
