#include "bgpsim/behavior.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace pl::bgpsim {

namespace {

using rirsim::GroundTruth;
using rirsim::OrgKind;
using rirsim::TrueAdminLife;
using util::Day;
using util::DayInterval;
using util::Rng;

constexpr std::string_view kBehaviorNames[] = {
    "canonical",      "intermittent",   "largely-spaced", "event-driven",
    "never-used",     "china-filtered", "sibling-unused", "failed-32bit",
    "dangling-tail",  "early-start",    "dormant-awake",
};

/// Sample a target utilization ratio for a complete-overlap life,
/// reproducing the Fig. 7 CDF: ~45% of lives above 0.95, ~70% above 0.75,
/// ~10% below 0.30.
double sample_utilization(Rng& rng) {
  // The low tail is lighter than Fig. 7's 10% because the forced
  // deallocation lag of closed lives (below) independently pushes a slice
  // of lives under the 30% line.
  const double weights[] = {0.47, 0.26, 0.21, 0.06};
  switch (rng.weighted(weights)) {
    case 0: return 0.95 + 0.05 * rng.uniform01();
    case 1: return 0.75 + 0.20 * rng.uniform01();
    case 2: return 0.30 + 0.45 * rng.uniform01();
    default: return 0.02 + 0.28 * rng.uniform01();
  }
}

int sample_peer_visibility(Rng& rng) {
  return static_cast<int>(rng.uniform(3, 30));
}

int sample_prefix_count(Rng& rng) {
  return std::max<int>(1, static_cast<int>(rng.lognormal(0.9, 0.9)));
}

/// Median deallocation lag per registry (6.1.1: APNIC >6 months, the
/// others >10, AfriNIC ~530 days).
double dealloc_lag_median_for(asn::Rir rir) noexcept {
  switch (rir) {
    case asn::Rir::kAfrinic: return 530;
    case asn::Rir::kApnic: return 200;
    case asn::Rir::kArin: return 330;
    case asn::Rir::kLacnic: return 340;
    case asn::Rir::kRipeNcc: return 320;
  }
  return 320;
}

/// Plan a single op life inside [start_bound, end_bound] hitting roughly
/// `utilization` of the admin span, with a start delay whose median matches
/// the config.
OpLifePlan plan_single_life(const DayInterval& admin, bool open_ended,
                            double utilization, const OpConfig& config,
                            asn::Rir rir, Rng& rng) {
  OpLifePlan plan;
  const auto span = static_cast<double>(admin.length());
  double slack = (1.0 - utilization) * span;

  // Start delay: lognormal with the configured median, capped at 20% of
  // the slack so the deallocation lag dominates (as the paper observes).
  double delay = rng.lognormal(std::log(config.start_delay_median), 0.9);
  delay = std::min(delay, std::max(1.0, slack * 0.2));
  double lead = slack - delay;
  if (open_ended) {
    // Still-allocated lives usually remain active to the horizon.
    if (rng.chance(0.85)) lead = 0;
  } else {
    // Closed lives: deallocation lags the last BGP day by months (6.1.1) —
    // the registry only reclaims the number long after it goes quiet.
    const double lag = rng.lognormal(
        std::log(dealloc_lag_median_for(rir)), 0.7);
    lead = std::min(std::max(lead, lag), span * 0.7);
  }

  Day start = admin.first + static_cast<Day>(delay);
  Day end = admin.last - static_cast<Day>(lead);
  if (end < start) end = std::min<Day>(admin.last, start + 7);
  start = std::clamp(start, admin.first, admin.last);
  end = std::clamp(end, start, admin.last);
  plan.days = DayInterval{start, end};
  plan.peer_visibility = sample_peer_visibility(rng);
  plan.prefixes_per_day = sample_prefix_count(rng);
  return plan;
}

/// Split a planned span into `k` lives with gaps larger than the paper's
/// 30-day timeout.
std::vector<OpLifePlan> split_lives(const OpLifePlan& whole, int k,
                                    std::int64_t min_gap,
                                    std::int64_t max_gap, Rng& rng) {
  std::vector<OpLifePlan> out;
  const std::int64_t total = whole.days.length();
  if (k <= 1 || total < k * 40) {
    out.push_back(whole);
    return out;
  }
  // Choose gap lengths, leave the rest as active segments.
  std::vector<std::int64_t> gaps(static_cast<std::size_t>(k - 1));
  std::int64_t gap_total = 0;
  for (auto& g : gaps) {
    g = rng.uniform(min_gap, max_gap);
    gap_total += g;
  }
  const std::int64_t active_total = total - gap_total;
  if (active_total < k * 5) {
    out.push_back(whole);
    return out;
  }
  // Random split of the active days into k chunks of >= 5 days.
  std::vector<std::int64_t> chunks(static_cast<std::size_t>(k), 5);
  std::int64_t remaining = active_total - 5 * k;
  for (int i = 0; i < k && remaining > 0; ++i) {
    const std::int64_t take = rng.uniform(0, remaining);
    chunks[static_cast<std::size_t>(i)] += take;
    remaining -= take;
  }
  chunks.back() += remaining;

  Day cursor = whole.days.first;
  for (int i = 0; i < k; ++i) {
    OpLifePlan life = whole;
    life.days = DayInterval{cursor,
                            cursor + static_cast<Day>(chunks[
                                static_cast<std::size_t>(i)]) - 1};
    out.push_back(life);
    cursor = life.days.last + 1;
    if (i + 1 < k) cursor += static_cast<Day>(gaps[static_cast<std::size_t>(i)]);
  }
  return out;
}

}  // namespace

std::string_view behavior_name(BehaviorKind kind) noexcept {
  return kBehaviorNames[static_cast<std::size_t>(kind)];
}

BehaviorPlan plan_behaviors(const GroundTruth& truth,
                            const OpConfig& config) {
  BehaviorPlan result;
  result.behavior_of_life.resize(truth.lives.size(),
                                 BehaviorKind::kCanonical);
  // At most one plan per admin life; pre-sizing avoids reallocation copies
  // of the (large) AsnOpPlan payloads as the table grows.
  result.plans.reserve(truth.lives.size());
  Rng rng(config.seed);

  // Pre-pick one long-lived life per RIR as an event-driven conference ASN.
  std::vector<std::size_t> event_lives;
  {
    std::array<bool, asn::kRirCount> done{};
    for (std::size_t i = 0; i < truth.lives.size(); ++i) {
      const TrueAdminLife& life = truth.lives[i];
      const std::size_t rir_index = asn::index_of(life.birth_registry());
      if (done[rir_index]) continue;
      if (life.days.length() > 3000 && life.open_ended) {
        event_lives.push_back(i);
        done[rir_index] = true;
      }
    }
  }

  for (std::size_t i = 0; i < truth.lives.size(); ++i) {
    const TrueAdminLife& life = truth.lives[i];
    Rng life_rng = rng.fork();
    const rirsim::Organization& org = truth.orgs[life.org];

    BehaviorKind kind = BehaviorKind::kCanonical;

    if (std::find(event_lives.begin(), event_lives.end(), i) !=
        event_lives.end()) {
      kind = BehaviorKind::kEventDriven;
    } else if (life.nir_block) {
      kind = life_rng.chance(config.nir_block_unused)
                 ? BehaviorKind::kNeverUsed
                 : BehaviorKind::kCanonical;
    } else if (org.kind == OrgKind::kGovernment ||
               org.kind == OrgKind::kLegacyHolder) {
      kind = life_rng.chance(config.sibling_org_usage)
                 ? BehaviorKind::kCanonical
                 : BehaviorKind::kSiblingUnused;
    } else if (life.country == asn::CountryCode::literal('C', 'N')) {
      kind = life_rng.chance(config.china_unused_fraction)
                 ? BehaviorKind::kChinaFiltered
                 : BehaviorKind::kCanonical;
    } else if (life.asn.is_32bit_only() && life.days.length() < 120 &&
               life_rng.chance(0.8)) {
      kind = BehaviorKind::kFailed32bit;
    } else if (life.publish_lag_days > 0 &&
               life_rng.chance(config.early_start_lagged)) {
      // The delegation file lags the assignment: the network often starts
      // announcing before the record is published (6.2).
      kind = BehaviorKind::kEarlyStart;
    } else {
      const double weights[] = {
          config.base_never_used,
          config.dangling_fraction,
          config.early_start_fraction,
          config.intermittent_fraction,
          config.largely_spaced_fraction,
          config.dormant_fraction,
          1.0 - config.base_never_used - config.dangling_fraction -
              config.early_start_fraction - config.intermittent_fraction -
              config.largely_spaced_fraction - config.dormant_fraction,
      };
      constexpr BehaviorKind kRoll[] = {
          BehaviorKind::kNeverUsed,      BehaviorKind::kDanglingTail,
          BehaviorKind::kEarlyStart,     BehaviorKind::kIntermittent,
          BehaviorKind::kLargelySpaced,  BehaviorKind::kDormantThenAwake,
          BehaviorKind::kCanonical,
      };
      kind = kRoll[life_rng.weighted(weights)];
      // Degrade kinds the life is too short for.
      if (life.days.length() < 500 &&
          (kind == BehaviorKind::kIntermittent ||
           kind == BehaviorKind::kLargelySpaced ||
           kind == BehaviorKind::kDormantThenAwake))
        kind = BehaviorKind::kCanonical;
      if (kind == BehaviorKind::kDanglingTail && life.open_ended)
        kind = BehaviorKind::kCanonical;
      if (kind == BehaviorKind::kDormantThenAwake &&
          life.days.length() < 1200)
        kind = BehaviorKind::kCanonical;
    }

    result.behavior_of_life[i] = kind;

    AsnOpPlan plan;
    plan.asn = life.asn;
    plan.kind = kind;
    plan.truth_life_index = static_cast<std::int64_t>(i);

    switch (kind) {
      case BehaviorKind::kNeverUsed:
      case BehaviorKind::kSiblingUnused:
      case BehaviorKind::kFailed32bit:
        break;  // no operational life at all

      case BehaviorKind::kChinaFiltered: {
        OpLifePlan life_plan = plan_single_life(
            life.days, life.open_ended, sample_utilization(life_rng), config,
            life.birth_registry(), life_rng);
        life_plan.peer_visibility = 1;  // below the >1-peer activity rule
        plan.lives.push_back(life_plan);
        break;
      }

      case BehaviorKind::kCanonical: {
        plan.lives.push_back(plan_single_life(
            life.days, life.open_ended, sample_utilization(life_rng), config,
            life.birth_registry(), life_rng));
        break;
      }

      case BehaviorKind::kIntermittent: {
        const OpLifePlan whole = plan_single_life(
            life.days, life.open_ended, 0.6 + 0.3 * life_rng.uniform01(),
            config, life.birth_registry(), life_rng);
        // Sibling-rich orgs flap the most (the paper's >10-op-life ASNs are
        // mostly sibling ASNs): a slice of them gets a heavy-tailed number
        // of lives (the paper finds 287 ASNs beyond 10).
        const int max_lives = org.asns.size() > 3 ? 16 : 5;
        int k = 2 + static_cast<int>(life_rng.geometric_days(0.45, 12));
        if (org.asns.size() > 3 && life.days.length() > 3000 &&
            life_rng.chance(0.35))
          k = 11 + static_cast<int>(life_rng.uniform(0, 4));
        plan.lives =
            split_lives(whole, std::min(k, max_lives), 31, 250, life_rng);
        break;
      }

      case BehaviorKind::kLargelySpaced: {
        const OpLifePlan whole = plan_single_life(
            life.days, life.open_ended, 0.75, config, life.birth_registry(),
            life_rng);
        plan.lives = split_lives(whole, 2, 366, 1600, life_rng);
        break;
      }

      case BehaviorKind::kEventDriven: {
        // Short bursts roughly twice a year across the whole life.
        Day cursor = life.days.first + 40;
        OpLifePlan burst;
        burst.peer_visibility = sample_peer_visibility(life_rng);
        burst.prefixes_per_day = 1;
        while (cursor + 10 < life.days.last) {
          burst.days = DayInterval{
              cursor, cursor + static_cast<Day>(life_rng.uniform(4, 10))};
          plan.lives.push_back(burst);
          cursor = burst.days.last +
                   static_cast<Day>(life_rng.uniform(150, 360));
        }
        break;
      }

      case BehaviorKind::kDanglingTail: {
        OpLifePlan life_plan = plan_single_life(
            life.days, /*open_ended=*/true, 0.9, config,
            life.birth_registry(), life_rng);
        // Announcements persist past deallocation (manual router configs).
        const Day extra = static_cast<Day>(life_rng.uniform(30, 700));
        life_plan.days.last =
            std::min<Day>(truth.archive_end, life.days.last + extra);
        plan.lives.push_back(life_plan);
        break;
      }

      case BehaviorKind::kEarlyStart: {
        OpLifePlan life_plan = plan_single_life(
            life.days, life.open_ended, 0.95, config, life.birth_registry(),
            life_rng);
        // BGP starts before the delegation file shows the allocation (6.2:
        // mismatches "only last a few days"). Lagged lives start after the
        // registration date but before publication; unlagged ones can only
        // be early by preceding the registration date itself.
        if (life.publish_lag_days > 0) {
          life_plan.days.first =
              life.days.first + static_cast<Day>(life_rng.uniform(
                                    0, life.publish_lag_days - 1));
        } else {
          life_plan.days.first =
              std::max<Day>(truth.archive_begin,
                            life.days.first - static_cast<Day>(
                                life_rng.uniform(1, 9)));
        }
        plan.lives.push_back(life_plan);
        break;
      }

      case BehaviorKind::kDormantThenAwake: {
        // Optional short initial life, then >=1000 days of dormancy, then a
        // short awakening. attack.hpp flips a subset to malicious.
        Day dormancy_start = life.days.first;
        if (life_rng.chance(0.5)) {
          OpLifePlan initial;
          initial.days = DayInterval{
              life.days.first + static_cast<Day>(life_rng.uniform(5, 40)),
              life.days.first + static_cast<Day>(life_rng.uniform(60, 200))};
          initial.peer_visibility = sample_peer_visibility(life_rng);
          initial.prefixes_per_day = sample_prefix_count(life_rng);
          if (initial.days.last < life.days.last - 1100) {
            plan.lives.push_back(initial);
            dormancy_start = initial.days.last + 1;
          }
        }
        const Day wake_min = dormancy_start + 1001;
        if (wake_min < life.days.last - 10) {
          OpLifePlan wake;
          const Day wake_day = wake_min + static_cast<Day>(life_rng.uniform(
              0, life.days.last - 10 - wake_min));
          wake.days = DayInterval{
              wake_day,
              std::min<Day>(life.days.last,
                            wake_day + static_cast<Day>(
                                life_rng.uniform(5, 60)))};
          wake.peer_visibility = sample_peer_visibility(life_rng);
          wake.prefixes_per_day = sample_prefix_count(life_rng);
          plan.lives.push_back(wake);
        }
        break;
      }
    }

    if (!plan.lives.empty()) result.plans.push_back(std::move(plan));
  }

  return result;
}

}  // namespace pl::bgpsim
