#include "history/store.hpp"

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string_view>
#include <utility>

#include "history/codec.hpp"
#include "obs/latency.hpp"
#include "robust/checkpoint.hpp"

namespace pl::history {
namespace {

pl::StatusOr<std::string> read_file(const std::string& path) {
  std::error_code ec;
  if (!std::filesystem::exists(path, ec))
    return pl::not_found_error("no such file: " + path);
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return pl::unavailable_error("cannot open " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) return pl::unavailable_error("read failed: " + path);
  return bytes;
}

pl::Status write_file_atomic(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
  if (!out.is_open())
    return pl::unavailable_error("cannot open " + tmp + " for writing");
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out.good()) return pl::unavailable_error("write failed: " + tmp);
  out.close();
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    return pl::unavailable_error("rename failed: " + tmp + " -> " + path);
  return {};
}

// -- frame scanning (same physical layout as the WAL: a concatenation of
// robust/checkpoint.hpp CRC frames; here every frame must be whole) --------

constexpr std::size_t kFrameHeaderBytes = 16;  // "PLCK" + u32 ver + u64 len
constexpr std::size_t kFrameTrailerBytes = 4;  // crc32

std::uint64_t read_le(std::string_view bytes, std::size_t offset, int width) {
  std::uint64_t value = 0;
  for (int i = 0; i < width; ++i)
    value |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(bytes[offset + i]))
             << (8 * i);
  return value;
}

/// Split a history file into its frames. Unlike WAL replay there is no
/// torn-tail tolerance: a history file is written atomically, so anything
/// that does not parse as exactly whole frames is corruption.
pl::StatusOr<std::vector<std::string_view>> split_frames(
    std::string_view blob) {
  std::vector<std::string_view> frames;
  std::size_t offset = 0;
  while (offset < blob.size()) {
    const std::size_t remaining = blob.size() - offset;
    if (remaining < kFrameHeaderBytes + kFrameTrailerBytes ||
        blob.compare(offset, 4, "PLCK") != 0)
      return pl::data_loss_error("history file torn mid-frame");
    const std::uint64_t payload_len = read_le(blob, offset + 8, 8);
    if (payload_len > remaining - kFrameHeaderBytes - kFrameTrailerBytes)
      return pl::data_loss_error("history file frame length exceeds file");
    const std::size_t frame_len = static_cast<std::size_t>(
        kFrameHeaderBytes + payload_len + kFrameTrailerBytes);
    frames.push_back(blob.substr(offset, frame_len));
    offset += frame_len;
  }
  return frames;
}

/// Manifest fields shared by open() and inspect().
struct Manifest {
  util::Day base_day = 0;
  util::Day last_day = 0;
  int keyframe_interval = 0;
  std::vector<util::Day> keyframe_days;
  std::uint64_t delta_count = 0;
};

pl::StatusOr<Manifest> decode_manifest(std::string_view frame) {
  robust::CheckpointReader r(frame);
  if (!r.ok())
    return pl::data_loss_error("history manifest rejected: " +
                               std::string(r.error()));
  const std::uint32_t version = r.u32();
  if (r.ok() && version != kHistoryFormatVersion)
    return pl::data_loss_error("history file format version skew");
  Manifest m;
  m.base_day = r.i32();
  m.last_day = r.i32();
  m.keyframe_interval = r.i32();
  const std::uint64_t keyframes = r.container_size(4);
  m.keyframe_days.reserve(keyframes);
  for (std::uint64_t i = 0; r.ok() && i < keyframes; ++i)
    m.keyframe_days.push_back(r.i32());
  m.delta_count = r.varint();
  if (!r.ok() || !r.at_end())
    return pl::data_loss_error("history manifest failed to decode: " +
                               std::string(r.error()));
  if (m.keyframe_interval < 1)
    return pl::data_loss_error("history manifest keyframe interval < 1");
  if (m.keyframe_days.empty() || m.keyframe_days.front() != m.base_day ||
      m.last_day < m.base_day)
    return pl::data_loss_error("history manifest day range inconsistent");
  for (std::size_t i = 0; i < m.keyframe_days.size(); ++i) {
    const util::Day day = m.keyframe_days[i];
    if (day < m.base_day || day > m.last_day ||
        (i > 0 && day <= m.keyframe_days[i - 1]))
      return pl::data_loss_error("history manifest keyframe days unsorted");
  }
  if (m.delta_count !=
      static_cast<std::uint64_t>(m.last_day - m.base_day))
    return pl::data_loss_error("history manifest delta count mismatch");
  return m;
}

std::string encode_manifest(util::Day base_day, util::Day last_day,
                            int keyframe_interval,
                            const std::map<util::Day, std::string>& keyframes,
                            std::size_t delta_count) {
  robust::CheckpointWriter w;
  w.u32(kHistoryFormatVersion);
  w.i32(base_day);
  w.i32(last_day);
  w.i32(keyframe_interval);
  w.varint(keyframes.size());
  for (const auto& [day, frame] : keyframes) w.i32(day);
  w.varint(delta_count);
  return std::move(w).finish();
}

}  // namespace

HistoryStore::HistoryStore(HistoryConfig config)
    : config_(config),
      metrics_(std::make_unique<obs::Registry>()),
      trace_(std::make_unique<obs::Trace>()),
      root_(trace_->root("history")) {}

HistoryStore& HistoryStore::operator=(HistoryStore&& other) {
  if (this == &other) return *this;
  // Finish our root span while OUR trace is still alive; only then may the
  // trace be replaced (see the header note on why = default deadlocks).
  root_ = obs::Span();
  config_ = other.config_;
  base_day_ = other.base_day_;
  last_day_ = other.last_day_;
  keyframes_ = std::move(other.keyframes_);
  deltas_ = std::move(other.deltas_);
  cached_ = std::move(other.cached_);
  cached_day_ = other.cached_day_;
  cached_valid_ = other.cached_valid_;
  other.cached_valid_ = false;
  keyframe_bytes_ = other.keyframe_bytes_;
  delta_bytes_ = other.delta_bytes_;
  reconstructs_ = other.reconstructs_;
  delta_folds_ = other.delta_folds_;
  metrics_ = std::move(other.metrics_);
  trace_ = std::move(other.trace_);
  root_ = std::move(other.root_);
  return *this;
}

// -- world slicing ----------------------------------------------------------

serve::DayDelta HistoryStore::slice_day(const restore::RestoredArchive& archive,
                                        const bgp::ActivityTable& activity,
                                        util::Day day) {
  return serve::slice_day(archive, activity, day);
}

restore::RestoredArchive HistoryStore::truncate_archive(
    const restore::RestoredArchive& archive, util::Day last_day) {
  return serve::truncate_archive(archive, last_day);
}

bgp::ActivityTable HistoryStore::truncate_activity(
    const bgp::ActivityTable& activity, util::Day last_day) {
  return serve::truncate_activity(activity, last_day);
}

serve::Snapshot HistoryStore::rebuild_at(
    const restore::RestoredArchive& archive, const bgp::ActivityTable& activity,
    util::Day day, const serve::SnapshotConfig& config) {
  return serve::Snapshot::build(serve::truncate_archive(archive, day),
                                serve::truncate_activity(activity, day), day,
                                config);
}

// -- construction -----------------------------------------------------------

pl::StatusOr<HistoryStore> HistoryStore::build(
    const restore::RestoredArchive& archive, const bgp::ActivityTable& activity,
    util::Day first_day, util::Day last_day, HistoryConfig config,
    serve::SnapshotConfig snapshot_config) {
  if (first_day > last_day)
    return pl::invalid_argument_error("history build range is empty");
  // The cursor folds every day forward, so the working set is not optional.
  snapshot_config.keep_working_set = true;

  HistoryStore store(config);
  obs::Span span = store.root_.child("history.build");
  span.note("first_day", first_day);
  span.note("last_day", last_day);

  pl::Status seeded =
      store.reset(rebuild_at(archive, activity, first_day, snapshot_config));
  if (!seeded.ok()) return seeded;
  for (util::Day day = first_day + 1; day <= last_day; ++day) {
    // Advance the store's own cache slot in place — it is both the
    // construction cursor and the first reconstruction to be served.
    const serve::DayDelta delta = slice_day(archive, activity, day);
    pl::Status advanced = store.cached_.advance_day(delta);
    if (!advanced.ok()) return advanced;
    store.cached_day_ = day;
    pl::Status appended = store.append_day(delta, store.cached_);
    if (!appended.ok()) return appended;
  }
  span.note("keyframes", static_cast<std::int64_t>(store.keyframes_.size()));
  span.note("deltas", static_cast<std::int64_t>(store.deltas_.size()));
  return store;
}

// -- serve::HistoryBackend --------------------------------------------------

pl::Status HistoryStore::reset(const serve::Snapshot& base) {
  if (config_.keyframe_interval < 1)
    return pl::invalid_argument_error("keyframe interval must be >= 1");
  if (!base.can_advance())
    return pl::failed_precondition_error(
        "history base snapshot lost its working set; reconstruction folds "
        "deltas with advance_day and needs it");
  keyframes_.clear();
  deltas_.clear();
  keyframe_bytes_ = 0;
  delta_bytes_ = 0;
  base_day_ = base.archive_end();
  last_day_ = base_day_;
  std::string frame = serve::encode_snapshot(base);
  keyframe_bytes_ += static_cast<std::int64_t>(frame.size());
  keyframes_.emplace(base_day_, std::move(frame));
  cached_ = base;
  cached_day_ = base_day_;
  cached_valid_ = true;
  metrics_->counter("pl_history_resets").add(1);
  record_metrics(*this, *metrics_);
  return {};
}

pl::Status HistoryStore::append_day(const serve::DayDelta& delta,
                                    const serve::Snapshot& after) {
  if (empty())
    return pl::failed_precondition_error(
        "history store is empty; reset() or build() first");
  if (delta.day != last_day_ + 1)
    return pl::invalid_argument_error(
        "history append expects day " + std::to_string(last_day_ + 1) +
        ", got " + std::to_string(delta.day));
  if (after.archive_end() != delta.day)
    return pl::invalid_argument_error(
        "history append: snapshot is for day " +
        std::to_string(after.archive_end()) + ", delta is for day " +
        std::to_string(delta.day));

  std::string frame = encode_compact_delta(delta);
  delta_bytes_ += static_cast<std::int64_t>(frame.size());
  deltas_.push_back(std::move(frame));
  last_day_ = delta.day;
  metrics_->counter("pl_history_deltas").add(1);

  // A keyframe lands on every interval-th day past the base — but only if
  // the snapshot can still advance; a frozen snapshot that cannot fold the
  // NEXT delta would poison every reconstruction past it.
  if ((delta.day - base_day_) % config_.keyframe_interval == 0 &&
      after.can_advance()) {
    std::string keyframe = serve::encode_snapshot(after);
    keyframe_bytes_ += static_cast<std::int64_t>(keyframe.size());
    keyframes_.emplace(delta.day, std::move(keyframe));
    metrics_->counter("pl_history_keyframes").add(1);
  }
  record_metrics(*this, *metrics_);
  return {};
}

pl::StatusOr<const serve::Snapshot*> HistoryStore::at(util::Day day) {
  if (empty())
    return pl::failed_precondition_error(
        "history store is empty; reset() or build() first");
  if (day < base_day_ || day > last_day_)
    return pl::not_found_error(
        "day " + std::to_string(day) + " outside recorded history [" +
        std::to_string(base_day_) + ", " + std::to_string(last_day_) + "]");
  obs::Span span = root_.child("history.reconstruct");
  span.note("day", day);
  const obs::ScopedLatency timer(
      metrics_->latency("pl_history_reconstruct_ns"));
  metrics_->counter("pl_history_reconstructs").add(1);
  ++reconstructs_;
  pl::Status status = materialize(day);
  if (!status.ok()) return status;
  return static_cast<const serve::Snapshot*>(&cached_);
}

pl::Status HistoryStore::materialize(util::Day day) {
  // Greatest keyframe at or below the target. The base keyframe always
  // exists, so the decrement is safe.
  auto it = keyframes_.upper_bound(day);
  --it;
  const util::Day keyframe_day = it->first;

  // Reuse the cache slot when it already sits in [keyframe, day]: rolling
  // forward from it folds fewer deltas than restarting at the keyframe,
  // and decoding a keyframe into the slot is itself the expensive step.
  const bool roll_forward =
      cached_valid_ && cached_day_ >= keyframe_day && cached_day_ <= day;
  if (!roll_forward) {
    pl::StatusOr<serve::Snapshot> decoded = serve::decode_snapshot(it->second);
    if (!decoded.ok()) {
      cached_valid_ = false;
      return decoded.status();
    }
    cached_ = std::move(*decoded);
    cached_day_ = keyframe_day;
    cached_valid_ = true;
    metrics_->counter("pl_history_keyframe_decodes").add(1);
  }
  while (cached_day_ < day) {
    pl::StatusOr<serve::DayDelta> delta =
        decode_compact_delta(deltas_[delta_index(cached_day_ + 1)]);
    if (!delta.ok()) {
      cached_valid_ = false;
      return delta.status();
    }
    pl::Status folded = cached_.advance_day(*delta);
    if (!folded.ok()) {
      cached_valid_ = false;
      return folded;
    }
    ++cached_day_;
    ++delta_folds_;
    metrics_->counter("pl_history_delta_folds").add(1);
  }
  return {};
}

// -- persistence ------------------------------------------------------------

pl::Status HistoryStore::save(const std::string& path) const {
  if (empty())
    return pl::failed_precondition_error("cannot save an empty history store");
  std::string blob = encode_manifest(base_day_, last_day_,
                                     config_.keyframe_interval, keyframes_,
                                     deltas_.size());
  for (const auto& [day, frame] : keyframes_) blob += frame;
  for (const std::string& frame : deltas_) blob += frame;
  return write_file_atomic(path, blob);
}

pl::StatusOr<HistoryStore> HistoryStore::open(const std::string& path) {
  pl::StatusOr<std::string> bytes = read_file(path);
  if (!bytes.ok()) return bytes.status();
  pl::StatusOr<std::vector<std::string_view>> frames = split_frames(*bytes);
  if (!frames.ok()) return frames.status();
  if (frames->empty())
    return pl::data_loss_error("history file has no manifest frame");
  pl::StatusOr<Manifest> manifest = decode_manifest(frames->front());
  if (!manifest.ok()) return manifest.status();
  const std::size_t expected =
      1 + manifest->keyframe_days.size() + manifest->delta_count;
  if (frames->size() != expected)
    return pl::data_loss_error(
        "history file frame count mismatch: manifest promises " +
        std::to_string(expected - 1) + " frames, file holds " +
        std::to_string(frames->size() - 1));
  // CRC-validate every frame up front: a damaged day must fail the whole
  // open, not surface later as a mid-query kDataLoss.
  for (std::size_t i = 1; i < frames->size(); ++i) {
    const robust::CheckpointReader probe((*frames)[i]);
    if (!probe.ok())
      return pl::data_loss_error("history file frame " + std::to_string(i) +
                                 " rejected: " + std::string(probe.error()));
  }

  HistoryStore store(HistoryConfig{manifest->keyframe_interval});
  store.base_day_ = manifest->base_day;
  store.last_day_ = manifest->last_day;
  std::size_t next = 1;
  for (const util::Day day : manifest->keyframe_days) {
    std::string frame((*frames)[next++]);
    store.keyframe_bytes_ += static_cast<std::int64_t>(frame.size());
    store.keyframes_.emplace(day, std::move(frame));
  }
  store.deltas_.reserve(manifest->delta_count);
  for (std::uint64_t i = 0; i < manifest->delta_count; ++i) {
    std::string frame((*frames)[next++]);
    store.delta_bytes_ += static_cast<std::int64_t>(frame.size());
    store.deltas_.push_back(std::move(frame));
  }
  store.metrics_->counter("pl_history_opens").add(1);
  record_metrics(store, *store.metrics_);
  return store;
}

// -- introspection ----------------------------------------------------------

HistoryStats HistoryStore::stats() const noexcept {
  HistoryStats s;
  s.base_day = base_day_;
  s.last_day = last_day_;
  s.keyframes = static_cast<std::int64_t>(keyframes_.size());
  s.deltas = static_cast<std::int64_t>(deltas_.size());
  s.keyframe_bytes = keyframe_bytes_;
  s.delta_bytes = delta_bytes_;
  s.reconstructs = reconstructs_;
  s.delta_folds = delta_folds_;
  return s;
}

obs::Report HistoryStore::report() const {
  return obs::Report{trace_->tree(), metrics_->snapshot()};
}

void record_metrics(const HistoryStore& store, obs::Registry& metrics) {
  const HistoryStats stats = store.stats();
  metrics.gauge("pl_history_base_day").set(stats.base_day);
  metrics.gauge("pl_history_last_day").set(stats.last_day);
  metrics.gauge("pl_history_keyframes").set(stats.keyframes);
  metrics.gauge("pl_history_deltas").set(stats.deltas);
  metrics.gauge("pl_history_keyframe_bytes").set(stats.keyframe_bytes);
  metrics.gauge("pl_history_delta_bytes").set(stats.delta_bytes);
}

pl::StatusOr<HistoryFileInfo> inspect(const std::string& path) {
  pl::StatusOr<std::string> bytes = read_file(path);
  if (!bytes.ok()) return bytes.status();
  pl::StatusOr<std::vector<std::string_view>> frames = split_frames(*bytes);
  if (!frames.ok()) return frames.status();
  if (frames->empty())
    return pl::data_loss_error("history file has no manifest frame");
  pl::StatusOr<Manifest> manifest = decode_manifest(frames->front());
  if (!manifest.ok()) return manifest.status();
  const std::size_t expected =
      1 + manifest->keyframe_days.size() + manifest->delta_count;
  if (frames->size() != expected)
    return pl::data_loss_error("history file frame count mismatch");

  // CRC-probe each frame (CheckpointReader construction; no payload decode)
  // so a flipped bit anywhere in the file is reported, not summarized.
  for (std::size_t i = 1; i < frames->size(); ++i) {
    const robust::CheckpointReader probe((*frames)[i]);
    if (!probe.ok())
      return pl::data_loss_error("history file frame " + std::to_string(i) +
                                 " rejected: " + std::string(probe.error()));
  }

  HistoryFileInfo info;
  info.version = kHistoryFormatVersion;
  info.base_day = manifest->base_day;
  info.last_day = manifest->last_day;
  info.keyframe_interval = manifest->keyframe_interval;
  info.keyframes = static_cast<std::int64_t>(manifest->keyframe_days.size());
  info.deltas = static_cast<std::int64_t>(manifest->delta_count);
  std::size_t next = 1;
  for (std::size_t i = 0; i < manifest->keyframe_days.size(); ++i)
    info.keyframe_bytes += static_cast<std::int64_t>((*frames)[next++].size());
  for (std::uint64_t i = 0; i < manifest->delta_count; ++i)
    info.delta_bytes += static_cast<std::int64_t>((*frames)[next++].size());
  return info;
}

}  // namespace pl::history
