// Delta-compressed daily snapshot history with in-place reconstruction.
//
// The paper's object of study is 17 years of PARALLEL history, but a
// serving Snapshot holds exactly one day and advance_day() discards the
// past. HistoryStore keeps every day queryable without keeping every day
// materialized:
//
//   * a KEYFRAME — a full `serve::encode_snapshot` frame — every N days
//     (`HistoryConfig::keyframe_interval`), starting at the base day;
//   * a compact per-day forward DELTA (history/codec.hpp: varint/zigzag
//     row diffs over an interned country table) for every day after the
//     base.
//
// `at(D)` materializes "the snapshot as of day D" into ONE internal cache
// slot: it decodes the nearest keyframe at or below D — or, cheaper, reuses
// the slot when it already holds a day in [keyframe, D] — and folds the
// intervening deltas forward IN PLACE via `Snapshot::advance_day`, so
// reconstruction never holds two snapshots at once. Because the advance
// path is test-locked bit-identical to a full rebuild (DESIGN.md §11),
// `*at(D)` equals `rebuild_at(world, D)` exactly — the invariant
// history_reconstruct_test fuzzes across seeds × intervals × chaos days.
//
// The store implements `serve::HistoryBackend`, so a QueryService routes
// `QueryOptions::as_of` through it and a DurableService appends every
// folded day (WAL replay included). The whole store persists into one
// file (`save`/`open`): a manifest frame plus every keyframe and delta
// frame, written atomically, rejected wholesale as kDataLoss on any
// corruption. DESIGN.md §16 documents the formats and invariants.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bgp/activity.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "restore/types.hpp"
#include "serve/durable.hpp"
#include "serve/history_backend.hpp"
#include "serve/snapshot.hpp"
#include "util/status.hpp"

namespace pl::history {

/// On-disk history file schema version (manifest frame payload).
inline constexpr std::uint32_t kHistoryFormatVersion = 1;

struct HistoryConfig {
  /// Days between keyframes; 1 = every day is a keyframe (fastest random
  /// access, largest store), larger = smaller store, longer delta chains.
  /// Must be >= 1. EXPERIMENTS.md discusses the trade-off.
  int keyframe_interval = 16;

  friend bool operator==(const HistoryConfig&, const HistoryConfig&) = default;
};

/// Size and activity accounting, also published as `pl_history_*` gauges.
struct HistoryStats {
  util::Day base_day = 0;
  util::Day last_day = 0;
  std::int64_t keyframes = 0;
  std::int64_t deltas = 0;
  std::int64_t keyframe_bytes = 0;
  std::int64_t delta_bytes = 0;
  std::int64_t reconstructs = 0;  ///< at() calls served
  std::int64_t delta_folds = 0;   ///< deltas folded across all at() calls

  double mean_keyframe_bytes() const noexcept {
    return keyframes > 0 ? static_cast<double>(keyframe_bytes) /
                               static_cast<double>(keyframes)
                         : 0.0;
  }
  double mean_delta_bytes() const noexcept {
    return deltas > 0 ? static_cast<double>(delta_bytes) /
                            static_cast<double>(deltas)
                      : 0.0;
  }

  friend bool operator==(const HistoryStats&, const HistoryStats&) = default;
};

class HistoryStore final : public serve::HistoryBackend {
 public:
  explicit HistoryStore(HistoryConfig config = {});

  HistoryStore(HistoryStore&&) = default;
  /// Not defaulted: memberwise assignment would destroy the old trace_
  /// (declared first) while the old root_ span still points into it, then
  /// deadlock finishing that span against the dead trace's mutex. The
  /// custom order detaches root_ before the old trace goes away.
  HistoryStore& operator=(HistoryStore&& other);

  // -- world slicing (promoted from the serve free functions) --------------
  // These are the one blessed way to cut a day — or a day-D world — out of
  // full pipeline output; tests and tools go through them instead of
  // hand-rolling truncation.

  /// One day of input: every registry's record state in force on `day`
  /// plus the ASNs active on `day` (deterministic order; see serve).
  static serve::DayDelta slice_day(const restore::RestoredArchive& archive,
                                   const bgp::ActivityTable& activity,
                                   util::Day day);

  /// The archive restricted to days <= `last_day`.
  static restore::RestoredArchive truncate_archive(
      const restore::RestoredArchive& archive, util::Day last_day);

  /// The activity table restricted to days <= `last_day`.
  static bgp::ActivityTable truncate_activity(
      const bgp::ActivityTable& activity, util::Day last_day);

  /// Build the snapshot a fresh pipeline run over the world truncated at
  /// `day` would produce — the reconstruction oracle: `*at(day)` must
  /// compare equal to this, bit for bit.
  static serve::Snapshot rebuild_at(const restore::RestoredArchive& archive,
                                    const bgp::ActivityTable& activity,
                                    util::Day day,
                                    const serve::SnapshotConfig& config = {});

  // -- construction --------------------------------------------------------

  /// Build a store covering [first_day, last_day] from full pipeline
  /// output: rebuild the base at `first_day`, then slice + fold + append
  /// each following day with one in-place cursor (no second snapshot).
  static pl::StatusOr<HistoryStore> build(
      const restore::RestoredArchive& archive,
      const bgp::ActivityTable& activity, util::Day first_day,
      util::Day last_day, HistoryConfig config = {},
      serve::SnapshotConfig snapshot_config = {});

  // -- serve::HistoryBackend -----------------------------------------------

  /// Install `base` as the first keyframe; recorded history restarts at
  /// `base.archive_end()`. The base must keep its working set
  /// (kFailedPrecondition otherwise): reconstruction folds deltas with
  /// advance_day, which needs it.
  pl::Status reset(const serve::Snapshot& base) override;

  /// Record one day: encode the compact delta, and every
  /// `keyframe_interval` days also freeze `after` as a keyframe.
  /// `delta.day` must be `latest_day() + 1` and `after.archive_end()`
  /// must equal `delta.day`.
  pl::Status append_day(const serve::DayDelta& delta,
                        const serve::Snapshot& after) override;

  /// Materialize day D (see file comment). The pointer is valid until the
  /// next at()/append_day()/reset() or a move of this store.
  pl::StatusOr<const serve::Snapshot*> at(util::Day day) override;

  bool empty() const noexcept override { return keyframes_.empty(); }
  util::Day earliest_day() const noexcept override { return base_day_; }
  util::Day latest_day() const noexcept override { return last_day_; }

  // -- persistence ---------------------------------------------------------

  /// Write the whole store to `path` atomically (manifest + keyframe +
  /// delta frames; write-to-temp + rename). kUnavailable on filesystem
  /// errors, kFailedPrecondition when empty.
  pl::Status save(const std::string& path) const;

  /// Load a store saved by `save`. kNotFound when absent, kUnavailable
  /// when unreadable, kDataLoss when any frame or the manifest fails
  /// validation — a damaged file is rejected wholesale, never partially.
  static pl::StatusOr<HistoryStore> open(const std::string& path);

  // -- introspection -------------------------------------------------------

  const HistoryConfig& config() const noexcept { return config_; }
  HistoryStats stats() const noexcept;
  /// Trace tree + metrics snapshot (`history.*` spans, `pl_history_*`
  /// metrics incl. the reconstruct-latency histogram), pl-obs/2 exportable.
  obs::Report report() const;

 private:
  /// Roll the cache slot to exactly `day` (nearest keyframe + deltas).
  pl::Status materialize(util::Day day);

  std::size_t delta_index(util::Day day) const noexcept {
    return static_cast<std::size_t>(day - base_day_ - 1);
  }

  HistoryConfig config_;
  util::Day base_day_ = 0;
  util::Day last_day_ = 0;
  std::map<util::Day, std::string> keyframes_;  ///< encoded snapshot frames
  std::vector<std::string> deltas_;  ///< [i] covers day base_day_ + 1 + i

  // The single reconstruction slot: holds the snapshot for cached_day_,
  // advanced forward in place. Invalidated by decode/fold failures.
  serve::Snapshot cached_;
  util::Day cached_day_ = 0;
  bool cached_valid_ = false;

  std::int64_t keyframe_bytes_ = 0;
  std::int64_t delta_bytes_ = 0;
  std::int64_t reconstructs_ = 0;
  std::int64_t delta_folds_ = 0;

  // Behind unique_ptr so the store stays movable (Registry/Trace own
  // mutexes); the Span just points into the heap-pinned trace.
  std::unique_ptr<obs::Registry> metrics_;
  std::unique_ptr<obs::Trace> trace_;
  obs::Span root_;
};

/// Publish the store's census into a metrics registry (gauges
/// `pl_history_base_day` / `_last_day` / `_keyframes` / `_deltas` /
/// `_keyframe_bytes` / `_delta_bytes`).
void record_metrics(const HistoryStore& store, obs::Registry& metrics);

/// Cheap structural inspection of a history file (pl-statusz --history):
/// manifest fields plus per-kind frame byte totals. Validates frame
/// boundaries, manifest consistency, and every frame's CRC, but decodes no
/// snapshot or delta payload.
struct HistoryFileInfo {
  std::uint32_t version = 0;
  util::Day base_day = 0;
  util::Day last_day = 0;
  int keyframe_interval = 0;
  std::int64_t keyframes = 0;
  std::int64_t deltas = 0;
  std::int64_t keyframe_bytes = 0;
  std::int64_t delta_bytes = 0;

  friend bool operator==(const HistoryFileInfo&,
                         const HistoryFileInfo&) = default;
};

pl::StatusOr<HistoryFileInfo> inspect(const std::string& path);

}  // namespace pl::history
