#include "history/serving.hpp"

#include <utility>

namespace pl::history {

HistoryWorld run_simulated_history(pipeline::Config config,
                                   HistoryWorldConfig world_config) {
  HistoryWorld world;
  world_config.snapshot.op_timeout_days = config.op_timeout_days;
  config.post_stage = [&world, &world_config](pipeline::Result& result,
                                              obs::Span& run,
                                              obs::Registry& metrics) {
    obs::Span stage = run.child("history.build");
    const util::Day end = result.truth.archive_end;
    util::Day first = end - world_config.days + 1;
    if (first < 1) first = 1;
    stage.note("first_day", first);
    stage.note("last_day", end);

    pl::StatusOr<HistoryStore> built =
        HistoryStore::build(result.restored, result.op_world.activity, first,
                            end, world_config.history, world_config.snapshot);
    if (!built.ok()) {
      world.build_status = built.status();
      stage.note("ok", 0);
      return;
    }
    world.history = std::move(*built);
    stage.note("ok", 1);

    pl::StatusOr<const serve::Snapshot*> latest = world.history.at(end);
    if (latest.ok()) {
      world.snapshot = **latest;
    } else {
      world.build_status = latest.status();
    }
    record_metrics(world.history, metrics);
    const HistoryStats stats = world.history.stats();
    stage.note("keyframes", stats.keyframes);
    stage.note("deltas", stats.deltas);
    stage.note("delta_bytes", stats.delta_bytes);
  };
  world.result = pipeline::run_simulated(config);
  return world;
}

}  // namespace pl::history
