// Compact per-day delta frames for the snapshot history store.
//
// A `serve::DayDelta` already has a durable encoding — the WAL record
// (durable.cpp) — but the WAL optimizes for append simplicity, not size:
// fixed-width ASNs, spelled-out country strings, one flag byte per field.
// History keeps EVERY day resident, so its delta codec squeezes harder:
//
//   varint(version) zigzag(day)
//   country table: varint(n), n length-prefixed tokens (first-seen order)
//   facts:  varint(count), per fact
//           head u8 = status(2b) | registry(3b) | has-reg-date(1b)
//           zigzag varint ASN delta vs the previous fact
//           [zigzag varint registration-date delta vs the frame's day]
//           varint country id (0 = unknown, else table index + 1)
//           varint opaque org id
//   active: varint(count), zigzag varint ASN deltas
//
// wrapped in the standard robust/checkpoint.hpp CRC frame. slice_day emits
// facts registry-major with ascending ASNs, so the ASN deltas are small and
// positive; the codec still round-trips ANY DayDelta exactly (order
// preserved, zigzag handles regressions), which the corruption suite and
// the reconstruct bit-identity tests rely on. Truncation, bit flips, and
// version skew all decode to a precise kDataLoss — never a crash, never a
// partial delta.
#pragma once

#include <string>
#include <string_view>

#include "serve/snapshot.hpp"
#include "util/status.hpp"

namespace pl::history {

/// Payload schema version inside each compact delta frame. Bumped whenever
/// the layout changes; a mismatch is rejected as kDataLoss ("history delta
/// format version skew"), never interpreted.
inline constexpr std::uint32_t kDeltaFormatVersion = 1;

/// Encode one day as a compact CRC frame (layout above).
std::string encode_compact_delta(const serve::DayDelta& delta);

/// Exact inverse of `encode_compact_delta`: the decoded delta compares
/// equal to the encoded one, field for field and in order. kDataLoss on any
/// corruption; a rejected frame is never partially applied.
pl::StatusOr<serve::DayDelta> decode_compact_delta(std::string_view frame);

}  // namespace pl::history
