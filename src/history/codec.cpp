#include "history/codec.hpp"

#include <cstdint>
#include <utility>
#include <vector>

#include "robust/checkpoint.hpp"
#include "util/intern.hpp"

namespace pl::history {
namespace {

std::uint64_t zigzag(std::int64_t value) noexcept {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

std::int64_t unzigzag(std::uint64_t value) noexcept {
  return static_cast<std::int64_t>(value >> 1) ^
         -static_cast<std::int64_t>(value & 1);
}

// Per-fact head byte: status (2 bits) | registry index (3 bits) |
// has-registration-date (1 bit). The top two bits must stay zero — a
// nonzero one is corruption, not a future extension.
constexpr std::uint8_t kHeadStatusMask = 0x03;
constexpr std::uint8_t kHeadRegistryShift = 2;
constexpr std::uint8_t kHeadRegistryMask = 0x07;
constexpr std::uint8_t kHeadHasDateBit = 0x20;
constexpr std::uint8_t kHeadReservedMask = 0xC0;

static_assert(static_cast<std::uint8_t>(dele::Status::kReserved) <=
                  kHeadStatusMask,
              "delegation status no longer fits the 2-bit head field");
static_assert(asn::kRirCount <= kHeadRegistryMask + 1,
              "registry index no longer fits the 3-bit head field");

/// Day values must survive the int64 arithmetic and land back in Day range.
bool day_in_range(std::int64_t value) noexcept {
  return value >= INT32_MIN && value <= INT32_MAX;
}

bool asn_in_range(std::int64_t value) noexcept {
  return value >= 0 && value <= 0xFFFFFFFFll;
}

}  // namespace

std::string encode_compact_delta(const serve::DayDelta& delta) {
  // Intern the country codes into a per-frame table (first-seen order) so
  // each fact references one by a single varint id; 0 = unknown country.
  util::StringPool countries;
  for (const serve::DelegationFact& fact : delta.delegation)
    if (!fact.state.country.unknown())
      countries.intern(fact.state.country.to_string());

  robust::CheckpointWriter w;
  w.varint(kDeltaFormatVersion);
  w.varint(zigzag(delta.day));
  w.varint(countries.size());
  for (const std::string& token : countries.tokens()) w.str(token);

  w.varint(delta.delegation.size());
  std::int64_t prev_asn = 0;
  for (const serve::DelegationFact& fact : delta.delegation) {
    const dele::RecordState& state = fact.state;
    const std::uint8_t head = static_cast<std::uint8_t>(
        static_cast<std::uint8_t>(state.status) |
        (static_cast<std::uint8_t>(asn::index_of(fact.registry))
         << kHeadRegistryShift) |
        (state.registration_date.has_value() ? kHeadHasDateBit : 0));
    w.u8(head);
    w.varint(zigzag(static_cast<std::int64_t>(fact.asn.value) - prev_asn));
    prev_asn = fact.asn.value;
    if (state.registration_date.has_value())
      w.varint(zigzag(static_cast<std::int64_t>(*state.registration_date) -
                      delta.day));
    w.varint(state.country.unknown()
                 ? 0
                 : countries.find(state.country.to_string()) + 1);
    w.varint(state.opaque_id);
  }

  w.varint(delta.active.size());
  std::int64_t prev_active = 0;
  for (const asn::Asn active : delta.active) {
    w.varint(zigzag(static_cast<std::int64_t>(active.value) - prev_active));
    prev_active = active.value;
  }
  return std::move(w).finish();
}

pl::StatusOr<serve::DayDelta> decode_compact_delta(std::string_view frame) {
  robust::CheckpointReader r(frame);
  if (!r.ok())
    return pl::data_loss_error("history delta rejected: " +
                               std::string(r.error()));
  const std::uint64_t version = r.varint();
  if (r.ok() && version != kDeltaFormatVersion)
    return pl::data_loss_error("history delta format version skew");

  serve::DayDelta delta;
  const std::int64_t day = unzigzag(r.varint());
  if (r.ok() && !day_in_range(day))
    return pl::data_loss_error("history delta day out of range");
  delta.day = static_cast<util::Day>(day);

  const std::uint64_t country_count = r.container_size(1);
  std::vector<asn::CountryCode> countries;
  countries.reserve(country_count);
  for (std::uint64_t i = 0; r.ok() && i < country_count; ++i) {
    const std::string_view token = r.str();
    const std::optional<asn::CountryCode> parsed =
        asn::CountryCode::parse(token);
    if (!r.ok() || !parsed.has_value() || parsed->unknown())
      return pl::data_loss_error("bad country token in history delta");
    countries.push_back(*parsed);
  }

  const std::uint64_t facts = r.container_size(4);
  delta.delegation.reserve(facts);
  std::int64_t prev_asn = 0;
  for (std::uint64_t i = 0; r.ok() && i < facts; ++i) {
    serve::DelegationFact fact;
    const std::uint8_t head = r.u8();
    if (r.ok() && (head & kHeadReservedMask) != 0)
      return pl::data_loss_error("history delta head byte has reserved bits");
    fact.state.status = static_cast<dele::Status>(head & kHeadStatusMask);
    const std::uint8_t registry =
        (head >> kHeadRegistryShift) & kHeadRegistryMask;
    if (r.ok() && registry >= asn::kRirCount)
      return pl::data_loss_error("history delta registry out of range");
    fact.registry = asn::kAllRirs[registry % asn::kRirCount];
    const std::int64_t asn_value = prev_asn + unzigzag(r.varint());
    if (r.ok() && !asn_in_range(asn_value))
      return pl::data_loss_error("history delta ASN out of range");
    fact.asn = asn::Asn{static_cast<std::uint32_t>(asn_value)};
    prev_asn = asn_value;
    if ((head & kHeadHasDateBit) != 0) {
      const std::int64_t date =
          static_cast<std::int64_t>(delta.day) + unzigzag(r.varint());
      if (r.ok() && !day_in_range(date))
        return pl::data_loss_error(
            "history delta registration date out of range");
      fact.state.registration_date = static_cast<util::Day>(date);
    }
    const std::uint64_t country_id = r.varint();
    if (r.ok() && country_id > countries.size())
      return pl::data_loss_error("history delta country id out of range");
    if (country_id != 0 && country_id <= countries.size())
      fact.state.country = countries[country_id - 1];
    fact.state.opaque_id = r.varint();
    delta.delegation.push_back(fact);
  }

  const std::uint64_t active = r.container_size(1);
  delta.active.reserve(active);
  std::int64_t prev_active = 0;
  for (std::uint64_t i = 0; r.ok() && i < active; ++i) {
    const std::int64_t value = prev_active + unzigzag(r.varint());
    if (r.ok() && !asn_in_range(value))
      return pl::data_loss_error("history delta active ASN out of range");
    delta.active.push_back(asn::Asn{static_cast<std::uint32_t>(value)});
    prev_active = value;
  }
  if (!r.ok() || !r.at_end())
    return pl::data_loss_error("history delta failed to decode: " +
                               std::string(r.error()));
  return delta;
}

}  // namespace pl::history
