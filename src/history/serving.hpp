// One-call "pipeline + history" wrapper: run the simulated study, then
// build a delta-compressed HistoryStore over the trailing window of the
// run as an extra traced stage (`history.build`), so the store's cost and
// census land in the same report as every other stage. The returned world
// also carries the end-day snapshot — attach a QueryService to it, point
// `attach_history` at the store, and `QueryOptions::as_of` works.
#pragma once

#include "history/store.hpp"
#include "pipeline/pipeline.hpp"
#include "serve/snapshot.hpp"
#include "util/status.hpp"

namespace pl::history {

struct HistoryWorldConfig {
  /// Days of history to record: the store covers
  /// [archive_end - days + 1, archive_end] (clamped to day 1). The default
  /// spans two full keyframe intervals plus change — wide enough for the
  /// 35+-day reconstruction sweeps the tests and bench run.
  int days = 45;
  HistoryConfig history;
  serve::SnapshotConfig snapshot;
};

struct HistoryWorld {
  pipeline::Result result;
  /// The end-day snapshot (a copy of the store's final day).
  serve::Snapshot snapshot;
  HistoryStore history;
  /// Outcome of the history.build stage; the pipeline result is returned
  /// even when the store could not be built.
  pl::Status build_status;
};

/// Run the full simulated pipeline, then build the history store inside
/// the run's root span via the pipeline's post_stage hook. The snapshot
/// config's op timeout always follows `config.op_timeout_days`, so every
/// reconstructed day agrees exactly with a pipeline truncated there.
HistoryWorld run_simulated_history(pipeline::Config config,
                                   HistoryWorldConfig world_config = {});

}  // namespace pl::history
