// Deterministic metrics registry for the Fig. 1 pipeline.
//
// Three metric kinds, all integer-valued so that parallel accumulation is
// exact and scheduling-invariant:
//
//   * Counter   — monotonically increasing int64; `add()` is a relaxed
//     atomic increment on a per-thread stripe, cheap enough for hot loops.
//     Integer addition is exact and commutative, so the merged value (the
//     sum over stripes, read in stripe order) is bit-identical no matter
//     how many workers incremented it — the same invariant the exec layer
//     relies on for shard merges (DESIGN.md §8).
//   * Gauge     — a last-write-wins int64. Set gauges from serial sections
//     only when the determinism contract matters; concurrent `set()` is
//     safe but the surviving value is scheduling-dependent.
//   * Histogram — fixed inclusive upper-bound buckets over int64 samples
//     (counts per bucket, total count, exact integer sum). Bucket counts
//     are Counters, so histograms inherit the determinism contract.
//
// Naming convention: Prometheus-style flat names with optional labels
// embedded in the name, e.g. `pl_restore_days_processed{registry="apnic"}`.
// The registry itself treats names as opaque keys; the exporters split the
// base name from the label block for the text exposition format.
//
// `Registry::snapshot()` freezes every metric into a value-type `Snapshot`
// (sorted by name — the deterministic serial iteration order all exporters
// and equality tests observe).
//
// Compile-time kill switch: building with -DPL_OBS_OFF=1 (CMake option
// PL_OBS_OFF) replaces every type in this header with an empty no-op
// shell, so instrumented hot loops compile to nothing. The
// `obs_off_check` ctest builds a translation unit both ways and
// static_asserts the no-op types are empty.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/latency.hpp"

#ifndef PL_OBS_OFF
#include <algorithm>
#include <atomic>
#include <mutex>
#endif

namespace pl::obs {

/// One frozen histogram: `buckets[i]` counts samples v with
/// `bounds[i-1] < v <= bounds[i]`; the final bucket counts v > bounds.back().
struct HistogramSnapshot {
  std::vector<std::int64_t> bounds;   ///< ascending inclusive upper edges
  std::vector<std::int64_t> buckets;  ///< size bounds.size() + 1 (overflow)
  std::int64_t count = 0;
  std::int64_t sum = 0;

  friend bool operator==(const HistogramSnapshot&,
                         const HistogramSnapshot&) = default;
};

/// Frozen registry contents, sorted by metric name. Copyable and directly
/// comparable — the differential tests assert Snapshot equality across
/// thread counts.
struct Snapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  /// Log2-resolution latency histograms (obs/latency.hpp). Latency *values*
  /// are wall clock — differential tests comparing Snapshots across thread
  /// counts should clear this map first (see `without_latencies()`).
  std::map<std::string, LatencyHistoSnapshot> latencies;

  /// Copy with the wall-clock latency histograms stripped — the view the
  /// cross-config determinism assertions compare.
  Snapshot without_latencies() const {
    Snapshot copy = *this;
    copy.latencies.clear();
    return copy;
  }

  /// Value of one counter (0 when absent).
  std::int64_t counter_value(std::string_view name) const noexcept {
    const auto it = counters.find(std::string(name));
    return it == counters.end() ? 0 : it->second;
  }

  /// Sum of every counter whose name is `base` or `base{...labels...}` —
  /// the cross-label aggregate, e.g. total days processed over registries.
  std::int64_t counter_sum(std::string_view base) const noexcept {
    std::int64_t total = 0;
    for (const auto& [name, value] : counters)
      if (name == base ||
          (name.size() > base.size() &&
           name.compare(0, base.size(), base) == 0 && name[base.size()] == '{'))
        total += value;
    return total;
  }

  friend bool operator==(const Snapshot&, const Snapshot&) = default;
};

#ifndef PL_OBS_OFF

inline constexpr bool kEnabled = true;

/// Stripes per counter. One stripe is assigned per thread (round-robin on
/// first use), so hot-loop increments from different workers land on
/// different cache lines.
inline constexpr std::size_t kStripes = 16;

namespace detail {

inline std::size_t stripe_index() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t mine =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return mine;
}

struct alignas(64) Stripe {
  std::atomic<std::int64_t> value{0};
};

}  // namespace detail

class Counter {
 public:
  void add(std::int64_t delta = 1) noexcept {
    stripes_[detail::stripe_index()].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  /// Sum over stripes in stripe order. Exact regardless of which threads
  /// incremented: int64 addition is commutative and associative.
  std::int64_t value() const noexcept {
    std::int64_t total = 0;
    for (const detail::Stripe& stripe : stripes_)
      total += stripe.value.load(std::memory_order_relaxed);
    return total;
  }

 private:
  detail::Stripe stripes_[kStripes];
};

class Gauge {
 public:
  void set(std::int64_t value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }

  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Histogram {
 public:
  explicit Histogram(std::vector<std::int64_t> bounds)
      : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
    std::sort(bounds_.begin(), bounds_.end());
  }

  /// Record one sample: binary search for the first bound >= v, striped
  /// increments on the bucket, the count, and the exact integer sum.
  void observe(std::int64_t v) noexcept {
    const std::size_t index = static_cast<std::size_t>(
        std::lower_bound(bounds_.begin(), bounds_.end(), v) -
        bounds_.begin());
    buckets_[index].add(1);
    count_.add(1);
    sum_.add(v);
  }

  const std::vector<std::int64_t>& bounds() const noexcept { return bounds_; }

  HistogramSnapshot snapshot() const {
    HistogramSnapshot snap;
    snap.bounds = bounds_;
    snap.buckets.reserve(buckets_.size());
    for (const Counter& bucket : buckets_)
      snap.buckets.push_back(bucket.value());
    snap.count = count_.value();
    snap.sum = sum_.value();
    return snap;
  }

 private:
  std::vector<std::int64_t> bounds_;
  std::vector<Counter> buckets_;  // never resized; Counter is immovable
  Counter count_;
  Counter sum_;
};

/// Named metric store. `counter()` / `gauge()` / `histogram()` get-or-create
/// under a mutex and return a stable reference — hot loops hoist the lookup
/// out of the loop and pay only the striped increment per iteration.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string& name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = counters_[name];
    if (slot == nullptr) slot = std::make_unique<Counter>();
    return *slot;
  }

  Gauge& gauge(const std::string& name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = gauges_[name];
    if (slot == nullptr) slot = std::make_unique<Gauge>();
    return *slot;
  }

  /// First registration fixes the bucket bounds; later calls with the same
  /// name return the existing histogram regardless of `bounds`.
  Histogram& histogram(const std::string& name,
                       std::vector<std::int64_t> bounds) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = histograms_[name];
    if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
    return *slot;
  }

  /// Log2-resolution latency histogram (obs/latency.hpp) — no bounds to
  /// choose; every non-negative int64 sample has a slot.
  LatencyHisto& latency(const std::string& name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = latencies_[name];
    if (slot == nullptr) slot = std::make_unique<LatencyHisto>();
    return *slot;
  }

  /// Freeze every metric, sorted by name.
  Snapshot snapshot() const {
    Snapshot snap;
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, counter] : counters_)
      snap.counters.emplace(name, counter->value());
    for (const auto& [name, gauge] : gauges_)
      snap.gauges.emplace(name, gauge->value());
    for (const auto& [name, histogram] : histograms_)
      snap.histograms.emplace(name, histogram->snapshot());
    for (const auto& [name, latency] : latencies_)
      snap.latencies.emplace(name, latency->snapshot());
    return snap;
  }

 private:
  mutable std::mutex mutex_;
  // std::map: snapshot() iterates in sorted-name order with no extra sort.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<LatencyHisto>, std::less<>> latencies_;
};

#else  // PL_OBS_OFF — empty shells, enforced zero-cost by obs_off_check.

inline constexpr bool kEnabled = false;

class Counter {
 public:
  void add(std::int64_t = 1) noexcept {}
  std::int64_t value() const noexcept { return 0; }
};

class Gauge {
 public:
  void set(std::int64_t) noexcept {}
  std::int64_t value() const noexcept { return 0; }
};

class Histogram {
 public:
  void observe(std::int64_t) noexcept {}
  HistogramSnapshot snapshot() const { return {}; }
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(const std::string&) noexcept {
    static Counter dummy;
    return dummy;
  }
  Gauge& gauge(const std::string&) noexcept {
    static Gauge dummy;
    return dummy;
  }
  Histogram& histogram(const std::string&, std::vector<std::int64_t>) {
    static Histogram dummy;
    return dummy;
  }
  LatencyHisto& latency(const std::string&) noexcept {
    static LatencyHisto dummy;
    return dummy;
  }
  Snapshot snapshot() const { return {}; }
};

#endif  // PL_OBS_OFF

}  // namespace pl::obs
