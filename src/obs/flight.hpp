// Always-on flight recorder: the last N structured events before a crash.
//
// The serving layer records one POD event per query (and per durability
// transition) into fixed-size per-thread ring buffers. Recording is two
// relaxed atomic operations plus four relaxed stores — cheap enough to stay
// on in production — and allocates nothing after construction (the
// util/arena.hpp discipline: trivially-destructible payloads, zero
// steady-state allocation). When DurableService quarantines a day, degrades
// its HealthReport, or a robust::CrashPoints kill fires, the recorder is
// dumped to a CRC-framed `pl-flight/1` file so the events leading up to the
// failure survive the process.
//
// Determinism: RequestIds derive from a per-service sequence counter plus
// the in-batch item index (no wall clock, no thread identity), so the same
// call sequence yields the same ids under any PL_THREADS setting. The
// `attribution()` view sorts events by (request, kind, detail, a) with the
// forensic sequence number cleared — that view is bit-identical across
// thread counts; `events()` keeps arrival order for post-mortems.
//
// Ring semantics: each of the kFlightRings rings holds `capacity` events;
// writers reserve a slot with a relaxed fetch_add and overwrite the oldest
// entry on wrap. Overwrites are counted, never blocked on. Event payloads
// are stored as relaxed atomic words so concurrent record/snapshot is
// data-race-free; a snapshot taken while writers are mid-wrap may see a
// torn event, which the CRC framing does not hide — quiesce writers first
// when exact contents matter (every dump site in src/serve does).
//
// Compile-time kill switch: under -DPL_OBS_OFF the recorder is an empty
// shell (obs_off_check static_asserts it), record() is a no-op, and dumps
// are valid zero-event files — crash-recovery tests keep passing in every
// build configuration.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#ifndef PL_OBS_OFF
#include <algorithm>
#include <atomic>
#endif

namespace pl::obs {

/// Deterministic per-query identity. Derived, never random: see
/// `derive_request_id`.
struct RequestId {
  std::uint64_t value = 0;
  friend auto operator<=>(const RequestId&, const RequestId&) = default;
};

namespace detail {

/// splitmix64 finalizer — the standard 64-bit avalanche mix.
constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z ^= z >> 30;
  z *= 0xBF58476D1CE4E5B9ull;
  z ^= z >> 27;
  z *= 0x94D049BB133111EBull;
  z ^= z >> 31;
  return z;
}

}  // namespace detail

/// RequestId = mix(stream ^ golden*sequence ^ prime*item). `stream`
/// distinguishes services, `sequence` is the service's monotonically
/// increasing API-call counter, `item` the index within a batch (0 for
/// point calls). Pure integer math — identical across thread counts and
/// cache configurations. A single avalanche pass: mix64 is bijective, so
/// ids differ whenever the seeded inputs differ, and the derivation sits
/// on the per-query hot path inside the <=3% always-on budget that
/// bench_serve enforces — one multiply chain, not two.
constexpr RequestId derive_request_id(std::uint64_t stream,
                                      std::uint64_t sequence,
                                      std::uint64_t item) noexcept {
  return RequestId{detail::mix64(stream ^ sequence * 0x9E3779B97F4A7C15ull ^
                                 item * 0xC2B2AE3D27D4EB4Full)};
}

/// Default stream tag for a stand-alone QueryService; DurableService uses
/// its own so replayed and live queries stay distinguishable.
inline constexpr std::uint64_t kQueryStream = 0x706C2D71756572ull;
inline constexpr std::uint64_t kDurableStream = 0x706C2D64757261ull;

/// What happened. Values are part of the pl-flight/1 wire format — append
/// only, never renumber.
enum class EventKind : std::uint32_t {
  kLookup = 1,      ///< point or batch ASN lookup; a = snapshot day count
  kAlive = 2,       ///< alive_on point or batch item; a = queried day
  kCensus = 3,      ///< census(day); a = queried day
  kScan = 4,        ///< scan(query); a = matches returned
  kAdvanceDay = 5,  ///< QueryService::advance_day; a = new day
  kOpen = 6,        ///< DurableService::open finished; a = last durable day
  kReplayDay = 7,   ///< one WAL day replayed; a = day
  kAdvance = 8,     ///< DurableService::advance_day; a = day
  kCheckpoint = 9,  ///< checkpoint written; a = snapshot day
  kQuarantine = 10, ///< day quarantined; a = day
  kDegraded = 11,   ///< HealthReport turned degraded; a = last durable day
  kCrash = 12,      ///< CrashPoints kill fired; detail = crc32(site), a = day
  kStage = 13,      ///< pipeline stage finished; detail = stage ordinal,
                    ///< a = wall-clock microseconds (nondeterministic)
};

/// Bit layout of FlightEvent::detail for query events (kLookup..kAdvanceDay):
///   bits 0-1   cache result (kCacheNone / kCacheHit / kCacheMiss)
///   bits 2-9   cache shard index (0 when uncached)
///   bits 10-17 status code (robust::StatusCode numeric value; 0 = ok)
///   bit  18    found / answered flag
/// Durability events put event-specific payloads (e.g. crc32 of the crash
/// site) in the full 32 bits instead.
inline constexpr std::uint32_t kCacheNone = 0;
inline constexpr std::uint32_t kCacheHit = 1;
inline constexpr std::uint32_t kCacheMiss = 2;
/// Mask clearing the cache bits — the cache-on/off invariant view.
inline constexpr std::uint32_t kQueryDetailCacheMask = ~std::uint32_t{0x3FF};

constexpr std::uint32_t query_detail(std::uint32_t cache, std::uint32_t shard,
                                     std::uint32_t status,
                                     bool found) noexcept {
  return (cache & 0x3u) | ((shard & 0xFFu) << 2) | ((status & 0xFFu) << 10) |
         (found ? (1u << 18) : 0u);
}
constexpr std::uint32_t detail_cache(std::uint32_t detail) noexcept {
  return detail & 0x3u;
}
constexpr std::uint32_t detail_shard(std::uint32_t detail) noexcept {
  return (detail >> 2) & 0xFFu;
}
constexpr std::uint32_t detail_status(std::uint32_t detail) noexcept {
  return (detail >> 10) & 0xFFu;
}
constexpr bool detail_found(std::uint32_t detail) noexcept {
  return ((detail >> 18) & 1u) != 0;
}

/// One recorded event: 32 bytes, trivially destructible, no pointers.
struct FlightEvent {
  std::uint64_t request = 0;  ///< RequestId::value (0 for service events)
  std::uint32_t kind = 0;     ///< EventKind numeric value
  std::uint32_t detail = 0;   ///< packed per-kind payload (see above)
  std::int64_t a = 0;         ///< per-kind argument (day, count, ...)
  std::uint64_t seq = 0;      ///< recorder-global arrival number (forensic
                              ///< order only; cleared in attribution())
  friend bool operator==(const FlightEvent&, const FlightEvent&) = default;
};
static_assert(sizeof(FlightEvent) == 32);

/// Deterministic ordering for the attribution view — seq excluded.
constexpr bool attribution_less(const FlightEvent& x,
                                const FlightEvent& y) noexcept {
  if (x.request != y.request) return x.request < y.request;
  if (x.kind != y.kind) return x.kind < y.kind;
  if (x.detail != y.detail) return x.detail < y.detail;
  return x.a < y.a;
}

/// Load/parse outcome of a flight dump. Mirrors the robust layer's status
/// taxonomy without depending on it (pl_robust links pl_obs, not the other
/// way around).
enum class FlightIoStatus : std::uint32_t {
  kOk = 0,
  kNotFound = 1,  ///< no file at the path
  kIoError = 2,   ///< open/read/write failed
  kDataLoss = 3,  ///< framing damaged; events carry the salvage
};

/// A parsed pl-flight/1 dump. On kDataLoss, `events` holds every whole
/// event that survived (prefix salvage) and the counters are best-effort.
struct FlightRead {
  FlightIoStatus status = FlightIoStatus::kOk;
  std::vector<FlightEvent> events;
  std::uint64_t total_recorded = 0;  ///< lifetime records incl. overwritten
  std::uint64_t overwritten = 0;     ///< events lost to ring wrap
  bool ok() const noexcept { return status == FlightIoStatus::kOk; }
};

/// Rings available to writers; threads map round-robin on first record.
inline constexpr std::size_t kFlightRings = 16;
/// Default events retained per ring.
inline constexpr std::size_t kFlightDefaultCapacity = 1024;

#ifndef PL_OBS_OFF

class FlightRecorder {
 public:
  /// `capacity` rounds up to the next power of two: the record fast path
  /// masks instead of dividing, and an integer division per query would by
  /// itself blow most of the <=3% always-on budget bench_serve enforces.
  explicit FlightRecorder(std::size_t capacity = kFlightDefaultCapacity)
      : capacity_(round_up_pow2(capacity == 0 ? 1 : capacity)) {
    for (Ring& ring : rings_)
      ring.words =
          std::vector<std::atomic<std::uint64_t>>(capacity_ * kWordsPerEvent);
  }
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Record one event. Lock-free, allocation-free, overwrites the oldest
  /// entry of this thread's ring when full. No atomic RMW at all: each
  /// ring has a single writer (threads map round-robin, so writers only
  /// share a ring beyond kFlightRings concurrent threads — there, late
  /// records may overwrite each other and the lifetime counter can
  /// undercount, a documented trade for a single-digit-ns record path).
  /// `seq` derives from the ring position as pos * kFlightRings + ring:
  /// unique across the recorder, exactly arrival-ordered within a ring,
  /// approximate across threads — the only consumers of cross-thread
  /// order are human timeline readers, and a global counter here would
  /// double the per-query tax bench_serve budgets at <=3%.
  void record(FlightEvent event) noexcept {
    const std::size_t ring_idx = ring_index();
    Ring& ring = rings_[ring_idx];
    const std::uint64_t pos = ring.head.load(std::memory_order_relaxed);
    ring.head.store(pos + 1, std::memory_order_relaxed);
    event.seq = pos * kFlightRings + ring_idx;
    const std::size_t base =
        (pos & (capacity_ - 1)) * kWordsPerEvent;
    ring.words[base + 0].store(event.request, std::memory_order_relaxed);
    ring.words[base + 1].store(
        (static_cast<std::uint64_t>(event.kind) << 32) | event.detail,
        std::memory_order_relaxed);
    ring.words[base + 2].store(static_cast<std::uint64_t>(event.a),
                               std::memory_order_relaxed);
    ring.words[base + 3].store(event.seq, std::memory_order_relaxed);
  }

  std::size_t capacity() const noexcept { return capacity_; }

  /// Lifetime events recorded (including overwritten ones).
  std::uint64_t total_recorded() const noexcept {
    std::uint64_t total = 0;
    for (const Ring& ring : rings_)
      total += ring.head.load(std::memory_order_relaxed);
    return total;
  }

  /// Events lost to ring wrap.
  std::uint64_t overwritten() const noexcept {
    std::uint64_t lost = 0;
    for (const Ring& ring : rings_) {
      const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
      if (head > capacity_) lost += head - capacity_;
    }
    return lost;
  }

  /// Retained events in arrival (seq) order — the post-mortem view.
  std::vector<FlightEvent> events() const {
    std::vector<FlightEvent> out;
    for (const Ring& ring : rings_) {
      const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
      const std::uint64_t retained =
          head < capacity_ ? head : static_cast<std::uint64_t>(capacity_);
      for (std::uint64_t i = 0; i < retained; ++i) {
        const std::size_t base = static_cast<std::size_t>(i) * kWordsPerEvent;
        FlightEvent event;
        event.request = ring.words[base + 0].load(std::memory_order_relaxed);
        const std::uint64_t kd =
            ring.words[base + 1].load(std::memory_order_relaxed);
        event.kind = static_cast<std::uint32_t>(kd >> 32);
        event.detail = static_cast<std::uint32_t>(kd);
        event.a = static_cast<std::int64_t>(
            ring.words[base + 2].load(std::memory_order_relaxed));
        event.seq = ring.words[base + 3].load(std::memory_order_relaxed);
        out.push_back(event);
      }
    }
    std::sort(out.begin(), out.end(),
              [](const FlightEvent& x, const FlightEvent& y) {
                return x.seq < y.seq;
              });
    return out;
  }

  /// Retained events in deterministic attribution order, seq cleared —
  /// bit-identical across PL_THREADS settings for the same call sequence
  /// (as long as nothing was overwritten).
  std::vector<FlightEvent> attribution() const {
    std::vector<FlightEvent> out = events();
    for (FlightEvent& event : out) event.seq = 0;
    std::sort(out.begin(), out.end(), [](const FlightEvent& x,
                                         const FlightEvent& y) {
      return attribution_less(x, y);
    });
    return out;
  }

 private:
  static constexpr std::size_t kWordsPerEvent = 4;

  // Constant-initialized TLS slot (no per-access init guard) with lazy
  // registration behind a predictable branch: the record fast path pays a
  // plain TLS load plus one never-taken-after-first-call compare.
  static std::size_t ring_index() noexcept {
    thread_local std::size_t mine = kFlightRings;
    if (mine == kFlightRings) [[unlikely]] {
      static std::atomic<std::size_t> next{0};
      mine = next.fetch_add(1, std::memory_order_relaxed) % kFlightRings;
    }
    return mine;
  }

  static constexpr std::size_t round_up_pow2(std::size_t v) noexcept {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  struct Ring {
    alignas(64) std::atomic<std::uint64_t> head{0};
    // Events live as relaxed atomic words: concurrent record/snapshot is
    // data-race-free. Sized once at construction, never resized.
    std::vector<std::atomic<std::uint64_t>> words;
  };

  std::size_t capacity_;
  Ring rings_[kFlightRings];
};

#else  // PL_OBS_OFF — empty shell, enforced zero-cost by obs_off_check.

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t = 0) noexcept {}
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;
  void record(FlightEvent) noexcept {}
  std::size_t capacity() const noexcept { return 0; }
  std::uint64_t total_recorded() const noexcept { return 0; }
  std::uint64_t overwritten() const noexcept { return 0; }
  std::vector<FlightEvent> events() const { return {}; }
  std::vector<FlightEvent> attribution() const { return {}; }
};

#endif  // PL_OBS_OFF

/// Serialize the recorder's retained events (arrival order) as a CRC-framed
/// pl-flight/1 file. Under PL_OBS_OFF this writes a valid zero-event dump,
/// so recovery tooling finds a parseable file in every build configuration.
FlightIoStatus write_flight(const std::string& path,
                            const FlightRecorder& recorder);

/// Same frame, explicit contents — what the tests and tools use.
FlightIoStatus write_flight_events(const std::string& path,
                                   const std::vector<FlightEvent>& events,
                                   std::uint64_t total_recorded,
                                   std::uint64_t overwritten);

/// Parse a pl-flight/1 file. Truncation or bit damage yields kDataLoss with
/// every whole surviving event salvaged — never a crash.
FlightRead read_flight(const std::string& path);

/// Human-readable rendering of a parsed dump: header counters plus the last
/// `tail` events, one per line.
std::string render_flight_text(const FlightRead& read, std::size_t tail = 32);

/// Symbolic name for an EventKind value ("lookup", "crash", ...; "?" for
/// unknown) — shared by the renderer and pl-statusz.
std::string_view event_kind_name(std::uint32_t kind);

}  // namespace pl::obs
