#include "obs/export.hpp"

#include <charconv>
#include <cstdlib>
#include <sstream>
#include <vector>

namespace pl::obs {

namespace {

// ---- JSON emission.

void append_escaped(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double value) {
  char buffer[32];
  const auto [end, ec] =
      std::to_chars(buffer, buffer + sizeof buffer, value);
  out.append(buffer, ec == std::errc() ? end : buffer);
}

void append_node(std::string& out, const TraceNode& node) {
  out += "{\"name\":";
  append_escaped(out, node.name);
  out += ",\"start_ms\":";
  append_double(out, node.start_ms);
  out += ",\"elapsed_ms\":";
  append_double(out, node.elapsed_ms);
  out += ",\"notes\":{";
  for (std::size_t i = 0; i < node.notes.size(); ++i) {
    if (i > 0) out += ',';
    append_escaped(out, node.notes[i].first);
    out += ':';
    out += std::to_string(node.notes[i].second);
  }
  out += "},\"children\":[";
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    if (i > 0) out += ',';
    append_node(out, node.children[i]);
  }
  out += "]}";
}

template <typename Map>
void append_int_map(std::string& out, const Map& map) {
  out += '{';
  bool first = true;
  for (const auto& [name, value] : map) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, name);
    out += ':';
    out += std::to_string(value);
  }
  out += '}';
}

void append_int_array(std::string& out,
                      const std::vector<std::int64_t>& values) {
  out += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(values[i]);
  }
  out += ']';
}

void append_slot_array(std::string& out,
                       const std::vector<std::uint32_t>& values) {
  out += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(values[i]);
  }
  out += ']';
}

// ---- JSON parsing (the `pl-obs/1` subset emitted above: objects, arrays,
// escaped strings, integers, and to_chars doubles).

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool ok() const noexcept { return ok_; }

  void fail() noexcept { ok_ = false; }

  void skip_ws() noexcept {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  bool consume(char c) noexcept {
    skip_ws();
    if (!ok_ || pos_ >= text_.size() || text_[pos_] != c) {
      ok_ = false;
      return false;
    }
    ++pos_;
    return true;
  }

  /// True (and consumes) iff the next non-ws char is `c`.
  bool peek_consume(char c) noexcept {
    skip_ws();
    if (ok_ && pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string string() {
    std::string out;
    if (!consume('"')) return out;
    while (ok_ && pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          ok_ = false;
          break;
        }
        const char escape = text_[pos_++];
        switch (escape) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              ok_ = false;
              break;
            }
            unsigned code = 0;
            const auto [end, ec] = std::from_chars(
                text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
            if (ec != std::errc() || end != text_.data() + pos_ + 4) {
              ok_ = false;
              break;
            }
            pos_ += 4;
            c = static_cast<char>(code);  // pl names are ASCII
            break;
          }
          default: ok_ = false;
        }
      }
      if (ok_) out += c;
    }
    consume('"');
    return out;
  }

  std::int64_t integer() noexcept {
    skip_ws();
    std::int64_t value = 0;
    const auto [end, ec] = std::from_chars(
        text_.data() + pos_, text_.data() + text_.size(), value);
    if (ec != std::errc()) {
      ok_ = false;
      return 0;
    }
    pos_ = static_cast<std::size_t>(end - text_.data());
    return value;
  }

  double number() noexcept {
    skip_ws();
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    const double value = std::strtod(begin, &end);
    if (end == begin) {
      ok_ = false;
      return 0;
    }
    pos_ = static_cast<std::size_t>(end - text_.data());
    return value;
  }

  bool at_end() noexcept {
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// `{"name": int, ...}` into any map-like of string -> int64.
template <typename Map>
void parse_int_map(Parser& parser, Map& out) {
  if (!parser.consume('{')) return;
  if (parser.peek_consume('}')) return;
  do {
    std::string key = parser.string();
    parser.consume(':');
    const std::int64_t value = parser.integer();
    if (parser.ok()) out.emplace(std::move(key), value);
  } while (parser.peek_consume(','));
  parser.consume('}');
}

void parse_int_array(Parser& parser, std::vector<std::int64_t>& out) {
  if (!parser.consume('[')) return;
  if (parser.peek_consume(']')) return;
  do {
    out.push_back(parser.integer());
  } while (parser.peek_consume(','));
  parser.consume(']');
}

TraceNode parse_node(Parser& parser, int depth) {
  TraceNode node;
  if (depth > 64) {  // defend against pathological nesting
    parser.fail();
    return node;
  }
  if (!parser.consume('{')) return node;
  if (parser.peek_consume('}')) return node;
  do {
    const std::string key = parser.string();
    parser.consume(':');
    if (key == "name") {
      node.name = parser.string();
    } else if (key == "start_ms") {
      node.start_ms = parser.number();
    } else if (key == "elapsed_ms") {
      node.elapsed_ms = parser.number();
    } else if (key == "notes") {
      std::map<std::string, std::int64_t> notes;
      parse_int_map(parser, notes);
      node.notes.assign(notes.begin(), notes.end());
    } else if (key == "children") {
      if (!parser.consume('[')) return node;
      if (!parser.peek_consume(']')) {
        do {
          node.children.push_back(parse_node(parser, depth + 1));
        } while (parser.peek_consume(','));
        parser.consume(']');
      }
    } else {
      parser.fail();
    }
  } while (parser.peek_consume(','));
  parser.consume('}');
  return node;
}

/// Sparse slot array into any vector-like of unsigned slots.
void parse_slot_array(Parser& parser, std::vector<std::uint32_t>& out) {
  if (!parser.consume('[')) return;
  if (parser.peek_consume(']')) return;
  do {
    out.push_back(static_cast<std::uint32_t>(parser.integer()));
  } while (parser.peek_consume(','));
  parser.consume(']');
}

LatencyHistoSnapshot parse_latency(Parser& parser) {
  LatencyHistoSnapshot latency;
  if (!parser.consume('{')) return latency;
  if (parser.peek_consume('}')) return latency;
  do {
    const std::string key = parser.string();
    parser.consume(':');
    if (key == "slots") {
      parse_slot_array(parser, latency.slots);
    } else if (key == "counts") {
      parse_int_array(parser, latency.counts);
    } else if (key == "count") {
      latency.count = parser.integer();
    } else if (key == "sum") {
      latency.sum = parser.integer();
    } else if (key == "p50" || key == "p90" || key == "p99" ||
               key == "p999") {
      parser.integer();  // derived from the slots; re-derived on demand
    } else {
      parser.fail();
    }
  } while (parser.peek_consume(','));
  parser.consume('}');
  return latency;
}

HistogramSnapshot parse_histogram(Parser& parser) {
  HistogramSnapshot histogram;
  if (!parser.consume('{')) return histogram;
  if (parser.peek_consume('}')) return histogram;
  do {
    const std::string key = parser.string();
    parser.consume(':');
    if (key == "bounds") {
      parse_int_array(parser, histogram.bounds);
    } else if (key == "buckets") {
      parse_int_array(parser, histogram.buckets);
    } else if (key == "count") {
      histogram.count = parser.integer();
    } else if (key == "sum") {
      histogram.sum = parser.integer();
    } else {
      parser.fail();
    }
  } while (parser.peek_consume(','));
  parser.consume('}');
  return histogram;
}

Snapshot parse_metrics(Parser& parser) {
  Snapshot metrics;
  if (!parser.consume('{')) return metrics;
  if (parser.peek_consume('}')) return metrics;
  do {
    const std::string key = parser.string();
    parser.consume(':');
    if (key == "counters") {
      parse_int_map(parser, metrics.counters);
    } else if (key == "gauges") {
      parse_int_map(parser, metrics.gauges);
    } else if (key == "histograms") {
      if (!parser.consume('{')) return metrics;
      if (!parser.peek_consume('}')) {
        do {
          std::string name = parser.string();
          parser.consume(':');
          metrics.histograms.emplace(std::move(name),
                                     parse_histogram(parser));
        } while (parser.peek_consume(','));
        parser.consume('}');
      }
    } else if (key == "latencies") {  // pl-obs/2; absent in /1 documents
      if (!parser.consume('{')) return metrics;
      if (!parser.peek_consume('}')) {
        do {
          std::string name = parser.string();
          parser.consume(':');
          metrics.latencies.emplace(std::move(name), parse_latency(parser));
        } while (parser.peek_consume(','));
        parser.consume('}');
      }
    } else {
      parser.fail();
    }
  } while (parser.peek_consume(','));
  parser.consume('}');
  return metrics;
}

// ---- Prometheus helpers.

/// Split `name{label="x"}` into (base, labels-with-braces-or-empty).
std::pair<std::string_view, std::string_view> split_labels(
    std::string_view name) noexcept {
  const std::size_t brace = name.find('{');
  if (brace == std::string_view::npos) return {name, {}};
  return {name.substr(0, brace), name.substr(brace)};
}

void append_type_line(std::string& out, std::string_view base,
                      std::string_view type, std::string& last_base) {
  if (base == last_base) return;
  last_base.assign(base);
  out += "# TYPE ";
  out += base;
  out += ' ';
  out += type;
  out += '\n';
}

}  // namespace

std::string to_json(const Report& report) {
  std::string out;
  out.reserve(4096);
  out += "{\"schema\":\"pl-obs/2\",\"trace\":";
  append_node(out, report.trace);
  out += ",\"metrics\":{\"counters\":";
  append_int_map(out, report.metrics.counters);
  out += ",\"gauges\":";
  append_int_map(out, report.metrics.gauges);
  out += ",\"histograms\":{";
  bool first = true;
  for (const auto& [name, histogram] : report.metrics.histograms) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, name);
    out += ":{\"bounds\":";
    append_int_array(out, histogram.bounds);
    out += ",\"buckets\":";
    append_int_array(out, histogram.buckets);
    out += ",\"count\":";
    out += std::to_string(histogram.count);
    out += ",\"sum\":";
    out += std::to_string(histogram.sum);
    out += '}';
  }
  out += "},\"latencies\":{";
  first = true;
  for (const auto& [name, latency] : report.metrics.latencies) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, name);
    out += ":{\"slots\":";
    append_slot_array(out, latency.slots);
    out += ",\"counts\":";
    append_int_array(out, latency.counts);
    out += ",\"count\":";
    out += std::to_string(latency.count);
    out += ",\"sum\":";
    out += std::to_string(latency.sum);
    out += ",\"p50\":";
    out += std::to_string(latency.percentile(0.50));
    out += ",\"p90\":";
    out += std::to_string(latency.percentile(0.90));
    out += ",\"p99\":";
    out += std::to_string(latency.percentile(0.99));
    out += ",\"p999\":";
    out += std::to_string(latency.percentile(0.999));
    out += '}';
  }
  out += "}}}";
  return out;
}

std::optional<Report> from_json(std::string_view json) {
  Parser parser(json);
  Report report;
  bool schema_ok = false;
  if (!parser.consume('{')) return std::nullopt;
  if (!parser.peek_consume('}')) {
    do {
      const std::string key = parser.string();
      parser.consume(':');
      if (key == "schema") {
        const std::string schema = parser.string();
        schema_ok = schema == "pl-obs/1" || schema == "pl-obs/2";
      } else if (key == "trace") {
        report.trace = parse_node(parser, 0);
      } else if (key == "metrics") {
        report.metrics = parse_metrics(parser);
      } else {
        parser.fail();
      }
    } while (parser.peek_consume(','));
    parser.consume('}');
  }
  if (!parser.ok() || !parser.at_end() || !schema_ok) return std::nullopt;
  return report;
}

std::string to_prometheus(const Snapshot& snapshot) {
  std::string out;
  out.reserve(4096);
  std::string last_base;
  for (const auto& [name, value] : snapshot.counters) {
    const auto [base, labels] = split_labels(name);
    append_type_line(out, base, "counter", last_base);
    out += name;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  }
  last_base.clear();
  for (const auto& [name, value] : snapshot.gauges) {
    const auto [base, labels] = split_labels(name);
    append_type_line(out, base, "gauge", last_base);
    out += name;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  }
  for (const auto& [name, histogram] : snapshot.histograms) {
    const auto [base, labels] = split_labels(name);
    out += "# TYPE ";
    out += base;
    out += " histogram\n";
    std::int64_t cumulative = 0;
    for (std::size_t i = 0; i < histogram.buckets.size(); ++i) {
      cumulative += histogram.buckets[i];
      out += base;
      out += "_bucket{le=\"";
      if (i < histogram.bounds.size())
        out += std::to_string(histogram.bounds[i]);
      else
        out += "+Inf";
      out += "\"} ";
      out += std::to_string(cumulative);
      out += '\n';
    }
    out += base;
    out += "_sum ";
    out += std::to_string(histogram.sum);
    out += '\n';
    out += base;
    out += "_count ";
    out += std::to_string(histogram.count);
    out += '\n';
  }
  for (const auto& [name, latency] : snapshot.latencies) {
    const auto [base, labels] = split_labels(name);
    out += "# TYPE ";
    out += base;
    out += " summary\n";
    const std::pair<const char*, double> quantiles[] = {
        {"0.5", 0.50}, {"0.9", 0.90}, {"0.99", 0.99}, {"0.999", 0.999}};
    for (const auto& [text, p] : quantiles) {
      out += base;
      // Splice quantile="..." into an existing label block, or open one.
      if (labels.empty()) {
        out += "{quantile=\"";
      } else {
        out += labels.substr(0, labels.size() - 1);
        out += ",quantile=\"";
      }
      out += text;
      out += "\"} ";
      out += std::to_string(latency.percentile(p));
      out += '\n';
    }
    out += base;
    out += "_sum";
    out += labels;
    out += ' ';
    out += std::to_string(latency.sum);
    out += '\n';
    out += base;
    out += "_count";
    out += labels;
    out += ' ';
    out += std::to_string(latency.count);
    out += '\n';
  }
  return out;
}

std::map<std::string, std::int64_t> parse_prometheus_samples(
    std::string_view text) {
  std::map<std::string, std::int64_t> samples;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty() || line.front() == '#') continue;
    // The name may contain spaces only inside a label block; the value is
    // the suffix after the last space.
    const std::size_t space = line.rfind(' ');
    if (space == std::string_view::npos) continue;
    std::int64_t value = 0;
    const auto [parse_end, ec] = std::from_chars(
        line.data() + space + 1, line.data() + line.size(), value);
    if (ec != std::errc() || parse_end != line.data() + line.size()) continue;
    samples.emplace(std::string(line.substr(0, space)), value);
  }
  return samples;
}

}  // namespace pl::obs
