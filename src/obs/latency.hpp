// Log2-resolution latency histogram (HDR-style) for pl_serve_* latency
// metrics.
//
// The fixed-bucket obs::Histogram needs its bounds chosen up front, which is
// hopeless for latency: one snapshot answers in 80ns from cache and 2ms from
// a cold scan. LatencyHisto instead covers the whole non-negative int64
// range with power-of-two buckets, each split into 2^kSubBits sub-buckets:
//
//   value v < 2^kSubBits            -> slot v                  (exact)
//   else, e = bit_width(v) - 1      -> octave e, sub-bucket
//        sub = (v - 2^e) >> (e - kSubBits)
//        slot = S + (e - kSubBits) * S + sub,  S = 2^kSubBits
//
// With kSubBits = 3 that is ~64 power-of-two octaves x 8 sub-buckets = 488
// slots total, worst-case relative error 2^-3 = 12.5% on any reported
// percentile — and every slot count is an exact integer, so merges and
// cross-thread accumulation are bit-deterministic (the *values* observed are
// wall clock and are not; keep latency metrics out of cross-config equality
// assertions).
//
// `percentile(p)` walks the cumulative counts and returns the inclusive
// upper bound of the slot containing rank ceil(p * count) — deterministic
// integer math, no interpolation.
//
// Compile-time kill switch: under -DPL_OBS_OFF the recorder and the RAII
// timer compile to empty shells (obs_off_check static_asserts they stay
// empty); LatencyHistoSnapshot stays a real value type either way so
// exporters and tools handle dumps from instrumented builds.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#ifndef PL_OBS_OFF
#include <atomic>
#include <chrono>
#endif

namespace pl::obs {

/// Sub-bucket resolution: each power-of-two octave splits into 2^kSubBits
/// sub-buckets of equal width.
inline constexpr int kLatencySubBits = 3;
inline constexpr std::size_t kLatencySubBuckets = std::size_t{1}
                                                  << kLatencySubBits;
/// Octaves kLatencySubBits..62 cover every non-negative int64 above the
/// exact region; plus the exact region itself.
inline constexpr std::size_t kLatencySlots =
    kLatencySubBuckets + (62 - kLatencySubBits + 1) * kLatencySubBuckets;

/// Slot index for a sample (negatives clamp to 0).
constexpr std::size_t latency_slot(std::int64_t v) noexcept {
  if (v < 0) v = 0;
  const auto u = static_cast<std::uint64_t>(v);
  if (u < kLatencySubBuckets) return static_cast<std::size_t>(u);
  const int e = std::bit_width(u) - 1;  // 2^e <= u < 2^(e+1)
  const std::uint64_t sub = (u - (std::uint64_t{1} << e)) >>
                            (e - kLatencySubBits);
  return kLatencySubBuckets +
         static_cast<std::size_t>(e - kLatencySubBits) * kLatencySubBuckets +
         static_cast<std::size_t>(sub);
}

/// Inclusive upper bound of a slot — what percentile() reports.
constexpr std::int64_t latency_slot_bound(std::size_t slot) noexcept {
  if (slot < kLatencySubBuckets) return static_cast<std::int64_t>(slot);
  const std::size_t idx = slot - kLatencySubBuckets;
  const int e = kLatencySubBits + static_cast<int>(idx / kLatencySubBuckets);
  const std::uint64_t sub = idx % kLatencySubBuckets;
  const std::uint64_t width = std::uint64_t{1} << (e - kLatencySubBits);
  const std::uint64_t upper =
      (std::uint64_t{1} << e) + (sub + 1) * width - 1;
  return static_cast<std::int64_t>(upper);
}

/// One frozen latency histogram. Sparse representation: only non-zero slots
/// are stored, as parallel (slot, count) arrays sorted by slot — 488 dense
/// slots would bloat every JSON report for histograms that typically touch
/// a dozen. Counts are exact; merge is exact; percentile is deterministic.
struct LatencyHistoSnapshot {
  std::vector<std::uint32_t> slots;   ///< ascending non-zero slot indexes
  std::vector<std::int64_t> counts;   ///< parallel to `slots`
  std::int64_t count = 0;             ///< total samples
  std::int64_t sum = 0;               ///< exact integer sum of samples

  /// Merge another snapshot in (exact integer addition per slot).
  void merge(const LatencyHistoSnapshot& other) {
    LatencyHistoSnapshot out;
    std::size_t i = 0, j = 0;
    while (i < slots.size() || j < other.slots.size()) {
      if (j == other.slots.size() ||
          (i < slots.size() && slots[i] < other.slots[j])) {
        out.slots.push_back(slots[i]);
        out.counts.push_back(counts[i]);
        ++i;
      } else if (i == slots.size() || other.slots[j] < slots[i]) {
        out.slots.push_back(other.slots[j]);
        out.counts.push_back(other.counts[j]);
        ++j;
      } else {
        out.slots.push_back(slots[i]);
        out.counts.push_back(counts[i] + other.counts[j]);
        ++i;
        ++j;
      }
    }
    slots = std::move(out.slots);
    counts = std::move(out.counts);
    count += other.count;
    sum += other.sum;
  }

  /// Upper bound of the slot holding rank ceil(p * count); 0 when empty.
  /// p outside [0,1] clamps.
  std::int64_t percentile(double p) const noexcept {
    if (count <= 0) return 0;
    if (p < 0.0) p = 0.0;
    if (p > 1.0) p = 1.0;
    std::int64_t rank = static_cast<std::int64_t>(
        std::ceil(p * static_cast<double>(count)));
    if (rank < 1) rank = 1;
    if (rank > count) rank = count;
    std::int64_t cumulative = 0;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      cumulative += counts[i];
      if (cumulative >= rank) return latency_slot_bound(slots[i]);
    }
    return slots.empty() ? 0 : latency_slot_bound(slots.back());
  }

  friend bool operator==(const LatencyHistoSnapshot&,
                         const LatencyHistoSnapshot&) = default;
};

#ifndef PL_OBS_OFF

/// Lock-free latency recorder: one relaxed atomic per slot plus an exact
/// running sum. `observe()` is two relaxed fetch_adds — cheap enough for
/// per-query paths. Immovable (atomics), registry-owned like the other
/// metric kinds.
class LatencyHisto {
 public:
  LatencyHisto() : slots_(kLatencySlots) {}
  LatencyHisto(const LatencyHisto&) = delete;
  LatencyHisto& operator=(const LatencyHisto&) = delete;

  void observe(std::int64_t v) noexcept {
    slots_[latency_slot(v)].value.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v < 0 ? 0 : v, std::memory_order_relaxed);
  }

  LatencyHistoSnapshot snapshot() const {
    LatencyHistoSnapshot snap;
    for (std::size_t slot = 0; slot < slots_.size(); ++slot) {
      const std::int64_t n =
          slots_[slot].value.load(std::memory_order_relaxed);
      if (n == 0) continue;
      snap.slots.push_back(static_cast<std::uint32_t>(slot));
      snap.counts.push_back(n);
      snap.count += n;
    }
    snap.sum = sum_.load(std::memory_order_relaxed);
    return snap;
  }

 private:
  struct alignas(8) Slot {
    std::atomic<std::int64_t> value{0};
  };
  std::vector<Slot> slots_;  // never resized; Slot is immovable
  std::atomic<std::int64_t> sum_{0};
};

/// RAII scope timer: records elapsed nanoseconds into a LatencyHisto on
/// destruction. Two steady_clock reads per scope (~40-50ns); on hot
/// per-item paths prefer timing the batch and observing once.
class ScopedLatency {
 public:
  // pl-lint: det-ok(the clock read is the latency measurement itself)
  explicit ScopedLatency(LatencyHisto& histo) noexcept
      : histo_(&histo), start_(std::chrono::steady_clock::now()) {}
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;
  // pl-lint: det-ok(closing clock read only lands in the histogram)
  ~ScopedLatency() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    histo_->observe(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count());
  }

 private:
  LatencyHisto* histo_;
  std::chrono::steady_clock::time_point start_;
};

#else  // PL_OBS_OFF — empty shells, enforced zero-cost by obs_off_check.

class LatencyHisto {
 public:
  LatencyHisto() = default;
  LatencyHisto(const LatencyHisto&) = delete;
  LatencyHisto& operator=(const LatencyHisto&) = delete;
  void observe(std::int64_t) noexcept {}
  LatencyHistoSnapshot snapshot() const { return {}; }
};

class ScopedLatency {
 public:
  explicit ScopedLatency(LatencyHisto&) noexcept {}
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;
};

#endif  // PL_OBS_OFF

}  // namespace pl::obs
