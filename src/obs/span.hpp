// Hierarchical trace spans for the Fig. 1 pipeline.
//
// A `Trace` owns a tree of timed nodes; an `obs::Span` is the RAII handle
// that opens a node, attaches integer notes (the per-stage ledger: records
// restored, class tallies, drop reasons), and closes the clock when it is
// finished or destroyed. The pipeline opens one root span per run, a child
// per Fig. 1 stage, and grandchildren for substages (per-registry
// restoration, sanitization-step counters, taxonomy tallies) — the tree the
// JSON exporter dumps and `pipeline::StageTimings` is derived from.
//
// Threading discipline: every Span operation locks the owning Trace, so
// spans may be handed to worker threads (the pipeline pre-creates one
// per-registry span serially, then lets each restore shard finish its own).
// Children must be created by the thread that owns the parent span at that
// moment; sibling spans are fully independent. Span *timings* are real wall
// clock and therefore never part of the determinism contract — only note
// and metric values are (see metrics.hpp).
//
// Under -DPL_OBS_OFF both types collapse to empty no-op shells and
// `Trace::tree()` returns an empty node.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#ifndef PL_OBS_OFF
#include <chrono>
#include <deque>
#include <mutex>
#endif

namespace pl::obs {

/// Value-type snapshot of one trace node; `Trace::tree()` returns the root.
struct TraceNode {
  std::string name;
  double start_ms = 0;    ///< offset from the trace epoch
  double elapsed_ms = 0;  ///< wall clock from open to finish
  /// Integer ledger attached via Span::note(), in insertion order.
  std::vector<std::pair<std::string, std::int64_t>> notes;
  std::vector<TraceNode> children;

  /// First direct child with `name`; nullptr when absent.
  const TraceNode* child(std::string_view child_name) const noexcept {
    for (const TraceNode& node : children)
      if (node.name == child_name) return &node;
    return nullptr;
  }

  /// Value of one note (0 when absent).
  std::int64_t note_value(std::string_view key) const noexcept {
    for (const auto& [note_key, value] : notes)
      if (note_key == key) return value;
    return 0;
  }
};

#ifndef PL_OBS_OFF

class Trace;

/// RAII handle on one open trace node. Move-only; the destructor finishes
/// the node. A default-constructed (or moved-from, or finished) Span is
/// inert: child() returns another inert span, note()/finish() are no-ops.
class Span {
 public:
  Span() = default;
  ~Span() { finish(); }

  Span(Span&& other) noexcept : trace_(other.trace_), index_(other.index_) {
    other.trace_ = nullptr;
  }
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      finish();
      trace_ = other.trace_;
      index_ = other.index_;
      other.trace_ = nullptr;
    }
    return *this;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Open a child node (its clock starts now).
  Span child(std::string name);

  /// Attach one integer to this node's ledger.
  void note(std::string key, std::int64_t value);

  /// Stop the clock. Idempotent; the span is inert afterwards.
  void finish();

 private:
  friend class Trace;
  Span(Trace* trace, std::size_t index) : trace_(trace), index_(index) {}

  Trace* trace_ = nullptr;
  std::size_t index_ = 0;
};

class Trace {
 public:
  // pl-lint: det-ok(the epoch stamp is the point of a trace)
  Trace() : epoch_(Clock::now()) {}
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  /// Open the root span. Later calls open further top-level nodes, but
  /// `tree()` returns only the first — one run, one root.
  Span root(std::string name) {
    return Span(this, add_node(std::move(name), kNoParent));
  }

  /// Snapshot the tree (empty node when no root was opened). Nodes still
  /// running report elapsed-so-far.
  TraceNode tree() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (nodes_.empty()) return {};
    return snapshot_node(0);
  }

 private:
  friend class Span;
  using Clock = std::chrono::steady_clock;
  static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);

  struct Node {
    std::string name;
    Clock::time_point start;
    double elapsed_ms = -1;  ///< < 0 while running
    std::vector<std::pair<std::string, std::int64_t>> notes;
    std::vector<std::size_t> children;
  };

  // pl-lint: det-ok(span start stamps are observability metadata only)
  std::size_t add_node(std::string name, std::size_t parent) {
    const std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t index = nodes_.size();
    Node& node = nodes_.emplace_back();
    node.name = std::move(name);
    node.start = Clock::now();
    if (parent != kNoParent) nodes_[parent].children.push_back(index);
    return index;
  }

  void add_note(std::size_t index, std::string key, std::int64_t value) {
    const std::lock_guard<std::mutex> lock(mutex_);
    nodes_[index].notes.emplace_back(std::move(key), value);
  }

  void close(std::size_t index) {
    const std::lock_guard<std::mutex> lock(mutex_);
    Node& node = nodes_[index];
    if (node.elapsed_ms < 0) node.elapsed_ms = ms_since(node.start);
  }

  // pl-lint: det-ok(elapsed-time readout feeds only the trace report)
  static double ms_since(Clock::time_point start) {
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
  }

  TraceNode snapshot_node(std::size_t index) const {  // mutex_ held
    const Node& node = nodes_[index];
    TraceNode out;
    out.name = node.name;
    out.start_ms =
        std::chrono::duration<double, std::milli>(node.start - epoch_)
            .count();
    out.elapsed_ms = node.elapsed_ms >= 0 ? node.elapsed_ms
                                          : ms_since(node.start);
    out.notes = node.notes;
    out.children.reserve(node.children.size());
    for (const std::size_t child : node.children)
      out.children.push_back(snapshot_node(child));
    return out;
  }

  Clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::deque<Node> nodes_;  // arena: stable across growth
};

inline Span Span::child(std::string name) {
  if (trace_ == nullptr) return {};
  return Span(trace_, trace_->add_node(std::move(name), index_));
}

inline void Span::note(std::string key, std::int64_t value) {
  if (trace_ != nullptr) trace_->add_note(index_, std::move(key), value);
}

inline void Span::finish() {
  if (trace_ == nullptr) return;
  trace_->close(index_);
  trace_ = nullptr;
}

#else  // PL_OBS_OFF

class Span {
 public:
  Span child(std::string) noexcept { return {}; }
  void note(std::string, std::int64_t) noexcept {}
  void finish() noexcept {}
};

class Trace {
 public:
  Trace() = default;
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  Span root(std::string) noexcept { return {}; }
  TraceNode tree() const { return {}; }
};

#endif  // PL_OBS_OFF

}  // namespace pl::obs
