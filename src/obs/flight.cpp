#include "obs/flight.hpp"

#include <cstddef>
#include <fstream>
#include <sstream>

#include "util/crc32.hpp"

// pl-flight/1 wire format (all integers little-endian):
//
//   "PLFL"                       4-byte magic
//   u32  version                 currently 1
//   u64  payload_len             bytes of payload that follow
//   payload                      see below
//   u32  crc32(payload)
//
//   payload = u64 event_count
//           + u64 total_recorded
//           + u64 overwritten
//           + event_count x (u64 request, u64 kind<<32|detail, u64 a,
//                            u64 seq)
//
// The reader is deliberately forgiving: a truncated or bit-flipped file
// yields kDataLoss plus every whole event that can still be decoded (the
// dump was written on the way down; losing the tail is expected, losing
// the whole file is not acceptable). It never throws and never crashes.

namespace pl::obs {

namespace {

constexpr char kMagic[4] = {'P', 'L', 'F', 'L'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 4 + 4 + 8;   // magic + version + len
constexpr std::size_t kPayloadHeaderBytes = 24;   // count + recorded + lost
constexpr std::size_t kEventBytes = 32;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

std::uint32_t get_u32(const std::string& in, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(in[at + i]))
         << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::string& in, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(in[at + i]))
         << (8 * i);
  return v;
}

FlightEvent decode_event(const std::string& in, std::size_t at) {
  FlightEvent event;
  event.request = get_u64(in, at);
  const std::uint64_t kd = get_u64(in, at + 8);
  event.kind = static_cast<std::uint32_t>(kd >> 32);
  event.detail = static_cast<std::uint32_t>(kd);
  event.a = static_cast<std::int64_t>(get_u64(in, at + 16));
  event.seq = get_u64(in, at + 24);
  return event;
}

/// Decode as many whole events as `bytes` allows, starting at `at`.
void salvage_events(const std::string& in, std::size_t at, std::size_t bytes,
                    std::vector<FlightEvent>& out) {
  const std::size_t whole = bytes / kEventBytes;
  out.reserve(out.size() + whole);
  for (std::size_t i = 0; i < whole; ++i)
    out.push_back(decode_event(in, at + i * kEventBytes));
}

}  // namespace

std::string_view event_kind_name(std::uint32_t kind) {
  switch (static_cast<EventKind>(kind)) {
    case EventKind::kLookup: return "lookup";
    case EventKind::kAlive: return "alive";
    case EventKind::kCensus: return "census";
    case EventKind::kScan: return "scan";
    case EventKind::kAdvanceDay: return "advance-day";
    case EventKind::kOpen: return "open";
    case EventKind::kReplayDay: return "replay-day";
    case EventKind::kAdvance: return "advance";
    case EventKind::kCheckpoint: return "checkpoint";
    case EventKind::kQuarantine: return "quarantine";
    case EventKind::kDegraded: return "degraded";
    case EventKind::kCrash: return "crash";
    case EventKind::kStage: return "stage";
  }
  return "?";
}

FlightIoStatus write_flight_events(const std::string& path,
                                   const std::vector<FlightEvent>& events,
                                   std::uint64_t total_recorded,
                                   std::uint64_t overwritten) {
  std::string payload;
  payload.reserve(kPayloadHeaderBytes + events.size() * kEventBytes);
  put_u64(payload, events.size());
  put_u64(payload, total_recorded);
  put_u64(payload, overwritten);
  for (const FlightEvent& event : events) {
    put_u64(payload, event.request);
    put_u64(payload,
            (static_cast<std::uint64_t>(event.kind) << 32) | event.detail);
    put_u64(payload, static_cast<std::uint64_t>(event.a));
    put_u64(payload, event.seq);
  }

  std::string frame;
  frame.reserve(kHeaderBytes + payload.size() + 4);
  frame.append(kMagic, sizeof(kMagic));
  put_u32(frame, kVersion);
  put_u64(frame, payload.size());
  frame += payload;
  put_u32(frame, util::crc32(payload));

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) return FlightIoStatus::kIoError;
  out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  out.flush();
  return out.good() ? FlightIoStatus::kOk : FlightIoStatus::kIoError;
}

FlightIoStatus write_flight(const std::string& path,
                            const FlightRecorder& recorder) {
  return write_flight_events(path, recorder.events(),
                             recorder.total_recorded(),
                             recorder.overwritten());
}

FlightRead read_flight(const std::string& path) {
  FlightRead result;
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    result.status = FlightIoStatus::kNotFound;
    return result;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    result.status = FlightIoStatus::kIoError;
    return result;
  }
  const std::string raw = buffer.str();

  // Header sanity; anything short or foreign is data loss with no salvage.
  result.status = FlightIoStatus::kDataLoss;
  if (raw.size() < kHeaderBytes) return result;
  if (raw.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0)
    return result;
  if (get_u32(raw, 4) != kVersion) return result;

  const std::uint64_t declared_len = get_u64(raw, 8);
  const std::size_t body = raw.size() - kHeaderBytes;
  const std::size_t payload_len = static_cast<std::size_t>(
      declared_len < body ? declared_len : body);
  if (payload_len < kPayloadHeaderBytes) return result;

  const std::uint64_t declared_count = get_u64(raw, kHeaderBytes);
  result.total_recorded = get_u64(raw, kHeaderBytes + 8);
  result.overwritten = get_u64(raw, kHeaderBytes + 16);

  // Intact frame: full length present and the CRC matches.
  const bool full_length =
      declared_len == body - 4 && body >= declared_len + 4;
  const bool crc_ok =
      full_length &&
      util::crc32(std::string_view(raw).substr(kHeaderBytes,
                                               payload_len)) ==
          get_u32(raw, kHeaderBytes + payload_len);

  const std::size_t event_bytes_available = payload_len - kPayloadHeaderBytes;
  std::size_t take = event_bytes_available;
  const std::size_t declared_bytes =
      static_cast<std::size_t>(declared_count) * kEventBytes;
  if (declared_bytes < take) take = declared_bytes;
  salvage_events(raw, kHeaderBytes + kPayloadHeaderBytes, take,
                 result.events);

  if (crc_ok && result.events.size() == declared_count)
    result.status = FlightIoStatus::kOk;
  return result;
}

std::string render_flight_text(const FlightRead& read, std::size_t tail) {
  std::ostringstream out;
  const char* status = "ok";
  switch (read.status) {
    case FlightIoStatus::kOk: status = "ok"; break;
    case FlightIoStatus::kNotFound: status = "not-found"; break;
    case FlightIoStatus::kIoError: status = "io-error"; break;
    case FlightIoStatus::kDataLoss: status = "data-loss"; break;
  }
  out << "pl-flight/1 status=" << status << " events=" << read.events.size()
      << " recorded=" << read.total_recorded
      << " overwritten=" << read.overwritten << '\n';
  const std::size_t begin =
      read.events.size() > tail ? read.events.size() - tail : 0;
  if (begin > 0) out << "  ... " << begin << " earlier events elided\n";
  for (std::size_t i = begin; i < read.events.size(); ++i) {
    const FlightEvent& event = read.events[i];
    out << "  seq=" << event.seq << ' ' << event_kind_name(event.kind)
        << " req=" << std::hex << event.request << " detail=0x"
        << event.detail << std::dec << " a=" << event.a;
    // The bit-packed decode only applies to query kinds — other kinds
    // carry plain scalars in `detail` (stage ordinals, crc32(site), ...).
    const bool query_kind =
        event.kind == static_cast<std::uint32_t>(EventKind::kLookup) ||
        event.kind == static_cast<std::uint32_t>(EventKind::kAlive) ||
        event.kind == static_cast<std::uint32_t>(EventKind::kCensus) ||
        event.kind == static_cast<std::uint32_t>(EventKind::kScan);
    if (query_kind) {
      if (detail_cache(event.detail) == kCacheHit) out << " cache=hit";
      if (detail_cache(event.detail) == kCacheMiss) out << " cache=miss";
      out << " shard=" << detail_shard(event.detail);
      if (detail_found(event.detail)) out << " found";
    }
    out << '\n';
  }
  return out.str();
}

}  // namespace pl::obs
