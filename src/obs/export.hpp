// Exporters for the observability layer: one JSON document carrying the
// trace tree plus the metrics snapshot (schema `pl-obs/2`, re-parseable via
// `from_json` so reports round-trip losslessly), and the Prometheus text
// exposition format for scrape endpoints.
//
// Schema history: `pl-obs/2` adds a "latencies" block per metric — sparse
// log2-histogram slots plus derived p50/p90/p99/p999 (obs/latency.hpp).
// `from_json` still reads `pl-obs/1` documents (they simply carry no
// latencies), so archived reports stay loadable.
//
// Prometheus format notes: metric names may embed a label block
// (`name{key="value"}`); the exporter splits the base name for `# TYPE`
// lines and emits histograms as the standard cumulative `_bucket{le=...}` /
// `_sum` / `_count` triple. Latency histograms export as summaries:
// `base{quantile="0.5"}` .. `{quantile="0.999"}` plus `_sum` / `_count`.
// `parse_prometheus_samples` reads sample lines back into a name -> value
// map — enough for the round-trip tests and for scrape-side diffing.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace pl::obs {

/// One run's structured observability report: the span tree plus every
/// metric value. `pipeline::Result::report` carries one of these.
struct Report {
  TraceNode trace;
  Snapshot metrics;
};

/// Serialize trace + metrics as one JSON document (schema `pl-obs/2`).
std::string to_json(const Report& report);

/// Parse a `pl-obs/1` or `pl-obs/2` document back. nullopt on malformed
/// input or an unknown schema.
std::optional<Report> from_json(std::string_view json);

/// Prometheus text exposition of the metrics snapshot.
std::string to_prometheus(const Snapshot& snapshot);

/// Parse Prometheus text back into sample name -> integer value (comment
/// lines are skipped; all pl metrics are integer-valued by construction).
std::map<std::string, std::int64_t> parse_prometheus_samples(
    std::string_view text);

}  // namespace pl::obs
