// Error propagation without exceptions: pl::Status and pl::StatusOr<T>.
//
// The ingestion layer already reports recoverable faults through
// robust::ErrorSink (a *stream* of diagnostics); Status is the complementary
// single-shot form for API boundaries that either succeed or fail — dataset
// loaders, snapshot construction, incremental day-advance. Both types are
// [[nodiscard]]: a dropped Status is a swallowed failure, which is exactly
// the bool/exception mix this header replaces.
//
// The code set is the subset of the canonical gRPC/Abseil vocabulary the
// library actually produces; keeping the names standard makes the intent of
// call sites legible without a legend.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace pl {

enum class StatusCode : std::uint8_t {
  kOk,
  kInvalidArgument,     ///< caller passed something malformed (bad day, dup)
  kNotFound,            ///< named thing does not exist (file, ASN)
  kFailedPrecondition,  ///< object state forbids the call (query-only snap)
  kDataLoss,            ///< input exists but cannot be decoded (bad record)
  kUnavailable,         ///< I/O failed (open/read/write error)
  kInternal,            ///< invariant violation on our side
};

constexpr std::string_view status_code_name(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid-argument";
    case StatusCode::kNotFound: return "not-found";
    case StatusCode::kFailedPrecondition: return "failed-precondition";
    case StatusCode::kDataLoss: return "data-loss";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kInternal: return "internal";
  }
  return "unknown";
}

/// Success or a (code, message) failure. Cheap to copy on the success path:
/// an OK status carries no allocation.
class [[nodiscard]] Status {
 public:
  /// Default is OK, so `return {};` reads as "success".
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  bool ok() const noexcept { return code_ == StatusCode::kOk; }
  StatusCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  /// "invalid-argument: day 2021-03-02 is not the next day" — log-friendly.
  std::string to_string() const {
    if (ok()) return "ok";
    std::string out(status_code_name(code_));
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status invalid_argument_error(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
inline Status not_found_error(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
inline Status failed_precondition_error(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
inline Status data_loss_error(std::string message) {
  return Status(StatusCode::kDataLoss, std::move(message));
}
inline Status unavailable_error(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}
inline Status internal_error(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

/// A value or the Status explaining why there is none. Constructing from a
/// `T` yields OK; constructing from a non-OK Status yields the error. The
/// value accessors require `ok()` — checked callers branch on status first,
/// the same discipline as StatusOr elsewhere.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value)  // NOLINT(google-explicit-constructor): by design
      : value_(std::move(value)) {}

  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {}

  bool ok() const noexcept { return status_.ok() && value_.has_value(); }
  const Status& status() const noexcept { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace pl
