// Closed day intervals [first, last], the unit of "lifetime" throughout the
// library: an administrative or operational life is an inclusive span of
// days.
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/date.hpp"

namespace pl::util {

/// Inclusive interval of days. Empty iff last < first.
struct DayInterval {
  Day first = 0;
  Day last = -1;

  /// Number of days covered; 0 for empty intervals. The paper measures
  /// lifetime "duration in days" as an inclusive day count.
  std::int64_t length() const noexcept {
    return last < first ? 0 : static_cast<std::int64_t>(last) - first + 1;
  }

  bool empty() const noexcept { return last < first; }

  bool contains(Day d) const noexcept { return first <= d && d <= last; }

  /// True iff `other` lies entirely within this interval.
  bool contains(const DayInterval& other) const noexcept {
    return !other.empty() && first <= other.first && other.last <= last;
  }

  bool overlaps(const DayInterval& other) const noexcept {
    return !empty() && !other.empty() && first <= other.last &&
           other.first <= last;
  }

  /// Intersection; empty interval if disjoint.
  DayInterval intersect(const DayInterval& other) const noexcept {
    return DayInterval{std::max(first, other.first),
                       std::min(last, other.last)};
  }

  friend bool operator==(const DayInterval&, const DayInterval&) = default;
};

/// Days of overlap between two intervals (0 when disjoint).
inline std::int64_t overlap_days(const DayInterval& a,
                                 const DayInterval& b) noexcept {
  return a.intersect(b).length();
}

}  // namespace pl::util
