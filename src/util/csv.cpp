#include "util/csv.hpp"

namespace pl::util {

namespace {

bool needs_quoting(std::string_view field) {
  return field.find_first_of(",\"\n\r") != std::string_view::npos;
}

void append_quoted(std::string& out, std::string_view field) {
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
}

}  // namespace

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  std::string line;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) line.push_back(',');
    if (needs_quoting(fields[i]))
      append_quoted(line, fields[i]);
    else
      line += fields[i];
  }
  line.push_back('\n');
  out_ << line;
}

std::vector<std::vector<std::string>> parse_csv(std::string_view blob) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool row_has_content = false;

  const auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
  };
  const auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
    row_has_content = false;
  };

  for (std::size_t i = 0; i < blob.size(); ++i) {
    const char c = blob[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < blob.size() && blob[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_content = true;
        break;
      case ',':
        end_field();
        row_has_content = true;
        break;
      case '\r':
        break;
      case '\n':
        if (row_has_content || !field.empty() || !row.empty()) end_row();
        break;
      default:
        field.push_back(c);
        row_has_content = true;
        break;
    }
  }
  if (row_has_content || !field.empty() || !row.empty()) end_row();
  return rows;
}

}  // namespace pl::util
