// String interning pool: small dense ids for the tiny fixed vocabularies the
// delegation pipeline keeps re-reading (RIR names, ISO country codes, status
// tokens).
//
// Ids are assigned in first-intern order, so a pool built by replaying a
// deterministic token stream is itself deterministic — which is what lets
// the binary interchange format ship the pool as a table and have reader and
// writer agree on every id without a negotiation step. Downstream stages
// compare the ids (or the enums they map to); the strings themselves are
// only touched again at a text-output boundary via at().
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace pl::util {

class StringPool {
 public:
  static constexpr std::uint32_t kNotFound = 0xffffffffu;

  StringPool() = default;

  /// Return the id for `token`, interning it if new. Ids are dense and
  /// assigned in first-seen order starting at 0.
  std::uint32_t intern(std::string_view token);

  /// Lookup without interning; kNotFound when absent. Allocation-free.
  std::uint32_t find(std::string_view token) const noexcept;

  /// Build a pool from a token list (binary-table read side). Duplicate
  /// tokens would make ids ambiguous, so the build refuses them.
  static std::optional<StringPool> from_tokens(
      const std::vector<std::string>& tokens);

  /// The token for an id; ids come only from intern()/find() on this pool or
  /// from a validated table read, so out-of-range is a programming error and
  /// returns an empty view.
  std::string_view at(std::uint32_t id) const noexcept {
    return id < tokens_.size() ? std::string_view(tokens_[id])
                               : std::string_view();
  }

  std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(tokens_.size());
  }
  bool empty() const noexcept { return tokens_.empty(); }

  /// All tokens in id order (serialization boundary for the binary table).
  const std::vector<std::string>& tokens() const noexcept { return tokens_; }

  bool operator==(const StringPool& other) const noexcept {
    return tokens_ == other.tokens_;
  }

 private:
  // Transparent hashing so hot-path lookups take a string_view without
  // materializing a std::string key.
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view text) const noexcept {
      std::uint64_t h = 0xcbf29ce484222325ull;
      for (const char c : text) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
      }
      return static_cast<std::size_t>(h);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const noexcept {
      return a == b;
    }
  };

  std::vector<std::string> tokens_;
  std::unordered_map<std::string, std::uint32_t, Hash, Eq> index_;
};

}  // namespace pl::util
