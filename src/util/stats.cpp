#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace pl::util {

double quantile(std::span<const double> sample, double q) {
  if (sample.empty()) return 0;
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double position = q * static_cast<double>(sorted.size() - 1);
  const auto lower = static_cast<std::size_t>(position);
  const double fraction = position - static_cast<double>(lower);
  if (lower + 1 >= sorted.size()) return sorted.back();
  return sorted[lower] * (1 - fraction) + sorted[lower + 1] * fraction;
}

double median(std::span<const double> sample) {
  return quantile(sample, 0.5);
}

double mean(std::span<const double> sample) {
  if (sample.empty()) return 0;
  double total = 0;
  for (double v : sample) total += v;
  return total / static_cast<double>(sample.size());
}

Ecdf::Ecdf(std::vector<double> sample) : sorted_(std::move(sample)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::at(double x) const noexcept {
  if (sorted_.empty()) return 0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::value_at_fraction(double fraction) const noexcept {
  if (sorted_.empty()) return 0;
  fraction = std::clamp(fraction, 0.0, 1.0);
  const auto index = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(sorted_.size())));
  if (index == 0) return sorted_.front();
  return sorted_[std::min(index - 1, sorted_.size() - 1)];
}

std::vector<std::pair<double, double>> Ecdf::tabulate(
    std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (sorted_.empty() || points == 0) return out;
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        points == 1
            ? hi
            : lo + (hi - lo) * static_cast<double>(i) /
                       static_cast<double>(points - 1);
    out.emplace_back(x, at(x));
  }
  return out;
}

FiveNumberSummary summarize(std::span<const double> sample) {
  FiveNumberSummary s;
  if (sample.empty()) return s;
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  const std::span<const double> view{sorted};
  s.min = sorted.front();
  s.max = sorted.back();
  s.q1 = quantile(view, 0.25);
  s.median = quantile(view, 0.5);
  s.q3 = quantile(view, 0.75);
  s.count = sorted.size();
  return s;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo),
      width_((hi - lo) / static_cast<double>(bins == 0 ? 1 : bins)),
      counts_(bins == 0 ? 1 : bins, 0) {}

void Histogram::add(double value, std::int64_t weight) noexcept {
  auto bin = static_cast<std::int64_t>((value - lo_) / width_);
  bin = std::clamp<std::int64_t>(bin, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(bin)] += weight;
}

double Histogram::bin_low(std::size_t bin) const noexcept {
  return lo_ + width_ * static_cast<double>(bin);
}

std::int64_t Histogram::total() const noexcept {
  std::int64_t total = 0;
  for (auto c : counts_) total += c;
  return total;
}

std::string sparkline(std::span<const double> series) {
  static constexpr const char* kLevels[] = {"▁", "▂", "▃", "▄",
                                            "▅", "▆", "▇", "█"};
  if (series.empty()) return {};
  double lo = series[0];
  double hi = series[0];
  for (double v : series) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double range = hi - lo;
  std::string out;
  out.reserve(series.size() * 3);
  for (double v : series) {
    const int level =
        range <= 0 ? 0
                   : std::clamp(static_cast<int>((v - lo) / range * 7.999), 0,
                                7);
    out += kLevels[level];
  }
  return out;
}

}  // namespace pl::util
