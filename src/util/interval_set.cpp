#include "util/interval_set.hpp"

#include <algorithm>

#include "check/contracts.hpp"

namespace pl::util {

IntervalSet::IntervalSet(std::vector<DayInterval> intervals) {
  std::erase_if(intervals, [](const DayInterval& i) { return i.empty(); });
  std::sort(intervals.begin(), intervals.end(),
            [](const DayInterval& a, const DayInterval& b) {
              return a.first < b.first;
            });
  for (const DayInterval& i : intervals) add(i);
}

void IntervalSet::add(const DayInterval& interval) {
  if (interval.empty()) return;
  // Find first run that could touch interval (run.last >= interval.first-1).
  auto it = std::lower_bound(
      runs_.begin(), runs_.end(), interval.first,
      [](const DayInterval& run, Day first) { return run.last < first - 1; });
  DayInterval merged = interval;
  auto erase_begin = it;
  while (it != runs_.end() && it->first <= merged.last + 1) {
    merged.first = std::min(merged.first, it->first);
    merged.last = std::max(merged.last, it->last);
    ++it;
  }
  it = runs_.erase(erase_begin, it);
  runs_.insert(it, merged);
  PL_ASSERT_DISJOINT(runs_, "IntervalSet::add postcondition");
}

void IntervalSet::subtract(const DayInterval& interval) {
  if (interval.empty() || runs_.empty()) return;
  std::vector<DayInterval> next;
  next.reserve(runs_.size() + 1);
  for (const DayInterval& run : runs_) {
    if (!run.overlaps(interval)) {
      next.push_back(run);
      continue;
    }
    if (run.first < interval.first)
      next.push_back(DayInterval{run.first, interval.first - 1});
    if (run.last > interval.last)
      next.push_back(DayInterval{interval.last + 1, run.last});
  }
  runs_ = std::move(next);
  PL_ASSERT_DISJOINT(runs_, "IntervalSet::subtract postcondition");
}

IntervalSet IntervalSet::unite(const IntervalSet& other) const {
  IntervalSet out = *this;
  for (const DayInterval& run : other.runs_) out.add(run);
  return out;
}

IntervalSet IntervalSet::intersect(const IntervalSet& other) const {
  IntervalSet out;
  auto a = runs_.begin();
  auto b = other.runs_.begin();
  while (a != runs_.end() && b != other.runs_.end()) {
    const DayInterval common = a->intersect(*b);
    if (!common.empty()) out.runs_.push_back(common);
    if (a->last < b->last)
      ++a;
    else
      ++b;
  }
  PL_ASSERT_DISJOINT(out.runs_, "IntervalSet::intersect postcondition");
  return out;
}

std::int64_t IntervalSet::covered_days(
    const DayInterval& window) const noexcept {
  std::int64_t total = 0;
  for (const DayInterval& run : runs_) {
    if (run.first > window.last) break;
    total += overlap_days(run, window);
  }
  return total;
}

std::int64_t IntervalSet::total_days() const noexcept {
  std::int64_t total = 0;
  for (const DayInterval& run : runs_) total += run.length();
  return total;
}

bool IntervalSet::contains(Day day) const noexcept {
  auto it = std::lower_bound(
      runs_.begin(), runs_.end(), day,
      [](const DayInterval& run, Day d) { return run.last < d; });
  return it != runs_.end() && it->contains(day);
}

std::vector<std::int64_t> IntervalSet::gaps() const {
  std::vector<std::int64_t> out;
  if (runs_.size() < 2) return out;
  out.reserve(runs_.size() - 1);
  for (std::size_t i = 1; i < runs_.size(); ++i)
    out.push_back(static_cast<std::int64_t>(runs_[i].first) -
                  runs_[i - 1].last - 1);
  return out;
}

std::vector<DayInterval> IntervalSet::coalesce(std::int64_t timeout) const {
  std::vector<DayInterval> out;
  for (const DayInterval& run : runs_) {
    if (!out.empty() &&
        static_cast<std::int64_t>(run.first) - out.back().last - 1 <= timeout)
      out.back().last = run.last;
    else
      out.push_back(run);
  }
  PL_ASSERT_SORTED(out,
                   [](const DayInterval& a, const DayInterval& b) {
                     return a.first < b.first;
                   },
                   "IntervalSet::coalesce output");
  return out;
}

DayInterval IntervalSet::span() const noexcept {
  if (runs_.empty()) return DayInterval{};
  return DayInterval{runs_.front().first, runs_.back().last};
}

}  // namespace pl::util
