#include "util/strings.hpp"

#include <cmath>
#include <cstdio>

namespace pl::util {

std::vector<std::string_view> split(std::string_view text, char delimiter) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) noexcept {
  const auto* space = " \t\r\n";
  const auto begin = text.find_first_not_of(space);
  if (begin == std::string_view::npos) return {};
  const auto end = text.find_last_not_of(space);
  return text.substr(begin, end - begin + 1);
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out)
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  return out;
}

std::vector<std::string_view> lines(std::string_view blob) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (start < blob.size()) {
    std::size_t pos = blob.find('\n', start);
    if (pos == std::string_view::npos) pos = blob.size();
    std::string_view line = blob.substr(start, pos - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    out.push_back(line);
    start = pos + 1;
  }
  return out;
}

std::string with_commas(std::int64_t value) {
  const bool negative = value < 0;
  std::string digits = std::to_string(negative ? -value : value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  if (negative) out.push_back('-');
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string percent(double fraction, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

}  // namespace pl::util
