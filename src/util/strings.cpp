#include "util/strings.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace pl::util {

std::vector<std::string_view> split(std::string_view text, char delimiter) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::size_t split_fields(std::string_view text, char delimiter,
                         std::string_view* out,
                         std::size_t max_fields) noexcept {
  if (text.empty()) {
    if (max_fields > 0) out[0] = std::string_view();
    return 1;
  }
  const char* cursor = text.data();
  const char* const end = cursor + text.size();
  std::size_t count = 0;
  while (true) {
    const auto* hit = static_cast<const char*>(
        std::memchr(cursor, delimiter, static_cast<std::size_t>(end - cursor)));
    const char* stop = hit != nullptr ? hit : end;
    if (count < max_fields)
      out[count] = std::string_view(cursor, static_cast<std::size_t>(stop - cursor));
    ++count;
    if (hit == nullptr) return count;
    cursor = hit + 1;
  }
}

bool LineCursor::next(std::string_view& line) noexcept {
  if (rest_.empty()) return false;
  const auto* hit = static_cast<const char*>(
      std::memchr(rest_.data(), '\n', rest_.size()));
  if (hit == nullptr) {
    line = rest_;
    rest_ = {};
  } else {
    line = std::string_view(rest_.data(),
                            static_cast<std::size_t>(hit - rest_.data()));
    rest_.remove_prefix(line.size() + 1);
  }
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  return true;
}

std::string_view trim(std::string_view text) noexcept {
  const auto* space = " \t\r\n";
  const auto begin = text.find_first_not_of(space);
  if (begin == std::string_view::npos) return {};
  const auto end = text.find_last_not_of(space);
  return text.substr(begin, end - begin + 1);
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out)
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  return out;
}

std::vector<std::string_view> lines(std::string_view blob) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (start < blob.size()) {
    std::size_t pos = blob.find('\n', start);
    if (pos == std::string_view::npos) pos = blob.size();
    std::string_view line = blob.substr(start, pos - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    out.push_back(line);
    start = pos + 1;
  }
  return out;
}

std::string with_commas(std::int64_t value) {
  const bool negative = value < 0;
  std::string digits = std::to_string(negative ? -value : value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  if (negative) out.push_back('-');
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string percent(double fraction, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

}  // namespace pl::util
