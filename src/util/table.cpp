#include "util/table.hpp"

#include <algorithm>

namespace pl::util {

namespace {

// Display width of a UTF-8 cell: count code points, not bytes, so sparkline
// glyphs align.
std::size_t display_width(const std::string& text) {
  std::size_t width = 0;
  for (unsigned char c : text)
    if ((c & 0xC0) != 0x80) ++width;
  return width;
}

}  // namespace

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::print(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = display_width(header_[c]);
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], display_width(row[c]));

  const auto print_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) line += "  ";
      line += row[c];
      const std::size_t pad = widths[c] - display_width(row[c]);
      line.append(pad, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    out << line << '\n';
  };

  print_row(header_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    if (c != 0) rule += "  ";
    rule.append(widths[c], '-');
  }
  out << rule << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace pl::util
