// Deterministic random number generation for the world simulator.
//
// Reproducibility is a core requirement: every bench and test fixes a seed
// and must produce identical worlds across runs and platforms, so we ship
// our own xoshiro256++ generator and distribution helpers instead of relying
// on implementation-defined std::distribution behaviour.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <span>

namespace pl::util {

/// SplitMix64, used to seed the main generator from a single 64-bit seed.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ — fast, high-quality, reproducible PRNG.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) noexcept {
    const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<std::int64_t>((*this)());
    // Multiply-shift rejection-free mapping (Lemire); bias is negligible for
    // our range sizes and keeps the generator deterministic and branch-light.
    const unsigned __int128 product =
        static_cast<unsigned __int128>((*this)()) * range;
    return lo + static_cast<std::int64_t>(product >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial.
  bool chance(double probability) noexcept {
    return uniform01() < probability;
  }

  /// Exponential with the given mean (> 0).
  double exponential(double mean) noexcept {
    double u = uniform01();
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Geometric number of days until an event with daily probability p,
  /// capped so pathological probabilities cannot run away.
  std::int64_t geometric_days(double daily_probability,
                              std::int64_t cap = 1 << 20) noexcept {
    if (daily_probability >= 1.0) return 0;
    if (daily_probability <= 0.0) return cap;
    const auto days = static_cast<std::int64_t>(
        std::floor(std::log(1.0 - uniform01()) /
                   std::log(1.0 - daily_probability)));
    return days < cap ? days : cap;
  }

  /// Log-normal: exp(Normal(mu, sigma)).
  double lognormal(double mu, double sigma) noexcept {
    return std::exp(mu + sigma * normal());
  }

  /// Standard normal via Box-Muller.
  double normal() noexcept {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u1 = uniform01();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double u2 = uniform01();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 6.283185307179586 * u2;
    spare_ = radius * std::sin(angle);
    have_spare_ = true;
    return radius * std::cos(angle);
  }

  /// Index into `weights` chosen proportionally to the (non-negative)
  /// weights. Returns 0 if all weights are zero.
  std::size_t weighted(std::span<const double> weights) noexcept {
    double total = 0;
    for (double w : weights) total += w;
    if (total <= 0) return 0;
    double target = uniform01() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      target -= weights[i];
      if (target < 0) return i;
    }
    return weights.size() - 1;
  }

  /// Derive an independent child generator; used to give each ASN / module
  /// its own stream so simulation order does not perturb results.
  Rng fork() noexcept { return Rng((*this)()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_ = 0;
  bool have_spare_ = false;
};

}  // namespace pl::util
