// Descriptive statistics used by the analysis and the bench harness:
// empirical CDFs (the paper's Figs. 3, 5, 7, 9), quantiles, boxplot
// five-number summaries (Fig. 14), and fixed-bin histograms (Fig. 10/11).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace pl::util {

/// Linear-interpolated quantile of an unsorted sample (q in [0,1]).
/// Returns 0 for an empty sample.
double quantile(std::span<const double> sample, double q);

/// Convenience median.
double median(std::span<const double> sample);

double mean(std::span<const double> sample);

/// Empirical CDF over a sample; evaluate and tabulate at chosen points.
class Ecdf {
 public:
  Ecdf() = default;
  explicit Ecdf(std::vector<double> sample);

  /// Fraction of the sample <= x. 0 for an empty sample.
  double at(double x) const noexcept;

  /// Inverse: smallest sample value v with at(v) >= fraction.
  double value_at_fraction(double fraction) const noexcept;

  std::size_t size() const noexcept { return sorted_.size(); }
  bool empty() const noexcept { return sorted_.empty(); }

  const std::vector<double>& sorted_sample() const noexcept { return sorted_; }

  /// Tabulate (x, F(x)) at `points` evenly spaced x values across
  /// [min, max]; the form the bench harness prints for CDF figures.
  std::vector<std::pair<double, double>> tabulate(std::size_t points) const;

 private:
  std::vector<double> sorted_;
};

/// Boxplot five-number summary (Fig. 14): min/Q1/median/Q3/max plus count.
struct FiveNumberSummary {
  double min = 0;
  double q1 = 0;
  double median = 0;
  double q3 = 0;
  double max = 0;
  std::size_t count = 0;
};

FiveNumberSummary summarize(std::span<const double> sample);

/// Histogram with uniform bins over [lo, hi); values outside are clamped to
/// the edge bins so per-quarter time series never silently drop data.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value, std::int64_t weight = 1) noexcept;

  std::int64_t bin_count(std::size_t bin) const noexcept {
    return counts_[bin];
  }
  std::size_t bins() const noexcept { return counts_.size(); }
  double bin_low(std::size_t bin) const noexcept;
  std::int64_t total() const noexcept;

 private:
  double lo_;
  double width_;
  std::vector<std::int64_t> counts_;
};

/// Render a one-line unicode sparkline of a series — lets bench binaries
/// show the *shape* of each paper figure directly in the terminal.
std::string sparkline(std::span<const double> series);

}  // namespace pl::util
