// CRC-32 (IEEE 802.3 polynomial, bit-reflected), shared by the checkpoint
// framing (src/robust) and the binary delegation interchange
// (src/delegation). Lives in util because delegation cannot depend on robust
// (robust already depends on delegation's record types).
#pragma once

#include <cstdint>
#include <string_view>

namespace pl::util {

std::uint32_t crc32(std::string_view bytes) noexcept;

}  // namespace pl::util
