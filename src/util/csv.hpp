// Minimal CSV reader/writer for dataset export (the published datasets of
// the paper are flat records; we export ours as CSV/JSON-lines).
#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace pl::util {

/// Streaming CSV writer. Fields containing commas, quotes, or newlines are
/// quoted per RFC 4180.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void write_row(const std::vector<std::string>& fields);

 private:
  std::ostream& out_;
};

/// Parse a whole CSV blob into rows of fields (RFC 4180 quoting).
std::vector<std::vector<std::string>> parse_csv(std::string_view blob);

}  // namespace pl::util
