// Fixed-width console table renderer. Every bench binary reproduces a paper
// table or figure as rows on stdout; this keeps their formatting uniform.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace pl::util {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append a data row; short rows are padded with empty cells.
  void add_row(std::vector<std::string> row);

  /// Render with aligned columns and a header separator.
  void print(std::ostream& out) const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pl::util
