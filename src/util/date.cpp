#include "util/date.hpp"

#include <array>
#include <charconv>

namespace pl::util {

namespace {

constexpr std::array<unsigned, 12> kDaysInMonth = {31, 28, 31, 30, 31, 30,
                                                   31, 31, 30, 31, 30, 31};

}  // namespace

bool is_leap_year(int year) noexcept {
  return year % 4 == 0 && (year % 100 != 0 || year % 400 == 0);
}

bool is_valid(const CivilDate& d) noexcept {
  if (d.month < 1 || d.month > 12 || d.day < 1) return false;
  unsigned limit = kDaysInMonth[d.month - 1];
  if (d.month == 2 && is_leap_year(d.year)) limit = 29;
  return d.day <= limit;
}

// Hinnant: days_from_civil.
Day to_day(const CivilDate& d) noexcept {
  int y = d.year;
  const unsigned m = d.month;
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d.day - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return static_cast<Day>(era * 146097 + static_cast<int>(doe) - 719468);
}

// Hinnant: civil_from_days.
CivilDate to_civil(Day day) noexcept {
  int z = day + 719468;
  const int era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int y = static_cast<int>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  return CivilDate{y + (m <= 2), m, d};
}

Day make_day(int year, unsigned month, unsigned day) noexcept {
  return to_day(CivilDate{year, month, day});
}

namespace {

std::optional<int> parse_uint_field(std::string_view text) noexcept {
  int value = 0;
  const auto* begin = text.data();
  const auto* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end || value < 0) return std::nullopt;
  return value;
}

std::optional<Day> parse_fields(std::string_view y, std::string_view m,
                                std::string_view d) noexcept {
  const auto year = parse_uint_field(y);
  const auto month = parse_uint_field(m);
  const auto day = parse_uint_field(d);
  if (!year || !month || !day) return std::nullopt;
  const CivilDate civil{*year, static_cast<unsigned>(*month),
                        static_cast<unsigned>(*day)};
  if (!is_valid(civil)) return std::nullopt;
  return to_day(civil);
}

}  // namespace

std::optional<Day> parse_iso_date(std::string_view text) noexcept {
  if (text.size() != 10 || text[4] != '-' || text[7] != '-')
    return std::nullopt;
  return parse_fields(text.substr(0, 4), text.substr(5, 2), text.substr(8, 2));
}

std::optional<Day> parse_compact_date(std::string_view text) noexcept {
  if (text.size() != 8) return std::nullopt;
  if (text == "00000000") return std::nullopt;
  return parse_fields(text.substr(0, 4), text.substr(4, 2), text.substr(6, 2));
}

namespace {

void append_padded(std::string& out, unsigned value, int width) {
  char buf[16];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
  const int len = static_cast<int>(ptr - buf);
  for (int i = len; i < width; ++i) out.push_back('0');
  out.append(buf, ptr);
}

}  // namespace

std::string format_iso(Day day) {
  const CivilDate c = to_civil(day);
  std::string out;
  out.reserve(10);
  append_padded(out, static_cast<unsigned>(c.year), 4);
  out.push_back('-');
  append_padded(out, c.month, 2);
  out.push_back('-');
  append_padded(out, c.day, 2);
  return out;
}

std::string format_compact(Day day) {
  const CivilDate c = to_civil(day);
  std::string out;
  out.reserve(8);
  append_padded(out, static_cast<unsigned>(c.year), 4);
  append_padded(out, c.month, 2);
  append_padded(out, c.day, 2);
  return out;
}

int year_of(Day day) noexcept { return to_civil(day).year; }

int quarter_index(Day day) noexcept {
  const CivilDate c = to_civil(day);
  return c.year * 4 + static_cast<int>((c.month - 1) / 3);
}

Day start_of_year(Day day) noexcept {
  return make_day(year_of(day), 1, 1);
}

}  // namespace pl::util
