#include "util/intern.hpp"

namespace pl::util {

std::uint32_t StringPool::intern(std::string_view token) {
  auto it = index_.find(token);
  if (it != index_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(tokens_.size());
  tokens_.emplace_back(token);
  index_.emplace(tokens_.back(), id);
  return id;
}

std::uint32_t StringPool::find(std::string_view token) const noexcept {
  auto it = index_.find(token);
  return it == index_.end() ? kNotFound : it->second;
}

std::optional<StringPool> StringPool::from_tokens(
    const std::vector<std::string>& tokens) {
  StringPool pool;
  for (const std::string& token : tokens)
    if (pool.intern(token) != pool.size() - 1) return std::nullopt;
  return pool;
}

}  // namespace pl::util
