// A set of days stored as sorted, disjoint, non-adjacent closed intervals.
//
// Operational activity of an ASN over 17 years is naturally a sparse set of
// days; IntervalSet is its run-length-encoded form and the substrate for
// building lifetimes (merging runs separated by less than the inactivity
// timeout) and for admin/op overlap arithmetic.
#pragma once

#include <cstdint>
#include <vector>

#include "util/interval.hpp"

namespace pl::util {

class IntervalSet {
 public:
  IntervalSet() = default;

  /// Construct from arbitrary intervals; they are normalized (sorted, merged).
  explicit IntervalSet(std::vector<DayInterval> intervals);

  /// Add a single day. Adjacent/overlapping runs are coalesced.
  void add(Day day) { add(DayInterval{day, day}); }

  /// Add an inclusive interval. Empty intervals are ignored.
  void add(const DayInterval& interval);

  /// Remove all days in `interval` from the set.
  void subtract(const DayInterval& interval);

  /// Set union.
  IntervalSet unite(const IntervalSet& other) const;

  /// Set intersection.
  IntervalSet intersect(const IntervalSet& other) const;

  /// Days in this set that fall inside `window`.
  std::int64_t covered_days(const DayInterval& window) const noexcept;

  /// Total number of days in the set.
  std::int64_t total_days() const noexcept;

  bool contains(Day day) const noexcept;

  bool empty() const noexcept { return runs_.empty(); }

  /// Number of maximal runs.
  std::size_t run_count() const noexcept { return runs_.size(); }

  /// The normalized runs, sorted ascending, pairwise disjoint and separated
  /// by at least one uncovered day.
  const std::vector<DayInterval>& runs() const noexcept { return runs_; }

  /// Gaps between consecutive runs, in days (each >= 1). This is the
  /// "per-ASN BGP activity gap" distribution of paper Fig. 3.
  std::vector<std::int64_t> gaps() const;

  /// Merge runs whose separating gap is <= `timeout` days, yielding the
  /// operational lifetimes induced by an inactivity timeout (paper 4.2).
  std::vector<DayInterval> coalesce(std::int64_t timeout) const;

  /// Smallest interval covering the whole set (empty interval if empty).
  DayInterval span() const noexcept;

  friend bool operator==(const IntervalSet&, const IntervalSet&) = default;

 private:
  std::vector<DayInterval> runs_;
};

}  // namespace pl::util
