// Bump/arena allocator for hot decode loops.
//
// The binary interchange reader decodes one day of delegation records at a
// time; every record lives exactly as long as the day that carried it. A
// general-purpose heap is the wrong tool for that lifetime shape: the seed
// profile showed the restore stage spending a large share of its time in
// allocator and node-container churn. An Arena turns the whole day into two
// pointer bumps and `reset()` into a constant-time free.
//
// Rules (documented in DESIGN.md §13):
//   - only trivially-destructible payloads: reset() never runs destructors;
//   - memory returned by alloc()/alloc_array() is valid until the next
//     reset() (or the arena's destruction), never longer;
//   - blocks grow geometrically and are recycled across reset() calls, so a
//     steady-state day costs zero mallocs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
// pl-lint: allow(naked-new) <new> provides placement-new, the arena's whole
// point; nothing here owns raw heap memory outside unique_ptr blocks.
#include <new>
#include <span>
#include <type_traits>
#include <vector>

namespace pl::util {

class Arena {
 public:
  explicit Arena(std::size_t first_block_bytes = 64 * 1024)
      : next_block_bytes_(first_block_bytes < kMinBlock ? kMinBlock
                                                        : first_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw aligned allocation; never returns nullptr (throws std::bad_alloc on
  /// exhaustion like the global allocator would).
  void* alloc(std::size_t bytes, std::size_t align) {
    std::size_t offset = align_up(cursor_, align);
    if (block_ >= blocks_.size() || offset + bytes > blocks_[block_].size) {
      take_block(bytes + align);
      offset = align_up(cursor_, align);
    }
    Block& block = blocks_[block_];
    cursor_ = offset + bytes;
    high_water_ = cursor_ > high_water_ ? cursor_ : high_water_;
    return block.data.get() + offset;
  }

  /// Typed array; elements are value-initialized only when requested by the
  /// caller via placement — here we return raw storage as a span.
  template <typename T>
  std::span<T> alloc_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    if (count == 0) return {};
    T* data = static_cast<T*>(alloc(count * sizeof(T), alignof(T)));
    return {data, count};
  }

  template <typename T, typename... Args>
  T* make(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    // pl-lint: allow(naked-new) placement-new into arena storage; the arena
    // owns the memory and the type is trivially destructible by static_assert.
    return ::new (alloc(sizeof(T), alignof(T))) T(std::forward<Args>(args)...);
  }

  /// Constant-time free of everything allocated since the last reset();
  /// blocks are kept and recycled.
  void reset() noexcept {
    block_ = 0;
    cursor_ = 0;
  }

  /// Bytes handed out since the last reset() (diagnostic only).
  std::size_t bytes_used() const noexcept {
    std::size_t total = cursor_;
    for (std::size_t i = 0; i < block_ && i < blocks_.size(); ++i)
      total += blocks_[i].size;
    return total;
  }

  std::size_t blocks_allocated() const noexcept { return blocks_.size(); }

 private:
  static constexpr std::size_t kMinBlock = 4 * 1024;

  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  static std::size_t align_up(std::size_t value, std::size_t align) noexcept {
    return (value + align - 1) & ~(align - 1);
  }

  void take_block(std::size_t at_least) {
    if (block_ < blocks_.size() && cursor_ != 0) ++block_;
    while (block_ < blocks_.size()) {
      if (blocks_[block_].size >= at_least) {
        cursor_ = 0;
        return;
      }
      ++block_;  // recycled block too small for this request; skip it
    }
    std::size_t size = next_block_bytes_;
    while (size < at_least) size *= 2;
    next_block_bytes_ = size * 2;
    blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size});
    block_ = blocks_.size() - 1;
    cursor_ = 0;
  }

  std::vector<Block> blocks_;
  std::size_t block_ = 0;
  std::size_t cursor_ = 0;
  std::size_t high_water_ = 0;
  std::size_t next_block_bytes_;
};

}  // namespace pl::util
