#include "util/crc32.hpp"

#include <array>
#include <bit>
#include <cstring>

namespace pl::util {

namespace {

// Slice-by-8 tables: table[0] is the classic byte-at-a-time CRC-32
// (poly 0xEDB88320) table; table[k][b] extends it so eight input bytes
// fold in one step. Produces bit-identical values to the bytewise loop.
std::array<std::array<std::uint32_t, 256>, 8> make_crc_tables() noexcept {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t value = i;
    for (int bit = 0; bit < 8; ++bit)
      value = (value >> 1) ^ ((value & 1) ? 0xEDB88320u : 0u);
    tables[0][i] = value;
  }
  for (std::uint32_t i = 0; i < 256; ++i)
    for (std::size_t k = 1; k < 8; ++k)
      tables[k][i] =
          (tables[k - 1][i] >> 8) ^ tables[0][tables[k - 1][i] & 0xFFu];
  return tables;
}

}  // namespace

std::uint32_t crc32(std::string_view bytes) noexcept {
  static const std::array<std::array<std::uint32_t, 256>, 8> tables =
      make_crc_tables();
  const auto& t = tables;
  std::uint32_t crc = 0xFFFFFFFFu;
  const char* p = bytes.data();
  std::size_t n = bytes.size();
  while (std::endian::native == std::endian::little && n >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
          t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^
          t[2][(hi >> 8) & 0xFFu] ^ t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  for (; n > 0; ++p, --n)
    crc = (crc >> 8) ^ t[0][(crc ^ static_cast<std::uint8_t>(*p)) & 0xFFu];
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace pl::util
