// Small string helpers shared by the delegation-file parser and report
// renderers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pl::util {

/// Split on a single-character delimiter; keeps empty fields (delegation
/// files use '|' with meaningful empty columns).
std::vector<std::string_view> split(std::string_view text, char delimiter);

/// Strip leading/trailing whitespace.
std::string_view trim(std::string_view text) noexcept;

/// ASCII lower-casing (registry names are case-insensitive in the wild).
std::string to_lower(std::string_view text);

/// Iterate lines of a blob without copying; trailing '\n' is not required on
/// the final line.
std::vector<std::string_view> lines(std::string_view blob);

/// Format a count with thousands separators ("126,953") — bench output is
/// compared visually against the paper's tables.
std::string with_commas(std::int64_t value);

/// Format a ratio as a percentage with one decimal ("78.6%").
std::string percent(double fraction, int decimals = 1);

}  // namespace pl::util
