// Small string helpers shared by the delegation-file parser and report
// renderers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace pl::util {

/// Split on a single-character delimiter; keeps empty fields (delegation
/// files use '|' with meaningful empty columns).
std::vector<std::string_view> split(std::string_view text, char delimiter);

/// Branch-light, memchr-driven splitter for hot parse loops: writes up to
/// `max_fields` views into `out` and returns how many fields the line
/// actually has (which may exceed `max_fields`; the overflow fields are not
/// stored). Keeps empty fields, allocates nothing.
std::size_t split_fields(std::string_view text, char delimiter,
                         std::string_view* out,
                         std::size_t max_fields) noexcept;

/// Zero-allocation line iteration over a blob ('\n' separated, optional
/// '\r' stripped, final newline optional) — the vector-returning lines()
/// costs one allocation per call which the interchange text parser cannot
/// afford per archive.
class LineCursor {
 public:
  explicit LineCursor(std::string_view blob) noexcept : rest_(blob) {}

  /// Advance to the next line; false at end of blob.
  bool next(std::string_view& line) noexcept;

  bool done() const noexcept { return rest_.empty(); }

 private:
  std::string_view rest_;
};

/// Strip leading/trailing whitespace.
std::string_view trim(std::string_view text) noexcept;

/// ASCII lower-casing (registry names are case-insensitive in the wild).
std::string to_lower(std::string_view text);

/// Iterate lines of a blob without copying; trailing '\n' is not required on
/// the final line.
std::vector<std::string_view> lines(std::string_view blob);

/// Format a count with thousands separators ("126,953") — bench output is
/// compared visually against the paper's tables.
std::string with_commas(std::int64_t value);

/// Format a ratio as a percentage with one decimal ("78.6%").
std::string percent(double fraction, int decimals = 1);

}  // namespace pl::util
