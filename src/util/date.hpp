// Civil-date arithmetic on a compact day number.
//
// The whole library indexes time as `Day`: a signed count of days since
// 1970-01-01 (the civil/proleptic-Gregorian epoch). Delegation files and BGP
// activity are both daily-resolution datasets, so a single int32 per date is
// the natural representation. Conversions use Howard Hinnant's branchless
// civil-calendar algorithms.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace pl::util {

/// Days since 1970-01-01. Negative values are dates before the epoch.
using Day = std::int32_t;

/// A calendar date in the proleptic Gregorian calendar.
struct CivilDate {
  int year = 1970;
  unsigned month = 1;  ///< 1..12
  unsigned day = 1;    ///< 1..31

  friend bool operator==(const CivilDate&, const CivilDate&) = default;
};

/// True iff `d` names a real calendar date (month/day in range, leap years
/// handled).
bool is_valid(const CivilDate& d) noexcept;

/// Convert a calendar date to its day number. Precondition: is_valid(d).
Day to_day(const CivilDate& d) noexcept;

/// Convert a day number back to a calendar date.
CivilDate to_civil(Day day) noexcept;

/// Convenience: day number for year-month-day literals in code.
Day make_day(int year, unsigned month, unsigned day) noexcept;

/// Parse "YYYY-MM-DD". Returns nullopt on malformed or invalid dates.
std::optional<Day> parse_iso_date(std::string_view text) noexcept;

/// Parse "YYYYMMDD" (the format used in NRO delegation files). A value of
/// "00000000" — used by registries as an unknown-date placeholder — parses to
/// nullopt.
std::optional<Day> parse_compact_date(std::string_view text) noexcept;

/// Format as "YYYY-MM-DD".
std::string format_iso(Day day);

/// Format as "YYYYMMDD" (delegation-file field format).
std::string format_compact(Day day);

/// Calendar year of a day number.
int year_of(Day day) noexcept;

/// Zero-based quarter index since year 0 (year*4 + quarter-within-year);
/// useful for 3-month binning.
int quarter_index(Day day) noexcept;

/// First day of the calendar year containing `day`.
Day start_of_year(Day day) noexcept;

/// True for leap years in the proleptic Gregorian calendar.
bool is_leap_year(int year) noexcept;

}  // namespace pl::util
