// Fixed-size thread pool and data-parallel helpers for the pipeline hot
// path.
//
// Every parallel stage in this codebase follows one discipline: shard the
// work over contiguous index ranges, compute into per-index (or per-shard)
// slots, and merge the slots back in index order on the calling thread.
// With order-preserving merges the output is bit-identical to the serial
// run no matter how many workers execute the shards — the property the
// `pipeline_parallel_test` differential suite locks in.
//
// Thread-count resolution (`PL_THREADS`):
//   * unset or negative — one worker per hardware thread;
//   * 0                 — serial: no workers, every task runs inline on the
//                         calling thread (the historical single-thread path);
//   * N > 0             — exactly N workers.
//
// `parallel_for` called from inside a worker runs inline (serially) on that
// worker — nested parallelism degrades gracefully instead of deadlocking on
// a saturated queue.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace pl::exec {

/// Worker count the process defaults to: `PL_THREADS` when set (see the
/// resolution table above), else one per hardware thread.
int default_threads();

/// max(1, std::thread::hardware_concurrency()).
int hardware_threads();

class ThreadPool {
 public:
  /// `threads` < 0 resolves to `hardware_threads()`; 0 builds a serial pool
  /// that executes everything inline on the submitting thread.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (0 for a serial pool).
  int size() const noexcept { return static_cast<int>(workers_.size()); }

  /// Queue one task and get its result as a future. Exceptions thrown by
  /// `fn` surface from `future::get()`. On a serial pool the task runs
  /// inline before `submit` returns.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F&>> {
    using R = std::invoke_result_t<F&>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    post([task] { (*task)(); });
    return future;
  }

  /// Body signature for range loops: [begin, end) over the item index space.
  using RangeBody = std::function<void(std::size_t, std::size_t)>;

  /// Split [0, count) into contiguous chunks of at least `grain` items and
  /// run `body` on each chunk. Blocks until every chunk finished. If any
  /// chunk threw, rethrows the exception of the lowest-indexed failing
  /// chunk (deterministic across thread counts). Reentrant calls from a
  /// worker thread run the whole range inline.
  void parallel_for(std::size_t count, const RangeBody& body,
                    std::size_t grain = 1);

 private:
  void post(std::function<void()> task);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable ready_;
  bool stopping_ = false;
};

/// The process-wide pool, lazily built with `default_threads()` workers.
ThreadPool& global_pool();

/// Rebuild the global pool with `threads` workers (same resolution rules as
/// the ThreadPool constructor; pass -1 to re-read `PL_THREADS`). Joins the
/// old workers first. Not safe concurrently with running parallel sections —
/// it is a configuration knob for startup and tests, not a scheduler.
void set_global_threads(int threads);

/// Worker count of the global pool without forcing its construction twice.
int current_threads();

/// RAII thread-count override: constructor applies `threads`, destructor
/// restores the previous setting. Used by `pipeline::Config::threads` and
/// the differential tests that compare serial vs. parallel runs in-process.
class ScopedThreads {
 public:
  explicit ScopedThreads(int threads);
  ~ScopedThreads();
  ScopedThreads(const ScopedThreads&) = delete;
  ScopedThreads& operator=(const ScopedThreads&) = delete;

 private:
  int previous_;
};

/// `global_pool().parallel_for(...)`.
void parallel_for(std::size_t count, const ThreadPool::RangeBody& body,
                  std::size_t grain = 1);

}  // namespace pl::exec
