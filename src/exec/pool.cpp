#include "exec/pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>

namespace pl::exec {

namespace {

/// Set while a pool worker runs tasks; reentrant parallel_for detects it.
thread_local bool tl_in_worker = false;

/// Sentinel for "no override": resolve from PL_THREADS / hardware.
constexpr int kUseDefault = std::numeric_limits<int>::min();

int resolve(int requested) {
  if (requested == kUseDefault) return default_threads();
  if (requested < 0) return hardware_threads();
  return requested;
}

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;       // guarded by g_pool_mutex
int g_requested = kUseDefault;            // guarded by g_pool_mutex

}  // namespace

int hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int default_threads() {
  if (const char* env = std::getenv("PL_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && parsed >= 0)
      return static_cast<int>(std::min<long>(parsed, 4096));
  }
  return hardware_threads();
}

ThreadPool::ThreadPool(int threads) {
  const int count = resolve(threads == kUseDefault ? -1 : threads);
  workers_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  tl_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::post(std::function<void()> task) {
  // Serial pool, or a worker feeding its own pool: run inline. The latter
  // keeps nested submit/parallel_for deadlock-free when every worker is
  // already busy inside a parallel section.
  if (workers_.empty() || tl_in_worker) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  ready_.notify_one();
}

void ThreadPool::parallel_for(std::size_t count, const RangeBody& body,
                              std::size_t grain) {
  if (count == 0) return;
  grain = std::max<std::size_t>(grain, 1);
  const auto workers = static_cast<std::size_t>(size());
  // A single worker can never overlap with the calling thread, so chunking
  // plus queue/condvar hand-off is pure overhead — the t=1 bench leg used to
  // run ~4% slower than serial because of it. Route workers <= 1 through the
  // same inline path as the serial pool; output order is unaffected because
  // chunks were already merged in index order.
  if (workers <= 1 || tl_in_worker || count <= grain) {
    body(0, count);
    return;
  }

  // Mild oversubscription smooths uneven shard costs; the grain floor keeps
  // per-chunk overhead negligible for cheap bodies.
  const std::size_t target_chunks =
      std::min(workers * 4, (count + grain - 1) / grain);
  const std::size_t chunk =
      (count + target_chunks - 1) / std::max<std::size_t>(target_chunks, 1);

  struct Join {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining = 0;
    std::vector<std::exception_ptr> errors;
  } join;

  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  for (std::size_t begin = 0; begin < count; begin += chunk)
    ranges.emplace_back(begin, std::min(begin + chunk, count));
  join.remaining = ranges.size();
  join.errors.assign(ranges.size(), nullptr);

  const auto run_chunk = [&body, &join](std::size_t index, std::size_t begin,
                                        std::size_t end) {
    try {
      body(begin, end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(join.mutex);
      join.errors[index] = std::current_exception();
    }
    {
      // Notify under the lock: the caller destroys `join` the moment it
      // observes remaining == 0, which it can only do once we release.
      std::lock_guard<std::mutex> lock(join.mutex);
      --join.remaining;
      join.done.notify_one();
    }
  };

  // Queue every chunk but the first, run the first on the calling thread —
  // the caller contributes instead of idling, which matters on small pools.
  for (std::size_t i = 1; i < ranges.size(); ++i)
    post([&run_chunk, &ranges, i] {
      run_chunk(i, ranges[i].first, ranges[i].second);
    });
  run_chunk(0, ranges[0].first, ranges[0].second);

  std::unique_lock<std::mutex> lock(join.mutex);
  join.done.wait(lock, [&join] { return join.remaining == 0; });

  // Deterministic propagation: the lowest-indexed failing chunk wins, so
  // the surfaced error does not depend on scheduling.
  for (const std::exception_ptr& error : join.errors)
    if (error) std::rethrow_exception(error);
}

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(resolve(g_requested));
  return *g_pool;
}

namespace {

void rebuild_locked_free(int requested) {
  std::unique_ptr<ThreadPool> replacement;
  {
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    if (g_requested == requested && g_pool) return;
    g_requested = requested;
    replacement = std::make_unique<ThreadPool>(resolve(requested));
    g_pool.swap(replacement);
  }
  // Old pool (if any) joins its workers here, outside the lock.
}

}  // namespace

void set_global_threads(int threads) { rebuild_locked_free(threads); }

int current_threads() { return global_pool().size(); }

ScopedThreads::ScopedThreads(int threads) {
  {
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    previous_ = g_requested;
  }
  set_global_threads(threads);
}

ScopedThreads::~ScopedThreads() { set_global_threads(previous_); }

void parallel_for(std::size_t count, const ThreadPool::RangeBody& body,
                  std::size_t grain) {
  global_pool().parallel_for(count, body, grain);
}

}  // namespace pl::exec
