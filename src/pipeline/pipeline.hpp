// The whole study as one call — the paper's Fig. 1 pipeline:
//
//   world -> delegation archive (+defects) -> restoration -> admin
//   lifetimes;  behaviour plans -> BGP activity -> op lifetimes;
//   joint taxonomy.
//
// `run_simulated()` drives everything from the built-in world simulator;
// deployments against real data assemble the same stages from restored
// archives (see restore::StreamingRestorer) and a BGPStream-fed
// VisibilityAggregator instead.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "bgpsim/route_gen.hpp"
#include "joint/taxonomy.hpp"
#include "lifetimes/admin.hpp"
#include "lifetimes/op.hpp"
#include "obs/export.hpp"
#include "restore/pipeline.hpp"
#include "rirsim/inject.hpp"
#include "rirsim/world.hpp"
#include "robust/chaos.hpp"
#include "robust/error.hpp"

namespace pl::pipeline {

struct Result;

struct Config {
  std::uint64_t seed = 42;
  double scale = 1.0;  ///< 1.0 = the paper's scale (~127k admin lifetimes)
  int op_timeout_days = lifetimes::kPaperTimeoutDays;
  /// Worker threads for the parallel stages: -1 (default) keeps the
  /// process-wide setting (`PL_THREADS` env, else hardware threads); 0
  /// forces the serial path; N > 0 pins N workers for this run. Parallel
  /// runs are bit-identical to serial ones (see exec/pool.hpp).
  int threads = -1;
  /// Wire format of the render→restore boundary: each registry's archive is
  /// serialized (pl-dlg-txt/1 or pl-dlg-bin/1) at the end of the render
  /// stage and decoded by the restore stage. Text is the default and the
  /// conformance reference; binary is the zero-copy fast path. Both produce
  /// bit-identical pipelines (tests/interchange_conformance_test.cpp).
  dele::Interchange interchange = dele::Interchange::kText;
  restore::RestoreConfig restore;
  rirsim::InjectorConfig injector;      ///< seed/scale overridden from above
  bgpsim::OpWorldConfig operations;     ///< seeds/scales overridden
  /// Pass the BGP activity to the restorer as the step-iv disambiguation
  /// hint (the paper sometimes consulted BGP behaviour for duplicates).
  bool bgp_hint_for_duplicates = true;
  /// Layer transport chaos (dele::FaultStream) between the rendered
  /// archive and the restorer: outages, retries, duplicate / out-of-order /
  /// corrupt days at the configured rates. Per-registry seeds derive from
  /// chaos.seed. The run must degrade gracefully, never crash; the books
  /// land in Result::robustness.
  bool inject_chaos = false;
  robust::ChaosConfig chaos;
  /// Write the JSON observability report (trace tree + metrics snapshot,
  /// schema `pl-obs/1`) to this path after the run. Empty falls back to the
  /// `PL_TRACE` environment variable; unset disables the dump. The report
  /// is always available in memory as `Result::report` either way.
  std::string trace_path;
  /// Write the Prometheus text exposition of the metrics snapshot to this
  /// path. Empty falls back to `PL_PROM`; unset disables.
  std::string prom_path;
  /// Write a pl-flight/1 dump of per-stage events (EventKind::kStage, one
  /// per Fig. 1 stage, a = wall-clock microseconds) to this path after the
  /// run. Empty falls back to `PL_FLIGHT`; unset disables. Gives batch runs
  /// the same post-mortem artifact the serving layer dumps on crash.
  std::string flight_path;
  /// Optional post-taxonomy hook, invoked inside the root span after every
  /// Fig. 1 stage finished but before the report is frozen — the extension
  /// point derived products (e.g. serve::Snapshot) use to run as a traced,
  /// metered stage of the same run. Unset (the default) leaves the trace
  /// tree exactly as before: seven stage children.
  std::function<void(Result&, obs::Span&, obs::Registry&)> post_stage;
};

/// Wall-clock spent in each Fig. 1 stage. A thin view over the trace tree
/// (see `timings_from_trace`), kept so the perf harness and older callers
/// keep their flat per-stage numbers; the span tree in `Result::report` is
/// the authoritative record. The pipeline is its own profiler so the perf
/// harness (bench_pipeline_e2e) never re-implements the stage wiring just
/// to time it.
struct StageTimings {
  double world_ms = 0;     ///< rirsim::build_world
  double op_world_ms = 0;  ///< bgpsim::build_op_world (plans + activity)
  double render_ms = 0;    ///< rirsim::SimulatedArchive (delegation render)
  double restore_ms = 0;   ///< restoration incl. chaos + reconciliation
  double admin_ms = 0;     ///< lifetimes::build_admin_lifetimes
  double op_ms = 0;        ///< lifetimes::build_op_lifetimes
  double taxonomy_ms = 0;  ///< joint::classify
  double build_snapshot_ms = 0;  ///< serve::Snapshot::build (post_stage hook;
                                 ///< 0 when no hook installed one)
  double save_snapshot_ms = 0;   ///< serve::save_snapshot (post_stage hook;
                                 ///< 0 when the run did not persist)
  double total_ms = 0;
};

/// Every stage's output, kept alive together.
struct Result {
  rirsim::GroundTruth truth;
  bgpsim::OpWorld op_world;
  restore::RestoredArchive restored;
  lifetimes::AdminDataset admin;
  lifetimes::OpDataset op;
  joint::Taxonomy taxonomy;
  /// Ingestion fault accounting (all zero unless Config::inject_chaos).
  robust::RobustnessReport robustness;
  /// Structured observability report: the hierarchical span tree covering
  /// every Fig. 1 stage (with per-registry / per-step substages) plus the
  /// frozen metrics registry. Metric *values* are bit-identical across
  /// `PL_THREADS` settings for the same config; span timings are wall clock
  /// and are not.
  obs::Report report;
  /// Per-stage wall clock, derived from `report.trace`.
  StageTimings timings;
};

/// Project the flat per-stage view out of a pipeline trace tree. Unknown
/// or missing stages read as zero (e.g. under -DPL_OBS_OFF, where the tree
/// is empty).
StageTimings timings_from_trace(const obs::TraceNode& root);

/// Run the full simulated pipeline deterministically.
Result run_simulated(const Config& config = {});

}  // namespace pl::pipeline
