// The whole study as one call — the paper's Fig. 1 pipeline:
//
//   world -> delegation archive (+defects) -> restoration -> admin
//   lifetimes;  behaviour plans -> BGP activity -> op lifetimes;
//   joint taxonomy.
//
// `run_simulated()` drives everything from the built-in world simulator;
// deployments against real data assemble the same stages from restored
// archives (see restore::StreamingRestorer) and a BGPStream-fed
// VisibilityAggregator instead.
#pragma once

#include <cstdint>

#include "bgpsim/route_gen.hpp"
#include "joint/taxonomy.hpp"
#include "lifetimes/admin.hpp"
#include "lifetimes/op.hpp"
#include "restore/pipeline.hpp"
#include "rirsim/inject.hpp"
#include "rirsim/world.hpp"
#include "robust/chaos.hpp"
#include "robust/error.hpp"

namespace pl::pipeline {

struct Config {
  std::uint64_t seed = 42;
  double scale = 1.0;  ///< 1.0 = the paper's scale (~127k admin lifetimes)
  int op_timeout_days = lifetimes::kPaperTimeoutDays;
  restore::RestoreConfig restore;
  rirsim::InjectorConfig injector;      ///< seed/scale overridden from above
  bgpsim::OpWorldConfig operations;     ///< seeds/scales overridden
  /// Pass the BGP activity to the restorer as the step-iv disambiguation
  /// hint (the paper sometimes consulted BGP behaviour for duplicates).
  bool bgp_hint_for_duplicates = true;
  /// Layer transport chaos (robust::FaultStream) between the rendered
  /// archive and the restorer: outages, retries, duplicate / out-of-order /
  /// corrupt days at the configured rates. Per-registry seeds derive from
  /// chaos.seed. The run must degrade gracefully, never crash; the books
  /// land in Result::robustness.
  bool inject_chaos = false;
  robust::ChaosConfig chaos;
};

/// Every stage's output, kept alive together.
struct Result {
  rirsim::GroundTruth truth;
  bgpsim::OpWorld op_world;
  restore::RestoredArchive restored;
  lifetimes::AdminDataset admin;
  lifetimes::OpDataset op;
  joint::Taxonomy taxonomy;
  /// Ingestion fault accounting (all zero unless Config::inject_chaos).
  robust::RobustnessReport robustness;
};

/// Run the full simulated pipeline deterministically.
Result run_simulated(const Config& config = {});

}  // namespace pl::pipeline
