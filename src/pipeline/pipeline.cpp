#include "pipeline/pipeline.hpp"

namespace pl::pipeline {

Result run_simulated(const Config& config) {
  Result result;

  // Administrative ground truth.
  result.truth = rirsim::build_world(
      rirsim::WorldConfig{config.seed, config.scale,
                          asn::archive_begin_day(), asn::archive_end_day()});

  // Operational dimension (behaviours, attacks, misconfigurations) — seeds
  // derived from the master seed so one knob controls the world.
  bgpsim::OpWorldConfig operations = config.operations;
  operations.behavior.seed = config.seed + 1;
  operations.attacks.seed = config.seed + 2;
  operations.attacks.scale = config.scale;
  operations.misconfigs.seed = config.seed + 3;
  operations.misconfigs.scale = config.scale;
  result.op_world = bgpsim::build_op_world(result.truth, operations);

  // Delegation archive with every 3.1 defect class, then restoration.
  rirsim::InjectorConfig injector = config.injector;
  injector.seed = config.seed + 4;
  injector.scale = config.scale;
  const rirsim::SimulatedArchive archive(result.truth, injector);
  const rirsim::GroundTruth& truth = result.truth;
  const bgp::ActivityTable* hint =
      config.bgp_hint_for_duplicates ? &result.op_world.activity : nullptr;
  if (config.inject_chaos) {
    // Feed each registry through the fault injector; one shared sink keeps
    // the cross-registry books that the accounting invariants run over.
    robust::ErrorSink sink(robust::Policy::kLenient);
    for (asn::Rir rir : asn::kAllRirs) {
      robust::ChaosConfig chaos = config.chaos;
      chaos.seed = config.chaos.seed + asn::index_of(rir);
      robust::FaultStream stream(archive.stream(rir), chaos, &sink);
      result.restored.registries[asn::index_of(rir)] =
          restore::restore_registry(stream, config.restore,
                                    &result.truth.erx, hint, &sink);
    }
    result.restored.cross = restore::reconcile_registries(
        result.restored.registries,
        [&truth](asn::Asn a) { return truth.iana.owner(a); }, config.restore,
        result.truth.archive_begin);
    result.robustness = sink.counters();
  } else {
    std::array<std::unique_ptr<dele::ArchiveStream>, asn::kRirCount> streams;
    for (asn::Rir rir : asn::kAllRirs)
      streams[asn::index_of(rir)] = archive.stream(rir);
    result.restored = restore::restore_archive(
        std::move(streams), config.restore, &result.truth.erx,
        [&truth](asn::Asn a) { return truth.iana.owner(a); },
        result.truth.archive_begin, hint);
  }

  // Both lifetime datasets and the joint lens.
  result.admin = lifetimes::build_admin_lifetimes(result.restored,
                                                  result.truth.archive_end);
  result.op = lifetimes::build_op_lifetimes(result.op_world.activity,
                                            config.op_timeout_days);
  result.taxonomy = joint::classify(result.admin, result.op);
  return result;
}

}  // namespace pl::pipeline
