#include "pipeline/pipeline.hpp"

#include <chrono>
#include <optional>

#include "exec/pool.hpp"

namespace pl::pipeline {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

Result run_simulated(const Config& config) {
  // Pin the worker count for this run when the caller asked for one;
  // restored on exit so pipelines with different knobs can share a process.
  std::optional<exec::ScopedThreads> scoped_threads;
  if (config.threads >= 0) scoped_threads.emplace(config.threads);

  Result result;
  const Clock::time_point run_start = Clock::now();
  Clock::time_point stage_start = run_start;

  // Administrative ground truth.
  result.truth = rirsim::build_world(
      rirsim::WorldConfig{config.seed, config.scale,
                          asn::archive_begin_day(), asn::archive_end_day()});
  result.timings.world_ms = ms_since(stage_start);

  // Operational dimension (behaviours, attacks, misconfigurations) — seeds
  // derived from the master seed so one knob controls the world.
  stage_start = Clock::now();
  bgpsim::OpWorldConfig operations = config.operations;
  operations.behavior.seed = config.seed + 1;
  operations.attacks.seed = config.seed + 2;
  operations.attacks.scale = config.scale;
  operations.misconfigs.seed = config.seed + 3;
  operations.misconfigs.scale = config.scale;
  result.op_world = bgpsim::build_op_world(result.truth, operations);
  result.timings.op_world_ms = ms_since(stage_start);

  // Delegation archive with every 3.1 defect class, then restoration.
  stage_start = Clock::now();
  rirsim::InjectorConfig injector = config.injector;
  injector.seed = config.seed + 4;
  injector.scale = config.scale;
  const rirsim::SimulatedArchive archive(result.truth, injector);
  result.timings.render_ms = ms_since(stage_start);

  stage_start = Clock::now();
  const rirsim::GroundTruth& truth = result.truth;
  const bgp::ActivityTable* hint =
      config.bgp_hint_for_duplicates ? &result.op_world.activity : nullptr;
  if (config.inject_chaos) {
    // Feed each registry through the fault injector. Each shard keeps its
    // own sink; merging them in registry order reproduces the books one
    // shared sink would hold (the serial path fed registries in exactly
    // that order), so the cross-registry accounting invariants still run
    // over identical counters.
    std::array<robust::ErrorSink, asn::kRirCount> shard_sinks;
    exec::parallel_for(
        asn::kRirCount,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            const asn::Rir rir = asn::kAllRirs[i];
            robust::ChaosConfig chaos = config.chaos;
            chaos.seed = config.chaos.seed + asn::index_of(rir);
            robust::FaultStream stream(archive.stream(rir), chaos,
                                       &shard_sinks[i]);
            result.restored.registries[i] = restore::restore_registry(
                stream, config.restore, &result.truth.erx, hint,
                &shard_sinks[i]);
          }
        },
        /*grain=*/1);
    robust::ErrorSink sink(robust::Policy::kLenient);
    for (const robust::ErrorSink& shard : shard_sinks) sink.merge(shard);
    result.restored.cross = restore::reconcile_registries(
        result.restored.registries,
        [&truth](asn::Asn a) { return truth.iana.owner(a); }, config.restore,
        result.truth.archive_begin);
    result.robustness = sink.counters();
  } else {
    std::array<std::unique_ptr<dele::ArchiveStream>, asn::kRirCount> streams;
    for (asn::Rir rir : asn::kAllRirs)
      streams[asn::index_of(rir)] = archive.stream(rir);
    result.restored = restore::restore_archive(
        std::move(streams), config.restore, &result.truth.erx,
        [&truth](asn::Asn a) { return truth.iana.owner(a); },
        result.truth.archive_begin, hint);
  }
  result.timings.restore_ms = ms_since(stage_start);

  // Both lifetime datasets and the joint lens.
  stage_start = Clock::now();
  result.admin = lifetimes::build_admin_lifetimes(result.restored,
                                                  result.truth.archive_end);
  result.timings.admin_ms = ms_since(stage_start);

  stage_start = Clock::now();
  result.op = lifetimes::build_op_lifetimes(result.op_world.activity,
                                            config.op_timeout_days);
  result.timings.op_ms = ms_since(stage_start);

  stage_start = Clock::now();
  result.taxonomy = joint::classify(result.admin, result.op);
  result.timings.taxonomy_ms = ms_since(stage_start);

  result.timings.total_ms = ms_since(run_start);
  return result;
}

}  // namespace pl::pipeline
