#include "pipeline/pipeline.hpp"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <utility>
#include <vector>

#include "check/contracts.hpp"
#include "delegation/fault_stream.hpp"
#include "delegation/interchange.hpp"
#include "exec/pool.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/span.hpp"
#include "util/intern.hpp"

namespace pl::pipeline {

namespace {

/// Resolve an output path: explicit config wins, else the environment
/// variable, else disabled (empty).
std::string resolve_path(const std::string& configured, const char* env) {
  if (!configured.empty()) return configured;
  const char* value = std::getenv(env);
  return value == nullptr ? std::string() : std::string(value);
}

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size()));
  if (!out)
    std::cerr << "pl::pipeline: failed to write report to " << path << '\n';
}

/// Per-registry restoration substages: the §3.1 sanitization-step ledger
/// and the ingestion-guard ledger, as children of the registry span. Runs
/// on the restore worker that owns the span — every Span operation locks
/// the Trace, so this is safe alongside sibling shards.
void annotate_registry_span(obs::Span& span,
                            const restore::RestoredRegistry& registry) {
  const restore::RestorationReport& report = registry.report;
  {
    obs::Span sanitization = span.child("sanitization");
    sanitization.note("days_processed", report.days_processed);
    sanitization.note("files_missing", report.files_missing);
    sanitization.note("files_corrupt", report.files_corrupt);
    sanitization.note("gap_filled_days", report.gap_filled_days);
    sanitization.note("recovered_from_regular", report.recovered_from_regular);
    sanitization.note("newest_conflict_days", report.newest_conflict_days);
    sanitization.note("duplicates_resolved", report.duplicates_resolved);
    sanitization.note("future_dates_fixed", report.future_dates_fixed);
    sanitization.note("placeholder_dates_restored",
                      report.placeholder_dates_restored);
    sanitization.note("grace_expired_drops", report.grace_expired_drops);
  }
  {
    obs::Span ingest = span.child("ingest");
    ingest.note("days_quarantined_duplicate",
                report.days_quarantined_duplicate);
    ingest.note("days_quarantined_late", report.days_quarantined_late);
    ingest.note("days_reorder_recovered", report.days_reorder_recovered);
    ingest.note("misuse_calls", report.misuse_calls);
  }
  std::int64_t spans = 0;
  for (const auto& [asn, list] : registry.spans)
    spans += static_cast<std::int64_t>(list.size());
  span.note("asns", static_cast<std::int64_t>(registry.spans.size()));
  span.note("spans", spans);
}

/// Dump the per-stage timings as a pl-flight/1 file: one EventKind::kStage
/// event per Fig. 1 stage (detail = stage ordinal, a = microseconds), so
/// batch runs leave the same post-mortem artifact the serving layer does.
void write_file_flight(const std::string& path, const StageTimings& timings) {
  const std::pair<const char*, double> stages[] = {
      {"world", timings.world_ms},
      {"op_world", timings.op_world_ms},
      {"render", timings.render_ms},
      {"restore", timings.restore_ms},
      {"admin", timings.admin_ms},
      {"op", timings.op_ms},
      {"taxonomy", timings.taxonomy_ms},
      {"build_snapshot", timings.build_snapshot_ms},
      {"save_snapshot", timings.save_snapshot_ms},
  };
  std::vector<obs::FlightEvent> events;
  std::uint32_t ordinal = 0;
  std::uint64_t seq = 0;
  for (const auto& [name, ms] : stages) {
    static_cast<void>(name);  // ordinal is the wire identity; see DESIGN §14
    ++ordinal;
    if (ms <= 0.0) continue;  // stage did not run (e.g. no post_stage hook)
    events.push_back(obs::FlightEvent{
        0, static_cast<std::uint32_t>(obs::EventKind::kStage), ordinal,
        static_cast<std::int64_t>(ms * 1000.0), seq++});
  }
  const obs::FlightIoStatus wrote = obs::write_flight_events(
      path, events, static_cast<std::uint64_t>(events.size()), 0);
  if (wrote != obs::FlightIoStatus::kOk)
    std::cerr << "pl::pipeline: failed to write flight dump to " << path
              << '\n';
}

}  // namespace

StageTimings timings_from_trace(const obs::TraceNode& root) {
  StageTimings timings;
  const auto stage_ms = [&root](std::string_view name) {
    const obs::TraceNode* node = root.child(name);
    return node == nullptr ? 0.0 : node->elapsed_ms;
  };
  timings.world_ms = stage_ms("world");
  timings.op_world_ms = stage_ms("op_world");
  timings.render_ms = stage_ms("render");
  timings.restore_ms = stage_ms("restore");
  timings.admin_ms = stage_ms("admin");
  timings.op_ms = stage_ms("op");
  timings.taxonomy_ms = stage_ms("taxonomy");
  timings.build_snapshot_ms = stage_ms("serve.build_snapshot");
  timings.save_snapshot_ms = stage_ms("serve.save_snapshot");
  timings.total_ms = root.elapsed_ms;
  return timings;
}

Result run_simulated(const Config& config) {
  // Pin the worker count for this run when the caller asked for one;
  // restored on exit so pipelines with different knobs can share a process.
  std::optional<exec::ScopedThreads> scoped_threads;
  if (config.threads >= 0) scoped_threads.emplace(config.threads);

  Result result;
  obs::Trace trace;
  obs::Registry metrics;
  obs::Span run = trace.root("pipeline");
  run.note("seed", static_cast<std::int64_t>(config.seed));
  // Worker count is a trace note, not a metric: metric values must stay
  // bit-identical across PL_THREADS settings, the trace merely documents
  // how this particular run was scheduled.
  run.note("threads", exec::current_threads());
  run.note("chaos", config.inject_chaos ? 1 : 0);

  // Administrative ground truth.
  {
    obs::Span stage = run.child("world");
    result.truth = rirsim::build_world(rirsim::WorldConfig{
        config.seed, config.scale, asn::archive_begin_day(),
        asn::archive_end_day()});
    stage.note("lives", static_cast<std::int64_t>(result.truth.lives.size()));
    stage.note("orgs", static_cast<std::int64_t>(result.truth.orgs.size()));
  }

  // Operational dimension (behaviours, attacks, misconfigurations) — seeds
  // derived from the master seed so one knob controls the world.
  {
    obs::Span stage = run.child("op_world");
    bgpsim::OpWorldConfig operations = config.operations;
    operations.behavior.seed = config.seed + 1;
    operations.attacks.seed = config.seed + 2;
    operations.attacks.scale = config.scale;
    operations.misconfigs.seed = config.seed + 3;
    operations.misconfigs.scale = config.scale;
    result.op_world = bgpsim::build_op_world(result.truth, operations);
    bgp::record_metrics(result.op_world.activity, metrics);
    stage.note("active_asns",
               static_cast<std::int64_t>(result.op_world.activity.asn_count()));
  }

  // Delegation archive with every 3.1 defect class, rendered and serialized
  // to the configured interchange format. The encode drains the generator
  // here, so the render stage owns the whole cost of producing the archive;
  // restore only pays for decoding.
  std::array<dele::EncodedArchive, asn::kRirCount> encoded;
  {
    obs::Span stage = run.child("render");
    rirsim::InjectorConfig injector = config.injector;
    injector.seed = config.seed + 4;
    injector.scale = config.scale;
    rirsim::SimulatedArchive archive(result.truth, injector);
    exec::parallel_for(
        asn::kRirCount,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            const std::unique_ptr<dele::ArchiveStream> stream =
                archive.stream(asn::kAllRirs[i]);
            encoded[i] = dele::encode_archive(*stream, config.interchange);
          }
        },
        /*grain=*/1);
    std::int64_t archive_bytes = 0;
    for (const dele::EncodedArchive& a : encoded)
      archive_bytes += static_cast<std::int64_t>(a.bytes.size());
    stage.note("interchange_binary",
               config.interchange == dele::Interchange::kBinary ? 1 : 0);
    stage.note("archive_bytes", archive_bytes);
  }

  {
    obs::Span restore_span = run.child("restore");
    const rirsim::GroundTruth& truth = result.truth;
    const bgp::ActivityTable* hint =
        config.bgp_hint_for_duplicates ? &result.op_world.activity : nullptr;

    // One shard per registry, chaos or not; the chaos path merely wraps
    // each stream in a fault injector feeding a per-shard sink. Per-registry
    // spans are opened serially here, then each shard annotates and closes
    // its own — children of a span must come from the thread holding it.
    std::array<obs::Span, asn::kRirCount> registry_spans;
    for (std::size_t i = 0; i < asn::kRirCount; ++i)
      registry_spans[i] = restore_span.child(
          "registry:" + std::string(asn::file_token(asn::kAllRirs[i])));

    std::array<robust::ErrorSink, asn::kRirCount> shard_sinks;
    std::array<std::shared_ptr<const util::StringPool>, asn::kRirCount>
        shard_names;
    exec::parallel_for(
        asn::kRirCount,
        [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) {
            const asn::Rir rir = asn::kAllRirs[i];
            pl::StatusOr<std::unique_ptr<dele::DeltaArchiveReader>> reader =
                dele::open_archive(encoded[i]);
            // The blob was produced in-process a stage ago; failing to open
            // it is a bug, not an input fault.
            PL_EXPECT(reader.ok(), "interchange archive failed to open");
            if (!reader.ok()) continue;
            shard_names[i] = (*reader)->names();
            if (config.inject_chaos) {
              robust::ChaosConfig chaos = config.chaos;
              chaos.seed = config.chaos.seed + asn::index_of(rir);
              dele::FaultStream stream(std::move(*reader), chaos,
                                       &shard_sinks[i]);
              result.restored.registries[i] = restore::restore_registry(
                  stream, config.restore, &truth.erx, hint, &shard_sinks[i]);
            } else {
              result.restored.registries[i] = restore::restore_registry(
                  **reader, config.restore, &truth.erx, hint);
            }
            // Metrics land from inside the shard: counters are striped
            // atomics, so concurrent publication still sums to the same
            // values a serial run records.
            restore::record_metrics(result.restored.registries[i], metrics);
            annotate_registry_span(registry_spans[i],
                                   result.restored.registries[i]);
            registry_spans[i].finish();
          }
        },
        /*grain=*/1);

    // Union of the per-registry token vocabularies, merged in registry
    // order so the combined pool's ids are deterministic.
    {
      auto names = std::make_shared<util::StringPool>();
      for (const auto& shard : shard_names) {
        if (shard == nullptr) continue;
        for (std::uint32_t id = 0; id < shard->size(); ++id)
          names->intern(shard->at(id));
      }
      result.restored.names = std::move(names);
    }

    if (config.inject_chaos) {
      // Merging shard sinks in registry order reproduces the books one
      // shared sink fed serially would hold, so the cross-registry
      // accounting invariants still run over identical counters.
      robust::ErrorSink sink(robust::Policy::kLenient);
      for (const robust::ErrorSink& shard : shard_sinks) sink.merge(shard);
      result.robustness = sink.counters();
      robust::record_metrics(result.robustness, metrics);
    }

    obs::Span reconcile = restore_span.child("reconcile");
    result.restored.cross = restore::reconcile_registries(
        result.restored.registries,
        [&truth](asn::Asn a) { return truth.iana.owner(a); }, config.restore,
        result.truth.archive_begin);
    restore::record_metrics(result.restored.cross, metrics);
    reconcile.note("overlapping_asns", result.restored.cross.overlapping_asns);
    reconcile.note("stale_spans_trimmed",
                   result.restored.cross.stale_spans_trimmed);
    reconcile.note("mistaken_spans_removed",
                   result.restored.cross.mistaken_spans_removed);
  }

  // Both lifetime datasets and the joint lens.
  {
    obs::Span stage = run.child("admin");
    result.admin = lifetimes::build_admin_lifetimes(result.restored,
                                                    result.truth.archive_end);
    lifetimes::record_metrics(result.admin, metrics);
    stage.note("lifetimes",
               static_cast<std::int64_t>(result.admin.lifetimes.size()));
    stage.note("asns", static_cast<std::int64_t>(result.admin.asn_count()));
  }

  {
    obs::Span stage = run.child("op");
    result.op = lifetimes::build_op_lifetimes(result.op_world.activity,
                                              config.op_timeout_days);
    lifetimes::record_metrics(result.op, metrics);
    stage.note("lifetimes",
               static_cast<std::int64_t>(result.op.lifetimes.size()));
    stage.note("asns", static_cast<std::int64_t>(result.op.asn_count()));
  }

  {
    obs::Span stage = run.child("taxonomy");
    result.taxonomy = joint::classify(result.admin, result.op);
    joint::record_metrics(result.taxonomy, metrics);
    const auto count = [&](joint::Category category, bool admin) {
      const auto& counts =
          admin ? result.taxonomy.admin_counts : result.taxonomy.op_counts;
      return counts[static_cast<std::size_t>(category)];
    };
    obs::Span admin_classes = stage.child("admin_classes");
    admin_classes.note("complete_overlap",
                       count(joint::Category::kCompleteOverlap, true));
    admin_classes.note("partial_overlap",
                       count(joint::Category::kPartialOverlap, true));
    admin_classes.note("unused", count(joint::Category::kUnused, true));
    admin_classes.finish();
    obs::Span op_classes = stage.child("op_classes");
    op_classes.note("complete_overlap",
                    count(joint::Category::kCompleteOverlap, false));
    op_classes.note("partial_overlap",
                    count(joint::Category::kPartialOverlap, false));
    op_classes.note("outside_delegation",
                    count(joint::Category::kOutsideDelegation, false));
    op_classes.finish();
  }

  if (config.post_stage) config.post_stage(result, run, metrics);

  run.finish();
  result.report.trace = trace.tree();
  result.report.metrics = metrics.snapshot();
  result.timings = timings_from_trace(result.report.trace);

  const std::string trace_path = resolve_path(config.trace_path, "PL_TRACE");
  if (!trace_path.empty()) write_file(trace_path, obs::to_json(result.report));
  const std::string prom_path = resolve_path(config.prom_path, "PL_PROM");
  if (!prom_path.empty())
    write_file(prom_path, obs::to_prometheus(result.report.metrics));
  const std::string flight_path =
      resolve_path(config.flight_path, "PL_FLIGHT");
  if (!flight_path.empty())
    write_file_flight(flight_path, result.timings);

  return result;
}

}  // namespace pl::pipeline
