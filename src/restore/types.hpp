// Output types of the restoration pipeline (paper 3.1): per-registry,
// per-ASN status-span timelines reconstructed from the noisy archive, plus
// audit reports of what each restoration step did.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "asn/rir.hpp"
#include "delegation/record.hpp"
#include "util/intern.hpp"
#include "util/interval.hpp"

namespace pl::restore {

/// A maximal run of days over which one registry reported one state for one
/// ASN (after restoration).
struct StateSpan {
  util::DayInterval days;
  dele::RecordState state;

  friend bool operator==(const StateSpan&, const StateSpan&) = default;
};

/// Audit counters for one registry's restoration pass; each maps to a 3.1
/// step. Benches print these alongside the paper's reported incidence.
struct RestorationReport {
  std::int64_t days_processed = 0;
  std::int64_t files_missing = 0;           ///< step i events
  std::int64_t files_corrupt = 0;
  std::int64_t gap_filled_days = 0;         ///< missing days bridged
  std::int64_t recovered_from_regular = 0;  ///< step ii/iii record recoveries
  std::int64_t newest_conflict_days = 0;    ///< step iii days with conflicts
  std::int64_t duplicates_resolved = 0;     ///< step iv episodes
  std::int64_t future_dates_fixed = 0;      ///< step v
  std::int64_t placeholder_dates_restored = 0;  ///< step v (ERX)
  std::int64_t grace_expired_drops = 0;     ///< regular-only records dropped

  // Ingestion-guard counters (robustness layer): day observations that
  // violated the strictly-increasing-day contract and what became of them.
  // days_processed counts *applied* days only, so
  //   days_processed + quarantined == days offered.
  std::int64_t days_quarantined_duplicate = 0;  ///< same day seen again
  std::int64_t days_quarantined_late = 0;   ///< arrived beyond the window
  std::int64_t days_reorder_recovered = 0;  ///< out-of-order but recovered
  std::int64_t misuse_calls = 0;  ///< consume()/checkpoint() on a spent
                                  ///< or moved-from restorer

  friend bool operator==(const RestorationReport&,
                         const RestorationReport&) = default;
};

/// Cross-registry reconciliation audit (step vi).
struct CrossRirReport {
  std::int64_t overlapping_asns = 0;
  std::int64_t stale_spans_trimmed = 0;
  std::int64_t mistaken_spans_removed = 0;
};

/// One registry's restored archive.
struct RestoredRegistry {
  asn::Rir rir = asn::Rir::kArin;
  /// Per ASN: ordered, disjoint status spans (all statuses, including
  /// reserved/available, which the lifetime builder needs).
  std::map<std::uint32_t, std::vector<StateSpan>> spans;
  RestorationReport report;
};

/// All five registries plus the cross-registry reconciliation result.
struct RestoredArchive {
  std::array<RestoredRegistry, asn::kRirCount> registries;
  CrossRirReport cross;
  /// Token vocabulary of the source archives (registry, status and country
  /// tokens), interned once at archive-open and shared by reference. All
  /// record state is stored as small-int ids / packed codes; these are the
  /// strings for the text-output boundary (reports, exports). May be null
  /// when the archive was restored from a pre-interchange stream.
  std::shared_ptr<const util::StringPool> names;

  const RestoredRegistry& registry(asn::Rir rir) const noexcept {
    return registries[asn::index_of(rir)];
  }
};

}  // namespace pl::restore
