// The restoration pipeline (paper 3.1): six sanitization steps turning 17
// years of imperfect delegation files into consistent per-ASN status
// timelines.
//
//   (i)   missing-file gap filling — state carries across absent/corrupt
//         files when the record reappears unchanged;
//   (ii)  missing-record recovery — records that vanish from the extended
//         file while still present in the regular file are kept;
//   (iii) same-day reconciliation — when both files of a day disagree, the
//         newest wins, except short disappearances recovered from the older;
//   (iv)  invalid-duplicate resolution — conflicting duplicate records
//         (AfriNIC) resolved from history and, optionally, BGP activity;
//   (v)   registration-date repair — future dates clamped to first
//         appearance; placeholder dates (1993-09-01) restored from the ERX
//         reference records;
//   (vi)  inter-RIR reconciliation — stale transfer data trimmed and
//         mistaken foreign-block allocations removed.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "bgp/activity.hpp"
#include "delegation/archive.hpp"
#include "restore/types.hpp"

namespace pl::restore {

/// Original registration dates for ERX-transferred resources ("erx-asns"
/// style reference data).
using ErxDates = std::map<std::uint32_t, util::Day>;

/// Resolver from ASN to the RIR that holds its IANA block (nullopt when the
/// number was never delegated to a registry).
using BlockOwnerFn =
    std::function<std::optional<asn::Rir>(asn::Asn)>;

struct RestoreConfig {
  /// Days an ASN may be absent from the preferred (extended) channel while
  /// still trusted from the regular channel (steps ii/iii).
  int recovery_grace_days = 7;
  /// The placeholder registration date RIPE NCC records travel back to.
  util::Day placeholder_date = util::make_day(1993, 9, 1);
  /// Spans starting this close to the archive begin are treated as
  /// inherited pre-archive state and exempt from the step-vi
  /// no-predecessor rule.
  int grandfather_margin_days = 3;

  // Ablation switches — disable individual restoration steps to measure
  // their contribution (bench_ablation_restore).
  bool recover_from_regular = true;  ///< steps ii/iii
  bool resolve_duplicates = true;    ///< step iv
  bool repair_dates = true;          ///< step v
};

/// Restore one registry from its day stream. `erx` and `bgp_hint` are
/// optional reference data (step v and iv respectively).
RestoredRegistry restore_registry(dele::ArchiveStream& stream,
                                  const RestoreConfig& config,
                                  const ErxDates* erx = nullptr,
                                  const bgp::ActivityTable* bgp_hint = nullptr);

/// Incremental restorer: feed day observations as they are published (the
/// paper commits to updating its datasets daily, 9 — this is the API a
/// near-realtime deployment drives). `restore_registry` is a thin loop over
/// this class.
class StreamingRestorer {
 public:
  StreamingRestorer(asn::Rir rir, const RestoreConfig& config,
                    const ErxDates* erx = nullptr,
                    const bgp::ActivityTable* bgp_hint = nullptr);
  ~StreamingRestorer();

  StreamingRestorer(StreamingRestorer&&) noexcept;
  StreamingRestorer& operator=(StreamingRestorer&&) noexcept;

  /// Apply one day. Days must arrive in strictly increasing order.
  void consume(const dele::DayObservation& observation);

  /// Close all open spans, run the date-repair post-pass, and return the
  /// restored registry. The restorer is spent afterwards.
  RestoredRegistry finalize() &&;

  /// Progress so far (counters update as days are consumed).
  const RestorationReport& report() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Step vi across already-restored registries. `owner` supplies IANA block
/// ownership; pass nullptr to skip the foreign-block rule.
CrossRirReport reconcile_registries(
    std::array<RestoredRegistry, asn::kRirCount>& registries,
    const BlockOwnerFn& owner, const RestoreConfig& config,
    util::Day archive_begin);

/// Convenience: run all five registries plus reconciliation.
RestoredArchive restore_archive(
    std::array<std::unique_ptr<dele::ArchiveStream>, asn::kRirCount> streams,
    const RestoreConfig& config, const ErxDates* erx,
    const BlockOwnerFn& owner, util::Day archive_begin,
    const bgp::ActivityTable* bgp_hint = nullptr);

}  // namespace pl::restore
