// The restoration pipeline (paper 3.1): six sanitization steps turning 17
// years of imperfect delegation files into consistent per-ASN status
// timelines.
//
//   (i)   missing-file gap filling — state carries across absent/corrupt
//         files when the record reappears unchanged;
//   (ii)  missing-record recovery — records that vanish from the extended
//         file while still present in the regular file are kept;
//   (iii) same-day reconciliation — when both files of a day disagree, the
//         newest wins, except short disappearances recovered from the older;
//   (iv)  invalid-duplicate resolution — conflicting duplicate records
//         (AfriNIC) resolved from history and, optionally, BGP activity;
//   (v)   registration-date repair — future dates clamped to first
//         appearance; placeholder dates (1993-09-01) restored from the ERX
//         reference records;
//   (vi)  inter-RIR reconciliation — stale transfer data trimmed and
//         mistaken foreign-block allocations removed.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "bgp/activity.hpp"
#include "delegation/archive.hpp"
#include "delegation/interchange.hpp"
#include "obs/metrics.hpp"
#include "restore/types.hpp"
#include "robust/error.hpp"

namespace pl::restore {

/// Original registration dates for ERX-transferred resources ("erx-asns"
/// style reference data).
using ErxDates = std::map<std::uint32_t, util::Day>;

/// Resolver from ASN to the RIR that holds its IANA block (nullopt when the
/// number was never delegated to a registry).
using BlockOwnerFn =
    std::function<std::optional<asn::Rir>(asn::Asn)>;

struct RestoreConfig {
  /// Days an ASN may be absent from the preferred (extended) channel while
  /// still trusted from the regular channel (steps ii/iii).
  int recovery_grace_days = 7;
  /// The placeholder registration date RIPE NCC records travel back to.
  util::Day placeholder_date = util::make_day(1993, 9, 1);
  /// Spans starting this close to the archive begin are treated as
  /// inherited pre-archive state and exempt from the step-vi
  /// no-predecessor rule.
  int grandfather_margin_days = 3;
  /// Bounded reorder window for out-of-order day observations. 0 (the
  /// default, and the historical behaviour for well-formed streams) applies
  /// each day immediately and quarantines anything at-or-before the last
  /// applied day. W > 0 holds a day back until a day more than W later has
  /// been seen, so swapped deliveries up to W days apart are re-sorted
  /// instead of quarantined. Duplicates are always quarantined.
  int reorder_window_days = 0;

  // Ablation switches — disable individual restoration steps to measure
  // their contribution (bench_ablation_restore).
  bool recover_from_regular = true;  ///< steps ii/iii
  bool resolve_duplicates = true;    ///< step iv
  bool repair_dates = true;          ///< step v
};

/// Restore one registry from its day stream. `erx` and `bgp_hint` are
/// optional reference data (step v and iv respectively); `sink` receives
/// structured diagnostics for stream-discipline violations.
RestoredRegistry restore_registry(dele::ArchiveStream& stream,
                                  const RestoreConfig& config,
                                  const ErxDates* erx = nullptr,
                                  const bgp::ActivityTable* bgp_hint = nullptr,
                                  robust::ErrorSink* sink = nullptr);

/// Zero-copy variant: drive the restorer from a decoded interchange reader
/// via its view API, so no per-day DayObservation is ever materialized on
/// the in-order fast path. A decode failure is a hard error (the archive is
/// produced in-process by the render stage); use the ArchiveStream overload
/// plus dele::FaultStream when the stream is untrusted.
RestoredRegistry restore_registry(dele::DeltaArchiveReader& reader,
                                  const RestoreConfig& config,
                                  const ErxDates* erx = nullptr,
                                  const bgp::ActivityTable* bgp_hint = nullptr,
                                  robust::ErrorSink* sink = nullptr);

/// Incremental restorer: feed day observations as they are published (the
/// paper commits to updating its datasets daily, 9 — this is the API a
/// near-realtime deployment drives). `restore_registry` is a thin loop over
/// this class.
///
/// Robustness contract: out-of-order and duplicate days are re-sorted
/// (within `RestoreConfig::reorder_window_days`) or quarantined with a
/// diagnostic, never undefined behaviour; `consume()` on a finalized or
/// moved-from restorer is a counted no-op; the full streaming state can be
/// checkpointed at any day boundary and resumed bit-identically.
class StreamingRestorer {
 public:
  StreamingRestorer(asn::Rir rir, const RestoreConfig& config,
                    const ErxDates* erx = nullptr,
                    const bgp::ActivityTable* bgp_hint = nullptr,
                    robust::ErrorSink* sink = nullptr);
  ~StreamingRestorer();

  StreamingRestorer(StreamingRestorer&&) noexcept;
  StreamingRestorer& operator=(StreamingRestorer&&) noexcept;

  /// Apply one day. Days are expected in strictly increasing order;
  /// violations are buffered (inside the reorder window) or quarantined.
  void consume(const dele::DayObservation& observation);

  /// Zero-copy overload: applies straight from reader-owned view storage.
  /// The view (and everything its spans reference) only needs to stay valid
  /// for the duration of the call.
  void consume(const dele::DayObservationView& observation);

  /// Close all open spans, run the date-repair post-pass, and return the
  /// restored registry. The restorer is spent afterwards; further calls
  /// are safe no-ops that raise misuse diagnostics.
  RestoredRegistry finalize() &&;

  /// Progress so far (counters update as days are consumed). Safe on a
  /// spent/moved-from restorer (returns the frozen or empty report).
  const RestorationReport& report() const noexcept;

  /// Serialize the complete streaming state (CRC-framed, versioned). Empty
  /// string + misuse diagnostic on a spent restorer.
  std::string checkpoint() const;

  /// Rebuild a restorer from a checkpoint so ingestion resumes at the next
  /// day boundary. `config`/`erx`/`bgp_hint` are the same reference data
  /// the original run used — key config fields are validated against the
  /// blob. Returns nullopt (with a kCheckpoint diagnostic in `sink`) on a
  /// corrupt, truncated, or incompatible blob.
  static std::optional<StreamingRestorer> from_checkpoint(
      std::string_view blob, const RestoreConfig& config,
      const ErxDates* erx = nullptr,
      const bgp::ActivityTable* bgp_hint = nullptr,
      robust::ErrorSink* sink = nullptr);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  robust::ErrorSink* sink_ = nullptr;   ///< kept for post-finalize misuse
  /// Frozen counters after finalize; mutable so const entry points can
  /// still count misuse on a spent restorer.
  mutable RestorationReport spent_report_;
};

/// Publish one registry's sanitization-step accounting (§3.1 steps i–v plus
/// the ingestion guard) into the metrics registry, labelled
/// `{registry="<file token>"}`. Counters only — parallel-safe, so the
/// pipeline calls this from inside the per-registry restore shards.
void record_metrics(const RestorationReport& report, asn::Rir rir,
                    obs::Registry& metrics);

/// As above plus the per-registry span/ASN census from the restored output.
void record_metrics(const RestoredRegistry& registry, obs::Registry& metrics);

/// Publish the step-vi cross-registry reconciliation counters.
void record_metrics(const CrossRirReport& report, obs::Registry& metrics);

/// Step vi across already-restored registries. `owner` supplies IANA block
/// ownership; pass nullptr to skip the foreign-block rule.
CrossRirReport reconcile_registries(
    std::array<RestoredRegistry, asn::kRirCount>& registries,
    const BlockOwnerFn& owner, const RestoreConfig& config,
    util::Day archive_begin);

/// Convenience: run all five registries plus reconciliation.
RestoredArchive restore_archive(
    std::array<std::unique_ptr<dele::ArchiveStream>, asn::kRirCount> streams,
    const RestoreConfig& config, const ErxDates* erx,
    const BlockOwnerFn& owner, util::Day archive_begin,
    const bgp::ActivityTable* bgp_hint = nullptr);

}  // namespace pl::restore
