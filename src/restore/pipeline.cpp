#include "restore/pipeline.hpp"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "check/contracts.hpp"
#include "delegation/interchange.hpp"
#include "exec/pool.hpp"
#include "robust/checkpoint.hpp"

namespace pl::restore {

namespace {

using dele::ChannelDelta;
using dele::ChannelDeltaView;
using dele::DayObservation;
using dele::DayObservationView;
using dele::FileCondition;
using dele::RecordChange;
using dele::RecordState;
using robust::CheckpointReader;
using robust::CheckpointWriter;
using util::Day;
using util::DayInterval;

// ---- Checkpoint schema helpers (one function pair per streamed type).

std::uint16_t pack_country(const asn::CountryCode& country) {
  if (country.unknown()) return 0;
  const std::string text = country.to_string();
  return static_cast<std::uint16_t>(
      (static_cast<std::uint8_t>(text[0]) << 8) |
      static_cast<std::uint8_t>(text[1]));
}

asn::CountryCode unpack_country(std::uint16_t packed) {
  if (packed == 0) return {};
  return asn::CountryCode::literal(static_cast<char>(packed >> 8),
                                   static_cast<char>(packed & 0xFF));
}

void write_state(CheckpointWriter& writer, const RecordState& state) {
  writer.u8(static_cast<std::uint8_t>(state.status));
  writer.boolean(state.registration_date.has_value());
  writer.i32(state.registration_date.value_or(0));
  writer.u16(pack_country(state.country));
  writer.u64(state.opaque_id);
}

RecordState read_state(CheckpointReader& reader) {
  RecordState state;
  const std::uint8_t status = reader.u8();
  state.status = static_cast<dele::Status>(status & 0x03);
  const bool has_date = reader.boolean();
  const Day date = reader.i32();
  if (has_date) state.registration_date = date;
  state.country = unpack_country(reader.u16());
  state.opaque_id = reader.u64();
  return state;
}

void write_delta(CheckpointWriter& writer, const ChannelDelta& delta) {
  writer.u8(static_cast<std::uint8_t>(delta.condition));
  writer.i32(delta.publish_minute);
  writer.varint(delta.changes.size());
  for (const RecordChange& change : delta.changes) {
    writer.u32(change.asn.value);
    writer.boolean(change.state.has_value());
    if (change.state) write_state(writer, *change.state);
  }
  writer.varint(delta.duplicates.size());
  for (const auto& [asn, state] : delta.duplicates) {
    writer.u32(asn.value);
    write_state(writer, state);
  }
}

ChannelDelta read_delta(CheckpointReader& reader) {
  ChannelDelta delta;
  delta.condition = static_cast<FileCondition>(reader.u8() & 0x03);
  delta.publish_minute = reader.i32();
  const std::uint64_t changes = reader.container_size(5);
  delta.changes.reserve(reader.ok() ? changes : 0);
  for (std::uint64_t i = 0; reader.ok() && i < changes; ++i) {
    RecordChange change;
    change.asn = asn::Asn{reader.u32()};
    if (reader.boolean()) change.state = read_state(reader);
    delta.changes.push_back(std::move(change));
  }
  const std::uint64_t duplicates = reader.container_size(4);
  for (std::uint64_t i = 0; reader.ok() && i < duplicates; ++i) {
    const asn::Asn asn{reader.u32()};
    delta.duplicates.emplace_back(asn, read_state(reader));
  }
  return delta;
}

void write_observation(CheckpointWriter& writer,
                       const DayObservation& observation) {
  writer.i32(observation.day);
  write_delta(writer, observation.extended);
  write_delta(writer, observation.regular);
}

DayObservation read_observation(CheckpointReader& reader) {
  DayObservation observation;
  observation.day = reader.i32();
  observation.extended = read_delta(reader);
  observation.regular = read_delta(reader);
  return observation;
}

/// Builds per-ASN spans incrementally from effective-state transitions.
class SpanBuilder {
 public:
  void set(std::uint32_t asn, Day day, const RecordState& state) {
    // try_emplace builds the Open in place only on insertion, so the common
    // update/unchanged paths never copy a RecordState temporary.
    auto [it, inserted] = open_.try_emplace(asn, day, state);
    if (!inserted) {
      if (it->second.state == state) return;  // unchanged, span continues
      close_one(asn, it->second, day - 1);
      it->second.since = day;
      it->second.state = state;
    }
  }

  void clear(std::uint32_t asn, Day day) {
    const auto it = open_.find(asn);
    if (it == open_.end()) return;
    close_one(asn, it->second, day - 1);
    open_.erase(it);
  }

  bool is_open(std::uint32_t asn) const noexcept {
    return open_.contains(asn);
  }

  const RecordState* open_state(std::uint32_t asn) const noexcept {
    const auto it = open_.find(asn);
    return it == open_.end() ? nullptr : &it->second.state;
  }

  void save(CheckpointWriter& writer) const {
    // open_ is serialized sorted so checkpoints are byte-deterministic.
    writer.varint(open_.size());
    std::vector<std::uint32_t> keys;
    keys.reserve(open_.size());
    for (const auto& [asn, open] : open_) keys.push_back(asn);
    std::sort(keys.begin(), keys.end());
    for (const std::uint32_t asn : keys) {
      const Open& open = open_.at(asn);
      writer.u32(asn);
      writer.i32(open.since);
      write_state(writer, open.state);
    }
    // Closed spans are stored flat; group them by ASN (ascending, per-ASN
    // close order preserved) so the byte stream matches the historical
    // map<asn, list> serialization exactly.
    std::vector<std::pair<std::uint32_t, StateSpan>> grouped = closed_;
    std::stable_sort(grouped.begin(), grouped.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    std::uint64_t distinct = 0;
    for (std::size_t i = 0; i < grouped.size(); ++i)
      if (i == 0 || grouped[i].first != grouped[i - 1].first) ++distinct;
    writer.varint(distinct);
    for (std::size_t i = 0; i < grouped.size();) {
      const std::uint32_t asn = grouped[i].first;
      std::size_t end = i;
      while (end < grouped.size() && grouped[end].first == asn) ++end;
      writer.u32(asn);
      writer.varint(end - i);
      for (; i < end; ++i) {
        const StateSpan& span = grouped[i].second;
        writer.i32(span.days.first);
        writer.i32(span.days.last);
        write_state(writer, span.state);
      }
    }
  }

  void load(CheckpointReader& reader) {
    open_.clear();
    closed_.clear();
    const std::uint64_t open_count = reader.container_size(9);
    for (std::uint64_t i = 0; reader.ok() && i < open_count; ++i) {
      const std::uint32_t asn = reader.u32();
      const Day since = reader.i32();
      open_.try_emplace(asn, since, read_state(reader));
    }
    const std::uint64_t span_count = reader.container_size(5);
    for (std::uint64_t i = 0; reader.ok() && i < span_count; ++i) {
      const std::uint32_t asn = reader.u32();
      const std::uint64_t list_size = reader.container_size(8);
      for (std::uint64_t s = 0; reader.ok() && s < list_size; ++s) {
        StateSpan span;
        span.days.first = reader.i32();
        span.days.last = reader.i32();
        span.state = read_state(reader);
        closed_.emplace_back(asn, std::move(span));
      }
    }
  }

  // pl-lint: det-ok(stable sort re-canonicalises the drained spans below)
  std::map<std::uint32_t, std::vector<StateSpan>> finish(Day last_day) {
    // pl-lint: allow(unordered-drain) order-independent fold: each ASN
    // appears in open_ at most once, and grouping below is a stable sort by
    // ASN, so per-ASN span sequences don't depend on this drain order.
    for (auto& [asn, open] : open_)
      closed_.emplace_back(
          asn, StateSpan{DayInterval{open.since, last_day}, open.state});
    open_.clear();
    // Group the flat closed list by ASN. The stable sort keeps each ASN's
    // spans in close order, so the per-ASN day sort sees the same input
    // sequence (and produces the same output) as the old map-of-lists.
    std::stable_sort(closed_.begin(), closed_.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    std::map<std::uint32_t, std::vector<StateSpan>> out;
    std::vector<StateSpan> list;
    for (std::size_t i = 0; i < closed_.size();) {
      const std::uint32_t asn = closed_[i].first;
      list.clear();
      for (; i < closed_.size() && closed_[i].first == asn; ++i)
        list.push_back(std::move(closed_[i].second));
      std::sort(list.begin(), list.end(),
                [](const StateSpan& a, const StateSpan& b) {
                  return a.days.first < b.days.first;
                });
      out.emplace_hint(out.end(), asn, list);
    }
    closed_.clear();
    return out;
  }

 private:
  struct Open {
    Open(Day s, const RecordState& st) : since(s), state(st) {}

    Day since;
    RecordState state;
  };

  void close_one(std::uint32_t asn, const Open& open, Day last) {
    if (last >= open.since)
      closed_.emplace_back(asn,
                           StateSpan{DayInterval{open.since, last}, open.state});
  }

  std::unordered_map<std::uint32_t, Open> open_;
  /// Flat (asn, span) pairs in close order — grouped on save()/finish().
  /// A map<asn, vector> here cost a tree lookup per closed span on the
  /// restore hot path.
  std::vector<std::pair<std::uint32_t, StateSpan>> closed_;
};

bool in_era(const ChannelDeltaView& delta) noexcept {
  return delta.condition != FileCondition::kNotPublished;
}

bool present(const ChannelDeltaView& delta) noexcept {
  return delta.condition == FileCondition::kPresent;
}

}  // namespace

struct StreamingRestorer::Impl {
  Impl(asn::Rir rir, const RestoreConfig& restore_config,
       const ErxDates* erx_dates, const bgp::ActivityTable* hint,
       robust::ErrorSink* error_sink)
      : config(restore_config), erx(erx_dates), bgp_hint(hint),
        sink(error_sink) {
    out.rir = rir;
  }

  RestoreConfig config;
  const ErxDates* erx;
  const bgp::ActivityTable* bgp_hint;
  robust::ErrorSink* sink;

  RestoredRegistry out;

  /// Per-ASN restoration state, merged into one table so the hot
  /// resolve/apply paths pay a single hash lookup instead of one per concern
  /// (extended state, regular state, vanish tracking, first-seen, duplicate
  /// accounting each used to live in their own map). Flags gate validity;
  /// a falsey flag is exactly the old "key absent" case.
  struct Rec {
    RecordState ext;          ///< valid iff ext_present
    RecordState reg;          ///< valid iff reg_present
    Day vanished_day = 0;     ///< valid iff vanished
    Day first_seen_day = 0;   ///< valid iff seen
    bool ext_present = false;
    bool reg_present = false;
    /// Recently vanished from the extended channel while the regular one
    /// still lists the ASN.
    bool vanished = false;
    bool seen = false;
    bool dup_counted = false;  ///< duplicate episode already counted
  };
  std::unordered_map<std::uint32_t, Rec> recs;
  // Expiry queue for the recovery grace period.
  std::map<Day, std::vector<std::uint32_t>> grace_expiry;

  SpanBuilder builder;
  bool extended_era_started = false;
  Day last_day = 0;
  bool any_applied = false;

  // Ingestion guard: observations held back by the reorder window (value:
  // the observation plus whether it arrived behind a newer day), and the
  // newest day number seen on the wire.
  std::map<Day, std::pair<DayObservation, bool>> pending;
  Day newest_seen = 0;
  bool any_seen = false;

  // apply_day scratch (capacity persists across days).
  std::vector<std::uint32_t> touched_scratch;

  // Recompute the effective record for one ASN and apply it to the builder.
  void resolve(std::uint32_t asn, Day day, bool ext_usable) {
    RestorationReport& report = out.report;
    const auto it = recs.find(asn);
    if (it == recs.end()) {
      builder.clear(asn, day);
      return;
    }
    Rec& rec = it->second;
    if (extended_era_started && rec.ext_present) {
      builder.set(asn, day, rec.ext);
      rec.vanished = false;
      return;
    }
    if (rec.reg_present) {
      if (!extended_era_started) {
        builder.set(asn, day, rec.reg);
        return;
      }
      if (!config.recover_from_regular) {
        builder.clear(asn, day);
        return;
      }
      // Extended era active but the record is only in the regular file:
      // trust it within the grace window (steps ii/iii).
      if (!ext_usable || !rec.vanished ||
          day - rec.vanished_day <= config.recovery_grace_days) {
        if (rec.vanished) ++report.recovered_from_regular;
        builder.set(asn, day, rec.reg);
        return;
      }
      // Grace expired: the disappearance is real despite the stale regular
      // record.
      ++report.grace_expired_drops;
      builder.clear(asn, day);
      return;
    }
    builder.clear(asn, day);
  }

  void diagnose_stream(std::string code, std::string message, Day day) {
    if (sink == nullptr) return;
    sink->report({robust::Stage::kStream, robust::Severity::kWarning,
                  std::move(code), std::move(message), day, std::nullopt});
  }

  /// Quarantine one observation that violated the day-order contract.
  void quarantine(Day day, bool duplicate) {
    if (duplicate) {
      ++out.report.days_quarantined_duplicate;
      if (sink != nullptr) ++sink->counters().days_quarantined_duplicate;
      diagnose_stream("stream-duplicate-day",
                      "day observed again; quarantined", day);
    } else {
      ++out.report.days_quarantined_late;
      if (sink != nullptr) ++sink->counters().days_quarantined_late;
      diagnose_stream("stream-late-day",
                      "day arrived beyond the reorder window; quarantined",
                      day);
    }
  }

  /// Entry point for one wire observation: enforce the strictly-increasing
  /// contract, re-sorting within the bounded reorder window and
  /// quarantining the rest, then apply in order.
  void ingest(const DayObservation& obs) {
    const int window = config.reorder_window_days;
    if (any_applied && obs.day <= last_day) {
      quarantine(obs.day, obs.day == last_day);
      return;
    }
    if (window <= 0) {
      apply_day(dele::view_of(obs), /*arrived_late=*/false);
      return;
    }
    buffer_pending(obs);
  }

  /// Zero-copy entry point: applies straight from reader-owned storage on
  /// the in-order fast path; only the (rare) reorder-window path has to
  /// materialize an owned copy.
  void ingest(const DayObservationView& view) {
    const int window = config.reorder_window_days;
    if (any_applied && view.day <= last_day) {
      quarantine(view.day, view.day == last_day);
      return;
    }
    if (window <= 0) {
      apply_day(view, /*arrived_late=*/false);
      return;
    }
    buffer_pending(dele::materialize(view));
  }

  void buffer_pending(DayObservation obs) {
    const bool arrived_late = any_seen && obs.day < newest_seen;
    const Day day = obs.day;
    const auto [it, inserted] =
        pending.try_emplace(day, std::move(obs), arrived_late);
    if (!inserted) {
      quarantine(day, /*duplicate=*/true);
      return;
    }
    if (!any_seen || day > newest_seen) {
      newest_seen = day;
      any_seen = true;
    }
    flush_ready();
  }

  /// Apply every pending day old enough that no in-window reordering can
  /// still precede it.
  void flush_ready() {
    while (!pending.empty() &&
           pending.begin()->first + config.reorder_window_days <
               newest_seen) {
      auto node = pending.extract(pending.begin());
      apply_day(dele::view_of(node.mapped().first), node.mapped().second);
    }
  }

  void apply_day(const DayObservationView& obs, bool arrived_late) {
    PL_EXPECT(!any_applied || obs.day > last_day,
              "observations must apply in strictly increasing day order "
              "(the reorder window re-sorts, the quarantine drops the rest)");
    RestorationReport& report = out.report;
    const Day day = obs.day;
    last_day = day;
    any_applied = true;
    ++report.days_processed;
    if (arrived_late) {
      ++report.days_reorder_recovered;
      if (sink != nullptr) ++sink->counters().days_reorder_recovered;
    }
    if (sink != nullptr) ++sink->counters().days_applied;

    const bool ext_in_era = in_era(obs.extended);
    const bool reg_in_era = in_era(obs.regular);
    if (!ext_in_era && !reg_in_era) return;
    if (ext_in_era && !extended_era_started) extended_era_started = true;

    const bool ext_present = present(obs.extended);
    const bool reg_present = present(obs.regular);

    if (ext_in_era && obs.extended.condition == FileCondition::kMissing)
      ++report.files_missing;
    if (reg_in_era && obs.regular.condition == FileCondition::kMissing)
      ++report.files_missing;
    if (obs.extended.condition == FileCondition::kCorrupt ||
        obs.regular.condition == FileCondition::kCorrupt)
      ++report.files_corrupt;
    if (!ext_present && !reg_present && (ext_in_era || reg_in_era)) {
      // Step i: nothing published today; every open record's state carries
      // over to bridge the gap.
      ++report.gap_filled_days;
      return;
    }

    // Reused scratch instead of a per-day std::set: collect with duplicates,
    // then sort + unique before the resolve loop. Ascending-unique iteration
    // matches the old set exactly, without the node churn.
    std::vector<std::uint32_t>& touched = touched_scratch;
    touched.clear();

    if (ext_present) {
      for (const RecordChange& change : obs.extended.changes) {
        const std::uint32_t asn = change.asn.value;
        touched.push_back(asn);
        Rec& rec = recs[asn];
        if (change.state) {
          rec.ext = *change.state;
          rec.ext_present = true;
          if (!rec.seen) {
            rec.seen = true;
            rec.first_seen_day = day;
          }
        } else {
          rec.ext_present = false;
          if (rec.reg_present) {
            rec.vanished = true;
            rec.vanished_day = day;
            grace_expiry[day + config.recovery_grace_days + 1].push_back(asn);
          }
        }
      }
      if (obs.extended.publish_minute > obs.regular.publish_minute &&
          reg_present && !obs.extended.changes.empty())
        ++report.newest_conflict_days;
    }

    if (reg_present) {
      for (const RecordChange& change : obs.regular.changes) {
        const std::uint32_t asn = change.asn.value;
        touched.push_back(asn);
        Rec& rec = recs[asn];
        if (change.state) {
          rec.reg = *change.state;
          rec.reg_present = true;
          if (!rec.seen) {
            rec.seen = true;
            rec.first_seen_day = day;
          }
        } else {
          rec.reg_present = false;
        }
      }
    }

    // Step iv: duplicate records. Keep the interpretation consistent with
    // history, consulting BGP activity when history is ambiguous.
    if (config.resolve_duplicates) {
      for (const auto& [dup_asn, dup_state] : obs.extended.duplicates) {
        const std::uint32_t asn = dup_asn.value;
        const RecordState* current = builder.open_state(asn);
        bool prefer_duplicate = false;
        if (current == nullptr) {
          prefer_duplicate = dele::is_delegated(dup_state.status);
        } else if (current->status != dup_state.status &&
                   bgp_hint != nullptr) {
          // History says `current`; if BGP contradicts it, flip.
          const util::IntervalSet* activity = bgp_hint->activity(dup_asn);
          const bool active = activity != nullptr && activity->contains(day);
          if (active && !dele::is_delegated(current->status) &&
              dele::is_delegated(dup_state.status))
            prefer_duplicate = true;
        }
        Rec& rec = recs[asn];
        if (prefer_duplicate) {
          rec.ext = dup_state;
          rec.ext_present = true;
          touched.push_back(asn);
        }
        if (!rec.dup_counted) {
          rec.dup_counted = true;
          ++report.duplicates_resolved;
        }
      }
    }

    // Grace expirations scheduled for today (and earlier days skipped while
    // files were missing).
    while (!grace_expiry.empty() && grace_expiry.begin()->first <= day) {
      for (const std::uint32_t asn : grace_expiry.begin()->second) {
        const auto it = recs.find(asn);
        if (it != recs.end() && it->second.vanished) touched.push_back(asn);
      }
      grace_expiry.erase(grace_expiry.begin());
    }

    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()),
                  touched.end());
    const bool ext_usable = ext_present;
    for (const std::uint32_t asn : touched) resolve(asn, day, ext_usable);
  }

  RestoredRegistry finalize() {
    // Drain the reorder window: at end of stream nothing newer can arrive.
    while (!pending.empty()) {
      auto node = pending.extract(pending.begin());
      apply_day(dele::view_of(node.mapped().first), node.mapped().second);
    }
    RestorationReport& report = out.report;
    out.spans = builder.finish(last_day);
    PL_ENSURE(([&] {
                for (const auto& [asn, spans] : out.spans)
                  for (std::size_t s = 1; s < spans.size(); ++s)
                    if (spans[s].days.first <= spans[s - 1].days.first ||
                        spans[s].days.first <= spans[s - 1].days.last)
                      return false;
                return true;
              })(),
              "per-ASN state spans must leave finish() sorted by start day "
              "and non-overlapping");

    // ---- Step v: registration-date repair, span-list post-pass.
    if (config.repair_dates) {
      for (auto& [asn, spans] : out.spans) {
        // Future dates: clamp to the day the ASN first appeared in any file.
        for (StateSpan& span : spans) {
          if (!span.state.registration_date) continue;
          const auto seen = recs.find(asn);
          if (seen == recs.end() || !seen->second.seen) continue;
          if (*span.state.registration_date > span.days.first &&
              *span.state.registration_date > seen->second.first_seen_day) {
            span.state.registration_date = seen->second.first_seen_day;
            ++report.future_dates_fixed;
          }
        }
        // Placeholder dates: restore from the ERX reference; fall back to
        // the earliest non-placeholder date seen for the ASN.
        std::optional<Day> earliest_real;
        for (const StateSpan& span : spans)
          if (span.state.registration_date &&
              *span.state.registration_date != config.placeholder_date)
            earliest_real =
                earliest_real ? std::min(*earliest_real,
                                         *span.state.registration_date)
                              : *span.state.registration_date;
        for (StateSpan& span : spans) {
          if (span.state.registration_date != config.placeholder_date)
            continue;
          if (erx != nullptr) {
            const auto it = erx->find(asn);
            if (it != erx->end()) {
              span.state.registration_date = it->second;
              ++report.placeholder_dates_restored;
              continue;
            }
          }
          if (earliest_real) {
            span.state.registration_date = earliest_real;
            ++report.placeholder_dates_restored;
          }
        }
      }
    }
    return std::move(out);
  }

  // ---- Checkpoint/resume: the entire streaming state, so a crash at any
  // day boundary resumes bit-identically to an uninterrupted run.

  static void write_report(CheckpointWriter& writer,
                           const RestorationReport& report) {
    const std::int64_t fields[] = {
        report.days_processed, report.files_missing, report.files_corrupt,
        report.gap_filled_days, report.recovered_from_regular,
        report.newest_conflict_days, report.duplicates_resolved,
        report.future_dates_fixed, report.placeholder_dates_restored,
        report.grace_expired_drops, report.days_quarantined_duplicate,
        report.days_quarantined_late, report.days_reorder_recovered,
        report.misuse_calls};
    writer.varint(std::size(fields));
    for (const std::int64_t field : fields) writer.i64(field);
  }

  static bool read_report(CheckpointReader& reader,
                          RestorationReport& report) {
    std::int64_t* fields[] = {
        &report.days_processed, &report.files_missing, &report.files_corrupt,
        &report.gap_filled_days, &report.recovered_from_regular,
        &report.newest_conflict_days, &report.duplicates_resolved,
        &report.future_dates_fixed, &report.placeholder_dates_restored,
        &report.grace_expired_drops, &report.days_quarantined_duplicate,
        &report.days_quarantined_late, &report.days_reorder_recovered,
        &report.misuse_calls};
    if (reader.varint() != std::size(fields)) return false;
    for (std::int64_t* field : fields) *field = reader.i64();
    return reader.ok();
  }

  std::string serialize() const {
    CheckpointWriter writer;
    writer.u8(static_cast<std::uint8_t>(asn::index_of(out.rir)));
    // Config fingerprint — resuming under different restoration rules would
    // silently change semantics, so it is validated on load.
    writer.i32(config.recovery_grace_days);
    writer.i32(config.placeholder_date);
    writer.i32(config.grandfather_margin_days);
    writer.i32(config.reorder_window_days);
    writer.u8(static_cast<std::uint8_t>(
        (config.recover_from_regular ? 1 : 0) |
        (config.resolve_duplicates ? 2 : 0) | (config.repair_dates ? 4 : 0)));

    write_report(writer, out.report);

    // Each legacy per-concern map is re-derived from the merged table in
    // ascending-key order, reproducing the historical byte stream exactly.
    std::vector<std::uint32_t> rec_keys;
    rec_keys.reserve(recs.size());
    for (const auto& [asn, rec] : recs) rec_keys.push_back(asn);
    std::sort(rec_keys.begin(), rec_keys.end());

    const auto write_rec_section =
        [&](auto&& member_present, auto&& write_value) {
          std::size_t count = 0;
          for (const std::uint32_t asn : rec_keys)
            if (member_present(recs.at(asn))) ++count;
          writer.varint(count);
          for (const std::uint32_t asn : rec_keys) {
            const Rec& rec = recs.at(asn);
            if (!member_present(rec)) continue;
            writer.u32(asn);
            write_value(rec);
          }
        };
    write_rec_section([](const Rec& r) { return r.ext_present; },
                      [&](const Rec& r) { write_state(writer, r.ext); });
    write_rec_section([](const Rec& r) { return r.reg_present; },
                      [&](const Rec& r) { write_state(writer, r.reg); });
    write_rec_section([](const Rec& r) { return r.vanished; },
                      [&](const Rec& r) { writer.i32(r.vanished_day); });

    writer.varint(grace_expiry.size());
    for (const auto& [day, asns] : grace_expiry) {
      writer.i32(day);
      writer.varint(asns.size());
      for (const std::uint32_t asn : asns) writer.u32(asn);
    }

    write_rec_section([](const Rec& r) { return r.seen; },
                      [&](const Rec& r) { writer.i32(r.first_seen_day); });

    {
      std::size_t count = 0;
      for (const std::uint32_t asn : rec_keys)
        if (recs.at(asn).dup_counted) ++count;
      writer.varint(count);
      for (const std::uint32_t asn : rec_keys)
        if (recs.at(asn).dup_counted) writer.u32(asn);
    }

    builder.save(writer);

    writer.boolean(extended_era_started);
    writer.boolean(any_applied);
    writer.i32(last_day);

    writer.varint(pending.size());
    for (const auto& [day, entry] : pending) {
      writer.boolean(entry.second);
      write_observation(writer, entry.first);
    }
    writer.boolean(any_seen);
    writer.i32(newest_seen);

    return std::move(writer).finish();
  }

  /// Load everything after the config fingerprint (already validated by the
  /// caller). Returns false on a short or corrupt payload.
  bool deserialize(CheckpointReader& reader) {
    if (!read_report(reader, out.report)) return false;

    {
      const std::uint64_t count = reader.container_size(10);
      recs.reserve(count);
      for (std::uint64_t i = 0; reader.ok() && i < count; ++i) {
        const std::uint32_t asn = reader.u32();
        Rec& rec = recs[asn];
        rec.ext = read_state(reader);
        rec.ext_present = true;
      }
    }
    {
      const std::uint64_t count = reader.container_size(10);
      for (std::uint64_t i = 0; reader.ok() && i < count; ++i) {
        const std::uint32_t asn = reader.u32();
        Rec& rec = recs[asn];
        rec.reg = read_state(reader);
        rec.reg_present = true;
      }
    }

    const std::uint64_t vanished = reader.container_size(8);
    for (std::uint64_t i = 0; reader.ok() && i < vanished; ++i) {
      const std::uint32_t asn = reader.u32();
      Rec& rec = recs[asn];
      rec.vanished = true;
      rec.vanished_day = reader.i32();
    }

    const std::uint64_t expiries = reader.container_size(5);
    for (std::uint64_t i = 0; reader.ok() && i < expiries; ++i) {
      const Day day = reader.i32();
      const std::uint64_t count = reader.container_size(4);
      auto& asns = grace_expiry[day];
      for (std::uint64_t a = 0; reader.ok() && a < count; ++a)
        asns.push_back(reader.u32());
    }

    const std::uint64_t seen = reader.container_size(8);
    for (std::uint64_t i = 0; reader.ok() && i < seen; ++i) {
      const std::uint32_t asn = reader.u32();
      Rec& rec = recs[asn];
      rec.seen = true;
      rec.first_seen_day = reader.i32();
    }

    const std::uint64_t duplicates = reader.container_size(4);
    for (std::uint64_t i = 0; reader.ok() && i < duplicates; ++i)
      recs[reader.u32()].dup_counted = true;

    builder.load(reader);

    extended_era_started = reader.boolean();
    any_applied = reader.boolean();
    last_day = reader.i32();

    const std::uint64_t held = reader.container_size(13);
    for (std::uint64_t i = 0; reader.ok() && i < held; ++i) {
      const bool late = reader.boolean();
      DayObservation observation = read_observation(reader);
      pending.emplace(observation.day,
                      std::make_pair(std::move(observation), late));
    }
    any_seen = reader.boolean();
    newest_seen = reader.i32();

    return reader.ok() && reader.at_end();
  }
};

StreamingRestorer::StreamingRestorer(asn::Rir rir,
                                     const RestoreConfig& config,
                                     const ErxDates* erx,
                                     const bgp::ActivityTable* bgp_hint,
                                     robust::ErrorSink* sink)
    : impl_(std::make_unique<Impl>(rir, config, erx, bgp_hint, sink)),
      sink_(sink) {}

StreamingRestorer::~StreamingRestorer() = default;
StreamingRestorer::StreamingRestorer(StreamingRestorer&&) noexcept = default;
StreamingRestorer& StreamingRestorer::operator=(StreamingRestorer&&) noexcept
    = default;

namespace {

/// Count and report an API-contract violation on a spent restorer.
void flag_misuse(RestorationReport& report, robust::ErrorSink* sink,
                 std::string_view what) {
  ++report.misuse_calls;
  if (sink == nullptr) return;
  ++sink->counters().misuse_calls;
  sink->report({robust::Stage::kRestore, robust::Severity::kFatal,
                "restorer-misuse",
                std::string(what) + " on a finalized or moved-from restorer",
                std::nullopt, std::nullopt});
}

}  // namespace

void StreamingRestorer::consume(const dele::DayObservation& observation) {
  if (impl_ == nullptr) {
    flag_misuse(spent_report_, sink_, "consume()");
    return;
  }
  impl_->ingest(observation);
}

void StreamingRestorer::consume(const dele::DayObservationView& observation) {
  if (impl_ == nullptr) {
    flag_misuse(spent_report_, sink_, "consume()");
    return;
  }
  impl_->ingest(observation);
}

RestoredRegistry StreamingRestorer::finalize() && {
  if (impl_ == nullptr) {
    flag_misuse(spent_report_, sink_, "finalize()");
    RestoredRegistry empty;
    empty.report = spent_report_;
    return empty;
  }
  RestoredRegistry result = impl_->finalize();
  spent_report_ = result.report;
  impl_.reset();  // the restorer is spent; later calls are guarded no-ops
  return result;
}

const RestorationReport& StreamingRestorer::report() const noexcept {
  return impl_ != nullptr ? impl_->out.report : spent_report_;
}

std::string StreamingRestorer::checkpoint() const {
  if (impl_ == nullptr) {
    flag_misuse(spent_report_, sink_, "checkpoint()");
    return {};
  }
  return impl_->serialize();
}

std::optional<StreamingRestorer> StreamingRestorer::from_checkpoint(
    std::string_view blob, const RestoreConfig& config, const ErxDates* erx,
    const bgp::ActivityTable* bgp_hint, robust::ErrorSink* sink) {
  const auto fail = [sink](std::string message) -> std::optional<
                        StreamingRestorer> {
    if (sink != nullptr) {
      ++sink->counters().checkpoint_failures;
      sink->report({robust::Stage::kCheckpoint, robust::Severity::kFatal,
                    "checkpoint-unusable", std::move(message), std::nullopt,
                    std::nullopt});
    }
    return std::nullopt;
  };

  CheckpointReader reader(blob);
  if (!reader.ok()) return fail(std::string(reader.error()));

  const std::uint8_t rir_index = reader.u8();
  if (!reader.ok() || rir_index >= asn::kRirCount)
    return fail("bad registry index");

  const Day grace = reader.i32();
  const Day placeholder = reader.i32();
  const Day margin = reader.i32();
  const Day window = reader.i32();
  const std::uint8_t flags = reader.u8();
  if (!reader.ok()) return fail("truncated config fingerprint");
  if (grace != config.recovery_grace_days ||
      placeholder != config.placeholder_date ||
      margin != config.grandfather_margin_days ||
      window != config.reorder_window_days ||
      flags != static_cast<std::uint8_t>(
                   (config.recover_from_regular ? 1 : 0) |
                   (config.resolve_duplicates ? 2 : 0) |
                   (config.repair_dates ? 4 : 0)))
    return fail("checkpoint was taken under a different RestoreConfig");

  StreamingRestorer restorer(asn::kAllRirs[rir_index], config, erx, bgp_hint,
                             sink);
  if (!restorer.impl_->deserialize(reader))
    return fail(reader.ok() ? "trailing bytes after payload"
                            : std::string(reader.error()));
  return restorer;
}

RestoredRegistry restore_registry(dele::ArchiveStream& stream,
                                  const RestoreConfig& config,
                                  const ErxDates* erx,
                                  const bgp::ActivityTable* bgp_hint,
                                  robust::ErrorSink* sink) {
  StreamingRestorer restorer(stream.registry(), config, erx, bgp_hint, sink);
  std::optional<DayObservation> observation;
  while ((observation = stream.next())) restorer.consume(*observation);
  return std::move(restorer).finalize();
}

RestoredRegistry restore_registry(dele::DeltaArchiveReader& reader,
                                  const RestoreConfig& config,
                                  const ErxDates* erx,
                                  const bgp::ActivityTable* bgp_hint,
                                  robust::ErrorSink* sink) {
  StreamingRestorer restorer(reader.registry(), config, erx, bgp_hint, sink);
  while (const DayObservationView* view = reader.next_view())
    restorer.consume(*view);
  if (!reader.status().ok() && sink != nullptr)
    sink->report({robust::Stage::kStream, robust::Severity::kFatal,
                  "interchange-decode", reader.status().to_string(),
                  std::nullopt, std::nullopt});
  PL_EXPECT(reader.status().ok(),
            "in-process interchange archive failed to decode");
  return std::move(restorer).finalize();
}

void record_metrics(const RestorationReport& report, asn::Rir rir,
                    obs::Registry& metrics) {
  const std::string label =
      "{registry=\"" + std::string(asn::file_token(rir)) + "\"}";
  const auto add = [&](std::string_view base, std::int64_t value) {
    metrics.counter(std::string(base) + label).add(value);
  };
  add("pl_restore_days_processed", report.days_processed);
  add("pl_restore_files_missing", report.files_missing);
  add("pl_restore_files_corrupt", report.files_corrupt);
  add("pl_restore_gap_filled_days", report.gap_filled_days);
  add("pl_restore_recovered_from_regular", report.recovered_from_regular);
  add("pl_restore_newest_conflict_days", report.newest_conflict_days);
  add("pl_restore_duplicates_resolved", report.duplicates_resolved);
  add("pl_restore_future_dates_fixed", report.future_dates_fixed);
  add("pl_restore_placeholder_dates_restored",
      report.placeholder_dates_restored);
  add("pl_restore_grace_expired_drops", report.grace_expired_drops);
  add("pl_restore_days_quarantined_duplicate",
      report.days_quarantined_duplicate);
  add("pl_restore_days_quarantined_late", report.days_quarantined_late);
  add("pl_restore_days_reorder_recovered", report.days_reorder_recovered);
  add("pl_restore_misuse_calls", report.misuse_calls);
}

void record_metrics(const RestoredRegistry& registry,
                    obs::Registry& metrics) {
  record_metrics(registry.report, registry.rir, metrics);
  const std::string label =
      "{registry=\"" + std::string(asn::file_token(registry.rir)) + "\"}";
  std::int64_t spans = 0;
  for (const auto& [asn, list] : registry.spans)
    spans += static_cast<std::int64_t>(list.size());
  metrics.counter("pl_restore_asns" + label)
      .add(static_cast<std::int64_t>(registry.spans.size()));
  metrics.counter("pl_restore_spans" + label).add(spans);
}

void record_metrics(const CrossRirReport& report, obs::Registry& metrics) {
  metrics.counter("pl_restore_overlapping_asns").add(report.overlapping_asns);
  metrics.counter("pl_restore_stale_spans_trimmed")
      .add(report.stale_spans_trimmed);
  metrics.counter("pl_restore_mistaken_spans_removed")
      .add(report.mistaken_spans_removed);
}

CrossRirReport reconcile_registries(
    std::array<RestoredRegistry, asn::kRirCount>& registries,
    const BlockOwnerFn& owner, const RestoreConfig& config,
    util::Day archive_begin) {
  CrossRirReport report;
  PL_EXPECT(([&] {
              for (const RestoredRegistry& registry : registries)
                for (const auto& [asn, spans] : registry.spans)
                  for (std::size_t s = 1; s < spans.size(); ++s)
                    if (spans[s].days.first < spans[s - 1].days.first)
                      return false;
              return true;
            })(),
            "reconcile_registries requires per-ASN spans sorted by start "
            "day in every registry");

  // Collect, per ASN, the delegated spans of every registry, and each
  // registry's first observed day (its first published file).
  struct Ref {
    std::size_t registry;
    std::size_t span_index;
  };
  std::map<std::uint32_t, std::vector<Ref>> delegated;
  std::array<util::Day, asn::kRirCount> first_observed;
  first_observed.fill(archive_begin);
  for (std::size_t r = 0; r < registries.size(); ++r) {
    util::Day first = 0;
    bool any = false;
    for (const auto& [asn, spans] : registries[r].spans)
      for (std::size_t s = 0; s < spans.size(); ++s) {
        if (!any || spans[s].days.first < first) {
          first = spans[s].days.first;
          any = true;
        }
        if (dele::is_delegated(spans[s].state.status))
          delegated[asn].push_back(Ref{r, s});
      }
    if (any) first_observed[r] = first;
  }

  std::vector<std::pair<std::size_t, std::uint32_t>> removals;  // (reg, asn)
  std::map<std::pair<std::size_t, std::uint32_t>,
           std::vector<std::size_t>> spans_to_remove;

  for (auto& [asn, refs] : delegated) {
    bool multi_registry = false;
    for (const Ref& ref : refs)
      if (ref.registry != refs.front().registry) multi_registry = true;

    bool overlapped = false;
    if (multi_registry)
    for (std::size_t a = 0; a < refs.size(); ++a) {
      for (std::size_t b = a + 1; b < refs.size(); ++b) {
        if (refs[a].registry == refs[b].registry) continue;
        auto& span_a =
            registries[refs[a].registry].spans[asn][refs[a].span_index];
        auto& span_b =
            registries[refs[b].registry].spans[asn][refs[b].span_index];
        if (!span_a.days.overlaps(span_b.days)) continue;
        overlapped = true;
        // Stale rule: the span ending first inside the overlap is stale —
        // trim it back to just before the other began.
        StateSpan* stale = nullptr;
        StateSpan* live = nullptr;
        if (span_a.days.last < span_b.days.last) {
          stale = &span_a;
          live = &span_b;
        } else if (span_b.days.last < span_a.days.last) {
          stale = &span_b;
          live = &span_a;
        }
        if (stale != nullptr) {
          stale->days.last = live->days.first - 1;
          ++report.stale_spans_trimmed;
        }
      }
    }
    if (overlapped) ++report.overlapping_asns;

    // Foreign-block rule: a delegated span in a registry that does not hold
    // the IANA block, starting mid-archive with no adjacent predecessor in
    // any registry, is a mistaken allocation.
    if (owner) {
      const std::optional<asn::Rir> block_owner = owner(asn::Asn{asn});
      for (const Ref& ref : refs) {
        RestoredRegistry& registry = registries[ref.registry];
        if (block_owner && asn::index_of(*block_owner) == ref.registry)
          continue;
        StateSpan& span = registry.spans[asn][ref.span_index];
        if (span.days.empty()) continue;
        if (span.days.first <= first_observed[ref.registry] +
                                   config.grandfather_margin_days)
          continue;  // inherited pre-archive state
        bool has_predecessor = false;
        for (const Ref& other : refs) {
          if (&other == &ref) continue;
          const StateSpan& other_span =
              registries[other.registry].spans[asn][other.span_index];
          if (other_span.days.last + 1 + config.recovery_grace_days >=
                  span.days.first &&
              other_span.days.first < span.days.first)
            has_predecessor = true;
        }
        if (!has_predecessor) {
          spans_to_remove[{ref.registry, asn}].push_back(ref.span_index);
          ++report.mistaken_spans_removed;
        }
      }
    }
  }

  // Apply removals (descending index so indices stay valid).
  for (auto& [key, indices] : spans_to_remove) {
    auto& spans = registries[key.first].spans[key.second];
    std::sort(indices.begin(), indices.end(), std::greater<>());
    for (const std::size_t index : indices)
      spans.erase(spans.begin() + static_cast<std::ptrdiff_t>(index));
    if (spans.empty()) registries[key.first].spans.erase(key.second);
  }
  // Drop spans emptied by stale trimming.
  for (auto& registry : registries) {
    for (auto it = registry.spans.begin(); it != registry.spans.end();) {
      auto& spans = it->second;
      std::erase_if(spans,
                    [](const StateSpan& s) { return s.days.empty(); });
      it = spans.empty() ? registry.spans.erase(it) : std::next(it);
    }
  }
  PL_ENSURE(([&] {
              for (const RestoredRegistry& registry : registries)
                for (const auto& [asn, spans] : registry.spans) {
                  if (spans.empty()) return false;
                  for (const StateSpan& span : spans)
                    if (span.days.empty()) return false;
                }
              return true;
            })(),
            "reconcile_registries must not leave empty spans or span-less "
            "ASN entries behind");
  return report;
}

RestoredArchive restore_archive(
    std::array<std::unique_ptr<dele::ArchiveStream>, asn::kRirCount> streams,
    const RestoreConfig& config, const ErxDates* erx,
    const BlockOwnerFn& owner, util::Day archive_begin,
    const bgp::ActivityTable* bgp_hint) {
  RestoredArchive archive;
  // The five registry streams are independent until step vi: restore them
  // concurrently, one shard per registry, into per-index slots. The merge
  // (reconcile_registries) stays on the calling thread, so the result is
  // bit-identical to the serial loop.
  exec::parallel_for(
      streams.size(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i)
          archive.registries[i] =
              restore_registry(*streams[i], config, erx, bgp_hint);
      },
      /*grain=*/1);
  archive.cross =
      reconcile_registries(archive.registries, owner, config, archive_begin);
  return archive;
}

}  // namespace pl::restore
