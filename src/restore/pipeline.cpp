#include "restore/pipeline.hpp"

#include <algorithm>
#include <set>
#include <unordered_map>

namespace pl::restore {

namespace {

using dele::ChannelDelta;
using dele::DayObservation;
using dele::FileCondition;
using dele::RecordChange;
using dele::RecordState;
using util::Day;
using util::DayInterval;

/// Builds per-ASN spans incrementally from effective-state transitions.
class SpanBuilder {
 public:
  void set(std::uint32_t asn, Day day, const RecordState& state) {
    auto [it, inserted] = open_.try_emplace(asn, Open{day, state});
    if (!inserted) {
      if (it->second.state == state) return;  // unchanged, span continues
      close_one(asn, it->second, day - 1);
      it->second = Open{day, state};
    }
  }

  void clear(std::uint32_t asn, Day day) {
    const auto it = open_.find(asn);
    if (it == open_.end()) return;
    close_one(asn, it->second, day - 1);
    open_.erase(it);
  }

  bool is_open(std::uint32_t asn) const noexcept {
    return open_.contains(asn);
  }

  const RecordState* open_state(std::uint32_t asn) const noexcept {
    const auto it = open_.find(asn);
    return it == open_.end() ? nullptr : &it->second.state;
  }

  std::map<std::uint32_t, std::vector<StateSpan>> finish(Day last_day) {
    for (auto& [asn, open] : open_)
      spans_[asn].push_back(StateSpan{DayInterval{open.since, last_day},
                                      open.state});
    open_.clear();
    for (auto& [asn, list] : spans_)
      std::sort(list.begin(), list.end(),
                [](const StateSpan& a, const StateSpan& b) {
                  return a.days.first < b.days.first;
                });
    return std::move(spans_);
  }

 private:
  struct Open {
    Day since;
    RecordState state;
  };

  void close_one(std::uint32_t asn, const Open& open, Day last) {
    if (last >= open.since)
      spans_[asn].push_back(
          StateSpan{DayInterval{open.since, last}, open.state});
  }

  std::unordered_map<std::uint32_t, Open> open_;
  std::map<std::uint32_t, std::vector<StateSpan>> spans_;
};

bool in_era(const ChannelDelta& delta) noexcept {
  return delta.condition != FileCondition::kNotPublished;
}

bool present(const ChannelDelta& delta) noexcept {
  return delta.condition == FileCondition::kPresent;
}

}  // namespace

struct StreamingRestorer::Impl {
  Impl(asn::Rir rir, const RestoreConfig& restore_config,
       const ErxDates* erx_dates, const bgp::ActivityTable* hint)
      : config(restore_config), erx(erx_dates), bgp_hint(hint) {
    out.rir = rir;
  }

  RestoreConfig config;
  const ErxDates* erx;
  const bgp::ActivityTable* bgp_hint;

  RestoredRegistry out;
  std::unordered_map<std::uint32_t, RecordState> ext_state;
  std::unordered_map<std::uint32_t, RecordState> reg_state;
  // ASNs recently vanished from the extended channel while the regular one
  // still lists them: day the vanish happened.
  std::unordered_map<std::uint32_t, Day> ext_vanished_at;
  // Expiry queue for the recovery grace period.
  std::map<Day, std::vector<std::uint32_t>> grace_expiry;
  // First day each ASN was ever seen in any file (step v future-date fix).
  std::unordered_map<std::uint32_t, Day> first_seen;
  // Duplicate episodes already counted.
  std::set<std::uint32_t> counted_duplicates;

  SpanBuilder builder;
  bool extended_era_started = false;
  Day last_day = 0;

  // Recompute the effective record for one ASN and apply it to the builder.
  void resolve(std::uint32_t asn, Day day, bool ext_usable) {
    RestorationReport& report = out.report;
    const auto ext_it = ext_state.find(asn);
    if (extended_era_started && ext_it != ext_state.end()) {
      builder.set(asn, day, ext_it->second);
      ext_vanished_at.erase(asn);
      return;
    }
    const auto reg_it = reg_state.find(asn);
    if (reg_it != reg_state.end()) {
      if (!extended_era_started) {
        builder.set(asn, day, reg_it->second);
        return;
      }
      if (!config.recover_from_regular) {
        builder.clear(asn, day);
        return;
      }
      // Extended era active but the record is only in the regular file:
      // trust it within the grace window (steps ii/iii).
      const auto vanish_it = ext_vanished_at.find(asn);
      if (!ext_usable || vanish_it == ext_vanished_at.end() ||
          day - vanish_it->second <= config.recovery_grace_days) {
        if (vanish_it != ext_vanished_at.end())
          ++report.recovered_from_regular;
        builder.set(asn, day, reg_it->second);
        return;
      }
      // Grace expired: the disappearance is real despite the stale regular
      // record.
      ++report.grace_expired_drops;
      builder.clear(asn, day);
      return;
    }
    builder.clear(asn, day);
  }

  void consume(const DayObservation& obs) {
    RestorationReport& report = out.report;
    const Day day = obs.day;
    last_day = day;
    ++report.days_processed;

    const bool ext_in_era = in_era(obs.extended);
    const bool reg_in_era = in_era(obs.regular);
    if (!ext_in_era && !reg_in_era) return;
    if (ext_in_era && !extended_era_started) extended_era_started = true;

    const bool ext_present = present(obs.extended);
    const bool reg_present = present(obs.regular);

    if (ext_in_era && obs.extended.condition == FileCondition::kMissing)
      ++report.files_missing;
    if (reg_in_era && obs.regular.condition == FileCondition::kMissing)
      ++report.files_missing;
    if (obs.extended.condition == FileCondition::kCorrupt ||
        obs.regular.condition == FileCondition::kCorrupt)
      ++report.files_corrupt;
    if (!ext_present && !reg_present && (ext_in_era || reg_in_era)) {
      // Step i: nothing published today; every open record's state carries
      // over to bridge the gap.
      ++report.gap_filled_days;
      return;
    }

    std::set<std::uint32_t> touched;

    if (ext_present) {
      for (const RecordChange& change : obs.extended.changes) {
        const std::uint32_t asn = change.asn.value;
        touched.insert(asn);
        if (change.state) {
          ext_state[asn] = *change.state;
          first_seen.try_emplace(asn, day);
        } else {
          ext_state.erase(asn);
          if (reg_state.contains(asn)) {
            ext_vanished_at[asn] = day;
            grace_expiry[day + config.recovery_grace_days + 1].push_back(asn);
          }
        }
      }
      if (obs.extended.publish_minute > obs.regular.publish_minute &&
          reg_present && !obs.extended.changes.empty())
        ++report.newest_conflict_days;
    }

    if (reg_present) {
      for (const RecordChange& change : obs.regular.changes) {
        const std::uint32_t asn = change.asn.value;
        touched.insert(asn);
        if (change.state) {
          reg_state[asn] = *change.state;
          first_seen.try_emplace(asn, day);
        } else {
          reg_state.erase(asn);
        }
      }
    }

    // Step iv: duplicate records. Keep the interpretation consistent with
    // history, consulting BGP activity when history is ambiguous.
    if (config.resolve_duplicates) {
      for (const auto& [dup_asn, dup_state] : obs.extended.duplicates) {
        const std::uint32_t asn = dup_asn.value;
        const RecordState* current = builder.open_state(asn);
        bool prefer_duplicate = false;
        if (current == nullptr) {
          prefer_duplicate = dele::is_delegated(dup_state.status);
        } else if (current->status != dup_state.status &&
                   bgp_hint != nullptr) {
          // History says `current`; if BGP contradicts it, flip.
          const util::IntervalSet* activity = bgp_hint->activity(dup_asn);
          const bool active = activity != nullptr && activity->contains(day);
          if (active && !dele::is_delegated(current->status) &&
              dele::is_delegated(dup_state.status))
            prefer_duplicate = true;
        }
        if (prefer_duplicate) {
          ext_state[asn] = dup_state;
          touched.insert(asn);
        }
        if (counted_duplicates.insert(asn).second)
          ++report.duplicates_resolved;
      }
    }

    // Grace expirations scheduled for today (and earlier days skipped while
    // files were missing).
    while (!grace_expiry.empty() && grace_expiry.begin()->first <= day) {
      for (const std::uint32_t asn : grace_expiry.begin()->second)
        if (ext_vanished_at.contains(asn)) touched.insert(asn);
      grace_expiry.erase(grace_expiry.begin());
    }

    const bool ext_usable = ext_present;
    for (const std::uint32_t asn : touched) resolve(asn, day, ext_usable);
  }

  RestoredRegistry finalize() {
    RestorationReport& report = out.report;
    out.spans = builder.finish(last_day);

    // ---- Step v: registration-date repair, span-list post-pass.
    if (config.repair_dates) {
      for (auto& [asn, spans] : out.spans) {
        // Future dates: clamp to the day the ASN first appeared in any file.
        for (StateSpan& span : spans) {
          if (!span.state.registration_date) continue;
          const auto seen = first_seen.find(asn);
          if (seen == first_seen.end()) continue;
          if (*span.state.registration_date > span.days.first &&
              *span.state.registration_date > seen->second) {
            span.state.registration_date = seen->second;
            ++report.future_dates_fixed;
          }
        }
        // Placeholder dates: restore from the ERX reference; fall back to
        // the earliest non-placeholder date seen for the ASN.
        std::optional<Day> earliest_real;
        for (const StateSpan& span : spans)
          if (span.state.registration_date &&
              *span.state.registration_date != config.placeholder_date)
            earliest_real =
                earliest_real ? std::min(*earliest_real,
                                         *span.state.registration_date)
                              : *span.state.registration_date;
        for (StateSpan& span : spans) {
          if (span.state.registration_date != config.placeholder_date)
            continue;
          if (erx != nullptr) {
            const auto it = erx->find(asn);
            if (it != erx->end()) {
              span.state.registration_date = it->second;
              ++report.placeholder_dates_restored;
              continue;
            }
          }
          if (earliest_real) {
            span.state.registration_date = earliest_real;
            ++report.placeholder_dates_restored;
          }
        }
      }
    }
    return std::move(out);
  }
};

StreamingRestorer::StreamingRestorer(asn::Rir rir,
                                     const RestoreConfig& config,
                                     const ErxDates* erx,
                                     const bgp::ActivityTable* bgp_hint)
    : impl_(std::make_unique<Impl>(rir, config, erx, bgp_hint)) {}

StreamingRestorer::~StreamingRestorer() = default;
StreamingRestorer::StreamingRestorer(StreamingRestorer&&) noexcept = default;
StreamingRestorer& StreamingRestorer::operator=(StreamingRestorer&&) noexcept
    = default;

void StreamingRestorer::consume(const dele::DayObservation& observation) {
  impl_->consume(observation);
}

RestoredRegistry StreamingRestorer::finalize() && {
  return impl_->finalize();
}

const RestorationReport& StreamingRestorer::report() const noexcept {
  return impl_->out.report;
}

RestoredRegistry restore_registry(dele::ArchiveStream& stream,
                                  const RestoreConfig& config,
                                  const ErxDates* erx,
                                  const bgp::ActivityTable* bgp_hint) {
  StreamingRestorer restorer(stream.registry(), config, erx, bgp_hint);
  std::optional<DayObservation> observation;
  while ((observation = stream.next())) restorer.consume(*observation);
  return std::move(restorer).finalize();
}

CrossRirReport reconcile_registries(
    std::array<RestoredRegistry, asn::kRirCount>& registries,
    const BlockOwnerFn& owner, const RestoreConfig& config,
    util::Day archive_begin) {
  CrossRirReport report;

  // Collect, per ASN, the delegated spans of every registry, and each
  // registry's first observed day (its first published file).
  struct Ref {
    std::size_t registry;
    std::size_t span_index;
  };
  std::map<std::uint32_t, std::vector<Ref>> delegated;
  std::array<util::Day, asn::kRirCount> first_observed;
  first_observed.fill(archive_begin);
  for (std::size_t r = 0; r < registries.size(); ++r) {
    util::Day first = 0;
    bool any = false;
    for (const auto& [asn, spans] : registries[r].spans)
      for (std::size_t s = 0; s < spans.size(); ++s) {
        if (!any || spans[s].days.first < first) {
          first = spans[s].days.first;
          any = true;
        }
        if (dele::is_delegated(spans[s].state.status))
          delegated[asn].push_back(Ref{r, s});
      }
    if (any) first_observed[r] = first;
  }

  std::vector<std::pair<std::size_t, std::uint32_t>> removals;  // (reg, asn)
  std::map<std::pair<std::size_t, std::uint32_t>,
           std::vector<std::size_t>> spans_to_remove;

  for (auto& [asn, refs] : delegated) {
    bool multi_registry = false;
    for (const Ref& ref : refs)
      if (ref.registry != refs.front().registry) multi_registry = true;

    bool overlapped = false;
    if (multi_registry)
    for (std::size_t a = 0; a < refs.size(); ++a) {
      for (std::size_t b = a + 1; b < refs.size(); ++b) {
        if (refs[a].registry == refs[b].registry) continue;
        auto& span_a =
            registries[refs[a].registry].spans[asn][refs[a].span_index];
        auto& span_b =
            registries[refs[b].registry].spans[asn][refs[b].span_index];
        if (!span_a.days.overlaps(span_b.days)) continue;
        overlapped = true;
        // Stale rule: the span ending first inside the overlap is stale —
        // trim it back to just before the other began.
        StateSpan* stale = nullptr;
        StateSpan* live = nullptr;
        if (span_a.days.last < span_b.days.last) {
          stale = &span_a;
          live = &span_b;
        } else if (span_b.days.last < span_a.days.last) {
          stale = &span_b;
          live = &span_a;
        }
        if (stale != nullptr) {
          stale->days.last = live->days.first - 1;
          ++report.stale_spans_trimmed;
        }
      }
    }
    if (overlapped) ++report.overlapping_asns;

    // Foreign-block rule: a delegated span in a registry that does not hold
    // the IANA block, starting mid-archive with no adjacent predecessor in
    // any registry, is a mistaken allocation.
    if (owner) {
      const std::optional<asn::Rir> block_owner = owner(asn::Asn{asn});
      for (const Ref& ref : refs) {
        RestoredRegistry& registry = registries[ref.registry];
        if (block_owner && asn::index_of(*block_owner) == ref.registry)
          continue;
        StateSpan& span = registry.spans[asn][ref.span_index];
        if (span.days.empty()) continue;
        if (span.days.first <= first_observed[ref.registry] +
                                   config.grandfather_margin_days)
          continue;  // inherited pre-archive state
        bool has_predecessor = false;
        for (const Ref& other : refs) {
          if (&other == &ref) continue;
          const StateSpan& other_span =
              registries[other.registry].spans[asn][other.span_index];
          if (other_span.days.last + 1 + config.recovery_grace_days >=
                  span.days.first &&
              other_span.days.first < span.days.first)
            has_predecessor = true;
        }
        if (!has_predecessor) {
          spans_to_remove[{ref.registry, asn}].push_back(ref.span_index);
          ++report.mistaken_spans_removed;
        }
      }
    }
  }

  // Apply removals (descending index so indices stay valid).
  for (auto& [key, indices] : spans_to_remove) {
    auto& spans = registries[key.first].spans[key.second];
    std::sort(indices.begin(), indices.end(), std::greater<>());
    for (const std::size_t index : indices)
      spans.erase(spans.begin() + static_cast<std::ptrdiff_t>(index));
    if (spans.empty()) registries[key.first].spans.erase(key.second);
  }
  // Drop spans emptied by stale trimming.
  for (auto& registry : registries) {
    for (auto it = registry.spans.begin(); it != registry.spans.end();) {
      auto& spans = it->second;
      std::erase_if(spans,
                    [](const StateSpan& s) { return s.days.empty(); });
      it = spans.empty() ? registry.spans.erase(it) : std::next(it);
    }
  }
  return report;
}

RestoredArchive restore_archive(
    std::array<std::unique_ptr<dele::ArchiveStream>, asn::kRirCount> streams,
    const RestoreConfig& config, const ErxDates* erx,
    const BlockOwnerFn& owner, util::Day archive_begin,
    const bgp::ActivityTable* bgp_hint) {
  RestoredArchive archive;
  for (std::size_t i = 0; i < streams.size(); ++i)
    archive.registries[i] =
        restore_registry(*streams[i], config, erx, bgp_hint);
  archive.cross =
      reconcile_registries(archive.registries, owner, config, archive_begin);
  return archive;
}

}  // namespace pl::restore
