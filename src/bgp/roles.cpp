#include "bgp/roles.hpp"

#include <set>

namespace pl::bgp {

namespace {

constexpr std::string_view kRoleNames[] = {"inactive", "origin-only",
                                           "transit-only", "both"};

const util::IntervalSet* find(
    const std::map<std::uint32_t, util::IntervalSet>& table,
    asn::Asn asn) noexcept {
  const auto it = table.find(asn.value);
  return it == table.end() ? nullptr : &it->second;
}

}  // namespace

std::string_view role_name(AsRole role) noexcept {
  return kRoleNames[static_cast<std::size_t>(role)];
}

void RoleTracker::observe(const Element& element) {
  const auto& hops = element.path.hops();
  if (hops.empty()) return;
  origin_[hops.back().value].add(element.day);
  // Middle hops are transit; hops[0] is the collector peer, whose presence
  // reflects the feed, not routing through it — still transit by the
  // paper's definition ("appearing as a transit in preferred routes").
  for (std::size_t i = 0; i + 1 < hops.size(); ++i)
    transit_[hops[i].value].add(element.day);
}

AsRole RoleTracker::role_on(asn::Asn asn, util::Day day) const noexcept {
  const util::IntervalSet* origin = find(origin_, asn);
  const util::IntervalSet* transit = find(transit_, asn);
  const bool is_origin = origin != nullptr && origin->contains(day);
  const bool is_transit = transit != nullptr && transit->contains(day);
  if (is_origin && is_transit) return AsRole::kBoth;
  if (is_origin) return AsRole::kOriginOnly;
  if (is_transit) return AsRole::kTransitOnly;
  return AsRole::kInactive;
}

const util::IntervalSet* RoleTracker::origin_days(
    asn::Asn asn) const noexcept {
  return find(origin_, asn);
}

const util::IntervalSet* RoleTracker::transit_days(
    asn::Asn asn) const noexcept {
  return find(transit_, asn);
}

RoleTracker::RoleShare RoleTracker::share_over(
    asn::Asn asn, const util::DayInterval& window) const {
  RoleShare share;
  const util::IntervalSet* origin = find(origin_, asn);
  const util::IntervalSet* transit = find(transit_, asn);
  const std::int64_t origin_days_count =
      origin == nullptr ? 0 : origin->covered_days(window);
  const std::int64_t transit_days_count =
      transit == nullptr ? 0 : transit->covered_days(window);
  std::int64_t both = 0;
  if (origin != nullptr && transit != nullptr)
    both = origin->intersect(*transit).covered_days(window);
  share.both = both;
  share.origin_only = origin_days_count - both;
  share.transit_only = transit_days_count - both;
  return share;
}

std::size_t RoleTracker::asn_count() const noexcept {
  std::set<std::uint32_t> seen;
  for (const auto& [asn, days] : origin_) seen.insert(asn);
  for (const auto& [asn, days] : transit_) seen.insert(asn);
  return seen.size();
}

}  // namespace pl::bgp
