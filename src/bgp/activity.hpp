// Daily ASN activity: the operational lens's raw material.
//
// The paper considers an ASN active in BGP on a day iff strictly more than
// one distinct collector peer shared paths containing that ASN that day
// (3.2). VisibilityAggregator applies that rule to sanitized elements;
// ActivityTable is the resulting per-ASN set of active days, run-length
// encoded for 17-year scale.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "asn/asn.hpp"
#include "bgp/element.hpp"
#include "obs/metrics.hpp"
#include "util/interval_set.hpp"

namespace pl::bgp {

/// Per-ASN active-day sets.
class ActivityTable {
 public:
  /// Mark `asn` active on one day.
  void mark_active(asn::Asn asn, util::Day day);

  /// Mark `asn` active over an inclusive run of days (bulk path used by the
  /// full-scale generator).
  void mark_active(asn::Asn asn, const util::DayInterval& days);

  /// Fold a whole day set into `asn`'s activity with a single table lookup.
  /// Equivalent to adding every run of `days` in order.
  void mark_active(asn::Asn asn, util::IntervalSet&& days);

  /// Active-day set for an ASN; nullptr if never active.
  const util::IntervalSet* activity(asn::Asn asn) const noexcept;

  std::size_t asn_count() const noexcept { return activity_.size(); }

  /// Number of ASNs active on `day` — the per-day census of paper Fig. 4.
  /// O(n log runs); benches precompute day censuses via `daily_counts`.
  std::int64_t active_on(util::Day day) const noexcept;

  /// Census for every day in [begin, end]: result[i] = count active on
  /// begin+i. Linear sweep over run boundaries.
  std::vector<std::int32_t> daily_counts(util::Day begin,
                                         util::Day end) const;

  const std::map<asn::Asn, util::IntervalSet>& entries() const noexcept {
    return activity_;
  }

  /// Merge another table into this one.
  void merge(const ActivityTable& other);

 private:
  std::map<asn::Asn, util::IntervalSet> activity_;
};

/// Publish the activity census (active ASNs, total active ASN-days, and the
/// active-days-per-ASN distribution) into the metrics registry.
void record_metrics(const ActivityTable& table, obs::Registry& metrics);

/// Applies the >1-peer visibility rule to a stream of sanitized elements.
/// Every ASN appearing in a path is "observed" by the element's peer; an
/// (ASN, day) pair becomes *active* once two distinct peer ASes observed it.
class VisibilityAggregator {
 public:
  /// Minimum distinct peers for activity (the paper uses 2).
  explicit VisibilityAggregator(int min_peers = 2) : min_peers_(min_peers) {}

  void observe(const Element& element);

  /// Build the activity table from everything observed so far.
  ActivityTable build() const;

  /// Distinct (asn, day) pairs observed by exactly one peer — the spurious
  /// single-peer sightings the rule exists to reject.
  std::int64_t single_peer_pairs() const noexcept;

 private:
  struct PeerSeen {
    /// First distinct peers observed (thresholds beyond 4 are clamped).
    std::array<std::uint32_t, 4> peers{};
    int distinct = 0;
  };

  // Key: (asn << 20) ^ day-offset would risk collisions; use a composed
  // 64-bit key of asn and day instead.
  static std::uint64_t key(asn::Asn asn, util::Day day) noexcept {
    return (static_cast<std::uint64_t>(asn.value) << 24) ^
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(day)) &
            0xFFFFFF);
  }

  int min_peers_;
  std::unordered_map<std::uint64_t, PeerSeen> seen_;
  std::unordered_map<std::uint64_t, std::pair<asn::Asn, util::Day>> keys_;
};

/// Publish the §3.2 visibility-rule rejection count (single-peer sightings
/// the >1-peer rule filtered out).
void record_metrics(const VisibilityAggregator& aggregator,
                    obs::Registry& metrics);

/// Tracks distinct prefixes originated per (ASN, day) — the series behind
/// the squatting case studies (paper Fig. 8). Optionally restricted to a
/// watchlist to bound memory at full scale.
class OriginationTracker {
 public:
  OriginationTracker() = default;

  /// Restrict tracking to these ASNs (empty watchlist = track everything).
  void set_watchlist(std::vector<asn::Asn> asns);

  void observe(const Element& element);

  /// Distinct prefixes originated by `asn` on `day` (0 if none/untracked).
  std::int64_t prefixes_on(asn::Asn asn, util::Day day) const noexcept;

  /// Full daily series for one ASN across [begin, end].
  std::vector<std::int64_t> series(asn::Asn asn, util::Day begin,
                                   util::Day end) const;

 private:
  bool tracked(asn::Asn asn) const noexcept;

  std::unordered_set<std::uint32_t> watchlist_;
  bool watch_all_ = true;
  // (asn, day) -> set of prefixes seen.
  std::map<std::pair<std::uint32_t, util::Day>, std::set<Prefix>> counts_;
};

}  // namespace pl::bgp
