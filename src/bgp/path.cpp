#include "bgp/path.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace pl::bgp {

AsPath::AsPath(std::initializer_list<std::uint32_t> values) {
  hops_.reserve(values.size());
  for (std::uint32_t v : values) hops_.push_back(asn::Asn{v});
}

std::optional<AsPath> AsPath::parse(std::string_view text) {
  std::vector<asn::Asn> hops;
  for (std::string_view token : util::split(text, ' ')) {
    token = util::trim(token);
    if (token.empty()) continue;
    const auto asn = asn::parse_asn(token);
    if (!asn) return std::nullopt;
    hops.push_back(*asn);
  }
  return AsPath(std::move(hops));
}

std::optional<asn::Asn> AsPath::origin() const noexcept {
  if (hops_.empty()) return std::nullopt;
  return hops_.back();
}

std::optional<asn::Asn> AsPath::first_hop() const noexcept {
  if (hops_.size() < 2) return std::nullopt;
  return hops_[hops_.size() - 2];
}

bool AsPath::has_loop() const noexcept {
  // After collapsing prepending, any repeated ASN is a loop. Paths are
  // short (< 15 hops), so the quadratic scan beats hashing.
  asn::Asn previous{0};
  bool have_previous = false;
  std::vector<asn::Asn> seen;
  for (const asn::Asn hop : hops_) {
    if (have_previous && hop == previous) continue;
    if (std::find(seen.begin(), seen.end(), hop) != seen.end()) return true;
    seen.push_back(hop);
    previous = hop;
    have_previous = true;
  }
  return false;
}

AsPath AsPath::deduplicated() const {
  std::vector<asn::Asn> out;
  out.reserve(hops_.size());
  for (const asn::Asn hop : hops_)
    if (out.empty() || !(out.back() == hop)) out.push_back(hop);
  return AsPath(std::move(out));
}

bool AsPath::contains(asn::Asn asn) const noexcept {
  return std::find(hops_.begin(), hops_.end(), asn) != hops_.end();
}

std::string AsPath::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < hops_.size(); ++i) {
    if (i != 0) out.push_back(' ');
    out += asn::to_string(hops_[i]);
  }
  return out;
}

}  // namespace pl::bgp
