// Origination vs transit roles — the paper's future-work item (9):
// "distinguishing between origination and transit BGP activity of an ASN to
// differentiate the role(s) an ASN has at different times of its BGP
// lifetime." Tracks, per ASN, the days it was seen as an origin and the
// days it was seen forwarding others' routes.
#pragma once

#include <cstdint>
#include <map>

#include "bgp/element.hpp"
#include "util/interval_set.hpp"

namespace pl::bgp {

enum class AsRole : std::uint8_t {
  kInactive,    ///< not seen that day
  kOriginOnly,
  kTransitOnly,
  kBoth,
};

std::string_view role_name(AsRole role) noexcept;

class RoleTracker {
 public:
  /// Record one sanitized element: the path's last hop is an origin that
  /// day, every other hop (except the collector peer) is transit.
  void observe(const Element& element);

  /// Role of `asn` on `day`.
  AsRole role_on(asn::Asn asn, util::Day day) const noexcept;

  /// Days the ASN originated at least one prefix.
  const util::IntervalSet* origin_days(asn::Asn asn) const noexcept;

  /// Days the ASN appeared mid-path.
  const util::IntervalSet* transit_days(asn::Asn asn) const noexcept;

  /// Summary over an interval: how the ASN split its time between roles.
  struct RoleShare {
    std::int64_t origin_only = 0;
    std::int64_t transit_only = 0;
    std::int64_t both = 0;
  };
  RoleShare share_over(asn::Asn asn, const util::DayInterval& window) const;

  std::size_t asn_count() const noexcept;

 private:
  std::map<std::uint32_t, util::IntervalSet> origin_;
  std::map<std::uint32_t, util::IntervalSet> transit_;
};

}  // namespace pl::bgp
