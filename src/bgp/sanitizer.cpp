#include "bgp/sanitizer.hpp"

namespace pl::bgp {

std::string_view reject_reason_name(RejectReason reason) noexcept {
  switch (reason) {
    case RejectReason::kAccepted: return "accepted";
    case RejectReason::kPrefixTooLong: return "prefix-too-long";
    case RejectReason::kPrefixTooShort: return "prefix-too-short";
    case RejectReason::kPathLoop: return "path-loop";
    case RejectReason::kEmptyPath: return "empty-path";
  }
  return "unknown";
}

void record_metrics(const SanitizeStats& stats, obs::Registry& metrics) {
  metrics.counter("pl_bgp_sanitizer_accepted").add(stats.accepted);
  const auto drop = [&](std::string_view reason, std::int64_t value) {
    metrics
        .counter("pl_bgp_sanitizer_dropped{reason=\"" + std::string(reason) +
                 "\"}")
        .add(value);
  };
  drop("prefix_too_long", stats.prefix_too_long);
  drop("prefix_too_short", stats.prefix_too_short);
  drop("path_loop", stats.path_loops);
  drop("empty_path", stats.empty_paths);
}

RejectReason Sanitizer::classify(const Element& element) const noexcept {
  if (element.type == ElementType::kWithdrawal || element.path.empty())
    return RejectReason::kEmptyPath;

  const std::uint8_t length = element.prefix.length();
  if (element.prefix.family() == Family::kIpv4) {
    if (length < config_.ipv4_min_length) return RejectReason::kPrefixTooShort;
    if (length > config_.ipv4_max_length) return RejectReason::kPrefixTooLong;
  } else {
    if (length < config_.ipv6_min_length) return RejectReason::kPrefixTooShort;
    if (length > config_.ipv6_max_length) return RejectReason::kPrefixTooLong;
  }

  if (element.path.has_loop()) return RejectReason::kPathLoop;
  return RejectReason::kAccepted;
}

bool Sanitizer::accept(const Element& element,
                       SanitizeStats& stats) const noexcept {
  switch (classify(element)) {
    case RejectReason::kAccepted:
      ++stats.accepted;
      return true;
    case RejectReason::kPrefixTooLong:
      ++stats.prefix_too_long;
      return false;
    case RejectReason::kPrefixTooShort:
      ++stats.prefix_too_short;
      return false;
    case RejectReason::kPathLoop:
      ++stats.path_loops;
      return false;
    case RejectReason::kEmptyPath:
      ++stats.empty_paths;
      return false;
  }
  return false;
}

}  // namespace pl::bgp
