#include "bgp/sanitizer.hpp"

namespace pl::bgp {

std::string_view reject_reason_name(RejectReason reason) noexcept {
  switch (reason) {
    case RejectReason::kAccepted: return "accepted";
    case RejectReason::kPrefixTooLong: return "prefix-too-long";
    case RejectReason::kPrefixTooShort: return "prefix-too-short";
    case RejectReason::kPathLoop: return "path-loop";
    case RejectReason::kEmptyPath: return "empty-path";
  }
  return "unknown";
}

RejectReason Sanitizer::classify(const Element& element) const noexcept {
  if (element.type == ElementType::kWithdrawal || element.path.empty())
    return RejectReason::kEmptyPath;

  const std::uint8_t length = element.prefix.length();
  if (element.prefix.family() == Family::kIpv4) {
    if (length < config_.ipv4_min_length) return RejectReason::kPrefixTooShort;
    if (length > config_.ipv4_max_length) return RejectReason::kPrefixTooLong;
  } else {
    if (length < config_.ipv6_min_length) return RejectReason::kPrefixTooShort;
    if (length > config_.ipv6_max_length) return RejectReason::kPrefixTooLong;
  }

  if (element.path.has_loop()) return RejectReason::kPathLoop;
  return RejectReason::kAccepted;
}

bool Sanitizer::accept(const Element& element,
                       SanitizeStats& stats) const noexcept {
  switch (classify(element)) {
    case RejectReason::kAccepted:
      ++stats.accepted;
      return true;
    case RejectReason::kPrefixTooLong:
      ++stats.prefix_too_long;
      return false;
    case RejectReason::kPrefixTooShort:
      ++stats.prefix_too_short;
      return false;
    case RejectReason::kPathLoop:
      ++stats.path_loops;
      return false;
    case RejectReason::kEmptyPath:
      ++stats.empty_paths;
      return false;
  }
  return false;
}

}  // namespace pl::bgp
