#include "bgp/mrt.hpp"

namespace pl::bgp {

namespace {

void write_varint(std::uint64_t value, std::vector<std::uint8_t>& out) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

void write_prefix(const Prefix& prefix, std::vector<std::uint8_t>& out) {
  out.push_back(prefix.family() == Family::kIpv4 ? 4 : 6);
  out.push_back(prefix.length());
  const int bytes = (prefix.length() + 7) / 8;
  for (int i = 0; i < bytes; ++i) {
    const std::uint64_t source = i < 8 ? prefix.bits_high()
                                       : prefix.bits_low();
    const int shift = 56 - 8 * (i % 8);
    out.push_back(static_cast<std::uint8_t>((source >> shift) & 0xFF));
  }
}

// Single-element append: only the batch encoder below drives it, so it
// stays file-local rather than exported API.
void encode_element(const Element& element, std::vector<std::uint8_t>& out) {
  out.push_back(static_cast<std::uint8_t>(element.type));
  write_varint(static_cast<std::uint32_t>(element.day), out);
  write_varint(element.collector, out);
  write_varint(element.peer.value, out);
  write_prefix(element.prefix, out);
  if (element.type == ElementType::kWithdrawal) return;
  write_varint(element.path.size(), out);
  for (const asn::Asn hop : element.path.hops())
    write_varint(hop.value, out);
}

}  // namespace

std::vector<std::uint8_t> encode_elements(std::span<const Element> elements) {
  std::vector<std::uint8_t> out;
  out.reserve(elements.size() * 24);
  for (const Element& element : elements) encode_element(element, out);
  return out;
}

std::optional<std::uint8_t> MrtDecoder::read_byte() {
  if (offset_ >= data_.size()) return std::nullopt;
  return data_[offset_++];
}

std::optional<std::uint64_t> MrtDecoder::read_varint() {
  std::uint64_t value = 0;
  int shift = 0;
  while (shift < 64) {
    const auto byte = read_byte();
    if (!byte) return std::nullopt;
    value |= static_cast<std::uint64_t>(*byte & 0x7F) << shift;
    if ((*byte & 0x80) == 0) return value;
    shift += 7;
  }
  return std::nullopt;
}

bool MrtDecoder::fail(std::string_view reason) {
  ok_ = false;
  error_ = std::string(reason);
  return false;
}

std::optional<Element> MrtDecoder::next() {
  if (!ok_ || offset_ >= data_.size()) return std::nullopt;

  Element element;
  const auto type = read_byte();
  if (!type || *type > 2) {
    fail("bad record type");
    return std::nullopt;
  }
  element.type = static_cast<ElementType>(*type);

  const auto day = read_varint();
  const auto collector = read_varint();
  const auto peer = read_varint();
  if (!day || !collector || !peer || *peer > 0xFFFFFFFFULL ||
      *collector > 0xFFFF) {
    fail("bad record header");
    return std::nullopt;
  }
  element.day = static_cast<util::Day>(*day);
  element.collector = static_cast<CollectorId>(*collector);
  element.peer = asn::Asn{static_cast<std::uint32_t>(*peer)};

  const auto family = read_byte();
  const auto length = read_byte();
  if (!family || !length || (*family != 4 && *family != 6) ||
      (*family == 4 && *length > 32) || (*family == 6 && *length > 128)) {
    fail("bad prefix header");
    return std::nullopt;
  }
  std::uint64_t high = 0;
  std::uint64_t low = 0;
  const int bytes = (*length + 7) / 8;
  for (int i = 0; i < bytes; ++i) {
    const auto byte = read_byte();
    if (!byte) {
      fail("truncated prefix");
      return std::nullopt;
    }
    if (i < 8)
      high |= static_cast<std::uint64_t>(*byte) << (56 - 8 * i);
    else
      low |= static_cast<std::uint64_t>(*byte) << (56 - 8 * (i - 8));
  }
  element.prefix = *family == 4
                       ? Prefix::ipv4(static_cast<std::uint32_t>(high >> 32),
                                      *length)
                       : Prefix::ipv6(high, low, *length);

  if (element.type != ElementType::kWithdrawal) {
    const auto hops = read_varint();
    if (!hops || *hops > 64) {
      fail("bad path length");
      return std::nullopt;
    }
    std::vector<asn::Asn> path;
    path.reserve(static_cast<std::size_t>(*hops));
    for (std::uint64_t h = 0; h < *hops; ++h) {
      const auto hop = read_varint();
      if (!hop || *hop > 0xFFFFFFFFULL) {
        fail("bad path hop");
        return std::nullopt;
      }
      path.push_back(asn::Asn{static_cast<std::uint32_t>(*hop)});
    }
    element.path = AsPath(std::move(path));
  }
  return element;
}

std::optional<std::vector<Element>> decode_elements(
    std::span<const std::uint8_t> data) {
  MrtDecoder decoder(data);
  std::vector<Element> out;
  while (auto element = decoder.next()) out.push_back(std::move(*element));
  if (!decoder.ok()) return std::nullopt;
  return out;
}

DecodeResult decode_elements_tolerant(std::span<const std::uint8_t> data,
                                      robust::ErrorSink* sink) {
  DecodeResult result;
  MrtDecoder decoder(data);
  std::size_t last_boundary = 0;
  while (auto element = decoder.next()) {
    result.elements.push_back(std::move(*element));
    last_boundary = decoder.offset();
  }
  result.bytes_consumed = last_boundary;
  if (decoder.ok()) return result;

  result.complete = false;
  result.bytes_discarded = data.size() - last_boundary;
  result.error = std::string(decoder.error());
  if (sink != nullptr) {
    sink->counters().records_salvaged +=
        static_cast<std::int64_t>(result.elements.size());
    sink->counters().bytes_discarded +=
        static_cast<std::int64_t>(result.bytes_discarded);
    const robust::Severity severity =
        sink->policy() == robust::Policy::kStrict ? robust::Severity::kError
                                                  : robust::Severity::kWarning;
    sink->report({robust::Stage::kDecode, severity, "mrt-corrupt-tail",
                  result.error + "; " +
                      std::to_string(result.bytes_discarded) +
                      " byte(s) discarded after " +
                      std::to_string(result.elements.size()) +
                      " salvaged record(s)",
                  std::nullopt, std::nullopt});
  }
  return result;
}

}  // namespace pl::bgp
