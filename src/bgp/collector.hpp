// The collection infrastructure: RouteViews/RIS-style collectors, each
// peering with a set of ASes ("peers") that share their routing tables.
// Which peers can see an ASN determines the operational lens's visibility
// (paper 3.2 and the China discussion in 6.3/8).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "asn/asn.hpp"
#include "bgp/element.hpp"

namespace pl::bgp {

/// One collector and its full-feed peers.
struct Collector {
  CollectorId id = 0;
  std::string name;
  std::vector<asn::Asn> peers;
};

/// The whole measurement infrastructure.
struct CollectorInfrastructure {
  std::vector<Collector> collectors;

  std::size_t total_peers() const noexcept {
    std::size_t total = 0;
    for (const Collector& c : collectors) total += c.peers.size();
    return total;
  }
};

/// A default infrastructure shaped like the paper's: a RouteViews-style and
/// a RIS-style collector set with `peers_per_collector` full-feed peers
/// each, with deterministic peer ASNs.
CollectorInfrastructure make_default_infrastructure(
    int collectors = 4, int peers_per_collector = 8);

}  // namespace pl::bgp
