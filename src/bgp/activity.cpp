#include "bgp/activity.hpp"

#include <algorithm>
#include <mutex>

#include "exec/pool.hpp"

namespace pl::bgp {

void ActivityTable::mark_active(asn::Asn asn, util::Day day) {
  activity_[asn].add(day);
}

void ActivityTable::mark_active(asn::Asn asn,
                                const util::DayInterval& days) {
  if (days.empty()) return;
  activity_[asn].add(days);
}

void ActivityTable::mark_active(asn::Asn asn, util::IntervalSet&& days) {
  if (days.empty()) return;
  auto [it, inserted] = activity_.try_emplace(asn);
  if (inserted) {
    // Fresh slot: the set's runs are already maximal and ordered, so moving
    // it in wholesale equals adding each run — without a tree lookup per run.
    it->second = std::move(days);
    return;
  }
  for (const util::DayInterval& run : days.runs()) it->second.add(run);
}

const util::IntervalSet* ActivityTable::activity(
    asn::Asn asn) const noexcept {
  const auto it = activity_.find(asn);
  return it == activity_.end() ? nullptr : &it->second;
}

std::int64_t ActivityTable::active_on(util::Day day) const noexcept {
  std::int64_t count = 0;
  for (const auto& [asn, set] : activity_)
    if (set.contains(day)) ++count;
  return count;
}

std::vector<std::int32_t> ActivityTable::daily_counts(util::Day begin,
                                                      util::Day end) const {
  const auto days = static_cast<std::size_t>(end - begin + 1);
  // Difference array over run boundaries, then prefix-sum. Sharded by ASN
  // range: each shard accumulates its own delta array, and integer addition
  // of the shard deltas is exact and order-free, so the census is identical
  // to the serial sweep.
  std::vector<const util::IntervalSet*> sets;
  sets.reserve(activity_.size());
  for (const auto& [asn, set] : activity_) sets.push_back(&set);

  std::vector<std::int32_t> delta(days + 1, 0);
  std::mutex fold_mutex;
  exec::parallel_for(
      sets.size(),
      [&](std::size_t first, std::size_t last) {
        std::vector<std::int32_t> local(days + 1, 0);
        for (std::size_t i = first; i < last; ++i) {
          for (const util::DayInterval& run : sets[i]->runs()) {
            const util::DayInterval clipped =
                run.intersect(util::DayInterval{begin, end});
            if (clipped.empty()) continue;
            local[static_cast<std::size_t>(clipped.first - begin)] += 1;
            local[static_cast<std::size_t>(clipped.last - begin) + 1] -= 1;
          }
        }
        const std::lock_guard<std::mutex> lock(fold_mutex);
        for (std::size_t d = 0; d <= days; ++d) delta[d] += local[d];
      },
      /*grain=*/1024);

  std::vector<std::int32_t> counts(days);
  std::int32_t running = 0;
  for (std::size_t i = 0; i < days; ++i) {
    running += delta[i];
    counts[i] = running;
  }
  return counts;
}

void ActivityTable::merge(const ActivityTable& other) {
  for (const auto& [asn, set] : other.activity_) {
    auto& mine = activity_[asn];
    mine = mine.unite(set);
  }
}

void VisibilityAggregator::observe(const Element& element) {
  if (element.path.empty()) return;
  for (const asn::Asn hop : element.path.hops()) {
    const std::uint64_t k = key(hop, element.day);
    auto [it, inserted] = seen_.try_emplace(k);
    if (inserted) keys_.emplace(k, std::make_pair(hop, element.day));
    PeerSeen& entry = it->second;
    if (entry.distinct >= static_cast<int>(entry.peers.size())) continue;
    bool known = false;
    for (int i = 0; i < entry.distinct; ++i)
      if (entry.peers[static_cast<std::size_t>(i)] == element.peer.value)
        known = true;
    if (!known)
      entry.peers[static_cast<std::size_t>(entry.distinct++)] =
          element.peer.value;
  }
}

ActivityTable VisibilityAggregator::build() const {
  ActivityTable table;
  for (const auto& [k, entry] : seen_) {
    if (entry.distinct < min_peers_) continue;
    const auto key_it = keys_.find(k);
    table.mark_active(key_it->second.first, key_it->second.second);
  }
  return table;
}

std::int64_t VisibilityAggregator::single_peer_pairs() const noexcept {
  std::int64_t count = 0;
  for (const auto& [k, entry] : seen_)
    if (entry.distinct == 1) ++count;
  return count;
}

void record_metrics(const ActivityTable& table, obs::Registry& metrics) {
  metrics.gauge("pl_bgp_active_asns")
      .set(static_cast<std::int64_t>(table.asn_count()));
  obs::Counter& asn_days = metrics.counter("pl_bgp_active_asn_days");
  obs::Histogram& per_asn = metrics.histogram(
      "pl_bgp_active_days_per_asn", {30, 90, 365, 1825, 3650});
  for (const auto& [asn, days] : table.entries()) {
    const std::int64_t total = days.total_days();
    asn_days.add(total);
    per_asn.observe(total);
  }
}

void record_metrics(const VisibilityAggregator& aggregator,
                    obs::Registry& metrics) {
  metrics.counter("pl_bgp_single_peer_pairs")
      .add(aggregator.single_peer_pairs());
}

void OriginationTracker::set_watchlist(std::vector<asn::Asn> asns) {
  watchlist_.clear();
  for (const asn::Asn asn : asns) watchlist_.insert(asn.value);
  watch_all_ = watchlist_.empty();
}

bool OriginationTracker::tracked(asn::Asn asn) const noexcept {
  return watch_all_ || watchlist_.contains(asn.value);
}

void OriginationTracker::observe(const Element& element) {
  const auto origin = element.path.origin();
  if (!origin || !tracked(*origin)) return;
  counts_[{origin->value, element.day}].insert(element.prefix);
}

std::int64_t OriginationTracker::prefixes_on(asn::Asn asn,
                                             util::Day day) const noexcept {
  const auto it = counts_.find({asn.value, day});
  return it == counts_.end() ? 0
                             : static_cast<std::int64_t>(it->second.size());
}

std::vector<std::int64_t> OriginationTracker::series(asn::Asn asn,
                                                     util::Day begin,
                                                     util::Day end) const {
  std::vector<std::int64_t> out;
  out.reserve(static_cast<std::size_t>(end - begin + 1));
  for (util::Day day = begin; day <= end; ++day)
    out.push_back(prefixes_on(asn, day));
  return out;
}

}  // namespace pl::bgp
