// AS paths as carried in BGP announcements. Origin extraction, loop
// detection (sanitization, paper 3.2) and prepending analysis (fat-finger
// classification, paper 6.4) live here.
#pragma once

#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "asn/asn.hpp"

namespace pl::bgp {

/// An AS path, stored collector-side first: path[0] is the collector's peer,
/// path.back() is the origin AS.
class AsPath {
 public:
  AsPath() = default;
  explicit AsPath(std::vector<asn::Asn> hops) : hops_(std::move(hops)) {}
  AsPath(std::initializer_list<std::uint32_t> values);

  /// Parse a space-separated asplain path ("701 7046 290012147").
  static std::optional<AsPath> parse(std::string_view text);

  bool empty() const noexcept { return hops_.empty(); }
  std::size_t size() const noexcept { return hops_.size(); }

  const std::vector<asn::Asn>& hops() const noexcept { return hops_; }

  /// Origin AS (last hop); nullopt for empty paths.
  std::optional<asn::Asn> origin() const noexcept;

  /// The AS immediately upstream of the origin ("first hop" in the paper's
  /// terminology); nullopt for paths shorter than 2.
  std::optional<asn::Asn> first_hop() const noexcept;

  /// True iff an ASN reappears after a different ASN intervened.
  /// Consecutive repeats (prepending) are not loops.
  bool has_loop() const noexcept;

  /// Path with consecutive duplicates collapsed (prepending removed).
  AsPath deduplicated() const;

  /// True iff `asn` appears anywhere in the path.
  bool contains(asn::Asn asn) const noexcept;

  std::string to_string() const;

  friend bool operator==(const AsPath&, const AsPath&) = default;

 private:
  std::vector<asn::Asn> hops_;
};

}  // namespace pl::bgp
