// IP prefixes (IPv4 and IPv6) as announced in BGP. The sanitizer's
// prefix-length rules (paper 3.2) and the case-study analyses (/16 hijacks,
// covering-prefix checks) need parsing, formatting, and containment.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace pl::bgp {

enum class Family : std::uint8_t { kIpv4, kIpv6 };

/// A routed prefix. Address bits are stored left-aligned in a 128-bit value
/// so containment is a mask-and-compare for both families.
class Prefix {
 public:
  Prefix() = default;

  /// Build an IPv4 prefix from a host-order 32-bit address.
  static Prefix ipv4(std::uint32_t address, std::uint8_t length) noexcept;

  /// Build an IPv6 prefix from the high/low 64-bit halves.
  static Prefix ipv6(std::uint64_t high, std::uint64_t low,
                     std::uint8_t length) noexcept;

  /// Parse "a.b.c.d/len" or an RFC-4291 IPv6 "h:h::h/len" text form.
  static std::optional<Prefix> parse(std::string_view text) noexcept;

  Family family() const noexcept { return family_; }
  std::uint8_t length() const noexcept { return length_; }

  /// Max prefix length for the family (32 or 128).
  std::uint8_t max_length() const noexcept {
    return family_ == Family::kIpv4 ? 32 : 128;
  }

  /// True iff `other` is fully covered by this prefix (same family, longer
  /// or equal mask, matching bits).
  bool contains(const Prefix& other) const noexcept;

  std::string to_string() const;

  /// High/low halves of the left-aligned address bits.
  std::uint64_t bits_high() const noexcept { return high_; }
  std::uint64_t bits_low() const noexcept { return low_; }

  friend auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  std::uint64_t high_ = 0;
  std::uint64_t low_ = 0;
  std::uint8_t length_ = 0;
  Family family_ = Family::kIpv4;
};

}  // namespace pl::bgp
