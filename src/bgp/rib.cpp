#include "bgp/rib.hpp"

#include <algorithm>
#include <set>

namespace pl::bgp {

bool PeerRib::apply(const Element& element) {
  if (!bound_) {
    peer_ = element.peer;
    collector_ = element.collector;
    bound_ = true;
  } else if (!(element.peer == peer_)) {
    return false;
  }
  switch (element.type) {
    case ElementType::kRibEntry:
    case ElementType::kAnnouncement:
      if (element.path.empty()) return false;
      routes_[element.prefix] = element.path;
      return true;
    case ElementType::kWithdrawal:
      routes_.erase(element.prefix);
      return true;
  }
  return false;
}

const AsPath* PeerRib::route(const Prefix& prefix) const noexcept {
  const auto it = routes_.find(prefix);
  return it == routes_.end() ? nullptr : &it->second;
}

std::vector<Element> PeerRib::snapshot(util::Day day) const {
  std::vector<Element> out;
  out.reserve(routes_.size());
  for (const auto& [prefix, path] : routes_) {
    Element element;
    element.day = day;
    element.type = ElementType::kRibEntry;
    element.collector = collector_;
    element.peer = peer_;
    element.prefix = prefix;
    element.path = path;
    out.push_back(std::move(element));
  }
  return out;
}

std::vector<asn::Asn> PeerRib::origins() const {
  std::set<std::uint32_t> seen;
  for (const auto& [prefix, path] : routes_)
    if (const auto origin = path.origin()) seen.insert(origin->value);
  std::vector<asn::Asn> out;
  out.reserve(seen.size());
  for (const std::uint32_t value : seen) out.push_back(asn::Asn{value});
  return out;
}

void RibReconstructor::apply(const Element& element) {
  peers_[element.peer.value].apply(element);
}

std::size_t RibReconstructor::total_routes() const noexcept {
  std::size_t total = 0;
  for (const auto& [peer, rib] : peers_) total += rib.size();
  return total;
}

std::vector<Prefix> RibReconstructor::prefixes_originated_by(
    asn::Asn asn) const {
  std::set<Prefix> prefixes;
  for (const auto& [peer_value, rib] : peers_)
    for (const Element& element : rib.snapshot(0))
      if (element.path.origin() == asn) prefixes.insert(element.prefix);
  return {prefixes.begin(), prefixes.end()};
}

std::vector<RibReconstructor::MoasConflict>
RibReconstructor::moas_conflicts() const {
  std::map<Prefix, std::set<std::uint32_t>> origins_by_prefix;
  for (const auto& [peer_value, rib] : peers_)
    for (const Element& element : rib.snapshot(0))
      if (const auto origin = element.path.origin())
        origins_by_prefix[element.prefix].insert(origin->value);
  std::vector<MoasConflict> out;
  for (const auto& [prefix, origins] : origins_by_prefix) {
    if (origins.size() < 2) continue;
    MoasConflict conflict;
    conflict.prefix = prefix;
    for (const std::uint32_t value : origins)
      conflict.origins.push_back(asn::Asn{value});
    out.push_back(std::move(conflict));
  }
  return out;
}

}  // namespace pl::bgp
