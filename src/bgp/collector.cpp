#include "bgp/collector.hpp"

namespace pl::bgp {

CollectorInfrastructure make_default_infrastructure(int collectors,
                                                    int peers_per_collector) {
  CollectorInfrastructure infra;
  infra.collectors.reserve(static_cast<std::size_t>(collectors));
  // Peer ASNs are carved from a range far above allocatable space used by
  // the simulator's organizations, so peers never collide with study ASNs.
  std::uint32_t next_peer = 3900000000U;
  for (int c = 0; c < collectors; ++c) {
    Collector collector;
    collector.id = static_cast<CollectorId>(c + 1);
    collector.name = (c % 2 == 0 ? "route-views." : "rrc") +
                     std::to_string(c / 2);
    collector.peers.reserve(static_cast<std::size_t>(peers_per_collector));
    for (int p = 0; p < peers_per_collector; ++p)
      collector.peers.push_back(asn::Asn{next_peer++});
    infra.collectors.push_back(std::move(collector));
  }
  return infra;
}

}  // namespace pl::bgp
