// BGP route elements as delivered by a collector infrastructure: the unified
// record shape BGPStream exposes for both RIB dump entries and updates
// (paper 3.2 processes one RIB per collector per day plus all updates).
#pragma once

#include <cstdint>

#include "asn/asn.hpp"
#include "bgp/path.hpp"
#include "bgp/prefix.hpp"
#include "util/date.hpp"

namespace pl::bgp {

enum class ElementType : std::uint8_t {
  kRibEntry,      ///< row of a RIB dump
  kAnnouncement,  ///< update: announce
  kWithdrawal,    ///< update: withdraw (no path)
};

/// Identifier of a collector (RouteViews/RIS style).
using CollectorId = std::uint16_t;

/// One observed route element.
struct Element {
  util::Day day = 0;
  ElementType type = ElementType::kRibEntry;
  CollectorId collector = 0;
  asn::Asn peer;     ///< the AS peering with the collector that shared this
  Prefix prefix;
  AsPath path;       ///< empty for withdrawals
};

}  // namespace pl::bgp
