// Compact binary encoding for route elements, modelled on the MRT export
// format (RFC 6396) that RouteViews/RIS archives use. A real deployment
// parses hundreds of billions of such records; the codec here round-trips
// the Element model and anchors the parser-throughput microbenches.
//
// Wire layout (little-endian, varint = LEB128):
//   record   := type:u8 day:varint collector:varint peer:varint
//               prefix withdrawal? ( pathlen:varint hop:varint* )
//   prefix   := family:u8 length:u8 bytes[ceil(length/8)]
// Withdrawals omit the path section.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bgp/element.hpp"
#include "robust/error.hpp"

namespace pl::bgp {

/// Encode a batch.
std::vector<std::uint8_t> encode_elements(std::span<const Element> elements);

/// Streaming decoder over an encoded buffer.
class MrtDecoder {
 public:
  explicit MrtDecoder(std::span<const std::uint8_t> data) : data_(data) {}

  /// Next element; nullopt at clean end of buffer. Corrupt data raises the
  /// error flag and returns nullopt.
  std::optional<Element> next();

  bool ok() const noexcept { return ok_; }
  std::string_view error() const noexcept { return error_; }
  std::size_t offset() const noexcept { return offset_; }

 private:
  std::optional<std::uint64_t> read_varint();
  std::optional<std::uint8_t> read_byte();
  bool fail(std::string_view reason);

  std::span<const std::uint8_t> data_;
  std::size_t offset_ = 0;
  bool ok_ = true;
  std::string error_;
};

/// Decode a whole buffer; returns nullopt if any record is corrupt.
std::optional<std::vector<Element>> decode_elements(
    std::span<const std::uint8_t> data);

/// Outcome of a tolerant decode: everything decodable before the first
/// corrupt record, plus an exact account of what was lost.
struct DecodeResult {
  std::vector<Element> elements;
  bool complete = true;            ///< false when a corrupt tail was dropped
  std::size_t bytes_consumed = 0;  ///< offset of the last record boundary
  std::size_t bytes_discarded = 0; ///< tail bytes after the first bad record
  std::string error;               ///< decoder reason when !complete
};

/// Decode a buffer salvaging every record before the first corrupt one —
/// the mode an unattended archive ingester runs, where one flipped bit must
/// not discard a day of updates. The discarded tail is reported through
/// `sink` (stage kDecode) when one is given; the strict `decode_elements`
/// above stays for callers that need all-or-nothing semantics.
DecodeResult decode_elements_tolerant(std::span<const std::uint8_t> data,
                                      robust::ErrorSink* sink = nullptr);

}  // namespace pl::bgp
