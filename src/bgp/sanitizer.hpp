// BGP data sanitization (paper 3.2):
//   * discard IPv4 paths to prefixes longer than /24 or shorter than /8;
//   * discard IPv6 paths to prefixes longer than /64 or shorter than /8;
//   * discard paths containing loops (misconfiguration artifacts).
// Withdrawals carry no path and never contribute to ASN activity.
#pragma once

#include <cstdint>
#include <string>

#include "bgp/element.hpp"
#include "obs/metrics.hpp"

namespace pl::bgp {

/// Why an element was rejected.
enum class RejectReason : std::uint8_t {
  kAccepted,
  kPrefixTooLong,
  kPrefixTooShort,
  kPathLoop,
  kEmptyPath,  ///< withdrawal or pathless element
};

std::string_view reject_reason_name(RejectReason reason) noexcept;

/// Tallies kept while sanitizing a stream; reported by benches and examples
/// the way the paper reports its discard statistics.
struct SanitizeStats {
  std::int64_t accepted = 0;
  std::int64_t prefix_too_long = 0;
  std::int64_t prefix_too_short = 0;
  std::int64_t path_loops = 0;
  std::int64_t empty_paths = 0;

  std::int64_t total() const noexcept {
    return accepted + prefix_too_long + prefix_too_short + path_loops +
           empty_paths;
  }
};

/// Publish the §3.2 filter accounting: accepted elements plus one
/// `pl_bgp_sanitizer_dropped{reason="..."}` counter per discard class.
void record_metrics(const SanitizeStats& stats, obs::Registry& metrics);

/// Sanitization policy. The bounds are the paper's; configurable so the
/// sensitivity of results to the filter can be explored.
struct SanitizerConfig {
  std::uint8_t ipv4_min_length = 8;
  std::uint8_t ipv4_max_length = 24;
  std::uint8_t ipv6_min_length = 8;
  std::uint8_t ipv6_max_length = 64;
};

class Sanitizer {
 public:
  explicit Sanitizer(SanitizerConfig config = {}) : config_(config) {}

  /// Classify one element. Does not mutate the element.
  RejectReason classify(const Element& element) const noexcept;

  /// Classify and tally.
  bool accept(const Element& element, SanitizeStats& stats) const noexcept;

 private:
  SanitizerConfig config_;
};

}  // namespace pl::bgp
