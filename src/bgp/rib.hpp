// Routing Information Base state: per-peer route tables driven by update
// streams, and daily-RIB reconstruction from a dump plus subsequent updates
// — the data model behind "one full RIB dump per collector and all update
// dumps available" (paper 3.2).
#pragma once

#include <map>
#include <vector>

#include "bgp/element.hpp"

namespace pl::bgp {

/// The routes one peer currently advertises to a collector: best route per
/// prefix (BGP sends implicit withdrawals — a new announcement for a prefix
/// replaces the previous one).
class PeerRib {
 public:
  /// Apply one element from this peer. Announcements and RIB entries
  /// install/replace the route; withdrawals remove it. Elements from other
  /// peers are ignored (returns false).
  bool apply(const Element& element);

  /// Current number of routed prefixes.
  std::size_t size() const noexcept { return routes_.size(); }

  /// The path currently installed for `prefix`, nullptr if none.
  const AsPath* route(const Prefix& prefix) const noexcept;

  /// Snapshot as RIB-entry elements (sorted by prefix), stamped with `day`.
  std::vector<Element> snapshot(util::Day day) const;

  asn::Asn peer() const noexcept { return peer_; }

  /// Distinct origin ASNs across the table.
  std::vector<asn::Asn> origins() const;

 private:
  asn::Asn peer_{0};
  bool bound_ = false;
  CollectorId collector_ = 0;
  std::map<Prefix, AsPath> routes_;
};

/// Reconstructs the daily view of a whole collector: seed each peer's table
/// from the day's RIB dump, then roll updates forward. This is the streaming
/// consumer a real BGPStream-based deployment feeds; the paper processed
/// 930B dump records and 2.3T updates through exactly this state machine.
class RibReconstructor {
 public:
  /// Apply any element (dump row or update) to the owning peer's table.
  void apply(const Element& element);

  /// Tables keyed by peer ASN.
  const std::map<std::uint32_t, PeerRib>& peers() const noexcept {
    return peers_;
  }

  /// Total routes across peers.
  std::size_t total_routes() const noexcept;

  /// Prefixes originated by `asn` across all peers (MOAS detection input).
  std::vector<Prefix> prefixes_originated_by(asn::Asn asn) const;

  /// Prefixes currently originated by more than one distinct ASN — Multiple
  /// Origin AS conflicts (the paper's (Sub)MOAS events, 6.1.2/6.4).
  struct MoasConflict {
    Prefix prefix;
    std::vector<asn::Asn> origins;
  };
  std::vector<MoasConflict> moas_conflicts() const;

 private:
  std::map<std::uint32_t, PeerRib> peers_;
};

}  // namespace pl::bgp
