#include "bgp/prefix.hpp"

#include <charconv>
#include <vector>

#include "util/strings.hpp"

namespace pl::bgp {

namespace {

void mask_bits(std::uint64_t& high, std::uint64_t& low,
               std::uint8_t length) noexcept {
  if (length == 0) {
    high = 0;
    low = 0;
  } else if (length < 64) {
    high &= ~0ULL << (64 - length);
    low = 0;
  } else if (length == 64) {
    low = 0;  // a 64-bit shift below would be undefined
  } else if (length < 128) {
    low &= ~0ULL << (128 - length);
  }
}

std::optional<std::uint32_t> parse_u32(std::string_view text,
                                       std::uint32_t max) {
  std::uint32_t value = 0;
  const auto* begin = text.data();
  const auto* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end || value > max) return std::nullopt;
  return value;
}

std::optional<std::uint32_t> parse_hex16(std::string_view text) {
  if (text.empty() || text.size() > 4) return std::nullopt;
  std::uint32_t value = 0;
  const auto* begin = text.data();
  const auto* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value, 16);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

std::optional<Prefix> parse_ipv4(std::string_view address,
                                 std::uint8_t length) {
  const auto octets = util::split(address, '.');
  if (octets.size() != 4) return std::nullopt;
  std::uint32_t packed = 0;
  for (const auto octet : octets) {
    const auto value = parse_u32(octet, 255);
    if (!value) return std::nullopt;
    packed = (packed << 8) | *value;
  }
  return Prefix::ipv4(packed, length);
}

std::optional<Prefix> parse_ipv6(std::string_view address,
                                 std::uint8_t length) {
  // Split around "::" (at most one).
  std::vector<std::uint32_t> head;
  std::vector<std::uint32_t> tail;
  const auto gap = address.find("::");
  const auto parse_groups = [](std::string_view part,
                               std::vector<std::uint32_t>& out) {
    if (part.empty()) return true;
    for (const auto group : util::split(part, ':')) {
      const auto value = parse_hex16(group);
      if (!value) return false;
      out.push_back(*value);
    }
    return true;
  };
  if (gap == std::string_view::npos) {
    if (!parse_groups(address, head) || head.size() != 8) return std::nullopt;
  } else {
    if (address.find("::", gap + 1) != std::string_view::npos)
      return std::nullopt;
    if (!parse_groups(address.substr(0, gap), head) ||
        !parse_groups(address.substr(gap + 2), tail) ||
        head.size() + tail.size() > 7)
      return std::nullopt;
  }
  std::array<std::uint32_t, 8> groups{};
  for (std::size_t i = 0; i < head.size(); ++i) groups[i] = head[i];
  for (std::size_t i = 0; i < tail.size(); ++i)
    groups[8 - tail.size() + i] = tail[i];
  std::uint64_t high = 0;
  std::uint64_t low = 0;
  for (std::size_t i = 0; i < 4; ++i) high = (high << 16) | groups[i];
  for (std::size_t i = 4; i < 8; ++i) low = (low << 16) | groups[i];
  return Prefix::ipv6(high, low, length);
}

}  // namespace

Prefix Prefix::ipv4(std::uint32_t address, std::uint8_t length) noexcept {
  Prefix p;
  p.family_ = Family::kIpv4;
  p.length_ = length > 32 ? 32 : length;
  p.high_ = static_cast<std::uint64_t>(address) << 32;
  p.low_ = 0;
  mask_bits(p.high_, p.low_, p.length_);
  return p;
}

Prefix Prefix::ipv6(std::uint64_t high, std::uint64_t low,
                    std::uint8_t length) noexcept {
  Prefix p;
  p.family_ = Family::kIpv6;
  p.length_ = length > 128 ? 128 : length;
  p.high_ = high;
  p.low_ = low;
  mask_bits(p.high_, p.low_, p.length_);
  return p;
}

std::optional<Prefix> Prefix::parse(std::string_view text) noexcept {
  const auto slash = text.rfind('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const std::string_view address = text.substr(0, slash);
  const bool v6 = address.find(':') != std::string_view::npos;
  const auto length = parse_u32(text.substr(slash + 1), v6 ? 128 : 32);
  if (!length) return std::nullopt;
  return v6 ? parse_ipv6(address, static_cast<std::uint8_t>(*length))
            : parse_ipv4(address, static_cast<std::uint8_t>(*length));
}

bool Prefix::contains(const Prefix& other) const noexcept {
  if (family_ != other.family_ || length_ > other.length_) return false;
  std::uint64_t high = other.high_;
  std::uint64_t low = other.low_;
  mask_bits(high, low, length_);
  return high == high_ && low == low_;
}

std::string Prefix::to_string() const {
  std::string out;
  if (family_ == Family::kIpv4) {
    const auto address = static_cast<std::uint32_t>(high_ >> 32);
    for (int shift = 24; shift >= 0; shift -= 8) {
      if (shift != 24) out.push_back('.');
      out += std::to_string((address >> shift) & 0xFF);
    }
  } else {
    // Canonical-ish: full groups, no zero compression (unambiguous and
    // sufficient for logs/tests).
    char buf[8];
    for (int g = 0; g < 8; ++g) {
      if (g != 0) out.push_back(':');
      const std::uint64_t source = g < 4 ? high_ : low_;
      const int shift = 48 - 16 * (g % 4);
      const auto group = static_cast<std::uint32_t>((source >> shift) &
                                                    0xFFFF);
      auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, group, 16);
      out.append(buf, ptr);
    }
  }
  out.push_back('/');
  out += std::to_string(length_);
  return out;
}

}  // namespace pl::bgp
