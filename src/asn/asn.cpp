#include "asn/asn.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <vector>

namespace pl::asn {

int digit_count(Asn asn) noexcept {
  int digits = 1;
  std::uint32_t v = asn.value;
  while (v >= 10) {
    v /= 10;
    ++digits;
  }
  return digits;
}

std::optional<Asn> parse_asn(std::string_view text) noexcept {
  if (text.empty() || text.size() > 10) return std::nullopt;
  std::uint64_t value = 0;
  const auto* begin = text.data();
  const auto* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end || value > 0xFFFFFFFFULL)
    return std::nullopt;
  return Asn{static_cast<std::uint32_t>(value)};
}

std::string to_string(Asn asn) { return std::to_string(asn.value); }

bool is_doubled_spelling(Asn candidate, Asn target) noexcept {
  const std::string c = std::to_string(candidate.value);
  const std::string t = std::to_string(target.value);
  return c.size() == 2 * t.size() && c.compare(0, t.size(), t) == 0 &&
         c.compare(t.size(), t.size(), t) == 0;
}

int spelling_distance(Asn a, Asn b) noexcept {
  const std::string s = std::to_string(a.value);
  const std::string t = std::to_string(b.value);
  std::vector<int> previous(t.size() + 1);
  std::vector<int> current(t.size() + 1);
  for (std::size_t j = 0; j <= t.size(); ++j)
    previous[j] = static_cast<int>(j);
  for (std::size_t i = 1; i <= s.size(); ++i) {
    current[0] = static_cast<int>(i);
    for (std::size_t j = 1; j <= t.size(); ++j) {
      const int substitution =
          previous[j - 1] + (s[i - 1] == t[j - 1] ? 0 : 1);
      current[j] = std::min({previous[j] + 1, current[j - 1] + 1,
                             substitution});
    }
    std::swap(previous, current);
  }
  return previous[t.size()];
}

}  // namespace pl::asn
