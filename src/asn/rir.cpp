#include "asn/rir.hpp"

#include "util/strings.hpp"

namespace pl::asn {

namespace {

using util::make_day;

constexpr std::array<std::string_view, kRirCount> kDisplayNames = {
    "AfriNIC", "APNIC", "ARIN", "LACNIC", "RIPE NCC"};

constexpr std::array<std::string_view, kRirCount> kFileTokens = {
    "afrinic", "apnic", "arin", "lacnic", "ripencc"};

}  // namespace

std::string_view display_name(Rir rir) noexcept {
  return kDisplayNames[index_of(rir)];
}

std::string_view file_token(Rir rir) noexcept {
  return kFileTokens[index_of(rir)];
}

std::optional<Rir> parse_rir(std::string_view token) noexcept {
  const std::string lowered = util::to_lower(util::trim(token));
  for (Rir rir : kAllRirs)
    if (lowered == kFileTokens[index_of(rir)]) return rir;
  // Historical alias seen in early RIPE files.
  if (lowered == "ripe") return Rir::kRipeNcc;
  return std::nullopt;
}

const RirFacts& facts(Rir rir) noexcept {
  // Paper Table 1: first regular / first extended delegation file per RIR;
  // footnote 3: ARIN stopped regular files after 2013-08-12.
  static const std::array<RirFacts, kRirCount> kFacts = {{
      {make_day(2005, 2, 18), make_day(2012, 10, 2), std::nullopt},
      {make_day(2003, 10, 9), make_day(2008, 2, 14), std::nullopt},
      {make_day(2003, 11, 20), make_day(2013, 3, 5),
       make_day(2013, 8, 12)},
      {make_day(2004, 1, 1), make_day(2012, 6, 28), std::nullopt},
      {make_day(2003, 11, 26), make_day(2010, 4, 22), std::nullopt},
  }};
  return kFacts[index_of(rir)];
}

util::Day archive_end_day() noexcept { return make_day(2021, 3, 1); }

util::Day archive_begin_day() noexcept { return make_day(2003, 10, 9); }

}  // namespace pl::asn
