// Autonomous System Numbers: the identifier space this whole study is about.
//
// ASNs are 32-bit unsigned integers (RFC 6793). "16-bit" ASNs (< 65536) are
// the original scarce pool whose exhaustion drives several of the paper's
// findings; several ranges are reserved by RFC for private/documentation use
// and must be excluded from the never-allocated analysis ("bogon" ASNs,
// paper 6.4).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace pl::asn {

/// Strong ASN value type. Zero (AS0, RFC 7607) is representable but never a
/// usable origin.
struct Asn {
  std::uint32_t value = 0;

  constexpr bool is_16bit() const noexcept { return value < 65536; }
  constexpr bool is_32bit_only() const noexcept { return value >= 65536; }

  friend constexpr auto operator<=>(const Asn&, const Asn&) = default;
};

/// Why an ASN is special-use (and thus filtered as a bogon).
enum class SpecialUse : std::uint8_t {
  kNone,            ///< Ordinary, allocatable number.
  kAs0,             ///< AS 0 (RFC 7607).
  kTransition,      ///< AS_TRANS 23456 (RFC 6793).
  kDocumentation,   ///< 64496..64511 and 65536..65551 (RFC 5398).
  kPrivateUse,      ///< 64512..65534 and 4200000000..4294967294 (RFC 6996).
  kLastAsn,         ///< 65535 and 4294967295 (RFC 7300).
};

/// Classify an ASN against the IANA special-purpose registry.
constexpr SpecialUse special_use(Asn asn) noexcept {
  const std::uint32_t v = asn.value;
  if (v == 0) return SpecialUse::kAs0;
  if (v == 23456) return SpecialUse::kTransition;
  if ((v >= 64496 && v <= 64511) || (v >= 65536 && v <= 65551))
    return SpecialUse::kDocumentation;
  if ((v >= 64512 && v <= 65534) || (v >= 4200000000U && v <= 4294967294U))
    return SpecialUse::kPrivateUse;
  if (v == 65535 || v == 4294967295U) return SpecialUse::kLastAsn;
  return SpecialUse::kNone;
}

/// True iff operators are expected to filter this ASN ("bogon" per the RFCs
/// the paper cites). Bogons are excluded from the 6.4 analysis.
constexpr bool is_bogon(Asn asn) noexcept {
  return special_use(asn) != SpecialUse::kNone;
}

/// Number of decimal digits of the ASN — the paper's fat-finger analysis
/// reasons about digit counts (e.g., 6-digit max allocated vs longer typos).
int digit_count(Asn asn) noexcept;

/// Parse a plain decimal ASN ("asplain", RFC 5396). Rejects values > 2^32-1.
std::optional<Asn> parse_asn(std::string_view text) noexcept;

/// Render as asplain decimal.
std::string to_string(Asn asn);

/// Detect whether `candidate`'s decimal spelling is the spelling of `target`
/// repeated twice (e.g. 3202632026 vs 32026) — the paper's most common
/// fat-finger class, caused by failed AS-path prepending (6.4).
bool is_doubled_spelling(Asn candidate, Asn target) noexcept;

/// Levenshtein distance between the decimal spellings of two ASNs; the paper
/// flags MOAS conflicts between ASNs "that differ by 1 digit".
int spelling_distance(Asn a, Asn b) noexcept;

}  // namespace pl::asn
