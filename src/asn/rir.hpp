// The five Regional Internet Registries and their delegation-file metadata
// (paper Table 1 and 2).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>

#include "util/date.hpp"

namespace pl::asn {

enum class Rir : std::uint8_t {
  kAfrinic,
  kApnic,
  kArin,
  kLacnic,
  kRipeNcc,
};

inline constexpr std::array<Rir, 5> kAllRirs = {
    Rir::kAfrinic, Rir::kApnic, Rir::kArin, Rir::kLacnic, Rir::kRipeNcc};

inline constexpr std::size_t kRirCount = kAllRirs.size();

constexpr std::size_t index_of(Rir rir) noexcept {
  return static_cast<std::size_t>(rir);
}

/// Display name ("RIPE NCC", "AfriNIC", ...).
std::string_view display_name(Rir rir) noexcept;

/// Registry token as it appears in delegation files ("ripencc", "apnic", ...).
std::string_view file_token(Rir rir) noexcept;

/// Parse a registry token (case-insensitive). Unknown tokens -> nullopt.
std::optional<Rir> parse_rir(std::string_view token) noexcept;

/// Static per-RIR facts mirrored from the paper (Table 1) that anchor the
/// simulated archives to the real publication history.
struct RirFacts {
  util::Day first_regular_file;   ///< first day a regular file exists
  util::Day first_extended_file;  ///< first day an extended file exists
  /// ARIN stopped publishing regular files on 2013-08-12; for others this is
  /// nullopt (they still publish both).
  std::optional<util::Day> last_regular_file;
};

const RirFacts& facts(Rir rir) noexcept;

/// Day the paper's archive ends (2021-03-01) and begins (first regular file
/// across RIRs, 2003-10-09 == APNIC, which matches the BGP data start).
util::Day archive_end_day() noexcept;
util::Day archive_begin_day() noexcept;

}  // namespace pl::asn
