#include "asn/country.hpp"

namespace pl::asn {

std::optional<CountryCode> CountryCode::parse(std::string_view text) noexcept {
  if (text.size() != 2) return std::nullopt;
  const char a = text[0];
  const char b = text[1];
  const auto upper = [](char c) {
    return (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
  };
  const char ua = upper(a);
  const char ub = upper(b);
  if (ua < 'A' || ua > 'Z' || ub < 'A' || ub > 'Z') return std::nullopt;
  return literal(ua, ub);
}

std::string CountryCode::to_string() const {
  if (unknown()) return "ZZ";
  std::string out(2, '\0');
  out[0] = static_cast<char>(packed_ >> 8);
  out[1] = static_cast<char>(packed_ & 0xFF);
  return out;
}

namespace {

constexpr CountryCode cc(char a, char b) { return CountryCode::literal(a, b); }

}  // namespace

std::vector<CountryWeight> country_pool(Rir rir, int year) {
  switch (rir) {
    case Rir::kArin:
      // US >92% of ARIN allocations (paper App. A).
      return {{cc('U', 'S'), 92.5}, {cc('C', 'A'), 6.0}, {cc('B', 'M'), 0.5},
              {cc('J', 'M'), 0.5},  {cc('B', 'S'), 0.5}};
    case Rir::kLacnic:
      // Brazil 64% (2015) -> 70% (2021); Argentina second (~9.5%).
      return {{cc('B', 'R'), year >= 2016 ? 70.0 : 64.0},
              {cc('A', 'R'), 9.5},
              {cc('M', 'X'), 6.0},
              {cc('C', 'L'), 5.0},
              {cc('C', 'O'), 5.0},
              {cc('P', 'E'), 3.0},
              {cc('E', 'C'), 2.5}};
    case Rir::kAfrinic:
      // South Africa leads (>32%).
      return {{cc('Z', 'A'), 32.5}, {cc('N', 'G'), 12.0}, {cc('K', 'E'), 9.0},
              {cc('E', 'G'), 7.0},  {cc('T', 'Z'), 5.5},  {cc('G', 'H'), 5.0},
              {cc('M', 'U'), 4.0},  {cc('A', 'O'), 3.5},  {cc('M', 'A'), 3.0},
              {cc('U', 'G'), 3.0}};
    case Rir::kApnic:
      // Paper Table 4: the leader changes across eras.
      if (year < 2012)
        return {{cc('A', 'U'), 17.6}, {cc('K', 'R'), 14.6},
                {cc('J', 'P'), 12.9}, {cc('C', 'N'), 7.6},
                {cc('I', 'D'), 7.1},  {cc('I', 'N'), 6.0},
                {cc('H', 'K'), 5.0},  {cc('T', 'W'), 4.5},
                {cc('N', 'Z'), 4.0},  {cc('S', 'G'), 3.5}};
      if (year < 2017)
        return {{cc('A', 'U'), 16.1}, {cc('C', 'N'), 11.4},
                {cc('J', 'P'), 10.4}, {cc('I', 'N'), 10.1},
                {cc('K', 'R'), 9.6},  {cc('I', 'D'), 9.0},
                {cc('H', 'K'), 5.5},  {cc('B', 'D'), 4.0},
                {cc('S', 'G'), 3.5},  {cc('N', 'Z'), 3.0}};
      // Recent era: India first, Indonesia surpassing China.
      return {{cc('I', 'N'), 26.0}, {cc('I', 'D'), 16.0},
              {cc('A', 'U'), 11.0}, {cc('C', 'N'), 10.0},
              {cc('B', 'D'), 7.0},  {cc('J', 'P'), 3.0},
              {cc('H', 'K'), 4.5},  {cc('K', 'R'), 2.0},
              {cc('S', 'G'), 3.0},  {cc('P', 'H'), 3.0}};
    case Rir::kRipeNcc:
      // Russia leads with 16.6%; UK about half that; long tail.
      return {{cc('R', 'U'), 16.6}, {cc('G', 'B'), 8.0}, {cc('D', 'E'), 7.5},
              {cc('F', 'R'), 4.85}, {cc('N', 'L'), 4.5}, {cc('I', 'T'), 4.5},
              {cc('U', 'A'), 4.5},  {cc('P', 'L'), 4.0}, {cc('E', 'S'), 3.0},
              {cc('S', 'E'), 2.5},  {cc('C', 'H'), 2.5}, {cc('T', 'R'), 2.0},
              {cc('R', 'O'), 2.0},  {cc('C', 'Z'), 1.8}, {cc('A', 'T'), 1.7}};
  }
  return {};
}

}  // namespace pl::asn
