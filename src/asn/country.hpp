// Compact ISO 3166-1 alpha-2 country codes. Delegation records carry the
// country of the holder organization; the paper's per-country analyses
// (China visibility, APNIC country evolution) key on these.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "asn/rir.hpp"

namespace pl::asn {

/// Two uppercase ASCII letters packed into 16 bits. The all-zero value is
/// "unknown" (delegation files occasionally carry "ZZ" or empty codes).
class CountryCode {
 public:
  constexpr CountryCode() = default;

  static std::optional<CountryCode> parse(std::string_view text) noexcept;

  /// Construct from two letters known to be valid at compile time.
  static constexpr CountryCode literal(char a, char b) noexcept {
    CountryCode cc;
    cc.packed_ = static_cast<std::uint16_t>((a << 8) | b);
    return cc;
  }

  std::string to_string() const;

  constexpr bool unknown() const noexcept { return packed_ == 0; }

  friend constexpr auto operator<=>(const CountryCode&,
                                    const CountryCode&) = default;

 private:
  std::uint16_t packed_ = 0;
};

inline constexpr CountryCode kUnknownCountry{};

/// A realistic per-RIR pool of countries with allocation weights, used by
/// the registry simulator so per-country statistics (Table 4, 6.3) have the
/// paper's shape: e.g. US dominates ARIN (>92%), Brazil dominates LACNIC,
/// India/Australia/Indonesia/China lead APNIC, Russia leads RIPE.
struct CountryWeight {
  CountryCode country;
  double weight;  ///< relative share of new allocations
};

/// Country pool for one RIR. Weights are era-dependent for APNIC (the paper
/// tracks India overtaking Australia between 2010 and 2021); `year` selects
/// the era.
std::vector<CountryWeight> country_pool(Rir rir, int year);

}  // namespace pl::asn
