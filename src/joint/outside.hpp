// Never-allocated origin analysis (paper 6.4): classifying BGP activity by
// ASNs that no RIR ever delegated — prepending typos, one-digit typos, and
// very large internal-use ASNs leaking to the global table.
#pragma once

#include <optional>
#include <vector>

#include "joint/taxonomy.hpp"

namespace pl::joint {

enum class NeverAllocatedKind : std::uint8_t {
  kPrependTypo,   ///< decimal spelling is an allocated ASN repeated twice
  kDigitTypo,     ///< one edit away from an allocated ASN's spelling
  kInternalLeak,  ///< more digits than the largest ever-allocated ASN
  kUnclassified,
};

std::string_view never_allocated_kind_name(NeverAllocatedKind kind) noexcept;

struct NeverAllocatedFinding {
  asn::Asn asn;
  NeverAllocatedKind kind = NeverAllocatedKind::kUnclassified;
  std::optional<asn::Asn> imitated;  ///< the legitimate ASN (typo classes)
  std::int64_t active_days = 0;      ///< total BGP activity duration
};

struct OutsideAnalysis {
  std::vector<NeverAllocatedFinding> never_allocated;
  /// Duration ladder for never-allocated ASNs (paper: 427 > 1 day,
  /// 186 > 1 month, 15 > 1 year).
  std::int64_t active_over_1day = 0;
  std::int64_t active_over_1month = 0;
  std::int64_t active_over_1year = 0;
  /// ASNs with more digits than the largest allocated one (paper: 472).
  std::int64_t large_asn_count = 0;
  int max_allocated_digits = 0;
};

/// Classify every never-allocated ASN in the outside-delegation category.
/// Typo matching tests the doubled-spelling decomposition and all
/// edit-distance-1 spellings against the set of ever-allocated ASNs.
OutsideAnalysis analyze_never_allocated(const Taxonomy& taxonomy,
                                        const lifetimes::AdminDataset& admin,
                                        const lifetimes::OpDataset& op);

}  // namespace pl::joint
