#include "joint/birdseye.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace pl::joint {

namespace {

using util::Day;
using util::DayInterval;

/// Difference-array accumulator over a day window.
class DiffSeries {
 public:
  DiffSeries(Day begin, Day end)
      : begin_(begin), end_(end),
        delta_(static_cast<std::size_t>(end - begin + 2), 0) {}

  void add(const DayInterval& interval) {
    const DayInterval clipped =
        interval.intersect(DayInterval{begin_, end_});
    if (clipped.empty()) return;
    delta_[static_cast<std::size_t>(clipped.first - begin_)] += 1;
    delta_[static_cast<std::size_t>(clipped.last - begin_) + 1] -= 1;
  }

  std::vector<std::int32_t> counts() const {
    std::vector<std::int32_t> out(delta_.size() - 1);
    std::int32_t running = 0;
    for (std::size_t i = 0; i + 1 < delta_.size(); ++i) {
      running += delta_[i];
      out[i] = running;
    }
    return out;
  }

 private:
  Day begin_;
  Day end_;
  std::vector<std::int32_t> delta_;
};

/// Registry of an ASN's (first) admin life; kRirCount if none.
std::unordered_map<std::uint32_t, std::size_t> registry_of_asn(
    const lifetimes::AdminDataset& admin) {
  std::unordered_map<std::uint32_t, std::size_t> out;
  out.reserve(admin.by_asn.size());
  for (const auto& [asn, indices] : admin.by_asn)
    out.emplace(asn, asn::index_of(admin.lifetimes[indices.front()].registry));
  return out;
}

}  // namespace

DailyCensus compute_census(const lifetimes::AdminDataset& admin,
                           const lifetimes::OpDataset& op, Day begin,
                           Day end) {
  DailyCensus census;
  census.begin = begin;
  census.end = end;

  std::vector<DiffSeries> admin_series(asn::kRirCount,
                                       DiffSeries(begin, end));
  std::vector<DiffSeries> op_series(asn::kRirCount, DiffSeries(begin, end));
  DiffSeries admin_all(begin, end);
  DiffSeries op_all(begin, end);

  for (const lifetimes::AdminLifetime& life : admin.lifetimes) {
    admin_series[asn::index_of(life.registry)].add(life.days);
    admin_all.add(life.days);
  }

  const auto registries = registry_of_asn(admin);
  for (const lifetimes::OpLifetime& life : op.lifetimes) {
    op_all.add(life.days);
    const auto it = registries.find(life.asn.value);
    if (it != registries.end()) op_series[it->second].add(life.days);
  }

  for (std::size_t r = 0; r < asn::kRirCount; ++r) {
    census.admin_per_rir[r] = admin_series[r].counts();
    census.op_per_rir[r] = op_series[r].counts();
  }
  census.admin_overall = admin_all.counts();
  census.op_overall = op_all.counts();
  return census;
}

Day crossover_day(const std::vector<std::int32_t>& a,
                  const std::vector<std::int32_t>& b, Day begin) {
  // Last day where a <= b, then the crossover is the next day (if any).
  std::size_t last_not_ahead = 0;
  bool ever_behind = false;
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i)
    if (a[i] <= b[i]) {
      last_not_ahead = i;
      ever_behind = true;
    }
  if (!ever_behind) return begin;  // ahead the whole time
  if (last_not_ahead + 1 >= a.size()) return -1;  // never stays ahead
  return begin + static_cast<Day>(last_not_ahead) + 1;
}

WidthCensus compute_width_census(const lifetimes::AdminDataset& admin,
                                 Day begin, Day end) {
  WidthCensus census;
  census.begin = begin;
  census.end = end;
  std::vector<DiffSeries> series16(asn::kRirCount, DiffSeries(begin, end));
  std::vector<DiffSeries> series32(asn::kRirCount, DiffSeries(begin, end));
  for (const lifetimes::AdminLifetime& life : admin.lifetimes) {
    const std::size_t r = asn::index_of(life.registry);
    (life.asn.is_16bit() ? series16 : series32)[r].add(life.days);
  }
  for (std::size_t r = 0; r < asn::kRirCount; ++r) {
    census.bits16[r] = series16[r].counts();
    census.bits32[r] = series32[r].counts();
  }
  return census;
}

QuarterlySeries compute_quarterly(const lifetimes::AdminDataset& admin,
                                  Day begin, Day end) {
  QuarterlySeries series;
  const int first_quarter = util::quarter_index(begin);
  const int last_quarter = util::quarter_index(end);
  const auto quarters = static_cast<std::size_t>(last_quarter -
                                                 first_quarter + 1);
  series.quarter_index.resize(quarters);
  for (std::size_t q = 0; q < quarters; ++q)
    series.quarter_index[q] = first_quarter + static_cast<int>(q);
  for (std::size_t r = 0; r < asn::kRirCount; ++r) {
    series.births[r].assign(quarters, 0);
    series.balance[r].assign(quarters, 0);
  }

  for (const lifetimes::AdminLifetime& life : admin.lifetimes) {
    const std::size_t r = asn::index_of(life.registry);
    const int birth_quarter = util::quarter_index(life.days.first);
    if (birth_quarter >= first_quarter && birth_quarter <= last_quarter) {
      const auto q = static_cast<std::size_t>(birth_quarter - first_quarter);
      ++series.births[r][q];
      ++series.balance[r][q];
    }
    if (!life.open_ended) {
      const int death_quarter = util::quarter_index(life.days.last);
      if (death_quarter >= first_quarter && death_quarter <= last_quarter)
        --series.balance[r][static_cast<std::size_t>(death_quarter -
                                                     first_quarter)];
    }
  }
  return series;
}

namespace {

void tally_lives(std::map<std::pair<std::size_t, std::uint32_t>, int>& counts,
                 std::array<LivesPerAsnRow, asn::kRirCount>& rows,
                 LivesPerAsnRow& total) {
  std::array<std::array<std::int64_t, 3>, asn::kRirCount> buckets{};
  std::array<std::int64_t, 3> total_buckets{};
  for (const auto& [key, lives] : counts) {
    const std::size_t bucket = lives == 1 ? 0 : lives == 2 ? 1 : 2;
    ++buckets[key.first][bucket];
    ++total_buckets[bucket];
  }
  for (std::size_t r = 0; r < asn::kRirCount; ++r) {
    const std::int64_t n =
        buckets[r][0] + buckets[r][1] + buckets[r][2];
    rows[r].asns = n;
    if (n == 0) continue;
    rows[r].one = static_cast<double>(buckets[r][0]) / static_cast<double>(n);
    rows[r].two = static_cast<double>(buckets[r][1]) / static_cast<double>(n);
    rows[r].more = static_cast<double>(buckets[r][2]) / static_cast<double>(n);
  }
  const std::int64_t n =
      total_buckets[0] + total_buckets[1] + total_buckets[2];
  total.asns = n;
  if (n != 0) {
    total.one = static_cast<double>(total_buckets[0]) / static_cast<double>(n);
    total.two = static_cast<double>(total_buckets[1]) / static_cast<double>(n);
    total.more = static_cast<double>(total_buckets[2]) / static_cast<double>(n);
  }
}

}  // namespace

LivesPerAsnTable compute_lives_per_asn(const lifetimes::AdminDataset& admin,
                                       const lifetimes::OpDataset& op) {
  LivesPerAsnTable table;

  std::map<std::pair<std::size_t, std::uint32_t>, int> admin_counts;
  for (const auto& [asn, indices] : admin.by_asn) {
    const std::size_t r =
        asn::index_of(admin.lifetimes[indices.front()].registry);
    admin_counts[{r, asn}] = static_cast<int>(indices.size());
  }
  tally_lives(admin_counts, table.admin, table.admin_total);

  const auto registries = registry_of_asn(admin);
  std::map<std::pair<std::size_t, std::uint32_t>, int> op_counts;
  for (const auto& [asn, indices] : op.by_asn) {
    const auto it = registries.find(asn);
    if (it == registries.end()) continue;  // never allocated: no RIR row
    op_counts[{it->second, asn}] = static_cast<int>(indices.size());
  }
  tally_lives(op_counts, table.op, table.op_total);
  return table;
}

std::vector<CountryShareRow> country_shares_on(
    const lifetimes::AdminDataset& admin, asn::Rir rir, Day day,
    std::size_t top_n) {
  std::map<std::string, CountryShareRow> rows;
  std::int64_t total = 0;
  for (const lifetimes::AdminLifetime& life : admin.lifetimes) {
    if (life.registry != rir || !life.days.contains(day)) continue;
    auto& row = rows[life.country.to_string()];
    row.country = life.country;
    ++row.count;
    ++total;
  }
  std::vector<CountryShareRow> out;
  out.reserve(rows.size());
  for (auto& [name, row] : rows) {
    row.share = total == 0 ? 0
                           : static_cast<double>(row.count) /
                                 static_cast<double>(total);
    out.push_back(row);
  }
  std::sort(out.begin(), out.end(),
            [](const CountryShareRow& a, const CountryShareRow& b) {
              return a.count > b.count;
            });
  if (out.size() > top_n) out.resize(top_n);
  return out;
}

std::array<std::vector<double>, asn::kRirCount> durations_per_rir(
    const lifetimes::AdminDataset& admin) {
  std::array<std::vector<double>, asn::kRirCount> out;
  for (const lifetimes::AdminLifetime& life : admin.lifetimes)
    out[asn::index_of(life.registry)].push_back(
        static_cast<double>(life.days.length()));
  return out;
}

BirthYearStats compute_birth_year_stats(const lifetimes::AdminDataset& admin,
                                        int first_year, int last_year) {
  BirthYearStats stats;
  stats.first_year = first_year;
  const auto years = static_cast<std::size_t>(last_year - first_year + 1);
  for (std::size_t r = 0; r < asn::kRirCount; ++r) {
    stats.durations[r].resize(years);
    stats.births[r].assign(years, 0);
  }
  for (const lifetimes::AdminLifetime& life : admin.lifetimes) {
    const int year = util::year_of(life.days.first);
    if (year < first_year || year > last_year) continue;
    const std::size_t r = asn::index_of(life.registry);
    const auto y = static_cast<std::size_t>(year - first_year);
    stats.durations[r][y].push_back(
        static_cast<double>(life.days.length()));
    ++stats.births[r][y];
  }
  return stats;
}

}  // namespace pl::joint
