// 16-bit ASN exhaustion analysis (paper Appendix A): when each registry's
// 16-bit allocation count peaked, the global maximum, and how many 16-bit
// numbers remained allocatable at that moment.
#pragma once

#include <array>

#include "joint/birdseye.hpp"

namespace pl::joint {

struct ExhaustionAnalysis {
  /// Day each RIR's 16-bit allocated count peaked, and the peak value.
  std::array<util::Day, asn::kRirCount> peak_day{};
  std::array<std::int32_t, asn::kRirCount> peak_count{};

  /// Global 16-bit peak across all registries combined (paper: 60,455 on
  /// January 23, 2019).
  util::Day global_peak_day = 0;
  std::int32_t global_peak_count = 0;

  /// Allocatable 16-bit numbers never allocated at the global peak
  /// (universe minus RFC-reserved minus allocated; paper: 4,039 available).
  std::int32_t available_at_peak = 0;

  /// Size of the allocatable 16-bit universe (excludes AS0, the RFC
  /// 5398/6996/7300 reservations and AS_TRANS).
  std::int32_t allocatable_universe = 0;
};

/// Compute from a width census (Fig. 12's data).
ExhaustionAnalysis analyze_16bit_exhaustion(const WidthCensus& census);

}  // namespace pl::joint
