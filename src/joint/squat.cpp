#include "joint/squat.hpp"

#include <algorithm>

namespace pl::joint {

std::vector<SquatCandidate> detect_dormant_squats(
    const Taxonomy& taxonomy, const lifetimes::AdminDataset& admin,
    const lifetimes::OpDataset& op, const SquatDetectorConfig& config) {
  std::vector<SquatCandidate> candidates;

  for (std::size_t a = 0; a < admin.lifetimes.size(); ++a) {
    if (taxonomy.admin_category[a] != Category::kCompleteOverlap) continue;
    const lifetimes::AdminLifetime& life = admin.lifetimes[a];

    std::vector<std::size_t> contained;
    for (const std::size_t o : taxonomy.admin_to_ops[a])
      if (life.days.contains(op.lifetimes[o].days)) contained.push_back(o);
    std::sort(contained.begin(), contained.end(),
              [&](std::size_t x, std::size_t y) {
                return op.lifetimes[x].days.first <
                       op.lifetimes[y].days.first;
              });

    util::Day previous_end = life.days.first - 1;  // allocation start
    for (const std::size_t o : contained) {
      const lifetimes::OpLifetime& op_life = op.lifetimes[o];
      const std::int64_t dormancy =
          static_cast<std::int64_t>(op_life.days.first) - previous_end - 1;
      const double relative =
          static_cast<double>(op_life.days.length()) /
          static_cast<double>(life.days.length());
      if (dormancy >= config.dormancy_days &&
          relative <= config.max_relative_duration)
        candidates.push_back(
            SquatCandidate{life.asn, o, a, dormancy, relative});
      previous_end = op_life.days.last;
    }
  }
  return candidates;
}

AsnSquatFlags flag_asn_squats(std::span<const lifetimes::AdminLifetime> admin,
                              std::span<const lifetimes::OpLifetime> op,
                              const AsnClassification& cls,
                              const SquatDetectorConfig& config) {
  AsnSquatFlags flags;
  flags.dormant.assign(op.size(), false);
  flags.outside.assign(op.size(), false);

  // Dormant awakenings: walk each complete-overlap admin life's contained
  // op lives in start order, measuring dormancy from the allocation start
  // or the previous contained op life's end — the same walk as
  // detect_dormant_squats, restricted to one ASN.
  for (std::size_t a = 0; a < admin.size(); ++a) {
    if (cls.admin_category[a] != Category::kCompleteOverlap) continue;
    const lifetimes::AdminLifetime& life = admin[a];
    util::Day previous_end = life.days.first - 1;  // allocation start
    for (const std::size_t o : cls.admin_to_ops[a]) {
      if (!life.days.contains(op[o].days)) continue;
      const std::int64_t dormancy =
          static_cast<std::int64_t>(op[o].days.first) - previous_end - 1;
      const double relative = static_cast<double>(op[o].days.length()) /
                              static_cast<double>(life.days.length());
      if (dormancy >= config.dormancy_days &&
          relative <= config.max_relative_duration)
        flags.dormant[o] = true;
      previous_end = op[o].days.last;
    }
  }

  // Outside-delegation activity: the global detector emits one candidate
  // per outside-category op life whose ASN has at least one admin life (an
  // outside life overlaps none of them, so a closest gap always exists).
  for (std::size_t o = 0; o < op.size(); ++o)
    if (cls.op_category[o] == Category::kOutsideDelegation && !admin.empty())
      flags.outside[o] = true;

  return flags;
}

std::vector<SquatCandidate> detect_outside_delegation_activity(
    const Taxonomy& taxonomy, const lifetimes::AdminDataset& admin,
    const lifetimes::OpDataset& op) {
  std::vector<SquatCandidate> candidates;
  for (std::size_t o = 0; o < op.lifetimes.size(); ++o) {
    if (taxonomy.op_category[o] != Category::kOutsideDelegation) continue;
    const lifetimes::OpLifetime& op_life = op.lifetimes[o];
    const auto admin_it = admin.by_asn.find(op_life.asn.value);
    if (admin_it == admin.by_asn.end()) continue;  // never allocated

    // Distance to the closest admin life and to the previous op life.
    std::int64_t closest_admin_gap = -1;
    std::size_t closest_admin = 0;
    for (const std::size_t a : admin_it->second) {
      const auto& admin_days = admin.lifetimes[a].days;
      std::int64_t gap;
      if (admin_days.last < op_life.days.first)
        gap = op_life.days.first - admin_days.last;
      else if (op_life.days.last < admin_days.first)
        gap = admin_days.first - op_life.days.last;
      else
        continue;  // would overlap; not this category
      if (closest_admin_gap < 0 || gap < closest_admin_gap) {
        closest_admin_gap = gap;
        closest_admin = a;
      }
    }
    if (closest_admin_gap < 0) continue;

    std::int64_t dormancy = 0;
    const auto op_it = op.by_asn.find(op_life.asn.value);
    for (const std::size_t prior : op_it->second) {
      if (prior == o) continue;
      const auto& prior_days = op.lifetimes[prior].days;
      if (prior_days.last < op_life.days.first)
        dormancy = op_life.days.first - prior_days.last - 1;
    }

    SquatCandidate candidate;
    candidate.asn = op_life.asn;
    candidate.op_index = o;
    candidate.admin_index = closest_admin;
    candidate.dormancy = dormancy;
    candidate.relative_duration =
        static_cast<double>(op_life.days.length()) /
        static_cast<double>(
            admin.lifetimes[closest_admin].days.length());
    candidates.push_back(candidate);
  }
  return candidates;
}

}  // namespace pl::joint
