#include "joint/taxonomy.hpp"

#include <algorithm>
#include <set>

#include "check/contracts.hpp"
#include "exec/pool.hpp"

namespace pl::joint {

namespace {

constexpr std::string_view kCategoryNames[] = {
    "complete-overlap", "partial-overlap", "unused-admin",
    "outside-delegation"};

}  // namespace

std::string_view category_name(Category category) noexcept {
  return kCategoryNames[static_cast<std::size_t>(category)];
}

Taxonomy classify(const lifetimes::AdminDataset& admin,
                  const lifetimes::OpDataset& op) {
  PL_EXPECT(([&] {
              for (const auto& [asn, indices] : admin.by_asn)
                for (const std::size_t index : indices)
                  if (index >= admin.lifetimes.size() ||
                      admin.lifetimes[index].asn.value != asn)
                    return false;
              return true;
            })(),
            "classify() requires a freshly indexed AdminDataset (by_asn "
            "entries must point at lifetimes of the same ASN)");
  Taxonomy taxonomy;
  taxonomy.admin_category.assign(admin.lifetimes.size(), Category::kUnused);
  taxonomy.op_category.assign(op.lifetimes.size(),
                              Category::kOutsideDelegation);
  taxonomy.op_to_admin.assign(op.lifetimes.size(), -1);
  taxonomy.admin_to_ops.resize(admin.lifetimes.size());

  // Track whether each admin life saw a boundary-crossing op life.
  std::vector<bool> admin_has_partial(admin.lifetimes.size(), false);
  std::vector<bool> admin_has_inside(admin.lifetimes.size(), false);

  // Each op life classifies independently (per-index writes), but the
  // admin-side cross-links are shared: record each op life's overlapping
  // admin lives into a per-op slot, then fold the slots serially in
  // ascending-op order below — the exact order the serial loop appended
  // to admin_to_ops (and vector<bool> writes are not thread-safe anyway).
  struct Overlap {
    std::size_t admin;
    bool inside;
  };
  std::vector<std::vector<Overlap>> overlaps_by_op(op.lifetimes.size());

  exec::parallel_for(
      op.lifetimes.size(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t o = begin; o < end; ++o) {
          const lifetimes::OpLifetime& op_life = op.lifetimes[o];
          const auto admin_it = admin.by_asn.find(op_life.asn.value);
          std::int64_t best_admin = -1;
          std::int64_t best_overlap = 0;
          bool inside = false;
          if (admin_it != admin.by_asn.end()) {
            for (const std::size_t a : admin_it->second) {
              const lifetimes::AdminLifetime& admin_life = admin.lifetimes[a];
              const std::int64_t overlap =
                  util::overlap_days(admin_life.days, op_life.days);
              if (overlap <= 0) continue;
              const bool contains = admin_life.days.contains(op_life.days);
              overlaps_by_op[o].push_back(Overlap{a, contains});
              if (overlap > best_overlap) {
                best_overlap = overlap;
                best_admin = static_cast<std::int64_t>(a);
                inside = contains;
              }
            }
          }
          taxonomy.op_to_admin[o] = best_admin;
          if (best_admin < 0)
            taxonomy.op_category[o] = Category::kOutsideDelegation;
          else
            taxonomy.op_category[o] = inside ? Category::kCompleteOverlap
                                             : Category::kPartialOverlap;
        }
      },
      /*grain=*/256);

  for (std::size_t o = 0; o < op.lifetimes.size(); ++o) {
    for (const Overlap& overlap : overlaps_by_op[o]) {
      taxonomy.admin_to_ops[overlap.admin].push_back(o);
      if (overlap.inside)
        admin_has_inside[overlap.admin] = true;
      else
        admin_has_partial[overlap.admin] = true;
    }
  }

  for (std::size_t a = 0; a < admin.lifetimes.size(); ++a) {
    if (admin_has_partial[a])
      taxonomy.admin_category[a] = Category::kPartialOverlap;
    else if (admin_has_inside[a])
      taxonomy.admin_category[a] = Category::kCompleteOverlap;
    else
      taxonomy.admin_category[a] = Category::kUnused;
  }

  for (const Category c : taxonomy.admin_category)
    ++taxonomy.admin_counts[static_cast<std::size_t>(c)];
  for (const Category c : taxonomy.op_category)
    ++taxonomy.op_counts[static_cast<std::size_t>(c)];
  PL_ENSURE(([&] {
              std::int64_t admin_total = 0;
              for (const std::int64_t n : taxonomy.admin_counts)
                admin_total += n;
              std::int64_t op_total = 0;
              for (const std::int64_t n : taxonomy.op_counts) op_total += n;
              return admin_total ==
                         static_cast<std::int64_t>(admin.lifetimes.size()) &&
                     op_total ==
                         static_cast<std::int64_t>(op.lifetimes.size());
            })(),
            "taxonomy tallies must conserve the input lifetime counts "
            "(every life lands in exactly one class)");
  return taxonomy;
}

OutsideSplit split_outside(const Taxonomy& taxonomy,
                           const lifetimes::AdminDataset& admin,
                           const lifetimes::OpDataset& op) {
  OutsideSplit split;
  std::set<std::uint32_t> ever;
  std::set<std::uint32_t> never;
  for (std::size_t o = 0; o < op.lifetimes.size(); ++o) {
    if (taxonomy.op_category[o] != Category::kOutsideDelegation) continue;
    const std::uint32_t asn = op.lifetimes[o].asn.value;
    if (asn::is_bogon(asn::Asn{asn})) continue;  // operators filter bogons
    if (admin.by_asn.contains(asn))
      ever.insert(asn);
    else
      never.insert(asn);
  }
  for (const std::uint32_t asn : ever)
    split.ever_allocated.push_back(asn::Asn{asn});
  for (const std::uint32_t asn : never)
    split.never_allocated.push_back(asn::Asn{asn});
  return split;
}

void record_metrics(const Taxonomy& taxonomy, obs::Registry& metrics) {
  const auto tally = [&](std::string_view side, std::string_view cls,
                         Category category,
                         const std::array<std::int64_t, 4>& counts) {
    metrics
        .counter("pl_taxonomy_" + std::string(side) + "{class=\"" +
                 std::string(cls) + "\"}")
        .add(counts[static_cast<std::size_t>(category)]);
  };
  tally("admin", "complete_overlap", Category::kCompleteOverlap,
        taxonomy.admin_counts);
  tally("admin", "partial_overlap", Category::kPartialOverlap,
        taxonomy.admin_counts);
  tally("admin", "unused", Category::kUnused, taxonomy.admin_counts);
  tally("op", "complete_overlap", Category::kCompleteOverlap,
        taxonomy.op_counts);
  tally("op", "partial_overlap", Category::kPartialOverlap,
        taxonomy.op_counts);
  tally("op", "outside_delegation", Category::kOutsideDelegation,
        taxonomy.op_counts);
}

}  // namespace pl::joint
