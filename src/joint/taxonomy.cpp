#include "joint/taxonomy.hpp"

#include <algorithm>
#include <set>

#include "check/contracts.hpp"
#include "exec/pool.hpp"

namespace pl::joint {

namespace {

constexpr std::string_view kCategoryNames[] = {
    "complete-overlap", "partial-overlap", "unused-admin",
    "outside-delegation"};

}  // namespace

std::string_view category_name(Category category) noexcept {
  return kCategoryNames[static_cast<std::size_t>(category)];
}

AsnClassification classify_asn(std::span<const lifetimes::AdminLifetime> admin,
                               std::span<const lifetimes::OpLifetime> op) {
  AsnClassification cls;
  cls.admin_category.assign(admin.size(), Category::kUnused);
  cls.op_category.assign(op.size(), Category::kOutsideDelegation);
  cls.op_to_admin.assign(op.size(), -1);
  cls.admin_to_ops.resize(admin.size());

  std::vector<bool> admin_has_partial(admin.size(), false);
  std::vector<bool> admin_has_inside(admin.size(), false);

  for (std::size_t o = 0; o < op.size(); ++o) {
    const lifetimes::OpLifetime& op_life = op[o];
    std::int64_t best_admin = -1;
    std::int64_t best_overlap = 0;
    bool inside = false;
    for (std::size_t a = 0; a < admin.size(); ++a) {
      const lifetimes::AdminLifetime& admin_life = admin[a];
      const std::int64_t overlap =
          util::overlap_days(admin_life.days, op_life.days);
      if (overlap <= 0) continue;
      const bool contains = admin_life.days.contains(op_life.days);
      cls.admin_to_ops[a].push_back(o);
      if (contains)
        admin_has_inside[a] = true;
      else
        admin_has_partial[a] = true;
      if (overlap > best_overlap) {
        best_overlap = overlap;
        best_admin = static_cast<std::int64_t>(a);
        inside = contains;
      }
    }
    cls.op_to_admin[o] = best_admin;
    if (best_admin < 0)
      cls.op_category[o] = Category::kOutsideDelegation;
    else
      cls.op_category[o] =
          inside ? Category::kCompleteOverlap : Category::kPartialOverlap;
  }

  for (std::size_t a = 0; a < admin.size(); ++a) {
    if (admin_has_partial[a])
      cls.admin_category[a] = Category::kPartialOverlap;
    else if (admin_has_inside[a])
      cls.admin_category[a] = Category::kCompleteOverlap;
    else
      cls.admin_category[a] = Category::kUnused;
  }
  return cls;
}

Taxonomy classify(const lifetimes::AdminDataset& admin,
                  const lifetimes::OpDataset& op) {
  PL_EXPECT(([&] {
              for (const auto& [asn, indices] : admin.by_asn)
                for (const std::size_t index : indices)
                  if (index >= admin.lifetimes.size() ||
                      admin.lifetimes[index].asn.value != asn)
                    return false;
              return true;
            })(),
            "classify() requires a freshly indexed AdminDataset (by_asn "
            "entries must point at lifetimes of the same ASN)");
  Taxonomy taxonomy;
  taxonomy.admin_category.assign(admin.lifetimes.size(), Category::kUnused);
  taxonomy.op_category.assign(op.lifetimes.size(),
                              Category::kOutsideDelegation);
  taxonomy.op_to_admin.assign(op.lifetimes.size(), -1);
  taxonomy.admin_to_ops.resize(admin.lifetimes.size());

  // Classification only relates lives of the same ASN, so shard over the
  // merged per-ASN groups: each group classifies into its own slot via
  // classify_asn, then the slots scatter serially in ascending-ASN order —
  // bit-identical to the serial per-op loop this replaces (the per-op
  // iteration order inside an ASN equals the local start order, and groups
  // are disjoint).
  struct Group {
    std::uint32_t asn;
    const std::vector<std::size_t>* admin_indices;  // nullptr when absent
    const std::vector<std::size_t>* op_indices;
  };
  std::vector<Group> groups;
  groups.reserve(admin.by_asn.size() + op.by_asn.size());
  {
    auto a_it = admin.by_asn.begin();
    auto o_it = op.by_asn.begin();
    while (a_it != admin.by_asn.end() || o_it != op.by_asn.end()) {
      if (o_it == op.by_asn.end() ||
          (a_it != admin.by_asn.end() && a_it->first < o_it->first)) {
        groups.push_back(Group{a_it->first, &a_it->second, nullptr});
        ++a_it;
      } else if (a_it == admin.by_asn.end() || o_it->first < a_it->first) {
        groups.push_back(Group{o_it->first, nullptr, &o_it->second});
        ++o_it;
      } else {
        groups.push_back(Group{a_it->first, &a_it->second, &o_it->second});
        ++a_it;
        ++o_it;
      }
    }
  }

  // Groups own disjoint global indices on both sides, so workers write
  // straight into the output arrays — same values the per-group
  // classify_asn + serial scatter produced, without a per-group
  // AsnClassification allocation.
  static const std::vector<std::size_t> kNoIndices;
  exec::parallel_for(
      groups.size(),
      [&](std::size_t begin, std::size_t end) {
        std::vector<unsigned char> has_partial;
        std::vector<unsigned char> has_inside;
        for (std::size_t g = begin; g < end; ++g) {
          const auto& a_idx = groups[g].admin_indices != nullptr
                                  ? *groups[g].admin_indices
                                  : kNoIndices;
          const auto& o_idx = groups[g].op_indices != nullptr
                                  ? *groups[g].op_indices
                                  : kNoIndices;
          has_partial.assign(a_idx.size(), 0);
          has_inside.assign(a_idx.size(), 0);
          for (const std::size_t oi : o_idx) {
            const lifetimes::OpLifetime& op_life = op.lifetimes[oi];
            std::int64_t best_admin = -1;
            std::int64_t best_overlap = 0;
            bool inside = false;
            for (std::size_t a = 0; a < a_idx.size(); ++a) {
              const lifetimes::AdminLifetime& admin_life =
                  admin.lifetimes[a_idx[a]];
              const std::int64_t overlap =
                  util::overlap_days(admin_life.days, op_life.days);
              if (overlap <= 0) continue;
              const bool contains = admin_life.days.contains(op_life.days);
              taxonomy.admin_to_ops[a_idx[a]].push_back(oi);
              if (contains)
                has_inside[a] = 1;
              else
                has_partial[a] = 1;
              if (overlap > best_overlap) {
                best_overlap = overlap;
                best_admin = static_cast<std::int64_t>(a);
                inside = contains;
              }
            }
            if (best_admin < 0) {
              taxonomy.op_to_admin[oi] = -1;
              taxonomy.op_category[oi] = Category::kOutsideDelegation;
            } else {
              taxonomy.op_to_admin[oi] = static_cast<std::int64_t>(
                  a_idx[static_cast<std::size_t>(best_admin)]);
              taxonomy.op_category[oi] = inside ? Category::kCompleteOverlap
                                                : Category::kPartialOverlap;
            }
          }
          for (std::size_t a = 0; a < a_idx.size(); ++a) {
            if (has_partial[a] != 0)
              taxonomy.admin_category[a_idx[a]] = Category::kPartialOverlap;
            else if (has_inside[a] != 0)
              taxonomy.admin_category[a_idx[a]] = Category::kCompleteOverlap;
            else
              taxonomy.admin_category[a_idx[a]] = Category::kUnused;
          }
        }
      },
      /*grain=*/64);

  for (const Category c : taxonomy.admin_category)
    ++taxonomy.admin_counts[static_cast<std::size_t>(c)];
  for (const Category c : taxonomy.op_category)
    ++taxonomy.op_counts[static_cast<std::size_t>(c)];
  PL_ENSURE(([&] {
              std::int64_t admin_total = 0;
              for (const std::int64_t n : taxonomy.admin_counts)
                admin_total += n;
              std::int64_t op_total = 0;
              for (const std::int64_t n : taxonomy.op_counts) op_total += n;
              return admin_total ==
                         static_cast<std::int64_t>(admin.lifetimes.size()) &&
                     op_total ==
                         static_cast<std::int64_t>(op.lifetimes.size());
            })(),
            "taxonomy tallies must conserve the input lifetime counts "
            "(every life lands in exactly one class)");
  return taxonomy;
}

OutsideSplit split_outside(const Taxonomy& taxonomy,
                           const lifetimes::AdminDataset& admin,
                           const lifetimes::OpDataset& op) {
  OutsideSplit split;
  std::set<std::uint32_t> ever;
  std::set<std::uint32_t> never;
  for (std::size_t o = 0; o < op.lifetimes.size(); ++o) {
    if (taxonomy.op_category[o] != Category::kOutsideDelegation) continue;
    const std::uint32_t asn = op.lifetimes[o].asn.value;
    if (asn::is_bogon(asn::Asn{asn})) continue;  // operators filter bogons
    if (admin.by_asn.contains(asn))
      ever.insert(asn);
    else
      never.insert(asn);
  }
  for (const std::uint32_t asn : ever)
    split.ever_allocated.push_back(asn::Asn{asn});
  for (const std::uint32_t asn : never)
    split.never_allocated.push_back(asn::Asn{asn});
  return split;
}

void record_metrics(const Taxonomy& taxonomy, obs::Registry& metrics) {
  const auto tally = [&](std::string_view side, std::string_view cls,
                         Category category,
                         const std::array<std::int64_t, 4>& counts) {
    metrics
        .counter("pl_taxonomy_" + std::string(side) + "{class=\"" +
                 std::string(cls) + "\"}")
        .add(counts[static_cast<std::size_t>(category)]);
  };
  tally("admin", "complete_overlap", Category::kCompleteOverlap,
        taxonomy.admin_counts);
  tally("admin", "partial_overlap", Category::kPartialOverlap,
        taxonomy.admin_counts);
  tally("admin", "unused", Category::kUnused, taxonomy.admin_counts);
  tally("op", "complete_overlap", Category::kCompleteOverlap,
        taxonomy.op_counts);
  tally("op", "partial_overlap", Category::kPartialOverlap,
        taxonomy.op_counts);
  tally("op", "outside_delegation", Category::kOutsideDelegation,
        taxonomy.op_counts);
}

}  // namespace pl::joint
