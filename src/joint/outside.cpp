#include "joint/outside.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <unordered_set>

namespace pl::joint {

namespace {

constexpr std::string_view kKindNames[] = {"prepend-typo", "digit-typo",
                                           "internal-leak", "unclassified"};

/// If `spelling` is some allocated ASN's spelling doubled, return that ASN.
std::optional<asn::Asn> doubled_source(
    const std::string& spelling,
    const std::unordered_set<std::uint32_t>& allocated) {
  if (spelling.size() % 2 != 0) return std::nullopt;
  const std::string half = spelling.substr(0, spelling.size() / 2);
  if (spelling.compare(half.size(), half.size(), half) != 0)
    return std::nullopt;
  const auto source = asn::parse_asn(half);
  if (source && allocated.contains(source->value)) return source;
  return std::nullopt;
}

/// Any allocated ASN whose spelling is one edit (substitute, insert,
/// delete) away from `spelling`.
std::optional<asn::Asn> edit1_source(
    const std::string& spelling,
    const std::unordered_set<std::uint32_t>& allocated) {
  const auto check = [&](const std::string& candidate)
      -> std::optional<asn::Asn> {
    if (candidate.empty() || candidate[0] == '0') return std::nullopt;
    const auto parsed = asn::parse_asn(candidate);
    if (parsed && allocated.contains(parsed->value)) return parsed;
    return std::nullopt;
  };
  // Substitutions.
  for (std::size_t i = 0; i < spelling.size(); ++i) {
    std::string candidate = spelling;
    for (char d = '0'; d <= '9'; ++d) {
      if (d == spelling[i]) continue;
      candidate[i] = d;
      if (const auto hit = check(candidate)) return hit;
    }
  }
  // Deletions (the bogus has one digit too many).
  for (std::size_t i = 0; i < spelling.size(); ++i) {
    std::string candidate = spelling;
    candidate.erase(i, 1);
    if (const auto hit = check(candidate)) return hit;
  }
  // Insertions (the bogus dropped a digit).
  for (std::size_t i = 0; i <= spelling.size(); ++i)
    for (char d = '0'; d <= '9'; ++d) {
      std::string candidate = spelling;
      candidate.insert(i, 1, d);
      if (const auto hit = check(candidate)) return hit;
    }
  return std::nullopt;
}

}  // namespace

std::string_view never_allocated_kind_name(NeverAllocatedKind kind) noexcept {
  return kKindNames[static_cast<std::size_t>(kind)];
}

OutsideAnalysis analyze_never_allocated(const Taxonomy& taxonomy,
                                        const lifetimes::AdminDataset& admin,
                                        const lifetimes::OpDataset& op) {
  OutsideAnalysis analysis;

  std::unordered_set<std::uint32_t> allocated;
  int max_digits = 1;
  for (const lifetimes::AdminLifetime& life : admin.lifetimes) {
    allocated.insert(life.asn.value);
    max_digits = std::max(max_digits, asn::digit_count(life.asn));
  }
  analysis.max_allocated_digits = max_digits;

  // Aggregate active days per never-allocated ASN.
  std::map<std::uint32_t, std::int64_t> active_days;
  for (std::size_t o = 0; o < op.lifetimes.size(); ++o) {
    if (taxonomy.op_category[o] != Category::kOutsideDelegation) continue;
    const lifetimes::OpLifetime& life = op.lifetimes[o];
    if (asn::is_bogon(life.asn)) continue;
    if (allocated.contains(life.asn.value)) continue;
    active_days[life.asn.value] += life.days.length();
  }

  for (const auto& [asn_value, days] : active_days) {
    NeverAllocatedFinding finding;
    finding.asn = asn::Asn{asn_value};
    finding.active_days = days;

    // Typo relations take priority: a doubled spelling has more digits than
    // any allocated ASN but is a prepending mistake, not an internal-use
    // leak (the paper's AS3202632026 case).
    const std::string spelling = asn::to_string(finding.asn);
    if (const auto doubled = doubled_source(spelling, allocated)) {
      finding.kind = NeverAllocatedKind::kPrependTypo;
      finding.imitated = doubled;
    } else if (const auto neighbour = edit1_source(spelling, allocated)) {
      finding.kind = NeverAllocatedKind::kDigitTypo;
      finding.imitated = neighbour;
    } else if (asn::digit_count(finding.asn) > max_digits) {
      finding.kind = NeverAllocatedKind::kInternalLeak;
      ++analysis.large_asn_count;
    }

    if (days > 1) ++analysis.active_over_1day;
    if (days > 31) ++analysis.active_over_1month;
    if (days > 365) ++analysis.active_over_1year;
    analysis.never_allocated.push_back(std::move(finding));
  }
  return analysis;
}

}  // namespace pl::joint
