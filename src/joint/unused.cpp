#include "joint/unused.hpp"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace pl::joint {

UnusedAnalysis analyze_unused(const Taxonomy& taxonomy,
                              const lifetimes::AdminDataset& admin,
                              const lifetimes::OpDataset& op) {
  UnusedAnalysis analysis;

  // Organizations (opaque ids) with at least one ASN active in BGP.
  std::unordered_set<std::uint64_t> active_orgs;
  for (std::size_t a = 0; a < admin.lifetimes.size(); ++a)
    if (taxonomy.admin_category[a] != Category::kUnused &&
        admin.lifetimes[a].opaque_id != 0)
      active_orgs.insert(admin.lifetimes[a].opaque_id);

  std::map<std::uint16_t, CountryUnusedRow> by_country_map;
  const auto country_key = [](asn::CountryCode cc) {
    // Pack via string to avoid exposing internals.
    const std::string s = cc.to_string();
    return static_cast<std::uint16_t>((s[0] << 8) | s[1]);
  };

  std::set<std::uint32_t> unused_asns;
  std::set<std::uint32_t> used_asns;
  std::array<std::int64_t, asn::kRirCount> short_32bit{};

  for (std::size_t a = 0; a < admin.lifetimes.size(); ++a) {
    const lifetimes::AdminLifetime& life = admin.lifetimes[a];
    auto& row = by_country_map[country_key(life.country)];
    row.country = life.country;
    ++row.total_lives;

    if (taxonomy.admin_category[a] != Category::kUnused) {
      used_asns.insert(life.asn.value);
      continue;
    }
    ++analysis.unused_lives;
    unused_asns.insert(life.asn.value);
    ++row.unused_lives;

    const std::size_t rir = asn::index_of(life.registry);
    analysis.durations[rir].push_back(
        static_cast<double>(life.days.length()));

    if (life.opaque_id != 0 && active_orgs.contains(life.opaque_id))
      ++analysis.unused_with_active_sibling;

    if (life.days.length() <= 31) {
      ++analysis.short_unused_count[rir];
      if (life.asn.is_32bit_only()) ++short_32bit[rir];
    }
  }

  analysis.unused_asns = static_cast<std::int64_t>(unused_asns.size());
  for (const std::uint32_t asn : unused_asns)
    if (!used_asns.contains(asn) && !op.by_asn.contains(asn))
      ++analysis.never_seen_asns;

  for (std::size_t r = 0; r < asn::kRirCount; ++r)
    analysis.short_unused_32bit_share[r] =
        analysis.short_unused_count[r] == 0
            ? 0
            : static_cast<double>(short_32bit[r]) /
                  static_cast<double>(analysis.short_unused_count[r]);

  analysis.by_country.reserve(by_country_map.size());
  for (auto& [key, row] : by_country_map) analysis.by_country.push_back(row);
  std::sort(analysis.by_country.begin(), analysis.by_country.end(),
            [](const CountryUnusedRow& a, const CountryUnusedRow& b) {
              return a.unused_lives > b.unused_lives;
            });
  return analysis;
}

}  // namespace pl::joint
