// The joint admin/operational taxonomy (paper 6, Fig. 6, Table 3): every
// administrative life is exactly one of {complete overlap, partial overlap,
// unused}; every operational life is exactly one of {complete overlap,
// partial overlap, outside delegation}.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "lifetimes/admin.hpp"
#include "lifetimes/op.hpp"

namespace pl::joint {

enum class Category : std::uint8_t {
  kCompleteOverlap,    ///< 6.1 — op life(s) entirely within the admin life
  kPartialOverlap,     ///< 6.2 — an op life crosses the admin boundary
  kUnused,             ///< 6.3 — admin life with no overlapping op life
  kOutsideDelegation,  ///< 6.4 — op life with no overlapping admin life
};

std::string_view category_name(Category category) noexcept;

/// Classification of both datasets plus the cross-links needed by the
/// downstream 6.x analyses.
struct Taxonomy {
  /// Category per admin life (never kOutsideDelegation).
  std::vector<Category> admin_category;
  /// Category per op life (never kUnused).
  std::vector<Category> op_category;
  /// For each op life, the admin life (index) it overlaps most, -1 if none.
  std::vector<std::int64_t> op_to_admin;
  /// For each admin life, the indices of op lives overlapping it.
  std::vector<std::vector<std::size_t>> admin_to_ops;

  /// Table 3 counters.
  std::array<std::int64_t, 4> admin_counts{};  ///< by Category
  std::array<std::int64_t, 4> op_counts{};

  std::int64_t total_admin() const noexcept {
    return admin_counts[0] + admin_counts[1] + admin_counts[2];
  }
  std::int64_t total_op() const noexcept {
    return op_counts[0] + op_counts[1] + op_counts[3];
  }
};

/// Classification of one ASN's lifetimes, with indices local to the ASN's
/// start-ordered life lists. Classification only ever relates lives of the
/// *same* ASN, so this is the complete per-ASN core of `classify()` —
/// exposed so the serving layer can reclassify exactly the ASNs an
/// incremental day-advance touched.
struct AsnClassification {
  std::vector<Category> admin_category;
  std::vector<Category> op_category;
  /// For each op life, the local index of the admin life it overlaps most,
  /// -1 if none.
  std::vector<std::int64_t> op_to_admin;
  /// For each admin life, the local indices of op lives overlapping it.
  std::vector<std::vector<std::size_t>> admin_to_ops;

  friend bool operator==(const AsnClassification&,
                         const AsnClassification&) = default;
};

/// Classify one ASN. Both spans must be sorted by start day (the dataset
/// invariant after index()).
AsnClassification classify_asn(std::span<const lifetimes::AdminLifetime> admin,
                               std::span<const lifetimes::OpLifetime> op);

/// Classify. An op life is "complete" if fully inside some admin life of
/// the same ASN, "partial" if it overlaps one but crosses its boundary,
/// "outside" if it overlaps none. An admin life is "partial" if any op life
/// crosses its boundary, else "complete" if any op life lies inside, else
/// "unused".
Taxonomy classify(const lifetimes::AdminDataset& admin,
                  const lifetimes::OpDataset& op);

/// ASNs in the outside-delegation category split the way the paper does:
/// ever-allocated (799 in the paper) vs never-allocated (868).
struct OutsideSplit {
  std::vector<asn::Asn> ever_allocated;
  std::vector<asn::Asn> never_allocated;
};

OutsideSplit split_outside(const Taxonomy& taxonomy,
                           const lifetimes::AdminDataset& admin,
                           const lifetimes::OpDataset& op);

/// Publish the Table 3 class tallies: one
/// `pl_taxonomy_admin{class="..."}` / `pl_taxonomy_op{class="..."}`
/// counter per category that can occur on that side.
void record_metrics(const Taxonomy& taxonomy, obs::Registry& metrics);

}  // namespace pl::joint
