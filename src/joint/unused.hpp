// Unused administrative lives analysis (paper 6.3): durations, per-country
// concentration (China), sibling usage via the extended files' opaque ids,
// and the 32-bit share of short unused lives.
#pragma once

#include <map>
#include <vector>

#include "joint/taxonomy.hpp"

namespace pl::joint {

struct CountryUnusedRow {
  asn::CountryCode country;
  std::int64_t unused_lives = 0;
  std::int64_t total_lives = 0;
  double unused_fraction() const noexcept {
    return total_lives == 0
               ? 0
               : static_cast<double>(unused_lives) /
                     static_cast<double>(total_lives);
  }
};

struct UnusedAnalysis {
  std::int64_t unused_lives = 0;
  std::int64_t unused_asns = 0;
  /// ASNs never seen in BGP across the entire archive (paper: 13,407).
  std::int64_t never_seen_asns = 0;

  /// Duration samples per RIR (Fig. 9).
  std::array<std::vector<double>, asn::kRirCount> durations;

  /// Top countries by unused lives, with their overall share.
  std::vector<CountryUnusedRow> by_country;

  /// Unused lives whose holder (opaque id) has another ASN active in BGP —
  /// the sibling-substitution population.
  std::int64_t unused_with_active_sibling = 0;

  /// Of the unused lives shorter than 31 days, the fraction that are 32-bit
  /// allocations, per RIR (paper: 92.6% APNIC .. 38% LACNIC).
  std::array<double, asn::kRirCount> short_unused_32bit_share{};
  std::array<std::int64_t, asn::kRirCount> short_unused_count{};
};

UnusedAnalysis analyze_unused(const Taxonomy& taxonomy,
                              const lifetimes::AdminDataset& admin,
                              const lifetimes::OpDataset& op);

}  // namespace pl::joint
