// Squat scoring — the detection methodology the paper leaves as future work
// (9): combine the joint-lens features (dormancy, relative duration) with
// operational evidence (prefix-volume spikes, foreign-prefix announcements,
// hijack-factory upstreams) into a single score, and evaluate it as a
// ranking problem against labels.
//
// Feature extraction is decoupled from scoring: the joint lens supplies
// dormancy/duration; the caller supplies the BGP-derived features (from
// RouteGenerator in simulations, from BGPStream in deployments).
#pragma once

#include <vector>

#include "joint/squat.hpp"

namespace pl::joint {

/// Features of one candidate operational life.
struct SquatFeatures {
  double dormancy_days = 0;        ///< inactivity before the awakening
  double relative_duration = 1;    ///< op life / admin life duration
  double prefix_volume = 0;        ///< distinct prefixes per day announced
  double historical_volume = 0;    ///< the ASN's typical prefixes per day
  bool foreign_prefixes = false;   ///< announces space it never originated
  bool factory_upstream = false;   ///< first hop is a known hijack factory
  bool outside_delegation = false; ///< op life outside any admin life
};

/// Linear scoring weights; defaults hand-tuned on the simulator (the paper
/// proposes exactly these signals as "classification features").
struct ScorerConfig {
  double w_dormancy = 1.0;          ///< per 1000 days of dormancy
  double w_short_duration = 1.5;    ///< (1 - relative_duration)
  double w_volume_spike = 2.0;      ///< log2(volume / max(1, historical))
  double w_foreign_prefixes = 3.0;
  double w_factory_upstream = 3.0;
  double w_outside_delegation = 1.5;
};

class SquatScorer {
 public:
  explicit SquatScorer(ScorerConfig config = {}) : config_(config) {}

  double score(const SquatFeatures& features) const noexcept;

 private:
  ScorerConfig config_;
};

/// A scored candidate with its label (when ground truth is available).
struct ScoredCandidate {
  asn::Asn asn;
  std::size_t op_index = 0;
  SquatFeatures features;
  double score = 0;
  bool malicious = false;  ///< ground-truth label (evaluation only)
};

/// One precision/recall operating point.
struct PrPoint {
  double threshold = 0;
  double precision = 0;
  double recall = 0;
  std::int64_t flagged = 0;
};

/// Sweep thresholds over the scored candidates (descending score) and
/// report the precision/recall curve. `points` caps the curve length.
std::vector<PrPoint> precision_recall(std::vector<ScoredCandidate> scored,
                                      std::size_t points = 20);

/// Area under the precision-recall curve (average precision).
double average_precision(std::vector<ScoredCandidate> scored);

}  // namespace pl::joint
