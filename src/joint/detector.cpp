#include "joint/detector.hpp"

#include <algorithm>
#include <cmath>

namespace pl::joint {

double SquatScorer::score(const SquatFeatures& features) const noexcept {
  double score = 0;
  score += config_.w_dormancy * (features.dormancy_days / 1000.0);
  score += config_.w_short_duration *
           std::max(0.0, 1.0 - features.relative_duration);
  const double spike =
      std::log2(std::max(1.0, features.prefix_volume) /
                std::max(1.0, features.historical_volume));
  score += config_.w_volume_spike * std::max(0.0, spike);
  if (features.foreign_prefixes) score += config_.w_foreign_prefixes;
  if (features.factory_upstream) score += config_.w_factory_upstream;
  if (features.outside_delegation) score += config_.w_outside_delegation;
  return score;
}

namespace {

void sort_by_score(std::vector<ScoredCandidate>& scored) {
  std::sort(scored.begin(), scored.end(),
            [](const ScoredCandidate& a, const ScoredCandidate& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.asn < b.asn;  // deterministic tie-break
            });
}

}  // namespace

std::vector<PrPoint> precision_recall(std::vector<ScoredCandidate> scored,
                                      std::size_t points) {
  std::vector<PrPoint> curve;
  if (scored.empty()) return curve;
  sort_by_score(scored);

  std::int64_t total_positive = 0;
  for (const ScoredCandidate& candidate : scored)
    if (candidate.malicious) ++total_positive;
  if (total_positive == 0) return curve;

  const std::size_t stride = std::max<std::size_t>(1, scored.size() / points);
  std::int64_t true_positive = 0;
  for (std::size_t i = 0; i < scored.size(); ++i) {
    if (scored[i].malicious) ++true_positive;
    const bool last = i + 1 == scored.size();
    if ((i + 1) % stride != 0 && !last) continue;
    PrPoint point;
    point.threshold = scored[i].score;
    point.flagged = static_cast<std::int64_t>(i + 1);
    point.precision = static_cast<double>(true_positive) /
                      static_cast<double>(i + 1);
    point.recall = static_cast<double>(true_positive) /
                   static_cast<double>(total_positive);
    curve.push_back(point);
  }
  return curve;
}

double average_precision(std::vector<ScoredCandidate> scored) {
  if (scored.empty()) return 0;
  sort_by_score(scored);
  std::int64_t total_positive = 0;
  for (const ScoredCandidate& candidate : scored)
    if (candidate.malicious) ++total_positive;
  if (total_positive == 0) return 0;

  double sum = 0;
  std::int64_t true_positive = 0;
  for (std::size_t i = 0; i < scored.size(); ++i) {
    if (!scored[i].malicious) continue;
    ++true_positive;
    sum += static_cast<double>(true_positive) / static_cast<double>(i + 1);
  }
  return sum / static_cast<double>(total_positive);
}

}  // namespace pl::joint
