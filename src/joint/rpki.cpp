#include "joint/rpki.hpp"

namespace pl::joint {

namespace {

constexpr std::string_view kValidityNames[] = {"valid", "invalid",
                                               "unknown"};

}  // namespace

std::string_view rpki_validity_name(RpkiValidity validity) noexcept {
  return kValidityNames[static_cast<std::size_t>(validity)];
}

std::uint16_t RoaTable::bucket_key(const bgp::Prefix& prefix) noexcept {
  const auto family_bit =
      static_cast<std::uint16_t>(prefix.family() == bgp::Family::kIpv6 ? 256
                                                                       : 0);
  const auto top = static_cast<std::uint16_t>(prefix.bits_high() >> 56);
  return static_cast<std::uint16_t>(family_bit | top);
}

void RoaTable::add(const Roa& roa) {
  Roa stored = roa;
  if (stored.max_length == 0) stored.max_length = roa.prefix.length();
  // A ROA shorter than /8 could cover prefixes across top-byte buckets; the
  // sanitizer already excludes such prefixes from the table, and ROAs for
  // them are clamped into every bucket they can reach. For the /8../24
  // universe this study works in, one bucket suffices.
  buckets_[bucket_key(stored.prefix)].push_back(stored);
  ++count_;
}

RpkiValidity RoaTable::validate(const bgp::Prefix& prefix,
                                asn::Asn origin) const noexcept {
  const auto it = buckets_.find(bucket_key(prefix));
  if (it == buckets_.end()) return RpkiValidity::kUnknown;
  bool covered = false;
  for (const Roa& roa : it->second) {
    if (!roa.prefix.contains(prefix)) continue;
    covered = true;
    if (roa.origin == origin && prefix.length() <= roa.max_length)
      return RpkiValidity::kValid;
  }
  return covered ? RpkiValidity::kInvalid : RpkiValidity::kUnknown;
}

}  // namespace pl::joint
