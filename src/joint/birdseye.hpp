// Bird's-eye statistics (paper 5 and Appendix A): daily per-RIR censuses,
// birth/death rates, re-allocation shares, duration distributions, country
// evolution, and the 16/32-bit transition.
#pragma once

#include <array>
#include <vector>

#include "joint/taxonomy.hpp"

namespace pl::joint {

/// Per-day counts over [begin, end] (Fig. 4 / 12 / 13).
struct DailyCensus {
  util::Day begin = 0;
  util::Day end = 0;
  std::array<std::vector<std::int32_t>, asn::kRirCount> admin_per_rir;
  std::array<std::vector<std::int32_t>, asn::kRirCount> op_per_rir;
  std::vector<std::int32_t> admin_overall;
  std::vector<std::int32_t> op_overall;

  std::size_t days() const noexcept {
    return static_cast<std::size_t>(end - begin + 1);
  }
};

/// Compute the census. Operational counts are attributed to the registry of
/// the ASN's admin life (ops with no admin life count only toward overall).
DailyCensus compute_census(const lifetimes::AdminDataset& admin,
                           const lifetimes::OpDataset& op, util::Day begin,
                           util::Day end);

/// First day `a`'s count exceeds `b`'s and stays ahead to the end;
/// -1 if never (the RIPE-overtakes-ARIN crossovers of Fig. 4).
util::Day crossover_day(const std::vector<std::int32_t>& a,
                        const std::vector<std::int32_t>& b, util::Day begin);

/// Per-day allocated counts split 16-bit vs 32-bit per RIR (Fig. 12).
struct WidthCensus {
  util::Day begin = 0;
  util::Day end = 0;
  std::array<std::vector<std::int32_t>, asn::kRirCount> bits16;
  std::array<std::vector<std::int32_t>, asn::kRirCount> bits32;
};

WidthCensus compute_width_census(const lifetimes::AdminDataset& admin,
                                 util::Day begin, util::Day end);

/// Quarterly birth counts and birth-death balance per RIR (Fig. 10 / 11).
struct QuarterlySeries {
  std::vector<int> quarter_index;  ///< util::quarter_index values
  std::array<std::vector<std::int32_t>, asn::kRirCount> births;
  std::array<std::vector<std::int32_t>, asn::kRirCount> balance;
};

QuarterlySeries compute_quarterly(const lifetimes::AdminDataset& admin,
                                  util::Day begin, util::Day end);

/// Table 2: share of ASNs with 1 / 2 / >2 lifetimes per RIR, for both
/// dimensions.
struct LivesPerAsnRow {
  double one = 0;
  double two = 0;
  double more = 0;
  std::int64_t asns = 0;
};

struct LivesPerAsnTable {
  std::array<LivesPerAsnRow, asn::kRirCount> admin;
  std::array<LivesPerAsnRow, asn::kRirCount> op;
  LivesPerAsnRow admin_total;
  LivesPerAsnRow op_total;
};

LivesPerAsnTable compute_lives_per_asn(const lifetimes::AdminDataset& admin,
                                       const lifetimes::OpDataset& op);

/// Table 4: top countries of one registry by alive allocations on a day.
struct CountryShareRow {
  asn::CountryCode country;
  std::int64_t count = 0;
  double share = 0;
};

std::vector<CountryShareRow> country_shares_on(
    const lifetimes::AdminDataset& admin, asn::Rir rir, util::Day day,
    std::size_t top_n);

/// Fig. 5 / 9 / 14 source: admin life durations per RIR, optionally
/// restricted by a predicate on the life index.
std::array<std::vector<double>, asn::kRirCount> durations_per_rir(
    const lifetimes::AdminDataset& admin);

/// Fig. 14: per (RIR, birth year) duration samples and new-allocation
/// counts.
struct BirthYearStats {
  int first_year = 0;
  /// [rir][year - first_year] -> durations
  std::array<std::vector<std::vector<double>>, asn::kRirCount> durations;
  std::array<std::vector<std::int32_t>, asn::kRirCount> births;
};

BirthYearStats compute_birth_year_stats(const lifetimes::AdminDataset& admin,
                                        int first_year, int last_year);

}  // namespace pl::joint
