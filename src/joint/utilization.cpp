#include "joint/utilization.hpp"

#include <algorithm>

namespace pl::joint {

UtilizationAnalysis analyze_utilization(const Taxonomy& taxonomy,
                                        const lifetimes::AdminDataset& admin,
                                        const lifetimes::OpDataset& op) {
  UtilizationAnalysis analysis;

  for (std::size_t a = 0; a < admin.lifetimes.size(); ++a) {
    const lifetimes::AdminLifetime& life = admin.lifetimes[a];
    const std::size_t rir = asn::index_of(life.registry);

    if (taxonomy.admin_category[a] != Category::kCompleteOverlap) continue;

    // Contained op lives, in start order.
    std::vector<const lifetimes::OpLifetime*> contained;
    for (const std::size_t o : taxonomy.admin_to_ops[a])
      if (life.days.contains(op.lifetimes[o].days))
        contained.push_back(&op.lifetimes[o]);
    std::sort(contained.begin(), contained.end(),
              [](const auto* x, const auto* y) {
                return x->days.first < y->days.first;
              });
    if (contained.empty()) continue;

    std::int64_t used = 0;
    for (const auto* op_life : contained) used += op_life->days.length();
    analysis.ratios.push_back(static_cast<double>(used) /
                              static_cast<double>(life.days.length()));
    analysis.op_lives_per_admin.push_back(static_cast<int>(contained.size()));
    if (contained.size() > 10)
      analysis.hyperactive_asns.push_back(life.asn);

    // Activation delay: allocation -> first activity.
    analysis.activation_delay_days[rir].push_back(static_cast<double>(
        contained.front()->days.first - life.days.first));

    // Deallocation lag: last activity -> deallocation, for closed lives
    // only (the paper excludes lives reaching the end of the time frame).
    if (!life.open_ended)
      analysis.dealloc_lag_days[rir].push_back(static_cast<double>(
          life.days.last - contained.back()->days.last));

    // Largely-spaced op lives.
    if (contained.size() >= 2) {
      ++analysis.multi_op_lives;
      bool spaced = false;
      for (std::size_t i = 1; i < contained.size(); ++i)
        if (contained[i]->days.first - contained[i - 1]->days.last - 1 > 365)
          spaced = true;
      if (spaced) ++analysis.largely_spaced_lives;
    }
  }
  return analysis;
}

}  // namespace pl::joint
