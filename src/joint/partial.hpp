// Partial-overlap analysis (paper 6.2): dangling announcements past
// deallocation and operational starts before the published allocation.
#pragma once

#include <vector>

#include "joint/taxonomy.hpp"

namespace pl::joint {

struct PartialOverlapAnalysis {
  /// Admin lives whose op life continues beyond deallocation (paper: 2,840,
  /// 64% of the category) and by how many days.
  std::int64_t dangling_lives = 0;
  std::vector<double> dangling_days;

  /// ASNs announcing before allocation (paper: 1,594) and the subset also
  /// before the registration date (631). Mismatches last a few days.
  std::int64_t early_starts = 0;
  std::int64_t early_before_regdate = 0;
  std::vector<double> early_days;

  std::int64_t partial_admin_lives = 0;  ///< category size
};

PartialOverlapAnalysis analyze_partial_overlap(
    const Taxonomy& taxonomy, const lifetimes::AdminDataset& admin,
    const lifetimes::OpDataset& op);

}  // namespace pl::joint
