#include "joint/partial.hpp"

namespace pl::joint {

PartialOverlapAnalysis analyze_partial_overlap(
    const Taxonomy& taxonomy, const lifetimes::AdminDataset& admin,
    const lifetimes::OpDataset& op) {
  PartialOverlapAnalysis analysis;

  for (std::size_t a = 0; a < admin.lifetimes.size(); ++a) {
    if (taxonomy.admin_category[a] != Category::kPartialOverlap) continue;
    ++analysis.partial_admin_lives;
    const lifetimes::AdminLifetime& life = admin.lifetimes[a];

    bool dangles = false;
    bool early = false;
    bool before_regdate = false;
    std::int64_t max_tail = 0;
    std::int64_t max_lead = 0;
    for (const std::size_t o : taxonomy.admin_to_ops[a]) {
      const lifetimes::OpLifetime& op_life = op.lifetimes[o];
      if (op_life.days.last > life.days.last) {
        dangles = true;
        max_tail = std::max<std::int64_t>(
            max_tail, op_life.days.last - life.days.last);
      }
      if (op_life.days.first < life.days.first &&
          taxonomy.op_to_admin[o] == static_cast<std::int64_t>(a)) {
        // Only ops that primarily belong to this life count as its early
        // start — a dangling tail from the ASN's previous allocation
        // crossing into this one is that life's dangling announcement, not
        // this life's early start.
        early = true;
        max_lead = std::max<std::int64_t>(
            max_lead, life.days.first - op_life.days.first);
        if (op_life.days.first < life.registration_date)
          before_regdate = true;
      }
    }
    if (dangles) {
      ++analysis.dangling_lives;
      analysis.dangling_days.push_back(static_cast<double>(max_tail));
    }
    if (early) {
      ++analysis.early_starts;
      analysis.early_days.push_back(static_cast<double>(max_lead));
      if (before_regdate) ++analysis.early_before_regdate;
    }
  }
  return analysis;
}

}  // namespace pl::joint
