// Dormant-ASN squatting detection (paper 6.1.2): flag operational lives
// that follow a long period of in-allocation dormancy and are short relative
// to their administrative life. The paper uses 1000 days of dormancy and a
// 5% relative duration, finding 3,051 candidate lives of which at least 76
// were confirmed malicious.
#pragma once

#include <vector>

#include "joint/taxonomy.hpp"

namespace pl::joint {

struct SquatDetectorConfig {
  /// Minimum inactivity (days) before the awakening, measured from the
  /// allocation start or the previous op life's end.
  std::int64_t dormancy_days = 1000;
  /// Maximum op-life duration as a fraction of the admin life's duration.
  double max_relative_duration = 0.05;

  friend bool operator==(const SquatDetectorConfig&,
                         const SquatDetectorConfig&) = default;
};

struct SquatCandidate {
  asn::Asn asn;
  std::size_t op_index;      ///< index into the op dataset
  std::size_t admin_index;   ///< containing admin life
  std::int64_t dormancy = 0; ///< days of inactivity before awakening
  double relative_duration = 0;
};

/// Run the detector over complete-overlap lives.
std::vector<SquatCandidate> detect_dormant_squats(
    const Taxonomy& taxonomy, const lifetimes::AdminDataset& admin,
    const lifetimes::OpDataset& op, const SquatDetectorConfig& config = {});

/// Post-deallocation squat surface (6.4): op lives entirely outside any
/// admin life, for ASNs that *were* allocated at some point. `min_gap`
/// filters to lives far from the previous activity (the paper's events are
/// thousands of days from the last BGP life).
std::vector<SquatCandidate> detect_outside_delegation_activity(
    const Taxonomy& taxonomy, const lifetimes::AdminDataset& admin,
    const lifetimes::OpDataset& op);

/// Per-op-life detector verdicts for one ASN, indices local to the ASN's
/// start-ordered life lists (matching joint::AsnClassification).
struct AsnSquatFlags {
  /// Op life flagged by the dormant-awakening detector (6.1.2).
  std::vector<bool> dormant;
  /// Op life is outside-delegation activity of an ever-allocated ASN (6.4).
  std::vector<bool> outside;

  friend bool operator==(const AsnSquatFlags&, const AsnSquatFlags&) = default;
};

/// Per-ASN mirror of the two detectors above, used by the serving layer to
/// stamp detector flags onto snapshot rows. For every ASN the set of
/// flagged op lives equals what the global detectors emit for that ASN (the
/// serve oracle test cross-checks the two implementations).
AsnSquatFlags flag_asn_squats(std::span<const lifetimes::AdminLifetime> admin,
                              std::span<const lifetimes::OpLifetime> op,
                              const AsnClassification& cls,
                              const SquatDetectorConfig& config = {});

}  // namespace pl::joint
