#include "joint/exhaustion.hpp"

namespace pl::joint {

ExhaustionAnalysis analyze_16bit_exhaustion(const WidthCensus& census) {
  ExhaustionAnalysis analysis;

  const std::size_t days = census.bits16[0].size();
  std::vector<std::int32_t> global(days, 0);
  for (std::size_t r = 0; r < asn::kRirCount; ++r) {
    for (std::size_t d = 0; d < days; ++d) {
      global[d] += census.bits16[r][d];
      if (census.bits16[r][d] > analysis.peak_count[r]) {
        analysis.peak_count[r] = census.bits16[r][d];
        analysis.peak_day[r] = census.begin + static_cast<util::Day>(d);
      }
    }
  }
  for (std::size_t d = 0; d < days; ++d)
    if (global[d] > analysis.global_peak_count) {
      analysis.global_peak_count = global[d];
      analysis.global_peak_day = census.begin + static_cast<util::Day>(d);
    }

  // Allocatable 16-bit universe: 1..64495 (AS0 unusable; 64496..65535 are
  // documentation/private/last-ASN reservations; 23456 is AS_TRANS).
  std::int32_t universe = 0;
  for (std::uint32_t v = 1; v < 65536; ++v)
    if (!asn::is_bogon(asn::Asn{v}) && v != 23456) ++universe;
  analysis.allocatable_universe = universe;
  analysis.available_at_peak = universe - analysis.global_peak_count;
  return analysis;
}

}  // namespace pl::joint
