// RPKI route-origin validation counterfactual (paper 9): the paper argues
// that properly issued ROAs, plus networks dropping RPKI-invalid routes,
// would contain both the fat-finger misconfigurations and the squatting
// attacks it uncovers. This module implements Route Origin Authorizations,
// origin validation (RFC 6811 semantics), and the counterfactual
// measurement: how much of the observed bogus activity ROAs would have
// stopped at a given coverage level.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "asn/asn.hpp"
#include "bgp/element.hpp"

namespace pl::joint {

/// One Route Origin Authorization: `origin` may announce prefixes covered
/// by `prefix` up to `max_length`.
struct Roa {
  bgp::Prefix prefix;
  asn::Asn origin;
  std::uint8_t max_length = 0;  ///< 0 means prefix.length()
};

enum class RpkiValidity : std::uint8_t {
  kValid,    ///< a covering ROA authorizes this origin at this length
  kInvalid,  ///< covering ROA(s) exist but none authorizes it
  kUnknown,  ///< no covering ROA
};

std::string_view rpki_validity_name(RpkiValidity validity) noexcept;

/// ROA store with covering-prefix lookup.
class RoaTable {
 public:
  void add(const Roa& roa);

  /// RFC 6811 origin validation of one announcement.
  RpkiValidity validate(const bgp::Prefix& prefix,
                        asn::Asn origin) const noexcept;

  std::size_t size() const noexcept { return count_; }

 private:
  /// Bucketed by (family, top byte) — covering ROAs must share both.
  std::map<std::uint16_t, std::vector<Roa>> buckets_;
  std::size_t count_ = 0;

  static std::uint16_t bucket_key(const bgp::Prefix& prefix) noexcept;
};

/// Validation tallies over a stream of announcements.
struct RpkiStats {
  std::int64_t valid = 0;
  std::int64_t invalid = 0;
  std::int64_t unknown = 0;

  std::int64_t total() const noexcept { return valid + invalid + unknown; }

  void record(RpkiValidity validity) noexcept {
    switch (validity) {
      case RpkiValidity::kValid: ++valid; break;
      case RpkiValidity::kInvalid: ++invalid; break;
      case RpkiValidity::kUnknown: ++unknown; break;
    }
  }
};

}  // namespace pl::joint
