// Complete-overlap analyses (paper 6.1.1): utilization of administrative
// lives, deallocation lag, activation delay, and the sporadic/intermittent
// use statistics.
#pragma once

#include <vector>

#include "joint/taxonomy.hpp"

namespace pl::joint {

struct UtilizationAnalysis {
  /// Utilization ratio per complete-overlap admin life (Fig. 7's sample):
  /// sum of contained op-life days / admin duration.
  std::vector<double> ratios;

  /// Days between last BGP activity and deallocation, per RIR, for closed
  /// lives ("late deallocations"; medians: APNIC >6mo, others >10mo,
  /// AfriNIC ~530d).
  std::array<std::vector<double>, asn::kRirCount> dealloc_lag_days;

  /// Days between allocation and first BGP activity ("the median is greater
  /// than a month for all RIRs").
  std::array<std::vector<double>, asn::kRirCount> activation_delay_days;

  /// Number of op lives per complete-overlap admin life (84.1% one,
  /// 10.4% two, 5.4% more).
  std::vector<int> op_lives_per_admin;

  /// ASNs with more than 10 op lives in one admin life (paper: 287).
  std::vector<asn::Asn> hyperactive_asns;

  /// Admin lives (complete overlap, >=2 op lives) whose consecutive op
  /// lives are more than 365 days apart (paper: 3,789 = 23.9%).
  std::int64_t largely_spaced_lives = 0;
  std::int64_t multi_op_lives = 0;  ///< denominator for the above
};

UtilizationAnalysis analyze_utilization(const Taxonomy& taxonomy,
                                        const lifetimes::AdminDataset& admin,
                                        const lifetimes::OpDataset& op);

}  // namespace pl::joint
