// Structured error channel for the ingestion path.
//
// Seventeen years of daily fetches from five FTP sites fail in every way a
// transport can fail; a pipeline that promises daily updates forever (paper
// 9) cannot afford silent drops. Every stage that used to swallow bad input
// now emits a `Diagnostic` into an `ErrorSink` and bumps the shared
// `RobustnessReport` counters, so a run can prove the accounting identity
//   days applied + days quarantined == days delivered
// and an operator can distinguish "archive was clean" from "we dropped half
// of it on the floor".
//
// This header is intentionally header-only: `pl_delegation` and `pl_bgp`
// report into the sink, while the chaos injector (pl_robust) wraps
// delegation streams — a compiled sink would make the libraries mutually
// dependent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "util/date.hpp"

namespace pl::robust {

/// Where in the ingestion pipeline a fault surfaced.
enum class Stage : std::uint8_t {
  kFetch,       ///< transport: file never arrived (outage, failed retry)
  kParse,       ///< delegation-file text parser
  kDecode,      ///< MRT binary decoder
  kStream,      ///< day-stream discipline (duplicate / out-of-order days)
  kRestore,     ///< restoration-pipeline state machine (incl. API misuse)
  kCheckpoint,  ///< checkpoint serialization / resume
};
inline constexpr std::size_t kStageCount = 6;

constexpr std::string_view stage_name(Stage stage) noexcept {
  constexpr std::string_view names[kStageCount] = {
      "fetch", "parse", "decode", "stream", "restore", "checkpoint"};
  return names[static_cast<std::size_t>(stage)];
}

enum class Severity : std::uint8_t {
  kInfo,     ///< recovered transparently (e.g. retry succeeded)
  kWarning,  ///< data degraded but pipeline continues (lenient mode)
  kError,    ///< data lost; strict mode stops here
  kFatal,    ///< state unusable (checkpoint corrupt, API misuse)
};

/// Strict mode treats record-level damage as fatal to the current unit of
/// work (file / buffer / stream); lenient mode salvages what it can and
/// keeps the books. Lenient is what an unattended daily pipeline runs.
enum class Policy : std::uint8_t { kLenient, kStrict };

/// One structured fault record: machine-readable `code`, human `message`,
/// and optional day/ASN scope so reports can be joined against the archive.
struct Diagnostic {
  Stage stage = Stage::kFetch;
  Severity severity = Severity::kWarning;
  std::string code;     ///< stable slug, e.g. "mrt-truncated-tail"
  std::string message;  ///< free-form detail
  std::optional<util::Day> day;
  std::optional<std::uint32_t> asn;
};

/// Aggregate robustness accounting for one ingestion run, surfaced alongside
/// the per-registry `restore::RestorationReport`. Counter groups:
///   * diagnostics — how many faults of each severity/stage were reported;
///   * injector side — what the transport delivered vs. dropped;
///   * consumer side — what the restorer applied vs. quarantined;
///   * record level — salvage accounting for the tolerant decoders.
struct RobustnessReport {
  std::int64_t infos = 0;
  std::int64_t warnings = 0;
  std::int64_t errors = 0;
  std::int64_t fatals = 0;
  std::int64_t by_stage[kStageCount] = {};

  // Transport accounting (FaultStream).
  std::int64_t days_input = 0;       ///< days pulled from the pristine stream
  std::int64_t days_delivered = 0;   ///< days handed on (incl. dup copies)
  std::int64_t days_dropped = 0;     ///< eaten by outages / failed retries
  std::int64_t days_duplicated = 0;  ///< extra copies injected
  std::int64_t days_reordered = 0;   ///< swapped pairs delivered out of order
  std::int64_t channels_corrupted = 0;
  std::int64_t fetch_retries = 0;
  std::int64_t fetch_failures = 0;

  // Consumer accounting (StreamingRestorer ingestion guard).
  std::int64_t days_applied = 0;
  std::int64_t days_quarantined_duplicate = 0;
  std::int64_t days_quarantined_late = 0;
  std::int64_t days_reorder_recovered = 0;  ///< late days saved by the window
  std::int64_t misuse_calls = 0;            ///< consume() on a spent restorer

  // Record / byte salvage accounting (tolerant decoders, corruptors).
  std::int64_t records_salvaged = 0;
  std::int64_t records_skipped = 0;
  std::int64_t bytes_discarded = 0;
  std::int64_t checkpoint_failures = 0;

  /// Fold another report (e.g. a per-stream counter block) into this one.
  void merge(const RobustnessReport& other) noexcept {
    infos += other.infos;
    warnings += other.warnings;
    errors += other.errors;
    fatals += other.fatals;
    for (std::size_t i = 0; i < kStageCount; ++i)
      by_stage[i] += other.by_stage[i];
    days_input += other.days_input;
    days_delivered += other.days_delivered;
    days_dropped += other.days_dropped;
    days_duplicated += other.days_duplicated;
    days_reordered += other.days_reordered;
    channels_corrupted += other.channels_corrupted;
    fetch_retries += other.fetch_retries;
    fetch_failures += other.fetch_failures;
    days_applied += other.days_applied;
    days_quarantined_duplicate += other.days_quarantined_duplicate;
    days_quarantined_late += other.days_quarantined_late;
    days_reorder_recovered += other.days_reorder_recovered;
    misuse_calls += other.misuse_calls;
    records_salvaged += other.records_salvaged;
    records_skipped += other.records_skipped;
    bytes_discarded += other.bytes_discarded;
    checkpoint_failures += other.checkpoint_failures;
  }

  /// The conservation law chaos runs assert: every day the transport
  /// delivered was either applied or quarantined — nothing vanishes.
  bool delivery_accounted() const noexcept {
    return days_applied + days_quarantined_duplicate +
               days_quarantined_late ==
           days_delivered;
  }

  /// Transport-side conservation: input days are delivered or dropped;
  /// duplicates are the only source of extra deliveries.
  bool transport_accounted() const noexcept {
    return days_delivered == days_input - days_dropped + days_duplicated;
  }
};

/// Collector for diagnostics plus the shared counter block. Retains at most
/// `max_retained` diagnostics (bounded memory against pathological inputs)
/// but counts every report. Under `Policy::kStrict` the first kError-or-worse
/// diagnostic trips the sink: `ok()` goes false and well-behaved producers
/// stop feeding the current unit of work.
class ErrorSink {
 public:
  explicit ErrorSink(Policy policy = Policy::kLenient,
                     std::size_t max_retained = 1024)
      : policy_(policy), max_retained_(max_retained) {}

  /// Record one diagnostic. Returns `ok()` so producers can write
  /// `if (!sink->report(...)) return;` in strict-aware loops.
  bool report(Diagnostic diagnostic) {
    switch (diagnostic.severity) {
      case Severity::kInfo: ++counters_.infos; break;
      case Severity::kWarning: ++counters_.warnings; break;
      case Severity::kError: ++counters_.errors; break;
      case Severity::kFatal: ++counters_.fatals; break;
    }
    ++counters_.by_stage[static_cast<std::size_t>(diagnostic.stage)];
    if (policy_ == Policy::kStrict &&
        diagnostic.severity >= Severity::kError)
      tripped_ = true;
    if (diagnostics_.size() < max_retained_)
      diagnostics_.push_back(std::move(diagnostic));
    else
      ++overflowed_;
    return ok();
  }

  /// False once a strict sink has seen an error; lenient sinks never trip.
  bool ok() const noexcept { return !tripped_; }

  Policy policy() const noexcept { return policy_; }

  /// Retained diagnostics (first `max_retained` reports).
  const std::vector<Diagnostic>& diagnostics() const noexcept {
    return diagnostics_;
  }

  /// Diagnostics counted but not retained.
  std::size_t overflowed() const noexcept { return overflowed_; }

  /// Mutable counter block — instrumented stages bump these directly.
  RobustnessReport& counters() noexcept { return counters_; }
  const RobustnessReport& counters() const noexcept { return counters_; }

  /// Fold a per-shard sink into this one: counters add, a tripped shard
  /// trips the whole, diagnostics append in call order up to the retention
  /// cap. Merging shard sinks in shard order reproduces exactly what one
  /// shared sink fed by the shards sequentially would hold — the identity
  /// the parallel ingestion path relies on.
  void merge(const ErrorSink& other) {
    counters_.merge(other.counters_);
    tripped_ = tripped_ || other.tripped_;
    for (const Diagnostic& diagnostic : other.diagnostics_) {
      if (diagnostics_.size() < max_retained_)
        diagnostics_.push_back(diagnostic);
      else
        ++overflowed_;
    }
    overflowed_ += other.overflowed_;
  }

 private:
  Policy policy_;
  std::size_t max_retained_;
  bool tripped_ = false;
  std::size_t overflowed_ = 0;
  std::vector<Diagnostic> diagnostics_;
  RobustnessReport counters_;
};

/// Publish the robustness counter block: diagnostics by severity and stage,
/// transport vs. consumer day accounting, and record-level salvage.
inline void record_metrics(const RobustnessReport& report,
                           obs::Registry& metrics) {
  const auto severity = [&](std::string_view name, std::int64_t value) {
    metrics
        .counter("pl_fault_diagnostics{severity=\"" + std::string(name) +
                 "\"}")
        .add(value);
  };
  severity("info", report.infos);
  severity("warning", report.warnings);
  severity("error", report.errors);
  severity("fatal", report.fatals);
  for (std::size_t i = 0; i < kStageCount; ++i)
    metrics
        .counter("pl_fault_by_stage{stage=\"" +
                 std::string(stage_name(static_cast<Stage>(i))) + "\"}")
        .add(report.by_stage[i]);

  metrics.counter("pl_fault_days_input").add(report.days_input);
  metrics.counter("pl_fault_days_delivered").add(report.days_delivered);
  metrics.counter("pl_fault_days_dropped").add(report.days_dropped);
  metrics.counter("pl_fault_days_duplicated").add(report.days_duplicated);
  metrics.counter("pl_fault_days_reordered").add(report.days_reordered);
  metrics.counter("pl_fault_channels_corrupted")
      .add(report.channels_corrupted);
  metrics.counter("pl_fault_fetch_retries").add(report.fetch_retries);
  metrics.counter("pl_fault_fetch_failures").add(report.fetch_failures);

  metrics.counter("pl_ingest_days_applied").add(report.days_applied);
  metrics.counter("pl_ingest_days_quarantined{reason=\"duplicate\"}")
      .add(report.days_quarantined_duplicate);
  metrics.counter("pl_ingest_days_quarantined{reason=\"late\"}")
      .add(report.days_quarantined_late);
  metrics.counter("pl_ingest_days_reorder_recovered")
      .add(report.days_reorder_recovered);
  metrics.counter("pl_ingest_misuse_calls").add(report.misuse_calls);

  metrics.counter("pl_salvage_records_salvaged").add(report.records_salvaged);
  metrics.counter("pl_salvage_records_skipped").add(report.records_skipped);
  metrics.counter("pl_salvage_bytes_discarded").add(report.bytes_discarded);
  metrics.counter("pl_checkpoint_failures").add(report.checkpoint_failures);
}

}  // namespace pl::robust
