// Checkpoint framing for crash-safe ingestion.
//
// A daily-update deployment (paper 9) must survive a crash at any day
// boundary without re-reading 17 years of archive. The restoration pipeline
// serializes its streaming state through these primitives: a little-endian
// byte writer/reader pair plus a self-describing frame
//
//   "PLCK" | version:u32 | payload-length:u64 | payload | crc32(payload)
//
// so a torn write, a flipped bit, or a blob from an incompatible build is
// detected on resume instead of silently corrupting the timeline. The
// encoding layer is deliberately schema-free (the restorer owns its schema);
// this module only guarantees integrity and bounded reads.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace pl::robust {

/// CRC-32 (IEEE 802.3 polynomial, bit-reflected) over a byte string.
std::uint32_t crc32(std::string_view bytes) noexcept;

inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Append-only byte writer. All integers are little-endian; varints are
/// LEB128 (the same convention as the MRT codec).
class CheckpointWriter {
 public:
  void u8(std::uint8_t value) { buffer_.push_back(static_cast<char>(value)); }
  void u16(std::uint16_t value) { fixed(value, 2); }
  void u32(std::uint32_t value) { fixed(value, 4); }
  void u64(std::uint64_t value) { fixed(value, 8); }
  void i32(std::int32_t value) { u32(static_cast<std::uint32_t>(value)); }
  void i64(std::int64_t value) { u64(static_cast<std::uint64_t>(value)); }
  void boolean(bool value) { u8(value ? 1 : 0); }

  void varint(std::uint64_t value) {
    while (value >= 0x80) {
      u8(static_cast<std::uint8_t>(value) | 0x80);
      value >>= 7;
    }
    u8(static_cast<std::uint8_t>(value));
  }

  void str(std::string_view text) {
    varint(text.size());
    buffer_.append(text);
  }

  std::size_t size() const noexcept { return buffer_.size(); }

  /// Wrap the accumulated payload in the integrity frame. The writer is
  /// spent afterwards.
  std::string finish() &&;

 private:
  void fixed(std::uint64_t value, int bytes) {
    for (int i = 0; i < bytes; ++i)
      buffer_.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }

  std::string buffer_;
};

/// Bounds-checked reader over a framed blob. The constructor validates
/// magic, version, length, and checksum; any out-of-range read afterwards
/// latches `ok() == false` and subsequent reads return zero values, so
/// deserialization code can read a whole schema and check `ok()` once.
class CheckpointReader {
 public:
  explicit CheckpointReader(std::string_view blob);

  bool ok() const noexcept { return ok_; }
  /// Human-readable reason for the first failure ("bad magic", ...).
  std::string_view error() const noexcept { return error_; }
  /// True when the payload was consumed exactly.
  bool at_end() const noexcept { return ok_ && offset_ == payload_.size(); }

  std::uint8_t u8() { return static_cast<std::uint8_t>(fixed(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(fixed(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(fixed(4)); }
  std::uint64_t u64() { return fixed(8); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  bool boolean() { return u8() != 0; }

  std::uint64_t varint();

  std::string_view str();

  /// Guard for length-prefixed containers: fail (rather than allocate) when
  /// a corrupted count exceeds what the remaining payload could encode.
  std::uint64_t container_size(std::uint64_t min_bytes_per_item);

 private:
  std::uint64_t fixed(int bytes);
  void fail(std::string_view reason);

  std::string_view payload_;
  std::size_t offset_ = 0;
  bool ok_ = true;
  std::string error_;
};

}  // namespace pl::robust
