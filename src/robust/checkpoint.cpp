#include "robust/checkpoint.hpp"

#include "util/crc32.hpp"

namespace pl::robust {

namespace {

constexpr std::string_view kMagic = "PLCK";
// magic + version:u32 + length:u64 ... payload ... crc:u32
constexpr std::size_t kHeaderSize = 4 + 4 + 8;
constexpr std::size_t kTrailerSize = 4;

std::uint32_t read_le32(std::string_view bytes, std::size_t at) noexcept {
  std::uint32_t value = 0;
  for (int i = 3; i >= 0; --i)
    value = (value << 8) |
            static_cast<std::uint8_t>(bytes[at + static_cast<std::size_t>(i)]);
  return value;
}

std::uint64_t read_le64(std::string_view bytes, std::size_t at) noexcept {
  std::uint64_t value = 0;
  for (int i = 7; i >= 0; --i)
    value = (value << 8) |
            static_cast<std::uint8_t>(bytes[at + static_cast<std::size_t>(i)]);
  return value;
}

}  // namespace

std::uint32_t crc32(std::string_view bytes) noexcept {
  return util::crc32(bytes);
}

std::string CheckpointWriter::finish() && {
  std::string framed;
  framed.reserve(kHeaderSize + buffer_.size() + kTrailerSize);
  framed.append(kMagic);
  for (int i = 0; i < 4; ++i)
    framed.push_back(
        static_cast<char>((kCheckpointVersion >> (8 * i)) & 0xFF));
  const auto length = static_cast<std::uint64_t>(buffer_.size());
  for (int i = 0; i < 8; ++i)
    framed.push_back(static_cast<char>((length >> (8 * i)) & 0xFF));
  framed.append(buffer_);
  const std::uint32_t checksum = crc32(buffer_);
  for (int i = 0; i < 4; ++i)
    framed.push_back(static_cast<char>((checksum >> (8 * i)) & 0xFF));
  buffer_.clear();
  return framed;
}

CheckpointReader::CheckpointReader(std::string_view blob) {
  if (blob.size() < kHeaderSize + kTrailerSize ||
      blob.substr(0, 4) != kMagic) {
    fail("bad magic");
    return;
  }
  if (read_le32(blob, 4) != kCheckpointVersion) {
    fail("unsupported checkpoint version");
    return;
  }
  const std::uint64_t length = read_le64(blob, 8);
  if (length != blob.size() - kHeaderSize - kTrailerSize) {
    fail("length mismatch (torn write?)");
    return;
  }
  payload_ = blob.substr(kHeaderSize, static_cast<std::size_t>(length));
  const std::uint32_t stored =
      read_le32(blob, kHeaderSize + static_cast<std::size_t>(length));
  if (stored != crc32(payload_)) {
    fail("checksum mismatch");
    return;
  }
}

void CheckpointReader::fail(std::string_view reason) {
  if (!ok_) return;
  ok_ = false;
  error_ = std::string(reason);
  payload_ = {};
  offset_ = 0;
}

std::uint64_t CheckpointReader::fixed(int bytes) {
  if (!ok_) return 0;
  if (offset_ + static_cast<std::size_t>(bytes) > payload_.size()) {
    fail("payload exhausted");
    return 0;
  }
  std::uint64_t value = 0;
  for (int i = bytes - 1; i >= 0; --i)
    value = (value << 8) | static_cast<std::uint8_t>(
                               payload_[offset_ + static_cast<std::size_t>(i)]);
  offset_ += static_cast<std::size_t>(bytes);
  return value;
}

std::uint64_t CheckpointReader::varint() {
  std::uint64_t value = 0;
  int shift = 0;
  while (shift < 64) {
    const std::uint8_t byte = u8();
    if (!ok_) return 0;
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
  fail("overlong varint");
  return 0;
}

std::string_view CheckpointReader::str() {
  const std::uint64_t length = varint();
  if (!ok_) return {};
  if (offset_ + length > payload_.size()) {
    fail("string overruns payload");
    return {};
  }
  const std::string_view view =
      payload_.substr(offset_, static_cast<std::size_t>(length));
  offset_ += static_cast<std::size_t>(length);
  return view;
}

std::uint64_t CheckpointReader::container_size(
    std::uint64_t min_bytes_per_item) {
  const std::uint64_t count = varint();
  if (!ok_) return 0;
  const std::uint64_t remaining = payload_.size() - offset_;
  if (min_bytes_per_item > 0 && count > remaining / min_bytes_per_item) {
    fail("container count exceeds payload");
    return 0;
  }
  return count;
}

}  // namespace pl::robust
