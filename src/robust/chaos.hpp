// Deterministic fault injection for the ingestion path.
//
// The paper's pipeline earns its keep by surviving 17 years of broken
// archives; this module manufactures the *format* faults the simulator's
// semantic defect injector (rirsim::ErrorInjector, 3.1 defects) does not
// model: byte-level corruption of MRT buffers and delegation-file text,
// plus the shared ChaosConfig knob block. The transport-level decorator
// that replays these rates against a live archive stream is
// dele::FaultStream (delegation/fault_stream.hpp) — it consumes
// DayObservation, which sits above this layer. Everything is seeded through
// util::Rng, so a chaos run is exactly reproducible — the property the
// differential and degradation tests depend on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "robust/error.hpp"
#include "util/rng.hpp"

namespace pl::robust {

/// Rates for each fault class. All rates are per-day (stream faults) or
/// per-buffer / per-byte (codec faults); 0 disables a class.
struct ChaosConfig {
  std::uint64_t seed = 99;

  // Stream-level faults (dele::FaultStream).
  double drop_day_rate = 0.0;       ///< transient fetch failure for one day
  int fetch_max_retries = 3;        ///< retry budget per failed fetch
  double retry_success_rate = 0.6;  ///< per-attempt success probability
  double burst_outage_rate = 0.0;   ///< start of a multi-day outage
  int burst_outage_max_days = 5;
  double duplicate_day_rate = 0.0;  ///< deliver the day a second time
  double reorder_rate = 0.0;        ///< swap the day with its successor
  double corrupt_channel_rate = 0.0;  ///< one channel arrives unusable

  // Byte/text-level faults (corrupt_buffer / corrupt_text).
  double truncate_rate = 0.0;       ///< cut the buffer at a random offset
  double garbage_rate = 0.0;        ///< per-byte (or per-line) garbage

  /// Uniform profile: every fault class fires at `rate` (bursts at a tenth
  /// of it — a burst eats several days by itself). The degradation bench
  /// sweeps this single knob.
  static ChaosConfig uniform(double rate, std::uint64_t seed = 99) noexcept {
    ChaosConfig config;
    config.seed = seed;
    config.drop_day_rate = rate;
    config.burst_outage_rate = rate / 10.0;
    config.duplicate_day_rate = rate;
    config.reorder_rate = rate;
    config.corrupt_channel_rate = rate;
    config.truncate_rate = rate;
    config.garbage_rate = rate;
    return config;
  }
};

/// Corrupt a binary buffer in place: maybe truncate at a random offset, then
/// flip bytes at `garbage_rate`. Returns the number of bytes truncated away
/// (also added to the counter block when `sink` is given).
std::size_t corrupt_buffer(std::vector<std::uint8_t>& bytes, util::Rng& rng,
                           const ChaosConfig& config,
                           ErrorSink* sink = nullptr);

/// Corrupt delegation-file text in place: maybe truncate mid-line, and
/// replace whole lines with garbage at `garbage_rate`. Returns the number
/// of lines damaged.
std::size_t corrupt_text(std::string& text, util::Rng& rng,
                         const ChaosConfig& config, ErrorSink* sink = nullptr);

}  // namespace pl::robust
