// Deterministic crash injection for durability tests.
//
// A CrashPoints instance is armed at one named site; the N-th time execution
// passes through that site, fire() returns true and the caller must abandon
// the operation mid-flight, leaving on-disk state exactly as a process death
// at that instant would (half-written files stay half-written, renames that
// did not happen stay undone). Production code paths thread a nullable
// `CrashPoints*` through their configs — a null pointer means every site is
// a no-op — so the hook costs one branch when disabled and nothing is
// global or ambient.
//
// The instance also records every site it passes through, in first-hit
// order, so a test can discover the crash matrix of an operation instead of
// hard-coding it and silently missing newly added sites.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pl::robust {

class CrashPoints {
 public:
  /// Arm the hook: the `countdown`-th hit (1-based) of `site` fires. Re-arming
  /// replaces any previous arming and clears the fired latch, but keeps the
  /// visit log so a test can arm several crashes over one recording.
  void arm(std::string site, int countdown = 1);

  /// Disarm without clearing the visit log or the fired latch.
  void disarm() noexcept;

  /// Record one pass through `site`. Returns true exactly once — when the
  /// armed countdown reaches zero — after which the latch stays set and no
  /// further site fires until re-armed.
  bool fire(std::string_view site);

  bool armed() const noexcept { return !site_.empty(); }
  bool fired() const noexcept { return fired_; }

  /// The site whose countdown fired (empty until then). Lets the code that
  /// detects the latch — e.g. DurableService dumping its flight recorder on
  /// the way down — name the kill site without threading it separately.
  const std::string& fired_site() const noexcept { return fired_site_; }

  /// Distinct sites passed through, in first-hit order.
  const std::vector<std::string>& visited() const noexcept { return visited_; }

  /// Total times `site` was passed through (0 when never seen).
  int hits(std::string_view site) const noexcept;

 private:
  std::string site_;        ///< armed site; empty = disarmed
  std::string fired_site_;  ///< site that fired; empty until the latch sets
  int countdown_ = 0;       ///< remaining hits of site_ before firing
  bool fired_ = false;
  std::vector<std::string> visited_;
  std::vector<std::pair<std::string, int>> counts_;  ///< first-hit order
};

}  // namespace pl::robust
