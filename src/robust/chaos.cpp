#include "robust/chaos.hpp"

#include <algorithm>
#include <utility>

#include "util/strings.hpp"

namespace pl::robust {

FaultStream::FaultStream(std::unique_ptr<dele::ArchiveStream> inner,
                         ChaosConfig config, ErrorSink* sink)
    : inner_(std::move(inner)), config_(config), sink_(sink),
      rng_(config.seed) {}

asn::Rir FaultStream::registry() const noexcept {
  return inner_->registry();
}

RobustnessReport& FaultStream::stats() noexcept {
  return sink_ != nullptr ? sink_->counters() : local_;
}

void FaultStream::diagnose(Severity severity, std::string code,
                           std::string message, util::Day day) {
  if (sink_ == nullptr) return;
  Diagnostic diagnostic;
  diagnostic.stage = Stage::kFetch;
  diagnostic.severity = severity;
  diagnostic.code = std::move(code);
  diagnostic.message = std::move(message);
  diagnostic.day = day;
  sink_->report(std::move(diagnostic));
}

std::optional<dele::DayObservation> FaultStream::next() {
  while (true) {
    if (!held_.empty()) {
      dele::DayObservation observation = std::move(held_.front());
      held_.pop_front();
      ++stats().days_delivered;
      return observation;
    }

    std::optional<dele::DayObservation> observation = inner_->next();
    if (!observation) return std::nullopt;
    ++stats().days_input;
    const util::Day day = observation->day;

    // Multi-day outage in progress: the day never arrives.
    if (outage_days_left_ > 0) {
      --outage_days_left_;
      ++stats().days_dropped;
      continue;
    }
    if (rng_.chance(config_.burst_outage_rate)) {
      outage_days_left_ = static_cast<int>(
          rng_.uniform(1, std::max(1, config_.burst_outage_max_days))) - 1;
      ++stats().days_dropped;
      diagnose(Severity::kError, "fetch-burst-outage",
               "archive unreachable for " +
                   std::to_string(outage_days_left_ + 1) + " day(s)",
               day);
      continue;
    }

    // Transient fetch failure: retry with the configured budget; if every
    // attempt fails the day is lost.
    if (rng_.chance(config_.drop_day_rate)) {
      bool recovered = false;
      for (int attempt = 0; attempt < config_.fetch_max_retries; ++attempt) {
        ++stats().fetch_retries;
        if (rng_.chance(config_.retry_success_rate)) {
          recovered = true;
          break;
        }
      }
      if (!recovered) {
        ++stats().fetch_failures;
        ++stats().days_dropped;
        diagnose(Severity::kError, "fetch-retries-exhausted",
                 "fetch failed after " +
                     std::to_string(config_.fetch_max_retries) + " retries",
                 day);
        continue;
      }
      diagnose(Severity::kInfo, "fetch-retried",
               "fetch succeeded on retry", day);
    }

    // One channel arrives unusable: its delta is gone for good, exactly like
    // a file that downloads but fails integrity checks.
    if (rng_.chance(config_.corrupt_channel_rate)) {
      dele::ChannelDelta& channel =
          rng_.chance(0.5) ? observation->extended : observation->regular;
      if (channel.condition == dele::FileCondition::kPresent) {
        channel.condition = dele::FileCondition::kCorrupt;
        channel.changes.clear();
        channel.duplicates.clear();
        ++stats().channels_corrupted;
        diagnose(Severity::kWarning, "fetch-channel-corrupt",
                 "channel failed integrity check", day);
      }
    }

    // The day arrives twice (mirror lag, double cron fire).
    if (rng_.chance(config_.duplicate_day_rate)) {
      held_.push_back(*observation);
      ++stats().days_duplicated;
      diagnose(Severity::kWarning, "fetch-duplicate-day",
               "day delivered twice", day);
    }

    // The day and its successor swap places in the download order.
    if (rng_.chance(config_.reorder_rate)) {
      std::optional<dele::DayObservation> successor = inner_->next();
      if (successor) {
        ++stats().days_input;
        ++stats().days_reordered;
        diagnose(Severity::kWarning, "fetch-out-of-order",
                 "day delivered after its successor", day);
        held_.push_front(std::move(*observation));
        observation = std::move(successor);
      }
    }

    ++stats().days_delivered;
    return observation;
  }
}

std::size_t corrupt_buffer(std::vector<std::uint8_t>& bytes, util::Rng& rng,
                           const ChaosConfig& config, ErrorSink* sink) {
  std::size_t truncated = 0;
  if (!bytes.empty() && rng.chance(config.truncate_rate)) {
    const auto keep = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(bytes.size()) - 1));
    truncated = bytes.size() - keep;
    bytes.resize(keep);
  }
  if (config.garbage_rate > 0)
    for (std::uint8_t& byte : bytes)
      if (rng.chance(config.garbage_rate))
        byte = static_cast<std::uint8_t>(rng.uniform(0, 255));
  if (sink != nullptr && truncated > 0) {
    sink->counters().bytes_discarded +=
        static_cast<std::int64_t>(truncated);
    sink->report({Stage::kFetch, Severity::kWarning, "buffer-truncated",
                  std::to_string(truncated) + " bytes cut from buffer",
                  std::nullopt, std::nullopt});
  }
  return truncated;
}

std::size_t corrupt_text(std::string& text, util::Rng& rng,
                         const ChaosConfig& config, ErrorSink* sink) {
  if (!text.empty() && rng.chance(config.truncate_rate))
    text.resize(static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(text.size()) - 1)));

  std::size_t damaged = 0;
  if (config.garbage_rate > 0) {
    std::string rebuilt;
    rebuilt.reserve(text.size());
    for (std::string_view line : util::lines(text)) {
      if (rng.chance(config.garbage_rate)) {
        ++damaged;
        const auto length = rng.uniform(0, 40);
        for (std::int64_t i = 0; i < length; ++i)
          rebuilt.push_back(static_cast<char>(rng.uniform(32, 126)));
      } else {
        rebuilt.append(line);
      }
      rebuilt.push_back('\n');
    }
    text = std::move(rebuilt);
  }
  if (sink != nullptr && damaged > 0)
    sink->report({Stage::kFetch, Severity::kWarning, "text-lines-garbled",
                  std::to_string(damaged) + " line(s) replaced with garbage",
                  std::nullopt, std::nullopt});
  return damaged;
}

}  // namespace pl::robust
