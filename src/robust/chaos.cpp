#include "robust/chaos.hpp"

#include <utility>

#include "util/strings.hpp"

namespace pl::robust {

std::size_t corrupt_buffer(std::vector<std::uint8_t>& bytes, util::Rng& rng,
                           const ChaosConfig& config, ErrorSink* sink) {
  std::size_t truncated = 0;
  if (!bytes.empty() && rng.chance(config.truncate_rate)) {
    const auto keep = static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(bytes.size()) - 1));
    truncated = bytes.size() - keep;
    bytes.resize(keep);
  }
  if (config.garbage_rate > 0)
    for (std::uint8_t& byte : bytes)
      if (rng.chance(config.garbage_rate))
        byte = static_cast<std::uint8_t>(rng.uniform(0, 255));
  if (sink != nullptr && truncated > 0) {
    sink->counters().bytes_discarded +=
        static_cast<std::int64_t>(truncated);
    sink->report({Stage::kFetch, Severity::kWarning, "buffer-truncated",
                  std::to_string(truncated) + " bytes cut from buffer",
                  std::nullopt, std::nullopt});
  }
  return truncated;
}

std::size_t corrupt_text(std::string& text, util::Rng& rng,
                         const ChaosConfig& config, ErrorSink* sink) {
  if (!text.empty() && rng.chance(config.truncate_rate))
    text.resize(static_cast<std::size_t>(
        rng.uniform(0, static_cast<std::int64_t>(text.size()) - 1)));

  std::size_t damaged = 0;
  if (config.garbage_rate > 0) {
    std::string rebuilt;
    rebuilt.reserve(text.size());
    for (std::string_view line : util::lines(text)) {
      if (rng.chance(config.garbage_rate)) {
        ++damaged;
        const auto length = rng.uniform(0, 40);
        for (std::int64_t i = 0; i < length; ++i)
          rebuilt.push_back(static_cast<char>(rng.uniform(32, 126)));
      } else {
        rebuilt.append(line);
      }
      rebuilt.push_back('\n');
    }
    text = std::move(rebuilt);
  }
  if (sink != nullptr && damaged > 0)
    sink->report({Stage::kFetch, Severity::kWarning, "text-lines-garbled",
                  std::to_string(damaged) + " line(s) replaced with garbage",
                  std::nullopt, std::nullopt});
  return damaged;
}

}  // namespace pl::robust
