#include "robust/crashpoint.hpp"

namespace pl::robust {

void CrashPoints::arm(std::string site, int countdown) {
  site_ = std::move(site);
  countdown_ = countdown < 1 ? 1 : countdown;
  fired_ = false;
  fired_site_.clear();
}

void CrashPoints::disarm() noexcept {
  site_.clear();
  countdown_ = 0;
}

bool CrashPoints::fire(std::string_view site) {
  bool seen = false;
  for (auto& [name, count] : counts_) {
    if (name == site) {
      ++count;
      seen = true;
      break;
    }
  }
  if (!seen) {
    counts_.emplace_back(std::string(site), 1);
    visited_.emplace_back(site);
  }
  if (fired_ || site_ != site) return false;
  if (--countdown_ > 0) return false;
  fired_ = true;
  fired_site_ = site_;
  site_.clear();
  return true;
}

int CrashPoints::hits(std::string_view site) const noexcept {
  for (const auto& [name, count] : counts_)
    if (name == site) return count;
  return 0;
}

}  // namespace pl::robust
