// Whole-file model of an NRO delegation file plus parser and serializer for
// both the regular and extended formats.
//
// Format reference (NRO extended stats format): line types are
//   version line:  version|registry|serial|records|startdate|enddate|UTCoffset
//   summary line:  registry|*|type|*|count|summary
//   record line:   registry|cc|asn|start|value|date|status[|opaque-id]
// '#'-prefixed lines are comments. Regular files omit the opaque-id and only
// contain delegated resources.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "delegation/record.hpp"
#include "robust/error.hpp"

namespace pl::dele {

struct FileHeader {
  int version = 2;                  ///< 2 for regular, 2.x tokens accepted
  asn::Rir registry = asn::Rir::kArin;
  util::Day serial = 0;             ///< file date (YYYYMMDD serial)
  std::int64_t record_count = 0;    ///< total records declared
  util::Day start_date = 0;         ///< first registration date covered
  util::Day end_date = 0;           ///< last registration date covered
  std::string utc_offset = "+0000";
};

/// A parsed delegation file. Only ASN records are modelled in full; ipv4 and
/// ipv6 record lines are counted but not retained (this study is ASN-level,
/// paper 8 "Limitations").
struct DelegationFile {
  FileHeader header;
  bool extended = false;
  std::vector<AsnRecord> asn_records;
  std::int64_t ipv4_records = 0;
  std::int64_t ipv6_records = 0;
};

/// Parser outcome: a file plus non-fatal anomalies encountered. A file is
/// returned whenever the header parses; record-level garbage is reported in
/// `warnings` and skipped, matching how a tolerant longitudinal pipeline
/// must treat 17 years of real files.
struct ParseResult {
  bool ok = false;
  DelegationFile file;
  std::vector<std::string> warnings;
  std::string error;  ///< non-empty iff !ok
  /// Record lines skipped because they could not be interpreted — the
  /// structured counterpart of `warnings`, so ingestion accounting can
  /// prove skipped + parsed == record lines seen.
  std::int64_t records_skipped = 0;
};

/// Parse a delegation file blob. `extended` is auto-detected from the
/// presence of summary lines / opaque ids but can be forced by filename
/// conventions upstream.
ParseResult parse_delegation_file(std::string_view text);

/// Sink-aware variant: every anomaly additionally lands in `sink` as a
/// structured robust::Diagnostic (stage kParse). Under a strict-policy sink
/// the first record-level defect aborts the parse with an error instead of
/// skipping the line; a lenient sink keeps the historical salvage behaviour.
ParseResult parse_delegation_file(std::string_view text,
                                  robust::ErrorSink* sink);

/// Serialize to the exact NRO text format. `file.extended` selects the
/// format; regular serialization drops non-delegated records and opaque ids.
std::string serialize(const DelegationFile& file);

/// Expand record runs (count > 1) into per-ASN (asn, RecordState) pairs,
/// sorted by ASN; duplicate ASNs are preserved in file order (AfriNIC's
/// invalid duplicates, paper 3.1.iv, must survive parsing so restoration can
/// see them).
std::vector<std::pair<asn::Asn, RecordState>> expand_asn_records(
    const DelegationFile& file);

}  // namespace pl::dele
