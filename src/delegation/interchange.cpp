#include "delegation/interchange.hpp"

#include <array>
#include <charconv>
#include <cstdio>
#include <map>
#include <utility>

#include "util/arena.hpp"
#include "util/crc32.hpp"
#include "util/strings.hpp"

namespace pl::dele {

namespace {

constexpr std::string_view kBinaryMagic = "PLDB";
constexpr std::string_view kTextMagic = "pl-dlg-txt";

// ---------------------------------------------------------------------------
// Little-endian / varint primitives (writer side).

void put_u32(std::string& out, std::uint32_t value) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
}

void put_varint(std::string& out, std::uint64_t value) {
  // Stage into a local buffer and append once: one size/capacity check per
  // varint instead of one per byte on the hot encode path.
  char buffer[10];
  std::size_t n = 0;
  while (value >= 0x80) {
    buffer[n++] = static_cast<char>(value | 0x80);
    value >>= 7;
  }
  buffer[n++] = static_cast<char>(value);
  out.append(buffer, n);
}

constexpr std::uint32_t zigzag32(std::int32_t value) noexcept {
  return (static_cast<std::uint32_t>(value) << 1) ^
         static_cast<std::uint32_t>(value >> 31);
}

constexpr std::int32_t unzigzag32(std::uint32_t value) noexcept {
  return static_cast<std::int32_t>((value >> 1) ^ (~(value & 1) + 1));
}

// ---------------------------------------------------------------------------
// Bounds-checked byte reader (decoder side). Every accessor reports failure
// through its return value; decode loops bail out on the first false, so a
// truncated or bit-flipped archive can never run the cursor past `end_`.

class ByteReader {
 public:
  ByteReader(const char* data, std::size_t size) noexcept
      : cursor_(data), end_(data + size) {}

  std::size_t remaining() const noexcept {
    return static_cast<std::size_t>(end_ - cursor_);
  }

  bool u8(std::uint8_t& out) noexcept {
    if (cursor_ == end_) return false;
    out = static_cast<std::uint8_t>(*cursor_++);
    return true;
  }

  bool u32(std::uint32_t& out) noexcept {
    if (remaining() < 4) return false;
    std::uint32_t value = 0;
    for (int i = 3; i >= 0; --i)
      value = (value << 8) | static_cast<std::uint8_t>(cursor_[i]);
    cursor_ += 4;
    out = value;
    return true;
  }

  bool varint(std::uint64_t& out) noexcept {
    std::uint64_t value = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (cursor_ == end_) return false;
      const auto byte = static_cast<std::uint8_t>(*cursor_++);
      value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) {
        out = value;
        return true;
      }
    }
    return false;  // > 10 bytes: not a valid varint
  }

  bool varint32(std::uint32_t& out) noexcept {
    std::uint64_t wide = 0;
    if (!varint(wide) || wide > 0xFFFFFFFFu) return false;
    out = static_cast<std::uint32_t>(wide);
    return true;
  }

  bool zigzag(std::int32_t& out) noexcept {
    std::uint32_t raw = 0;
    if (!varint32(raw)) return false;
    out = unzigzag32(raw);
    return true;
  }

  bool view(std::size_t size, std::string_view& out) noexcept {
    if (remaining() < size) return false;
    out = std::string_view(cursor_, size);
    cursor_ += size;
    return true;
  }

 private:
  const char* cursor_;
  const char* end_;
};

// ---------------------------------------------------------------------------
// Shared token helpers.

/// Interchange files are machine-written with exact lowercase status tokens,
/// so an exact comparison suffices (parse_status lower-cases a copy, which
/// is too expensive for the decode path — and pl-lint's hot-path-alloc rule
/// would rightly object).
std::optional<Status> parse_status_exact(std::string_view token) noexcept {
  for (std::size_t i = 0; i < 4; ++i) {
    const auto status = static_cast<Status>(i);
    if (token == status_token(status)) return status;
  }
  return std::nullopt;
}

/// Empty token = unknown country (CountryCode::to_string would render the
/// unknown value as "ZZ", which is a *real* code in delegation files; the
/// empty token keeps the round trip exact).
std::optional<asn::CountryCode> parse_country_token(
    std::string_view token) noexcept {
  if (token.empty()) return asn::CountryCode();
  return asn::CountryCode::parse(token);
}

// ===========================================================================
// Binary writer (pl-dlg-bin/1).
//
// Layout, all integers little-endian:
//   "PLDB" | version:u32 | day_count:u32
//   | table_count:u32 | table_count x (len:varint | bytes)
//   | rir_id:varint
//   | day_count x frame
// frame:
//   payload_len:u32 | payload | crc32(payload):u32
// payload:
//   day:zigzag-varint | channel(extended) | channel(regular)
// channel:
//   condition:u8 | publish_minute:zigzag-varint
//   | n_changes:varint | n_changes x change
//   | n_duplicates:varint | n_duplicates x duplicate
// change:
//   asn:varint | flags:u8 (bit0 = has_state, bit1 = has_date)
//   [ status_id:varint | country_id:varint | [date:zigzag-varint]
//     | opaque:varint ]                                   (if has_state)
// duplicate:
//   asn:varint | flags:u8 (bit1 = has_date)
//   | status_id:varint | country_id:varint | [date:zigzag-varint]
//   | opaque:varint

class BinaryEncoder {
 public:
  explicit BinaryEncoder(asn::Rir rir) {
    rir_id_ = pool_.intern(asn::file_token(rir));
    for (std::size_t i = 0; i < 4; ++i)
      status_ids_[i] = pool_.intern(status_token(static_cast<Status>(i)));
  }

  void add_day(const DayObservation& obs) {
    payload_.clear();
    put_varint(payload_, zigzag32(obs.day));
    put_channel(obs.extended);
    put_channel(obs.regular);
    put_u32(frames_, static_cast<std::uint32_t>(payload_.size()));
    frames_.append(payload_);
    put_u32(frames_, util::crc32(payload_));
    ++day_count_;
  }

  std::string finish() && {
    std::string out;
    out.reserve(64 + 8 * pool_.size() + frames_.size());
    out.append(kBinaryMagic);
    put_u32(out, kBinaryInterchangeVersion);
    put_u32(out, day_count_);
    put_u32(out, static_cast<std::uint32_t>(pool_.size()));
    for (std::uint32_t id = 0; id < pool_.size(); ++id) {
      const std::string_view token = pool_.at(id);
      put_varint(out, token.size());
      out.append(token);
    }
    put_varint(out, rir_id_);
    out.append(frames_);
    return out;
  }

 private:
  std::uint32_t country_id(asn::CountryCode country) {
    const auto [it, fresh] = country_ids_.try_emplace(country, 0);
    if (fresh)
      it->second = country.unknown() ? pool_.intern(std::string_view())
                                     : pool_.intern(country.to_string());
    return it->second;
  }

  void put_state(const RecordState& state, std::uint8_t flags_base) {
    std::uint8_t flags = flags_base;
    if (state.registration_date.has_value()) flags |= 0x02;
    payload_.push_back(static_cast<char>(flags));
    put_varint(payload_, status_ids_[static_cast<std::size_t>(state.status)]);
    put_varint(payload_, country_id(state.country));
    if (state.registration_date.has_value())
      put_varint(payload_, zigzag32(*state.registration_date));
    put_varint(payload_, state.opaque_id);
  }

  void put_channel(const ChannelDelta& channel) {
    payload_.push_back(static_cast<char>(channel.condition));
    put_varint(payload_, zigzag32(channel.publish_minute));
    put_varint(payload_, channel.changes.size());
    for (const RecordChange& change : channel.changes) {
      put_varint(payload_, change.asn.value);
      if (change.state.has_value()) {
        put_state(*change.state, 0x01);
      } else {
        payload_.push_back(0);  // flags: no state (record vanished)
      }
    }
    put_varint(payload_, channel.duplicates.size());
    for (const auto& [asn, state] : channel.duplicates) {
      put_varint(payload_, asn.value);
      put_state(state, 0x00);
    }
  }

  util::StringPool pool_;
  std::uint32_t rir_id_ = 0;
  std::array<std::uint32_t, 4> status_ids_{};
  std::map<asn::CountryCode, std::uint32_t> country_ids_;
  std::string payload_;
  std::string frames_;
  std::uint32_t day_count_ = 0;
};

// ===========================================================================
// Text writer (pl-dlg-txt/1).
//
//   pl-dlg-txt|1|<rir>|<day-count, 8 digits zero-padded>
//   @|<YYYYMMDD>|<ext-cond>|<ext-minute>|<reg-cond>|<reg-minute>
//   x|<asn>|<country>|<date>|<status>|<opaque-hex>    extended add/update
//   X|<asn>                                           extended remove
//   r|... / R|<asn>                                   regular channel
//   u|... / v|...                                     ext / reg duplicate
//
// Empty <country> = unknown; empty <date> = no registration date; empty
// <opaque-hex> = 0. The day count is backpatched into the fixed-width header
// field once the stream is drained.

constexpr char condition_char(FileCondition condition) noexcept {
  switch (condition) {
    case FileCondition::kPresent: return 'P';
    case FileCondition::kMissing: return 'M';
    case FileCondition::kCorrupt: return 'C';
    case FileCondition::kNotPublished: return 'N';
  }
  return '?';
}

std::optional<FileCondition> parse_condition(std::string_view field) noexcept {
  if (field.size() != 1) return std::nullopt;
  switch (field[0]) {
    case 'P': return FileCondition::kPresent;
    case 'M': return FileCondition::kMissing;
    case 'C': return FileCondition::kCorrupt;
    case 'N': return FileCondition::kNotPublished;
    default: return std::nullopt;
  }
}

void append_uint(std::string& out, std::uint64_t value) {
  char buf[20];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
  out.append(buf, static_cast<std::size_t>(ptr - buf));
}

void append_int(std::string& out, std::int64_t value) {
  char buf[21];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
  out.append(buf, static_cast<std::size_t>(ptr - buf));
}

void append_hex(std::string& out, std::uint64_t value) {
  char buf[16];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value, 16);
  out.append(buf, static_cast<std::size_t>(ptr - buf));
}

void append_compact_date(std::string& out, util::Day day) {
  const util::CivilDate civil = util::to_civil(day);
  if (civil.year < 1000 || civil.year > 9999) {
    out.append(util::format_compact(day));  // out of fast-path range; rare
    return;
  }
  char buf[8];
  int year = civil.year;
  for (int i = 3; i >= 0; --i) {
    buf[i] = static_cast<char>('0' + year % 10);
    year /= 10;
  }
  buf[4] = static_cast<char>('0' + civil.month / 10);
  buf[5] = static_cast<char>('0' + civil.month % 10);
  buf[6] = static_cast<char>('0' + civil.day / 10);
  buf[7] = static_cast<char>('0' + civil.day % 10);
  out.append(buf, sizeof buf);
}

class TextEncoder {
 public:
  explicit TextEncoder(asn::Rir rir) {
    out_.append(kTextMagic);
    out_.push_back('|');
    append_uint(out_, kTextInterchangeVersion);
    out_.push_back('|');
    out_.append(asn::file_token(rir));
    out_.push_back('|');
    count_offset_ = out_.size();
    out_.append("00000000\n");
  }

  void add_day(const DayObservation& obs) {
    out_.push_back('@');
    out_.push_back('|');
    append_compact_date(out_, obs.day);
    out_.push_back('|');
    out_.push_back(condition_char(obs.extended.condition));
    out_.push_back('|');
    append_int(out_, obs.extended.publish_minute);
    out_.push_back('|');
    out_.push_back(condition_char(obs.regular.condition));
    out_.push_back('|');
    append_int(out_, obs.regular.publish_minute);
    out_.push_back('\n');
    put_channel(obs.extended, 'x', 'X', 'u');
    put_channel(obs.regular, 'r', 'R', 'v');
    ++day_count_;
  }

  std::string finish() && {
    char buf[9];
    std::snprintf(buf, sizeof buf, "%08u", day_count_);
    out_.replace(count_offset_, 8, buf, 8);
    return std::move(out_);
  }

 private:
  void put_record(char tag, asn::Asn asn, const RecordState& state) {
    out_.push_back(tag);
    out_.push_back('|');
    append_uint(out_, asn.value);
    out_.push_back('|');
    if (!state.country.unknown()) {
      const auto [it, fresh] =
          country_text_.try_emplace(state.country, std::string());
      if (fresh) it->second = state.country.to_string();
      out_.append(it->second);
    }
    out_.push_back('|');
    if (state.registration_date.has_value())
      append_compact_date(out_, *state.registration_date);
    out_.push_back('|');
    out_.append(status_token(state.status));
    out_.push_back('|');
    if (state.opaque_id != 0) append_hex(out_, state.opaque_id);
    out_.push_back('\n');
  }

  void put_channel(const ChannelDelta& channel, char add_tag, char remove_tag,
                   char duplicate_tag) {
    for (const RecordChange& change : channel.changes) {
      if (change.state.has_value()) {
        put_record(add_tag, change.asn, *change.state);
      } else {
        out_.push_back(remove_tag);
        out_.push_back('|');
        append_uint(out_, change.asn.value);
        out_.push_back('\n');
      }
    }
    for (const auto& [asn, state] : channel.duplicates)
      put_record(duplicate_tag, asn, state);
  }

  std::string out_;
  std::size_t count_offset_ = 0;
  std::uint32_t day_count_ = 0;
  std::map<asn::CountryCode, std::string> country_text_;
};

// ===========================================================================
// Binary reader.

class BinaryDelegationReader final : public DeltaArchiveReader {
 public:
  static pl::StatusOr<std::unique_ptr<DeltaArchiveReader>> open(
      const EncodedArchive& archive) {
    auto reader = std::make_unique<BinaryDelegationReader>();
    pl::Status status = reader->init(archive);
    if (!status.ok()) return status;
    return pl::StatusOr<std::unique_ptr<DeltaArchiveReader>>(
        std::move(reader));
  }

  asn::Rir registry() const noexcept override { return rir_; }

  const pl::Status& status() const noexcept override { return status_; }

  std::shared_ptr<const util::StringPool> names() const noexcept override {
    return pool_;
  }

  const DayObservationView* next_view() override {
    if (!status_.ok() || done_) return nullptr;
    const std::string& bytes = archive_->bytes;
    if (days_read_ == day_count_) {
      if (offset_ != bytes.size()) {
        fail("trailing bytes after final frame");
        return nullptr;
      }
      done_ = true;
      return nullptr;
    }
    ByteReader frame(bytes.data() + offset_, bytes.size() - offset_);
    std::uint32_t payload_len = 0;
    if (!frame.u32(payload_len) ||
        frame.remaining() < static_cast<std::size_t>(payload_len) + 4u) {
      fail("truncated frame");
      return nullptr;
    }
    std::string_view payload;
    std::uint32_t stored_crc = 0;
    frame.view(payload_len, payload);
    frame.u32(stored_crc);
    if (stored_crc != util::crc32(payload)) {
      fail("frame CRC mismatch");
      return nullptr;
    }
    offset_ += 4u + payload_len + 4u;

    arena_.reset();
    ByteReader body(payload.data(), payload.size());
    if (!body.zigzag(view_.day) ||
        !decode_channel(body, view_.extended) ||
        !decode_channel(body, view_.regular) ||
        body.remaining() != 0) {
      if (status_.ok()) fail("malformed day payload");
      return nullptr;
    }
    ++days_read_;
    return &view_;
  }

 private:
  pl::Status init(const EncodedArchive& archive) {
    archive_ = &archive;
    const std::string& bytes = archive.bytes;
    ByteReader header(bytes.data(), bytes.size());
    std::string_view magic;
    if (!header.view(kBinaryMagic.size(), magic) || magic != kBinaryMagic)
      return pl::data_loss_error("pl-dlg-bin: bad magic");
    std::uint32_t version = 0;
    if (!header.u32(version))
      return pl::data_loss_error("pl-dlg-bin: truncated header");
    if (version != kBinaryInterchangeVersion)
      return pl::invalid_argument_error(
          "pl-dlg-bin: unsupported version " + std::to_string(version));
    std::uint32_t table_count = 0;
    if (!header.u32(day_count_) || !header.u32(table_count))
      return pl::data_loss_error("pl-dlg-bin: truncated header");
    if (table_count > header.remaining())
      return pl::data_loss_error("pl-dlg-bin: implausible string-table size");

    std::vector<std::string> tokens;
    tokens.reserve(table_count);
    for (std::uint32_t i = 0; i < table_count; ++i) {
      std::uint64_t length = 0;
      std::string_view token;
      if (!header.varint(length) || !header.view(length, token))
        return pl::data_loss_error("pl-dlg-bin: truncated string table");
      tokens.emplace_back(token);
    }
    std::optional<util::StringPool> pool =
        util::StringPool::from_tokens(tokens);
    if (!pool.has_value())
      return pl::data_loss_error("pl-dlg-bin: duplicate string-table token");
    pool_ = std::make_shared<util::StringPool>(std::move(*pool));

    std::uint32_t rir_id = 0;
    if (!header.varint32(rir_id) || rir_id >= pool_->size())
      return pl::data_loss_error("pl-dlg-bin: bad registry id");
    const std::optional<asn::Rir> rir = asn::parse_rir(pool_->at(rir_id));
    if (!rir.has_value())
      return pl::data_loss_error("pl-dlg-bin: unknown registry token");
    if (*rir != archive.rir)
      return pl::data_loss_error("pl-dlg-bin: registry mismatch");
    rir_ = *rir;

    // Resolve every table entry's meaning once; decode loops index vectors.
    status_by_id_.assign(pool_->size(), 0xFF);
    country_by_id_.assign(pool_->size(), asn::CountryCode());
    country_ok_.assign(pool_->size(), false);
    for (std::uint32_t id = 0; id < pool_->size(); ++id) {
      const std::string_view token = pool_->at(id);
      if (const auto status = parse_status_exact(token); status.has_value())
        status_by_id_[id] = static_cast<std::uint8_t>(*status);
      if (const auto country = parse_country_token(token);
          country.has_value()) {
        country_by_id_[id] = *country;
        country_ok_[id] = true;
      }
    }

    // Frames are at least 9 payload bytes plus 8 bytes of framing, so a
    // day count larger than remaining/17 cannot be honest — reject before
    // any decode loop trusts it.
    if (day_count_ > header.remaining() / 17 + 1)
      return pl::data_loss_error("pl-dlg-bin: implausible day count");
    offset_ = bytes.size() - header.remaining();
    return {};
  }

  void fail(std::string_view what) {
    status_ = pl::data_loss_error(
        "pl-dlg-bin[" + std::string(asn::file_token(rir_)) + " day index " +
        std::to_string(days_read_) + "]: " + std::string(what));
  }

  bool decode_state(ByteReader& body, std::uint8_t flags, RecordState& out) {
    std::uint32_t status_id = 0;
    std::uint32_t country_id = 0;
    if (!body.varint32(status_id) || !body.varint32(country_id)) return false;
    if (status_id >= status_by_id_.size() || status_by_id_[status_id] == 0xFF)
      return fail_decode("record references non-status table entry");
    if (country_id >= country_ok_.size() || !country_ok_[country_id])
      return fail_decode("record references non-country table entry");
    out.status = static_cast<Status>(status_by_id_[status_id]);
    out.country = country_by_id_[country_id];
    if ((flags & 0x02) != 0) {
      std::int32_t date = 0;
      if (!body.zigzag(date)) return false;
      out.registration_date = date;
    } else {
      out.registration_date = std::nullopt;
    }
    return body.varint(out.opaque_id);
  }

  bool fail_decode(std::string_view what) {
    fail(what);
    return false;
  }

  bool decode_channel(ByteReader& body, ChannelDeltaView& out) {
    std::uint8_t condition = 0;
    if (!body.u8(condition) || condition > 3)
      return fail_decode("bad file condition");
    out.condition = static_cast<FileCondition>(condition);
    if (!body.zigzag(out.publish_minute)) return false;

    std::uint64_t n_changes = 0;
    if (!body.varint(n_changes) || n_changes > body.remaining() / 2)
      return fail_decode("implausible change count");
    const std::span<RecordChange> changes =
        arena_.alloc_array<RecordChange>(n_changes);
    for (RecordChange& slot : changes) {
      // pl-lint: allow(naked-new) placement-new into arena storage; freed
      // wholesale by arena_.reset(), and RecordChange is trivially
      // destructible.
      auto* change = ::new (&slot) RecordChange();
      std::uint32_t asn = 0;
      std::uint8_t flags = 0;
      if (!body.varint32(asn) || !body.u8(flags)) return false;
      change->asn = asn::Asn{asn};
      if ((flags & 0x01) != 0) {
        change->state.emplace();
        if (!decode_state(body, flags, *change->state)) return false;
      }
    }
    out.changes = changes;

    std::uint64_t n_duplicates = 0;
    if (!body.varint(n_duplicates) || n_duplicates > body.remaining() / 5)
      return fail_decode("implausible duplicate count");
    const std::span<std::pair<asn::Asn, RecordState>> duplicates =
        arena_.alloc_array<std::pair<asn::Asn, RecordState>>(n_duplicates);
    for (auto& slot : duplicates) {
      // pl-lint: allow(naked-new) placement-new into arena storage, as above.
      auto* duplicate = ::new (&slot) std::pair<asn::Asn, RecordState>();
      std::uint32_t asn = 0;
      std::uint8_t flags = 0;
      if (!body.varint32(asn) || !body.u8(flags)) return false;
      duplicate->first = asn::Asn{asn};
      if (!decode_state(body, flags, duplicate->second)) return false;
    }
    out.duplicates = duplicates;
    return true;
  }

  const EncodedArchive* archive_ = nullptr;  // borrowed; caller keeps alive
  asn::Rir rir_ = asn::Rir::kArin;
  std::shared_ptr<util::StringPool> pool_;
  std::vector<std::uint8_t> status_by_id_;
  std::vector<asn::CountryCode> country_by_id_;
  std::vector<bool> country_ok_;
  std::size_t offset_ = 0;
  std::uint32_t day_count_ = 0;
  std::uint32_t days_read_ = 0;
  bool done_ = false;
  util::Arena arena_;
  DayObservationView view_;
  pl::Status status_;
};

// ===========================================================================
// Text reader.

class TextDelegationReader final : public DeltaArchiveReader {
 public:
  static pl::StatusOr<std::unique_ptr<DeltaArchiveReader>> open(
      const EncodedArchive& archive) {
    auto reader = std::make_unique<TextDelegationReader>();
    pl::Status status = reader->init(archive);
    if (!status.ok()) return status;
    return pl::StatusOr<std::unique_ptr<DeltaArchiveReader>>(
        std::move(reader));
  }

  asn::Rir registry() const noexcept override { return rir_; }

  const pl::Status& status() const noexcept override { return status_; }

  std::shared_ptr<const util::StringPool> names() const noexcept override {
    return pool_;
  }

  const DayObservationView* next_view() override {
    if (!status_.ok() || done_) return nullptr;
    std::string_view line;
    if (!take_line(line)) {
      if (days_read_ == day_count_) {
        done_ = true;
      } else {
        fail("archive truncated: fewer days than header promised");
      }
      return nullptr;
    }
    if (days_read_ == day_count_) {
      fail("trailing lines after final day");
      return nullptr;
    }
    std::array<std::string_view, 8> fields;
    const std::size_t n = util::split_fields(line, '|', fields.data(), 8);
    if (n != 6 || fields[0] != "@") {
      fail("expected day header");
      return nullptr;
    }
    const std::optional<util::Day> day = util::parse_compact_date(fields[1]);
    const auto ext_condition = parse_condition(fields[2]);
    const auto reg_condition = parse_condition(fields[4]);
    std::int32_t ext_minute = 0;
    std::int32_t reg_minute = 0;
    if (!day.has_value() || !ext_condition.has_value() ||
        !reg_condition.has_value() || !parse_i32(fields[3], ext_minute) ||
        !parse_i32(fields[5], reg_minute)) {
      fail("malformed day header");
      return nullptr;
    }
    ext_changes_.clear();
    ext_duplicates_.clear();
    reg_changes_.clear();
    reg_duplicates_.clear();
    while (take_line(line)) {
      if (!line.empty() && line[0] == '@') {
        pending_ = line;  // next day's header; stop here
        break;
      }
      if (!parse_record_line(line)) return nullptr;
    }
    view_.day = *day;
    view_.extended = {*ext_condition, ext_minute, ext_changes_,
                      ext_duplicates_};
    view_.regular = {*reg_condition, reg_minute, reg_changes_,
                     reg_duplicates_};
    ++days_read_;
    return &view_;
  }

 private:
  /// Lazily-resolved meaning of one interned token; parsed the first time a
  /// record references it, then shared by every later occurrence.
  struct TokenMeaning {
    std::uint8_t status_state = 0;   // 0 = unresolved, 1 = invalid, 2 = valid
    std::uint8_t country_state = 0;
    Status status = Status::kAllocated;
    asn::CountryCode country;
  };

  pl::Status init(const EncodedArchive& archive) {
    pool_ = std::make_shared<util::StringPool>();
    cursor_.emplace(archive.bytes);
    std::string_view line;
    if (!cursor_->next(line))
      return pl::data_loss_error("pl-dlg-txt: empty archive");
    std::array<std::string_view, 5> fields;
    const std::size_t n = util::split_fields(line, '|', fields.data(), 5);
    if (n != 4 || fields[0] != kTextMagic)
      return pl::data_loss_error("pl-dlg-txt: bad magic");
    std::uint32_t version = 0;
    if (!parse_u32(fields[1], version))
      return pl::data_loss_error("pl-dlg-txt: malformed version");
    if (version != kTextInterchangeVersion)
      return pl::invalid_argument_error(
          "pl-dlg-txt: unsupported version " + std::to_string(version));
    const std::optional<asn::Rir> rir = asn::parse_rir(fields[2]);
    if (!rir.has_value())
      return pl::data_loss_error("pl-dlg-txt: unknown registry token");
    if (*rir != archive.rir)
      return pl::data_loss_error("pl-dlg-txt: registry mismatch");
    rir_ = *rir;
    pool_->intern(fields[2]);
    if (fields[3].size() != 8 || !parse_u32(fields[3], day_count_))
      return pl::data_loss_error("pl-dlg-txt: malformed day count");
    return {};
  }

  bool take_line(std::string_view& line) {
    if (!pending_.empty()) {
      line = pending_;
      pending_ = {};
      return true;
    }
    return cursor_->next(line);
  }

  static bool parse_u32(std::string_view field, std::uint32_t& out) noexcept {
    const char* begin = field.data();
    const char* end = begin + field.size();
    const auto [ptr, ec] = std::from_chars(begin, end, out);
    return ec == std::errc{} && ptr == end;
  }

  static bool parse_i32(std::string_view field, std::int32_t& out) noexcept {
    const char* begin = field.data();
    const char* end = begin + field.size();
    const auto [ptr, ec] = std::from_chars(begin, end, out);
    return ec == std::errc{} && ptr == end;
  }

  void fail(std::string_view what) {
    status_ = pl::data_loss_error(
        "pl-dlg-txt[" + std::string(asn::file_token(rir_)) + " day index " +
        std::to_string(days_read_) + "]: " + std::string(what));
  }

  TokenMeaning& meaning_of(std::string_view token) {
    const std::uint32_t id = pool_->intern(token);
    if (id >= meanings_.size()) meanings_.resize(pool_->size());
    return meanings_[id];
  }

  bool parse_state(const std::string_view* fields, RecordState& out) {
    TokenMeaning& country = meaning_of(fields[2]);
    if (country.country_state == 0) {
      const auto parsed = parse_country_token(fields[2]);
      country.country_state = parsed.has_value() ? 2 : 1;
      if (parsed.has_value()) country.country = *parsed;
    }
    if (country.country_state != 2) {
      fail("bad country code");
      return false;
    }
    out.country = country.country;

    if (fields[3].empty()) {
      out.registration_date = std::nullopt;
    } else {
      const std::optional<util::Day> date =
          util::parse_compact_date(fields[3]);
      if (!date.has_value()) {
        fail("bad registration date");
        return false;
      }
      out.registration_date = date;
    }

    TokenMeaning& status = meaning_of(fields[4]);
    if (status.status_state == 0) {
      const auto parsed = parse_status_exact(fields[4]);
      status.status_state = parsed.has_value() ? 2 : 1;
      if (parsed.has_value()) status.status = *parsed;
    }
    if (status.status_state != 2) {
      fail("bad status token");
      return false;
    }
    out.status = status.status;

    if (fields[5].empty()) {
      out.opaque_id = 0;
    } else {
      const char* begin = fields[5].data();
      const char* end = begin + fields[5].size();
      const auto [ptr, ec] = std::from_chars(begin, end, out.opaque_id, 16);
      if (ec != std::errc{} || ptr != end) {
        fail("bad opaque id");
        return false;
      }
    }
    return true;
  }

  bool parse_record_line(std::string_view line) {
    std::array<std::string_view, 7> fields;
    const std::size_t n = util::split_fields(line, '|', fields.data(), 7);
    if (fields[0].size() != 1) {
      fail("bad record tag");
      return false;
    }
    const char tag = fields[0][0];
    std::uint32_t asn = 0;
    if (n < 2 || !parse_u32(fields[1], asn)) {
      fail("bad asn field");
      return false;
    }
    switch (tag) {
      case 'X':
      case 'R': {
        if (n != 2) {
          fail("bad remove line");
          return false;
        }
        auto& changes = tag == 'X' ? ext_changes_ : reg_changes_;
        changes.push_back(RecordChange{asn::Asn{asn}, std::nullopt});
        return true;
      }
      case 'x':
      case 'r': {
        if (n != 6) {
          fail("bad change line");
          return false;
        }
        RecordState state;
        if (!parse_state(fields.data(), state)) return false;
        auto& changes = tag == 'x' ? ext_changes_ : reg_changes_;
        changes.push_back(RecordChange{asn::Asn{asn}, state});
        return true;
      }
      case 'u':
      case 'v': {
        if (n != 6) {
          fail("bad duplicate line");
          return false;
        }
        RecordState state;
        if (!parse_state(fields.data(), state)) return false;
        auto& duplicates = tag == 'u' ? ext_duplicates_ : reg_duplicates_;
        duplicates.emplace_back(asn::Asn{asn}, state);
        return true;
      }
      default:
        fail("unknown record tag");
        return false;
    }
  }

  asn::Rir rir_ = asn::Rir::kArin;
  std::shared_ptr<util::StringPool> pool_;
  std::vector<TokenMeaning> meanings_;
  std::optional<util::LineCursor> cursor_;
  std::string_view pending_;
  std::uint32_t day_count_ = 0;
  std::uint32_t days_read_ = 0;
  bool done_ = false;
  // Reusable scratch: cleared (capacity kept) each day; the view spans these.
  std::vector<RecordChange> ext_changes_;
  std::vector<std::pair<asn::Asn, RecordState>> ext_duplicates_;
  std::vector<RecordChange> reg_changes_;
  std::vector<std::pair<asn::Asn, RecordState>> reg_duplicates_;
  DayObservationView view_;
  pl::Status status_;
};

}  // namespace

// ===========================================================================
// Public surface.

std::string_view interchange_token(Interchange format) noexcept {
  switch (format) {
    case Interchange::kText: return "text";
    case Interchange::kBinary: return "binary";
  }
  return "?";
}

std::optional<Interchange> parse_interchange(std::string_view token) noexcept {
  if (token == "text") return Interchange::kText;
  if (token == "binary") return Interchange::kBinary;
  return std::nullopt;
}

EncodedArchive encode_archive(ArchiveStream& stream, Interchange format) {
  EncodedArchive out;
  out.rir = stream.registry();
  out.format = format;
  if (format == Interchange::kBinary) {
    BinaryEncoder encoder(out.rir);
    while (const std::optional<DayObservation> obs = stream.next())
      encoder.add_day(*obs);
    out.bytes = std::move(encoder).finish();
  } else {
    TextEncoder encoder(out.rir);
    while (const std::optional<DayObservation> obs = stream.next())
      encoder.add_day(*obs);
    out.bytes = std::move(encoder).finish();
  }
  return out;
}

DayObservation materialize(const DayObservationView& view) {
  DayObservation obs;
  obs.day = view.day;
  const auto copy_channel = [](const ChannelDeltaView& in,
                               ChannelDelta& out) {
    out.condition = in.condition;
    out.publish_minute = in.publish_minute;
    out.changes.assign(in.changes.begin(), in.changes.end());
    out.duplicates.assign(in.duplicates.begin(), in.duplicates.end());
  };
  copy_channel(view.extended, obs.extended);
  copy_channel(view.regular, obs.regular);
  return obs;
}

DayObservationView view_of(const DayObservation& obs) noexcept {
  DayObservationView view;
  view.day = obs.day;
  view.extended = {obs.extended.condition, obs.extended.publish_minute,
                   obs.extended.changes, obs.extended.duplicates};
  view.regular = {obs.regular.condition, obs.regular.publish_minute,
                  obs.regular.changes, obs.regular.duplicates};
  return view;
}

std::optional<DayObservation> DeltaArchiveReader::next() {
  const DayObservationView* view = next_view();
  if (view == nullptr) return std::nullopt;
  return materialize(*view);
}

pl::StatusOr<std::unique_ptr<DeltaArchiveReader>> open_archive(
    const EncodedArchive& archive) {
  switch (archive.format) {
    case Interchange::kBinary: return BinaryDelegationReader::open(archive);
    case Interchange::kText: return TextDelegationReader::open(archive);
  }
  return pl::invalid_argument_error("unknown interchange format");
}

pl::StatusOr<std::vector<DayObservation>> decode_archive(
    const EncodedArchive& archive) {
  pl::StatusOr<std::unique_ptr<DeltaArchiveReader>> reader =
      open_archive(archive);
  if (!reader.ok()) return reader.status();
  std::vector<DayObservation> days;
  while (const DayObservationView* view = (*reader)->next_view())
    days.push_back(materialize(*view));
  if (!(*reader)->status().ok()) return (*reader)->status();
  return days;
}

}  // namespace pl::dele
