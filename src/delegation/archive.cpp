#include "delegation/archive.hpp"

#include <algorithm>

#include "asn/rir.hpp"

namespace pl::dele {

void SnapshotTable::apply(std::span<const RecordChange> changes) {
  for (const RecordChange& change : changes) {
    if (change.state)
      records_[change.asn] = *change.state;
    else
      records_.erase(change.asn);
  }
}

const RecordState* SnapshotTable::find(asn::Asn asn) const noexcept {
  const auto it = records_.find(asn);
  return it == records_.end() ? nullptr : &it->second;
}

std::vector<RecordChange> diff_snapshots(
    std::span<const std::pair<asn::Asn, RecordState>> before,
    std::span<const std::pair<asn::Asn, RecordState>> after) {
  std::vector<RecordChange> out;
  std::size_t i = 0;
  std::size_t j = 0;

  // Skip duplicate-ASN runs, keeping the last occurrence.
  const auto advance_dupes =
      [](std::span<const std::pair<asn::Asn, RecordState>> v,
         std::size_t k) {
        while (k + 1 < v.size() && v[k + 1].first == v[k].first) ++k;
        return k;
      };

  while (i < before.size() || j < after.size()) {
    if (i < before.size()) i = advance_dupes(before, i);
    if (j < after.size()) j = advance_dupes(after, j);

    if (j >= after.size() ||
        (i < before.size() && before[i].first < after[j].first)) {
      out.push_back(RecordChange{before[i].first, std::nullopt});
      ++i;
    } else if (i >= before.size() || after[j].first < before[i].first) {
      out.push_back(RecordChange{after[j].first, after[j].second});
      ++j;
    } else {
      if (!(before[i].second == after[j].second))
        out.push_back(RecordChange{after[j].first, after[j].second});
      ++i;
      ++j;
    }
  }
  return out;
}

namespace {

/// Walking cursor over a channel's file sequence; produces per-day
/// ChannelDelta values.
class ChannelCursor {
 public:
  ChannelCursor(const std::vector<std::pair<util::Day, DelegationFile>>& files,
                util::Day first_published, std::optional<util::Day> last_published)
      : files_(files),
        first_published_(first_published),
        last_published_(last_published) {}

  ChannelDelta delta_for(util::Day day) {
    ChannelDelta delta;
    if (day < first_published_ ||
        (last_published_ && day > *last_published_)) {
      delta.condition = FileCondition::kNotPublished;
      return delta;
    }
    if (index_ < files_.size() && files_[index_].first == day) {
      const auto after = expand_asn_records(files_[index_].second);
      delta.condition = FileCondition::kPresent;
      delta.changes = diff_snapshots(previous_, after);
      previous_ = after;
      ++index_;
      return delta;
    }
    delta.condition = FileCondition::kMissing;
    return delta;
  }

 private:
  const std::vector<std::pair<util::Day, DelegationFile>>& files_;
  util::Day first_published_;
  std::optional<util::Day> last_published_;
  std::size_t index_ = 0;
  std::vector<std::pair<asn::Asn, RecordState>> previous_;
};

}  // namespace

std::vector<DayObservation> observations_from_files(
    asn::Rir rir,
    const std::vector<std::pair<util::Day, DelegationFile>>& extended_files,
    const std::vector<std::pair<util::Day, DelegationFile>>& regular_files,
    util::Day begin_day, util::Day end_day) {
  // Publication eras: from the first file actually provided (or the RIR's
  // historical date if no files), until the end of the archive.
  const auto era_start =
      [&](const std::vector<std::pair<util::Day, DelegationFile>>& files,
          util::Day fallback) {
        return files.empty() ? fallback : files.front().first;
      };

  const asn::RirFacts& rir_facts = asn::facts(rir);
  ChannelCursor extended(extended_files,
                         era_start(extended_files,
                                   rir_facts.first_extended_file),
                         std::nullopt);
  ChannelCursor regular(regular_files,
                        era_start(regular_files, rir_facts.first_regular_file),
                        rir_facts.last_regular_file);

  std::vector<DayObservation> out;
  out.reserve(static_cast<std::size_t>(end_day - begin_day + 1));
  for (util::Day day = begin_day; day <= end_day; ++day) {
    DayObservation observation;
    observation.day = day;
    observation.extended = extended.delta_for(day);
    observation.regular = regular.delta_for(day);
    out.push_back(std::move(observation));
  }
  return out;
}

}  // namespace pl::dele
