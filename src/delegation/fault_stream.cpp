#include "delegation/fault_stream.hpp"

#include <algorithm>
#include <utility>

namespace pl::dele {

using robust::Severity;
using robust::Stage;

FaultStream::FaultStream(std::unique_ptr<ArchiveStream> inner,
                         robust::ChaosConfig config, robust::ErrorSink* sink)
    : inner_(std::move(inner)), config_(config), sink_(sink),
      rng_(config.seed) {}

asn::Rir FaultStream::registry() const noexcept {
  return inner_->registry();
}

robust::RobustnessReport& FaultStream::stats() noexcept {
  return sink_ != nullptr ? sink_->counters() : local_;
}

void FaultStream::diagnose(Severity severity, std::string code,
                           std::string message, util::Day day) {
  if (sink_ == nullptr) return;
  robust::Diagnostic diagnostic;
  diagnostic.stage = Stage::kFetch;
  diagnostic.severity = severity;
  diagnostic.code = std::move(code);
  diagnostic.message = std::move(message);
  diagnostic.day = day;
  sink_->report(std::move(diagnostic));
}

std::optional<DayObservation> FaultStream::next() {
  while (true) {
    if (!held_.empty()) {
      DayObservation observation = std::move(held_.front());
      held_.pop_front();
      ++stats().days_delivered;
      return observation;
    }

    std::optional<DayObservation> observation = inner_->next();
    if (!observation) return std::nullopt;
    ++stats().days_input;
    const util::Day day = observation->day;

    // Multi-day outage in progress: the day never arrives.
    if (outage_days_left_ > 0) {
      --outage_days_left_;
      ++stats().days_dropped;
      continue;
    }
    if (rng_.chance(config_.burst_outage_rate)) {
      outage_days_left_ = static_cast<int>(
          rng_.uniform(1, std::max(1, config_.burst_outage_max_days))) - 1;
      ++stats().days_dropped;
      diagnose(Severity::kError, "fetch-burst-outage",
               "archive unreachable for " +
                   std::to_string(outage_days_left_ + 1) + " day(s)",
               day);
      continue;
    }

    // Transient fetch failure: retry with the configured budget; if every
    // attempt fails the day is lost.
    if (rng_.chance(config_.drop_day_rate)) {
      bool recovered = false;
      for (int attempt = 0; attempt < config_.fetch_max_retries; ++attempt) {
        ++stats().fetch_retries;
        if (rng_.chance(config_.retry_success_rate)) {
          recovered = true;
          break;
        }
      }
      if (!recovered) {
        ++stats().fetch_failures;
        ++stats().days_dropped;
        diagnose(Severity::kError, "fetch-retries-exhausted",
                 "fetch failed after " +
                     std::to_string(config_.fetch_max_retries) + " retries",
                 day);
        continue;
      }
      diagnose(Severity::kInfo, "fetch-retried",
               "fetch succeeded on retry", day);
    }

    // One channel arrives unusable: its delta is gone for good, exactly like
    // a file that downloads but fails integrity checks.
    if (rng_.chance(config_.corrupt_channel_rate)) {
      ChannelDelta& channel =
          rng_.chance(0.5) ? observation->extended : observation->regular;
      if (channel.condition == FileCondition::kPresent) {
        channel.condition = FileCondition::kCorrupt;
        channel.changes.clear();
        channel.duplicates.clear();
        ++stats().channels_corrupted;
        diagnose(Severity::kWarning, "fetch-channel-corrupt",
                 "channel failed integrity check", day);
      }
    }

    // The day arrives twice (mirror lag, double cron fire).
    if (rng_.chance(config_.duplicate_day_rate)) {
      held_.push_back(*observation);
      ++stats().days_duplicated;
      diagnose(Severity::kWarning, "fetch-duplicate-day",
               "day delivered twice", day);
    }

    // The day and its successor swap places in the download order.
    if (rng_.chance(config_.reorder_rate)) {
      std::optional<DayObservation> successor = inner_->next();
      if (successor) {
        ++stats().days_input;
        ++stats().days_reordered;
        diagnose(Severity::kWarning, "fetch-out-of-order",
                 "day delivered after its successor", day);
        held_.push_front(std::move(*observation));
        observation = std::move(successor);
      }
    }

    ++stats().days_delivered;
    return observation;
  }
}

}  // namespace pl::dele
