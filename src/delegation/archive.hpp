// Archive abstraction: 17 years of per-day delegation files, consumed as a
// stream of day-deltas per registry.
//
// Real deployments read ~6,300 files per RIR; materializing every day's
// ~100k-record snapshot is O(600M) record instances. Instead the pipeline
// streams `DayObservation` deltas and maintains the current file content in
// a `SnapshotTable` — exactly the "compare consecutive files" operation the
// paper performs, in O(days + changes).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "delegation/file.hpp"
#include "delegation/record.hpp"

namespace pl::dele {

/// Current content of one channel (one registry's regular or extended file),
/// keyed by ASN. Ordered map: restoration iterates ASNs in order for
/// deterministic reports.
class SnapshotTable {
 public:
  /// Apply a delta produced against this table's current content.
  void apply(std::span<const RecordChange> changes);

  const RecordState* find(asn::Asn asn) const noexcept;

  std::size_t size() const noexcept { return records_.size(); }

  const std::map<asn::Asn, RecordState>& records() const noexcept {
    return records_;
  }

 private:
  std::map<asn::Asn, RecordState> records_;
};

/// Compute the delta that transforms `before` into `after`. Both inputs must
/// be sorted by ASN (as produced by expand_asn_records). If an ASN appears
/// multiple times in `after` (AfriNIC invalid duplicates) the *last*
/// occurrence wins for delta purposes; duplicate detection happens upstream
/// on the raw file.
std::vector<RecordChange> diff_snapshots(
    std::span<const std::pair<asn::Asn, RecordState>> before,
    std::span<const std::pair<asn::Asn, RecordState>> after);

/// A per-registry stream of day observations in strictly increasing day
/// order. Implementations: the simulator's lazy view (pl::rirsim) and the
/// in-memory vector used by tests and the file-directory reader.
class ArchiveStream {
 public:
  virtual ~ArchiveStream() = default;

  /// Registry this stream describes.
  virtual asn::Rir registry() const noexcept = 0;

  /// Next day's observation, or nullopt at end of archive.
  virtual std::optional<DayObservation> next() = 0;
};

/// Simple materialized stream over a vector of observations.
class VectorArchiveStream final : public ArchiveStream {
 public:
  VectorArchiveStream(asn::Rir rir, std::vector<DayObservation> days)
      : rir_(rir), days_(std::move(days)) {}

  asn::Rir registry() const noexcept override { return rir_; }

  std::optional<DayObservation> next() override {
    if (index_ >= days_.size()) return std::nullopt;
    return days_[index_++];
  }

 private:
  asn::Rir rir_;
  std::vector<DayObservation> days_;
  std::size_t index_ = 0;
};

/// Build a delta stream from a day-ordered sequence of parsed files.
/// `files[i].first` is the day; missing days between consecutive entries are
/// emitted as kMissing on both channels (within each channel's publication
/// era). This is the adapter from on-disk archives to the pipeline.
std::vector<DayObservation> observations_from_files(
    asn::Rir rir,
    const std::vector<std::pair<util::Day, DelegationFile>>& extended_files,
    const std::vector<std::pair<util::Day, DelegationFile>>& regular_files,
    util::Day begin_day, util::Day end_day);

}  // namespace pl::dele
