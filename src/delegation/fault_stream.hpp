// Transport fault injection over an ArchiveStream.
//
// FaultStream decorates a pristine delegation archive stream with the
// transport faults robust::ChaosConfig describes: fetches that fail and must
// be retried, whole-day outages, days delivered twice or out of order, and
// channels that arrive unusable. It lives in the delegation subsystem —
// unlike the byte-level corruptors in robust/chaos.hpp it speaks
// DayObservation, so keeping it below the archive types would invert the
// layer order. Everything is seeded through util::Rng, so a chaos run is
// exactly reproducible — the property the differential and degradation tests
// depend on.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <string>

#include "delegation/archive.hpp"
#include "robust/chaos.hpp"
#include "robust/error.hpp"

namespace pl::dele {

/// An ArchiveStream decorator that injects transport faults between a
/// pristine stream and its consumer. Counter updates go to the sink's
/// counter block when a sink is given, else to an internal block readable
/// via `counters()`; diagnostics go to the sink when present.
class FaultStream final : public ArchiveStream {
 public:
  FaultStream(std::unique_ptr<ArchiveStream> inner,
              robust::ChaosConfig config, robust::ErrorSink* sink = nullptr);

  asn::Rir registry() const noexcept override;

  std::optional<DayObservation> next() override;

  /// Counter block used when no sink was supplied.
  const robust::RobustnessReport& counters() const noexcept { return local_; }

 private:
  robust::RobustnessReport& stats() noexcept;
  void diagnose(robust::Severity severity, std::string code,
                std::string message, util::Day day);

  std::unique_ptr<ArchiveStream> inner_;
  robust::ChaosConfig config_;
  robust::ErrorSink* sink_;
  util::Rng rng_;
  std::deque<DayObservation> held_;  ///< duplicated / displaced days
  int outage_days_left_ = 0;
  robust::RobustnessReport local_;
};

}  // namespace pl::dele
