// Delegation-archive interchange: the serialized boundary between the render
// stage (which produces per-registry archives) and the restore stage (which
// consumes them as day-delta streams).
//
// Two wire formats carry the same day-observation model:
//   * `pl-dlg-txt/1` — a line-oriented text form, the conformance reference.
//     One '@' header line per day followed by one line per record change or
//     duplicate; parsed with the memchr field splitter, no per-line string
//     copies.
//   * `pl-dlg-bin/1` — a versioned, CRC-framed binary form. A string table at
//     the head of the archive interns every registry / status / country token
//     once; each day is one length-prefixed, CRC-checked frame of varint
//     records that the reader decodes record-at-a-time into a per-day arena.
//
// Both decoders expose a zero-copy view API (`next_view`): the returned
// records live in reader-owned storage that is valid until the next call,
// so the restore fast path never materializes `DayObservation` vectors. The
// materializing `ArchiveStream::next()` remains available for consumers that
// need owned observations (fault injection, reorder buffering).
//
// Frame layout, arena lifetime rules and intern-pool invariants are
// documented in DESIGN.md §13.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "delegation/archive.hpp"
#include "delegation/record.hpp"
#include "util/intern.hpp"
#include "util/status.hpp"

namespace pl::dele {

/// Wire format for an encoded delegation archive.
enum class Interchange : std::uint8_t {
  kText,    ///< pl-dlg-txt/1 (default; conformance reference)
  kBinary,  ///< pl-dlg-bin/1 (CRC-framed, string-interned fast path)
};

std::string_view interchange_token(Interchange format) noexcept;
std::optional<Interchange> parse_interchange(std::string_view token) noexcept;

inline constexpr std::uint32_t kBinaryInterchangeVersion = 1;  // pl-dlg-bin/1
inline constexpr std::uint32_t kTextInterchangeVersion = 1;    // pl-dlg-txt/1

/// One registry's archive, serialized. `bytes` owns the encoded form; readers
/// returned by open_archive() borrow it, so the EncodedArchive must outlive
/// them.
struct EncodedArchive {
  asn::Rir rir = asn::Rir::kArin;
  Interchange format = Interchange::kText;
  std::string bytes;
};

/// Drain `stream` to completion and encode every observation. The encoder is
/// the only component that walks the generator, so its cost lands in the
/// stage that owns the stream (render), not in restore.
EncodedArchive encode_archive(ArchiveStream& stream, Interchange format);

/// Non-owning view of one channel's day delta. Spans point into reader-owned
/// storage (arena or scratch) valid until the next read call.
struct ChannelDeltaView {
  FileCondition condition = FileCondition::kNotPublished;
  std::int32_t publish_minute = 0;
  std::span<const RecordChange> changes;
  std::span<const std::pair<asn::Asn, RecordState>> duplicates;
};

/// Non-owning view of one day, both channels.
struct DayObservationView {
  util::Day day = 0;
  ChannelDeltaView extended;
  ChannelDeltaView regular;
};

/// Copy a view into an owned observation (reorder buffer, fault injection).
DayObservation materialize(const DayObservationView& view);

/// View over an owned observation (valid while `obs` is alive and unchanged).
DayObservationView view_of(const DayObservation& obs) noexcept;

/// Decoded archive stream. Also an ArchiveStream: `next()` materializes the
/// current view, which is what the chaos/fault path consumes.
class DeltaArchiveReader : public ArchiveStream {
 public:
  /// Decode the next day without materializing: the returned view (and all
  /// spans inside it) is valid until the next next_view()/next() call.
  /// Returns nullptr at end of archive or on decode error — check status().
  virtual const DayObservationView* next_view() = 0;

  /// OK while the stream is healthy; latches the first decode error. End of
  /// archive with an OK status is a clean EOF.
  virtual const pl::Status& status() const noexcept = 0;

  /// The archive's interned token vocabulary (registry, statuses, countries).
  /// Complete after the stream is drained; for the binary format it is
  /// complete at open (the string table is decoded eagerly).
  virtual std::shared_ptr<const util::StringPool> names() const noexcept = 0;

  /// Materializing read, implemented on top of next_view(). Returns nullopt
  /// at end of archive *or* on decode error; callers that need to tell the
  /// difference check status().
  std::optional<DayObservation> next() final;
};

/// Open an encoded archive for reading; dispatches on `archive.format`.
/// Validates the header eagerly (magic, version, string table, registry,
/// day count) and fails with a precise status: kDataLoss for corrupt or
/// truncated input, kInvalidArgument for version skew. The reader borrows
/// `archive.bytes` — keep the EncodedArchive alive.
pl::StatusOr<std::unique_ptr<DeltaArchiveReader>> open_archive(
    const EncodedArchive& archive);

/// Convenience for tests and tools: decode the whole archive into owned
/// observations, or the first error encountered.
pl::StatusOr<std::vector<DayObservation>> decode_archive(
    const EncodedArchive& archive);

}  // namespace pl::dele
