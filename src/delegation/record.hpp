// Delegation records: one line of an NRO delegation file, and the per-day
// record-state / day-delta model the restoration pipeline streams over.
//
// Two file formats exist in the wild (paper 2):
//   * "regular" files (2003/2004-) list only delegated resources
//     (status allocated/assigned);
//   * "extended" files (2008/2010-, APNIC format) additionally list
//     available and reserved resources and carry an opaque organization id.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "asn/asn.hpp"
#include "asn/country.hpp"
#include "asn/rir.hpp"
#include "util/date.hpp"

namespace pl::dele {

/// Resource status in a delegation file.
enum class Status : std::uint8_t {
  kAllocated,  ///< delegated to an organization (LIR/ISP)
  kAssigned,   ///< delegated to an end-user organization
  kAvailable,  ///< in the RIR free pool (extended files only)
  kReserved,   ///< quarantined / held (extended files only)
};

std::string_view status_token(Status status) noexcept;

/// True for the two statuses that mean "delegated to an organization"; the
/// administrative-life analysis treats allocated and assigned identically.
constexpr bool is_delegated(Status status) noexcept {
  return status == Status::kAllocated || status == Status::kAssigned;
}

/// One ASN record line of a delegation file. Files may aggregate runs of
/// consecutive ASNs into a single line via `count`.
struct AsnRecord {
  asn::Rir registry = asn::Rir::kArin;
  asn::CountryCode country;           ///< unknown for available/reserved
  asn::Asn first;                     ///< first ASN of the run
  std::uint32_t count = 1;            ///< number of consecutive ASNs
  std::optional<util::Day> date;      ///< registration date; often absent for
                                      ///< available/reserved records
  Status status = Status::kAllocated;
  std::uint64_t opaque_id = 0;        ///< organization handle (extended only;
                                      ///< 0 = none)

  friend bool operator==(const AsnRecord&, const AsnRecord&) = default;
};

/// The per-ASN state that matters to the administrative analysis: what one
/// file says about one ASN on one day.
struct RecordState {
  Status status = Status::kAllocated;
  std::optional<util::Day> registration_date;
  asn::CountryCode country;
  std::uint64_t opaque_id = 0;

  friend bool operator==(const RecordState&, const RecordState&) = default;
};

/// A change between two consecutive published files: `state == nullopt`
/// means the ASN vanished from the file.
struct RecordChange {
  asn::Asn asn;
  std::optional<RecordState> state;

  friend bool operator==(const RecordChange&, const RecordChange&) = default;
};

/// Availability of a channel (regular or extended file) on a day.
enum class FileCondition : std::uint8_t {
  kPresent,       ///< file published and parseable
  kMissing,       ///< expected but absent from the FTP site (paper 3.1.i)
  kCorrupt,       ///< present but unusable
  kNotPublished,  ///< outside the channel's publication era (Table 1)
};

/// What one channel said on one day, as a delta against its previous
/// *present* day. Restoration streams these instead of materializing ~100k
/// records x ~6,400 days.
struct ChannelDelta {
  FileCondition condition = FileCondition::kNotPublished;
  std::vector<RecordChange> changes;
  /// Publication timestamp within the day; used by the same-day
  /// reconciliation step (3.1.iii) to decide which file is newest.
  std::int32_t publish_minute = 0;
  /// Conflicting duplicate records present in the file *in addition to* the
  /// record implied by `changes` (AfriNIC's invalid duplicates, 3.1.iv).
  /// Listed in full on every affected day, not as a delta.
  std::vector<std::pair<asn::Asn, RecordState>> duplicates;
};

/// Both channels of one registry for one day.
struct DayObservation {
  util::Day day = 0;
  ChannelDelta extended;
  ChannelDelta regular;
};

}  // namespace pl::dele
