#include "delegation/file.hpp"

#include <algorithm>
#include <charconv>

#include "util/strings.hpp"

namespace pl::dele {

namespace {

using util::split;
using util::trim;

std::string_view kStatusTokens[] = {"allocated", "assigned", "available",
                                    "reserved"};

std::optional<std::int64_t> parse_int(std::string_view text) {
  std::int64_t value = 0;
  const auto* begin = text.data();
  const auto* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

std::optional<std::uint64_t> parse_hex(std::string_view text) {
  std::uint64_t value = 0;
  const auto* begin = text.data();
  const auto* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value, 16);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

}  // namespace

std::string_view status_token(Status status) noexcept {
  return kStatusTokens[static_cast<std::size_t>(status)];
}

namespace {

// The text parser is the only caller: the interchange reader matches status
// tokens exactly (parse_status_exact), so this stays file-local.
std::optional<Status> parse_status(std::string_view token) noexcept {
  const std::string lowered = util::to_lower(trim(token));
  for (std::size_t i = 0; i < 4; ++i)
    if (lowered == kStatusTokens[i]) return static_cast<Status>(i);
  return std::nullopt;
}

/// Report one record-level anomaly through both channels (legacy warning
/// string + structured diagnostic). Returns true when a strict-policy sink
/// demands the parse abort.
bool record_anomaly(ParseResult& result, robust::ErrorSink* sink,
                    std::string_view code, std::string_view what,
                    std::size_t line_number, bool skips_record) {
  result.warnings.push_back(std::string(what) + " at line " +
                            std::to_string(line_number));
  if (skips_record) ++result.records_skipped;
  if (sink == nullptr) return false;
  if (skips_record) ++sink->counters().records_skipped;
  const robust::Severity severity =
      sink->policy() == robust::Policy::kStrict ? robust::Severity::kError
                                                : robust::Severity::kWarning;
  const bool keep_going =
      sink->report({robust::Stage::kParse, severity, std::string(code),
                    result.warnings.back(), std::nullopt, std::nullopt});
  return !keep_going;
}

}  // namespace

ParseResult parse_delegation_file(std::string_view text) {
  return parse_delegation_file(text, nullptr);
}

ParseResult parse_delegation_file(std::string_view text,
                                  robust::ErrorSink* sink) {
  ParseResult result;
  DelegationFile& file = result.file;
  bool saw_header = false;

  const auto fatal = [&](std::string message) {
    result.error = std::move(message);
    if (sink != nullptr)
      sink->report({robust::Stage::kParse, robust::Severity::kError,
                    "delegation-file-unusable", result.error, std::nullopt,
                    std::nullopt});
  };
  const auto aborted = [&](std::size_t line_number) {
    result.ok = false;
    result.error = "strict policy: parse aborted at line " +
                   std::to_string(line_number);
    return result;
  };

  std::size_t line_number = 0;
  for (std::string_view raw_line : util::lines(text)) {
    ++line_number;
    const std::string_view line = trim(raw_line);
    if (line.empty() || line.front() == '#') continue;

    const auto fields = split(line, '|');

    if (!saw_header) {
      // version|registry|serial|records|startdate|enddate|UTCoffset
      if (fields.size() < 7) {
        fatal("malformed version line at line " +
              std::to_string(line_number));
        return result;
      }
      // Some historical files use "2.3" as the version token.
      const auto version_field = fields[0];
      const auto dot = version_field.find('.');
      const auto major = parse_int(version_field.substr(0, dot));
      const auto registry = asn::parse_rir(fields[1]);
      const auto serial = util::parse_compact_date(fields[2]);
      const auto records = parse_int(fields[3]);
      const auto start = util::parse_compact_date(fields[4]);
      const auto end = util::parse_compact_date(fields[5]);
      if (!major || !registry || !serial || !records) {
        fatal("unparseable version line at line " +
              std::to_string(line_number));
        return result;
      }
      file.header.version = static_cast<int>(*major);
      file.header.registry = *registry;
      file.header.serial = *serial;
      file.header.record_count = *records;
      file.header.start_date = start.value_or(*serial);
      file.header.end_date = end.value_or(*serial);
      file.header.utc_offset = std::string(trim(fields[6]));
      saw_header = true;
      continue;
    }

    // Summary line: registry|*|type|*|count|summary — present in both
    // formats; extended-ness is detected from record shape instead.
    if (fields.size() >= 6 && trim(fields[1]) == "*" &&
        trim(fields[5]) == "summary") {
      continue;
    }

    // Record line: registry|cc|type|start|value|date|status[|opaque-id...]
    if (fields.size() < 7) {
      if (record_anomaly(result, sink, "short-record", "short record",
                         line_number, true))
        return aborted(line_number);
      continue;
    }
    const std::string_view type = trim(fields[2]);
    if (type == "ipv4") {
      ++file.ipv4_records;
      continue;
    }
    if (type == "ipv6") {
      ++file.ipv6_records;
      continue;
    }
    if (type != "asn") {
      if (record_anomaly(result, sink, "unknown-record-type",
                         "unknown record type", line_number, true))
        return aborted(line_number);
      continue;
    }

    AsnRecord record;
    const auto registry = asn::parse_rir(fields[0]);
    record.registry = registry.value_or(file.header.registry);
    if (registry == std::nullopt &&
        record_anomaly(result, sink, "unknown-registry",
                       "unknown registry token", line_number, false))
      return aborted(line_number);

    const std::string_view cc_field = trim(fields[1]);
    if (const auto cc = asn::CountryCode::parse(cc_field))
      record.country = *cc;

    const auto first = asn::parse_asn(trim(fields[3]));
    const auto count = parse_int(trim(fields[4]));
    if (!first || !count || *count <= 0) {
      if (record_anomaly(result, sink, "bad-asn-value", "bad asn/value",
                         line_number, true))
        return aborted(line_number);
      continue;
    }
    record.first = *first;
    record.count = static_cast<std::uint32_t>(*count);

    record.date = util::parse_compact_date(trim(fields[5]));

    const auto status = parse_status(fields[6]);
    if (!status) {
      if (record_anomaly(result, sink, "bad-status", "bad status",
                         line_number, true))
        return aborted(line_number);
      continue;
    }
    record.status = *status;
    if (!is_delegated(record.status)) file.extended = true;

    if (fields.size() >= 8) {
      const std::string_view opaque = trim(fields[7]);
      if (!opaque.empty()) {
        file.extended = true;
        if (const auto id = parse_hex(opaque)) {
          record.opaque_id = *id;
        } else if (record_anomaly(result, sink, "bad-opaque-id",
                                  "bad opaque id", line_number, false)) {
          return aborted(line_number);
        }
      }
    }
    file.asn_records.push_back(record);
  }

  if (!saw_header) {
    fatal("no version line");
    return result;
  }
  result.ok = true;
  return result;
}

namespace {

void append_hex(std::string& out, std::uint64_t value) {
  char buf[17];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value, 16);
  out.append(buf, ptr);
}

}  // namespace

std::string serialize(const DelegationFile& file) {
  std::string out;
  out.reserve(64 + file.asn_records.size() * 48);

  const std::string registry{asn::file_token(file.header.registry)};

  // Version line.
  out += std::to_string(file.header.version);
  out += '|';
  out += registry;
  out += '|';
  out += util::format_compact(file.header.serial);
  out += '|';
  out += std::to_string(file.header.record_count);
  out += '|';
  out += util::format_compact(file.header.start_date);
  out += '|';
  out += util::format_compact(file.header.end_date);
  out += '|';
  out += file.header.utc_offset;
  out += '\n';

  // Summary line for the asn type (ipv4/ipv6 summaries are emitted as zero;
  // this library only materializes ASN data).
  std::int64_t asn_total = 0;
  for (const AsnRecord& record : file.asn_records) {
    if (!file.extended && !is_delegated(record.status)) continue;
    ++asn_total;
  }
  out += registry + "|*|asn|*|" + std::to_string(asn_total) + "|summary\n";
  out += registry + "|*|ipv4|*|" + std::to_string(file.ipv4_records) +
         "|summary\n";
  out += registry + "|*|ipv6|*|" + std::to_string(file.ipv6_records) +
         "|summary\n";

  for (const AsnRecord& record : file.asn_records) {
    if (!file.extended && !is_delegated(record.status)) continue;
    out += registry;
    out += '|';
    out += is_delegated(record.status) ? record.country.to_string() : "";
    out += "|asn|";
    out += asn::to_string(record.first);
    out += '|';
    out += std::to_string(record.count);
    out += '|';
    out += record.date ? util::format_compact(*record.date) : "";
    out += '|';
    out += status_token(record.status);
    if (file.extended) {
      out += '|';
      if (record.opaque_id != 0) append_hex(out, record.opaque_id);
    }
    out += '\n';
  }
  return out;
}

std::vector<std::pair<asn::Asn, RecordState>> expand_asn_records(
    const DelegationFile& file) {
  std::vector<std::pair<asn::Asn, RecordState>> out;
  out.reserve(file.asn_records.size());
  for (const AsnRecord& record : file.asn_records) {
    for (std::uint32_t i = 0; i < record.count; ++i) {
      RecordState state;
      state.status = record.status;
      state.registration_date = record.date;
      state.country = record.country;
      state.opaque_id = record.opaque_id;
      out.emplace_back(asn::Asn{record.first.value + i}, state);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  return out;
}

}  // namespace pl::dele
