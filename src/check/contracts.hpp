// Executable contracts for the pipeline's sanitization invariants.
//
// The paper's restoration guarantees (§3.1 steps i–vi) and the lifetime
// algebra (§4.1 gap-free transfer merging) rest on structural invariants —
// spans sorted by start day, interval runs disjoint and non-adjacent,
// taxonomy tallies conserving the input counts. By default these macros
// compile to no-op shells (the condition is never evaluated, so hot paths
// cost nothing); building with -DPL_CHECKED=ON (CMake option PL_CHECKED)
// arms them: a violated contract prints
//
//   file:line: contract PL_EXPECT(expr) violated: message
//
// to stderr and aborts, which the checked leg of scripts/verify-matrix.sh
// turns into a test failure. tests/check_contracts_test.cpp locks in both
// halves: no-op (and non-evaluating) when disarmed, fatal when armed.
//
//   PL_EXPECT(cond, msg)          precondition
//   PL_ENSURE(cond, msg)          postcondition
//   PL_ASSERT_SORTED(range, less, what)
//                                 adjacent elements satisfy !less(b, a)
//   PL_ASSERT_DISJOINT(range, what)
//                                 DayInterval-like runs: each non-empty,
//                                 sorted, pairwise disjoint, separated by
//                                 at least one uncovered day
#pragma once

#if defined(PL_CHECKED) && PL_CHECKED

#include <cstdio>
#include <cstdlib>
#include <iterator>

namespace pl::check {

[[noreturn]] inline void fail(const char* kind, const char* expr,
                              const char* message, const char* file,
                              int line) {
  std::fprintf(stderr, "%s:%d: contract %s(%s) violated: %s\n", file, line,
               kind, expr, message);
  std::fflush(stderr);
  std::abort();
}

template <typename Range, typename Less>
void assert_sorted(const Range& range, Less less, const char* what,
                   const char* file, int line) {
  auto it = std::begin(range);
  const auto end = std::end(range);
  if (it == end) return;
  auto prev = it;
  for (++it; it != end; ++it, ++prev)
    if (less(*it, *prev))
      fail("PL_ASSERT_SORTED", what, "range is not sorted", file, line);
}

template <typename Runs>
void assert_disjoint(const Runs& runs, const char* what, const char* file,
                     int line) {
  auto it = std::begin(runs);
  const auto end = std::end(runs);
  if (it == end) return;
  if (it->last < it->first)
    fail("PL_ASSERT_DISJOINT", what, "empty run in interval set", file, line);
  auto prev = it;
  for (++it; it != end; ++it, ++prev) {
    if (it->last < it->first)
      fail("PL_ASSERT_DISJOINT", what, "empty run in interval set", file,
           line);
    // Non-adjacent: at least one uncovered day between consecutive runs.
    if (it->first <= prev->last + 1)
      fail("PL_ASSERT_DISJOINT", what,
           "runs overlap or touch (must be disjoint with a gap >= 1 day)",
           file, line);
  }
}

}  // namespace pl::check

#define PL_EXPECT(cond, msg)                                               \
  do {                                                                     \
    if (!(cond))                                                           \
      ::pl::check::fail("PL_EXPECT", #cond, (msg), __FILE__, __LINE__);    \
  } while (false)

#define PL_ENSURE(cond, msg)                                               \
  do {                                                                     \
    if (!(cond))                                                           \
      ::pl::check::fail("PL_ENSURE", #cond, (msg), __FILE__, __LINE__);    \
  } while (false)

#define PL_ASSERT_SORTED(range, less, what)                                \
  ::pl::check::assert_sorted((range), (less), (what), __FILE__, __LINE__)

#define PL_ASSERT_DISJOINT(range, what)                                    \
  ::pl::check::assert_disjoint((range), (what), __FILE__, __LINE__)

#else  // contracts disarmed: never evaluated, dead-stripped, but still
       // compiled — so a contract cannot silently rot out of date.

#define PL_EXPECT(cond, msg)   \
  do {                         \
    if (false) {               \
      (void)(cond);            \
      (void)(msg);             \
    }                          \
  } while (false)

#define PL_ENSURE(cond, msg)   \
  do {                         \
    if (false) {               \
      (void)(cond);            \
      (void)(msg);             \
    }                          \
  } while (false)

#define PL_ASSERT_SORTED(range, less, what) \
  do {                                      \
    if (false) {                            \
      (void)(range);                        \
      (void)(less);                         \
      (void)(what);                         \
    }                                       \
  } while (false)

#define PL_ASSERT_DISJOINT(range, what) \
  do {                                  \
    if (false) {                        \
      (void)(range);                    \
      (void)(what);                     \
    }                                   \
  } while (false)

#endif  // PL_CHECKED
