#include "serve/query.hpp"

#include <algorithm>
#include <utility>

#include "exec/pool.hpp"

namespace pl::serve {

namespace {

/// Batch-size histogram edges: singles, small scripts, analysis sweeps.
std::vector<std::int64_t> batch_bounds() { return {1, 8, 64, 512, 4096}; }

/// The admin classification of `asn` in force on `day` (the category of
/// the admin life covering it), nullopt when no life covers the day.
std::optional<joint::Category> class_on(const Snapshot& snap, asn::Asn asn,
                                        util::Day day) {
  const AsnRow* row = snap.find(asn);
  if (row == nullptr) return std::nullopt;
  for (const AdminLifeRow& life : snap.admin_lives(*row))
    if (life.life.days.first <= day && day <= life.life.days.last)
      return life.category;
  return std::nullopt;
}

/// Table-3 tally over every admin life the snapshot knows.
std::array<std::int64_t, kTaxonomyCategories> tally_categories(
    const Snapshot& snap) {
  std::array<std::int64_t, kTaxonomyCategories> counts{};
  for (const AsnRow& row : snap.rows())
    for (const AdminLifeRow& life : snap.admin_lives(row))
      ++counts[static_cast<std::size_t>(life.category)];
  return counts;
}

}  // namespace

// -- Query factories -------------------------------------------------------

Query Query::lookup(asn::Asn asn, QueryOptions options) {
  Query q;
  q.subject.kind = QueryKind::kLookup;
  q.subject.asns = {asn};
  q.options = options;
  return q;
}

Query Query::lookup_batch(std::vector<asn::Asn> asns, QueryOptions options) {
  Query q;
  q.subject.kind = QueryKind::kLookupBatch;
  q.subject.asns = std::move(asns);
  q.options = options;
  return q;
}

Query Query::alive(asn::Asn asn, util::Day day, QueryOptions options) {
  Query q;
  q.subject.kind = QueryKind::kAlive;
  q.subject.asns = {asn};
  q.subject.day = day;
  q.options = options;
  return q;
}

Query Query::alive_batch(std::vector<asn::Asn> asns, util::Day day,
                         QueryOptions options) {
  Query q;
  q.subject.kind = QueryKind::kAliveBatch;
  q.subject.asns = std::move(asns);
  q.subject.day = day;
  q.options = options;
  return q;
}

Query Query::census(util::Day day, QueryOptions options) {
  Query q;
  q.subject.kind = QueryKind::kCensus;
  q.subject.day = day;
  q.options = options;
  return q;
}

Query Query::scan(ScanQuery scan, QueryOptions options) {
  Query q;
  q.subject.kind = QueryKind::kScan;
  q.subject.scan = std::move(scan);
  q.options = options;
  return q;
}

// -- QueryService ----------------------------------------------------------

QueryService::QueryService(Snapshot snapshot, QueryConfig config,
                           obs::FlightRecorder* flight)
    : snapshot_(std::move(snapshot)),
      config_(config),
      root_(trace_.root("serve")),
      owned_flight_(flight == nullptr
                        ? std::make_unique<obs::FlightRecorder>()
                        : nullptr),
      flight_(flight == nullptr ? owned_flight_.get() : flight),
      lookup_cache_(config.enable_cache ? config.cache_capacity : 0),
      alive_cache_(config.enable_cache ? config.cache_capacity : 0),
      hits_(metrics_.counter("pl_serve_cache_hits")),
      misses_(metrics_.counter("pl_serve_cache_misses")),
      evictions_(metrics_.counter("pl_serve_cache_evictions")),
      point_latency_(metrics_.latency("pl_serve_latency_ns{kind=\"point\"}")),
      alive_latency_(metrics_.latency("pl_serve_latency_ns{kind=\"alive\"}")),
      batch_latency_(metrics_.latency("pl_serve_latency_ns{kind=\"batch\"}")),
      scan_latency_(metrics_.latency("pl_serve_latency_ns{kind=\"scan\"}")),
      census_latency_(
          metrics_.latency("pl_serve_latency_ns{kind=\"census\"}")),
      advance_latency_(
          metrics_.latency("pl_serve_latency_ns{kind=\"advance\"}")) {
  record_metrics(snapshot_, metrics_);
}

AsnAnswer QueryService::answer_for(const Snapshot& snap, asn::Asn asn) const {
  AsnAnswer answer;
  answer.asn = asn;
  const AsnRow* row = snap.find(asn);
  if (row == nullptr) return answer;
  answer.known = true;
  answer.admin_life_count = row->admin_count;
  answer.op_life_count = row->op_count;
  answer.transferred = (row->flags & kFlagTransferred) != 0;
  answer.dormant_squat = (row->flags & kFlagDormantSquat) != 0;
  answer.outside_activity = (row->flags & kFlagOutsideActivity) != 0;

  const util::Day end = snap.archive_end();
  const auto admin = snap.admin_lives(*row);
  if (!admin.empty()) {
    answer.admin_span =
        util::DayInterval{admin.front().life.days.first,
                          admin.back().life.days.last};
    const AdminLifeRow& latest = admin.back();
    answer.latest_registry = latest.life.registry;
    answer.latest_country = latest.life.country;
    answer.latest_registration = latest.life.registration_date;
    answer.latest_admin_category = latest.category;
    answer.currently_allocated = snap.admin_alive_on(*row, end);
  }
  const auto op = snap.op_lives(*row);
  if (!op.empty()) {
    answer.op_span = util::DayInterval{op.front().life.days.first,
                                       op.back().life.days.last};
    answer.currently_active = snap.op_alive_on(*row, end);
  }
  return answer;
}

AliveAnswer QueryService::alive_for(const Snapshot& snap, asn::Asn asn,
                                    util::Day day) const {
  AliveAnswer answer;
  answer.asn = asn;
  const AsnRow* row = snap.find(asn);
  if (row == nullptr) return answer;
  answer.admin_alive = snap.admin_alive_on(*row, day);
  answer.op_alive = snap.op_alive_on(*row, day);
  return answer;
}

// -- the unified entry point -----------------------------------------------

// pl-lint: allow(query-path-untraced) dispatcher: every kind's impl below
// records its own span / flight event / metrics, and snapshot_as_of counts
// the history routing — query() itself adds no unattributed work.
pl::StatusOr<QueryResult> QueryService::query(const Query& q) {
  auto snap = snapshot_as_of(q.options.as_of);
  if (!snap.ok()) return snap.status();
  // The answer caches are keyed by ASN against the LIVE snapshot; a past
  // reconstruction must never probe or fill them.
  const bool live = *snap == &snapshot_;
  const bool use_cache = config_.enable_cache && q.options.use_cache && live;

  const QuerySubject& subject = q.subject;
  const bool point =
      subject.kind == QueryKind::kLookup || subject.kind == QueryKind::kAlive;
  if (point && subject.asns.size() != 1)
    return pl::invalid_argument_error(
        "point query subjects carry exactly one ASN; use the batch kind");

  QueryResult result;
  switch (subject.kind) {
    case QueryKind::kLookup:
      result.lookups.push_back(
          lookup_impl(**snap, subject.asns.front(), use_cache));
      break;
    case QueryKind::kLookupBatch:
      result.lookups = lookup_batch_impl(**snap, subject.asns, use_cache);
      break;
    case QueryKind::kAlive:
      result.alive.push_back(
          alive_impl(**snap, subject.asns.front(), subject.day, use_cache));
      break;
    case QueryKind::kAliveBatch:
      result.alive =
          alive_batch_impl(**snap, subject.asns, subject.day, use_cache);
      break;
    case QueryKind::kCensus:
      result.census = census_impl(**snap, subject.day);
      break;
    case QueryKind::kScan:
      result.lookups = scan_impl(**snap, subject.scan);
      break;
  }
  return result;
}

pl::StatusOr<const Snapshot*> QueryService::snapshot_as_of(util::Day day) {
  if (day == 0 || day == snapshot_.archive_end()) return &snapshot_;
  if (day > snapshot_.archive_end())
    return pl::invalid_argument_error(
        "as_of day " + std::to_string(day) +
        " is beyond the served archive end " +
        std::to_string(snapshot_.archive_end()));
  if (history_ == nullptr)
    return pl::failed_precondition_error(
        "as_of queries need a history store; call attach_history() first");
  metrics_.counter("pl_serve_queries{kind=\"as_of\"}").add(1);
  return history_->at(day);
}

// -- temporal queries ------------------------------------------------------

pl::StatusOr<DriftAnswer> QueryService::drift(util::Day from, util::Day to) {
  obs::Span span = root_.child("serve.drift");
  span.note("from", from);
  span.note("to", to);
  metrics_.counter("pl_serve_queries{kind=\"drift\"}").add(1);
  DriftAnswer answer;
  answer.from = from;
  answer.to = to;
  // Tally `from` before resolving `to`: both may share the history store's
  // single reconstruction slot, so the first pointer dies at the second at().
  auto then = snapshot_as_of(from);
  if (!then.ok()) return then.status();
  answer.from_counts = tally_categories(**then);
  auto now = snapshot_as_of(to);
  if (!now.ok()) return now.status();
  answer.to_counts = tally_categories(**now);
  return answer;
}

pl::StatusOr<util::Day> QueryService::first_flip(asn::Asn asn,
                                                 joint::Category category) {
  obs::Span span = root_.child("serve.first_flip");
  span.note("asn", asn.value);
  metrics_.counter("pl_serve_queries{kind=\"first_flip\"}").add(1);
  if (history_ == nullptr)
    return pl::failed_precondition_error(
        "first_flip needs a history store; call attach_history() first");
  const util::Day lo = history_->earliest_day();
  const util::Day hi = std::min(history_->latest_day(),
                                snapshot_.archive_end());
  // Walk forward: consecutive at() calls are cheap (each rolls the store's
  // cached snapshot one delta forward in place).
  bool prev = false;
  for (util::Day day = lo; day <= hi; ++day) {
    auto past = snapshot_as_of(day);
    if (!past.ok()) return past.status();
    const bool now = class_on(**past, asn, day) == category;
    if (now && !prev) {
      span.note("day", day);
      return day;
    }
    prev = now;
  }
  return pl::not_found_error("ASN " + std::to_string(asn.value) +
                             " never flipped to that class in the recorded "
                             "history");
}

// -- serving paths (shared by query() and the shims) -----------------------

AsnAnswer QueryService::lookup_impl(const Snapshot& snap, asn::Asn asn,
                                    bool use_cache) {
  const std::uint64_t seq = next_sequence();
  std::optional<obs::ScopedLatency> timer;
  if constexpr (obs::kEnabled)
    if ((seq & 7) == 0) timer.emplace(point_latency_);  // 1-in-8 sampling
  metrics_.counter("pl_serve_queries{kind=\"point\"}").add(1);
  const obs::RequestId rid =
      obs::derive_request_id(obs::kQueryStream, seq, 0);
  const auto shard =
      static_cast<std::uint32_t>(lookup_cache_.shard_index(asn.value));
  if (use_cache) {
    if (std::optional<AsnAnswer> cached = lookup_cache_.get(asn.value)) {
      hits_.add(1);
      record_event(rid, obs::EventKind::kLookup,
                   obs::query_detail(obs::kCacheHit, shard, 0, cached->known),
                   snap.archive_end());
      return *cached;
    }
    misses_.add(1);
  }
  AsnAnswer answer = answer_for(snap, asn);
  if (use_cache)
    evictions_.add(static_cast<std::int64_t>(
        lookup_cache_.put(asn.value, answer)));
  record_event(rid, obs::EventKind::kLookup,
               obs::query_detail(
                   use_cache ? obs::kCacheMiss : obs::kCacheNone,
                   shard, 0, answer.known),
               snap.archive_end());
  return answer;
}

std::vector<AsnAnswer> QueryService::lookup_batch_impl(
    const Snapshot& snap, const std::vector<asn::Asn>& asns, bool use_cache) {
  obs::Span span = root_.child("serve.lookup_batch");
  span.note("items", static_cast<std::int64_t>(asns.size()));
  const std::uint64_t seq = next_sequence();
  const obs::ScopedLatency timer(batch_latency_);
  metrics_.counter("pl_serve_queries{kind=\"batch\"}").add(1);
  metrics_.histogram("pl_serve_batch_items", batch_bounds())
      .observe(static_cast<std::int64_t>(asns.size()));

  std::vector<AsnAnswer> answers(asns.size());

  // Probe phase (serial): cache hits fill immediately; misses are grouped
  // by ASN so duplicate keys in one batch compute once. Hit events are
  // recorded here; miss events in the (also serial) merge phase below.
  std::map<std::uint32_t, std::vector<std::size_t>> pending;
  for (std::size_t i = 0; i < asns.size(); ++i) {
    if (use_cache) {
      if (std::optional<AsnAnswer> cached = lookup_cache_.get(asns[i].value)) {
        hits_.add(1);
        answers[i] = *cached;
        record_event(
            obs::derive_request_id(obs::kQueryStream, seq, i),
            obs::EventKind::kLookup,
            obs::query_detail(
                obs::kCacheHit,
                static_cast<std::uint32_t>(
                    lookup_cache_.shard_index(asns[i].value)),
                0, cached->known),
            snap.archive_end());
        continue;
      }
      misses_.add(1);
    }
    pending[asns[i].value].push_back(i);
  }
  span.note("misses", static_cast<std::int64_t>(pending.size()));

  // Miss phase: compute per-key answers into slots in parallel, then merge
  // serially in ascending key order — deterministic across thread counts.
  std::vector<std::pair<std::uint32_t, const std::vector<std::size_t>*>> keys;
  keys.reserve(pending.size());
  for (const auto& [key, indices] : pending) keys.emplace_back(key, &indices);
  std::vector<AsnAnswer> computed(keys.size());
  exec::parallel_for(
      keys.size(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t k = begin; k < end; ++k)
          computed[k] = answer_for(snap, asn::Asn{keys[k].first});
      },
      /*grain=*/32);
  const std::uint32_t miss_bits =
      use_cache ? obs::kCacheMiss : obs::kCacheNone;
  for (std::size_t k = 0; k < keys.size(); ++k) {
    const auto shard = static_cast<std::uint32_t>(
        lookup_cache_.shard_index(keys[k].first));
    for (const std::size_t i : *keys[k].second) {
      answers[i] = computed[k];
      record_event(obs::derive_request_id(obs::kQueryStream, seq, i),
                   obs::EventKind::kLookup,
                   obs::query_detail(miss_bits, shard, 0, computed[k].known),
                   snap.archive_end());
    }
    if (use_cache)
      evictions_.add(static_cast<std::int64_t>(
          lookup_cache_.put(keys[k].first, computed[k])));
  }
  return answers;
}

AliveAnswer QueryService::alive_impl(const Snapshot& snap, asn::Asn asn,
                                     util::Day day, bool use_cache) {
  const std::uint64_t seq = next_sequence();
  std::optional<obs::ScopedLatency> timer;
  if constexpr (obs::kEnabled)
    if ((seq & 7) == 0) timer.emplace(alive_latency_);  // 1-in-8 sampling
  metrics_.counter("pl_serve_queries{kind=\"alive\"}").add(1);
  const std::uint64_t key = alive_key(asn, day);
  const obs::RequestId rid =
      obs::derive_request_id(obs::kQueryStream, seq, 0);
  const auto shard =
      static_cast<std::uint32_t>(alive_cache_.shard_index(key));
  if (use_cache) {
    if (std::optional<AliveAnswer> cached = alive_cache_.get(key)) {
      hits_.add(1);
      record_event(rid, obs::EventKind::kAlive,
                   obs::query_detail(obs::kCacheHit, shard, 0,
                                     cached->admin_alive || cached->op_alive),
                   day);
      return *cached;
    }
    misses_.add(1);
  }
  AliveAnswer answer = alive_for(snap, asn, day);
  if (use_cache)
    evictions_.add(static_cast<std::int64_t>(alive_cache_.put(key, answer)));
  record_event(rid, obs::EventKind::kAlive,
               obs::query_detail(
                   use_cache ? obs::kCacheMiss : obs::kCacheNone,
                   shard, 0, answer.admin_alive || answer.op_alive),
               day);
  return answer;
}

std::vector<AliveAnswer> QueryService::alive_batch_impl(
    const Snapshot& snap, const std::vector<asn::Asn>& asns, util::Day day,
    bool use_cache) {
  obs::Span span = root_.child("serve.alive_on_batch");
  span.note("items", static_cast<std::int64_t>(asns.size()));
  const std::uint64_t seq = next_sequence();
  const obs::ScopedLatency timer(batch_latency_);
  metrics_.counter("pl_serve_queries{kind=\"alive\"}").add(1);
  metrics_.histogram("pl_serve_batch_items", batch_bounds())
      .observe(static_cast<std::int64_t>(asns.size()));

  std::vector<AliveAnswer> answers(asns.size());
  std::map<std::uint32_t, std::vector<std::size_t>> pending;
  for (std::size_t i = 0; i < asns.size(); ++i) {
    const std::uint64_t key = alive_key(asns[i], day);
    if (use_cache) {
      if (std::optional<AliveAnswer> cached = alive_cache_.get(key)) {
        hits_.add(1);
        answers[i] = *cached;
        record_event(
            obs::derive_request_id(obs::kQueryStream, seq, i),
            obs::EventKind::kAlive,
            obs::query_detail(
                obs::kCacheHit,
                static_cast<std::uint32_t>(alive_cache_.shard_index(key)),
                0, cached->admin_alive || cached->op_alive),
            day);
        continue;
      }
      misses_.add(1);
    }
    pending[asns[i].value].push_back(i);
  }
  span.note("misses", static_cast<std::int64_t>(pending.size()));

  std::vector<std::pair<std::uint32_t, const std::vector<std::size_t>*>> keys;
  keys.reserve(pending.size());
  for (const auto& [key, indices] : pending) keys.emplace_back(key, &indices);
  std::vector<AliveAnswer> computed(keys.size());
  exec::parallel_for(
      keys.size(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t k = begin; k < end; ++k)
          computed[k] = alive_for(snap, asn::Asn{keys[k].first}, day);
      },
      /*grain=*/32);
  const std::uint32_t miss_bits =
      use_cache ? obs::kCacheMiss : obs::kCacheNone;
  for (std::size_t k = 0; k < keys.size(); ++k) {
    const std::uint64_t key = alive_key(asn::Asn{keys[k].first}, day);
    const auto shard =
        static_cast<std::uint32_t>(alive_cache_.shard_index(key));
    for (const std::size_t i : *keys[k].second) {
      answers[i] = computed[k];
      record_event(obs::derive_request_id(obs::kQueryStream, seq, i),
                   obs::EventKind::kAlive,
                   obs::query_detail(
                       miss_bits, shard, 0,
                       computed[k].admin_alive || computed[k].op_alive),
                   day);
    }
    if (use_cache)
      evictions_.add(
          static_cast<std::int64_t>(alive_cache_.put(key, computed[k])));
  }
  return answers;
}

CensusAnswer QueryService::census_impl(const Snapshot& snap, util::Day day) {
  const std::uint64_t seq = next_sequence();
  const obs::ScopedLatency timer(census_latency_);
  metrics_.counter("pl_serve_queries{kind=\"census\"}").add(1);
  const AliveCensus counts = snap.alive_census(day);
  record_event(obs::derive_request_id(obs::kQueryStream, seq, 0),
               obs::EventKind::kCensus,
               obs::query_detail(obs::kCacheNone, 0, 0,
                                 counts.admin_alive + counts.op_alive > 0),
               day);
  return CensusAnswer{day, counts.admin_alive, counts.op_alive};
}

std::vector<AsnAnswer> QueryService::scan_impl(const Snapshot& snap,
                                               const ScanQuery& query) {
  obs::Span span = root_.child("serve.scan");
  const std::uint64_t seq = next_sequence();
  const obs::ScopedLatency timer(scan_latency_);
  const obs::RequestId rid =
      obs::derive_request_id(obs::kQueryStream, seq, 0);
  metrics_.counter("pl_serve_queries{kind=\"scan\"}").add(1);

  std::vector<AsnAnswer> answers;
  const auto& rows = snap.rows();

  // When a registry or country filter is set, walk that dimension's (much
  // smaller) row-index list instead of the whole table; both lists are
  // ascending so the output order is the same either way.
  const std::vector<std::uint32_t>* candidates = nullptr;
  if (query.registry) candidates = &snap.rows_in_registry(*query.registry);
  if (query.country) {
    const auto& by_country = snap.rows_by_country();
    const auto it = by_country.find(*query.country);
    if (it == by_country.end()) {
      span.note("results", 0);
      record_event(rid, obs::EventKind::kScan,
                   obs::query_detail(obs::kCacheNone, 0, 0, false), 0);
      return answers;
    }
    // Prefer the country list when both filters are set and it is shorter.
    if (candidates == nullptr || it->second.size() < candidates->size())
      candidates = &it->second;
  }

  const auto matches = [&](const AsnRow& row) {
    if (row.asn < query.first || query.last < row.asn) return false;
    if (query.registry) {
      bool in_registry = false;
      for (const AdminLifeRow& life : snap.admin_lives(row))
        if (life.life.registry == *query.registry) {
          in_registry = true;
          break;
        }
      if (!in_registry) return false;
    }
    if (query.country) {
      bool in_country = false;
      for (const AdminLifeRow& life : snap.admin_lives(row))
        if (life.life.country == *query.country) {
          in_country = true;
          break;
        }
      if (!in_country) return false;
    }
    if (query.admin_alive_on &&
        !snap.admin_alive_on(row, *query.admin_alive_on))
      return false;
    if (query.op_alive_on && !snap.op_alive_on(row, *query.op_alive_on))
      return false;
    return true;
  };

  if (candidates != nullptr) {
    for (const std::uint32_t r : *candidates) {
      if (answers.size() >= query.limit) break;
      if (matches(rows[r])) answers.push_back(answer_for(snap, rows[r].asn));
    }
  } else {
    // ASN range prune via binary search over the sorted rows.
    const auto begin = std::lower_bound(
        rows.begin(), rows.end(), query.first,
        [](const AsnRow& row, asn::Asn key) { return row.asn < key; });
    for (auto it = begin; it != rows.end() && !(query.last < it->asn); ++it) {
      if (answers.size() >= query.limit) break;
      if (matches(*it)) answers.push_back(answer_for(snap, it->asn));
    }
  }
  span.note("results", static_cast<std::int64_t>(answers.size()));
  record_event(rid, obs::EventKind::kScan,
               obs::query_detail(obs::kCacheNone, 0, 0, !answers.empty()),
               static_cast<std::int64_t>(answers.size()));
  return answers;
}

// -- pre-redesign shims ----------------------------------------------------
// Each forwards to the shared serving path with today-default options —
// bit-identical answers, metrics, and flight events (oracle-test-locked).

// pl-lint: allow(query-path-untraced) shim: lookup_impl records the event.
AsnAnswer QueryService::lookup(asn::Asn asn) {
  return lookup_impl(snapshot_, asn, config_.enable_cache);
}

// pl-lint: allow(query-path-untraced) shim: the impl opens the batch span.
std::vector<AsnAnswer> QueryService::lookup_batch(
    const std::vector<asn::Asn>& asns) {
  return lookup_batch_impl(snapshot_, asns, config_.enable_cache);
}

// pl-lint: allow(query-path-untraced) shim: alive_impl records the event.
AliveAnswer QueryService::alive_on(asn::Asn asn, util::Day day) {
  return alive_impl(snapshot_, asn, day, config_.enable_cache);
}

// pl-lint: allow(query-path-untraced) shim: the impl opens the batch span.
std::vector<AliveAnswer> QueryService::alive_on_batch(
    const std::vector<asn::Asn>& asns, util::Day day) {
  return alive_batch_impl(snapshot_, asns, day, config_.enable_cache);
}

// pl-lint: allow(query-path-untraced) shim: census_impl records the event.
CensusAnswer QueryService::census(util::Day day) {
  return census_impl(snapshot_, day);
}

// pl-lint: allow(query-path-untraced) shim: scan_impl opens the scan span.
std::vector<AsnAnswer> QueryService::scan(const ScanQuery& query) {
  return scan_impl(snapshot_, query);
}

pl::Status QueryService::advance_day(const DayDelta& delta) {
  obs::Span span = root_.child("serve.advance_day");
  span.note("day", delta.day);
  const std::uint64_t seq = next_sequence();
  const obs::ScopedLatency timer(advance_latency_);
  const obs::RequestId rid =
      obs::derive_request_id(obs::kQueryStream, seq, 0);
  AdvanceStats stats;
  const pl::Status status = snapshot_.advance_day(delta, &stats);
  record_event(rid, obs::EventKind::kAdvanceDay,
               obs::query_detail(obs::kCacheNone, 0,
                                 static_cast<std::uint32_t>(status.code()),
                                 status.ok()),
               delta.day);
  if (!status.ok()) {
    metrics_.counter("pl_serve_advance_failures").add(1);
    return status;
  }
  span.note("facts", stats.facts);
  span.note("active", stats.active);
  span.note("touched_admin", stats.touched_admin);
  span.note("touched_op", stats.touched_op);
  span.note("reclassified", stats.reclassified);
  metrics_.counter("pl_serve_advance_days").add(1);
  lookup_cache_.clear();
  alive_cache_.clear();
  ++version_;
  record_metrics(snapshot_, metrics_);
  return status;
}

obs::Report QueryService::report() const {
  return obs::Report{trace_.tree(), metrics_.snapshot()};
}

}  // namespace pl::serve
