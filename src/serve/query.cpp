#include "serve/query.hpp"

#include <algorithm>
#include <utility>

#include "exec/pool.hpp"

namespace pl::serve {

namespace {

/// Batch-size histogram edges: singles, small scripts, analysis sweeps.
std::vector<std::int64_t> batch_bounds() { return {1, 8, 64, 512, 4096}; }

}  // namespace

QueryService::QueryService(Snapshot snapshot, QueryConfig config,
                           obs::FlightRecorder* flight)
    : snapshot_(std::move(snapshot)),
      config_(config),
      root_(trace_.root("serve")),
      owned_flight_(flight == nullptr
                        ? std::make_unique<obs::FlightRecorder>()
                        : nullptr),
      flight_(flight == nullptr ? owned_flight_.get() : flight),
      lookup_cache_(config.enable_cache ? config.cache_capacity : 0),
      alive_cache_(config.enable_cache ? config.cache_capacity : 0),
      hits_(metrics_.counter("pl_serve_cache_hits")),
      misses_(metrics_.counter("pl_serve_cache_misses")),
      evictions_(metrics_.counter("pl_serve_cache_evictions")),
      point_latency_(metrics_.latency("pl_serve_latency_ns{kind=\"point\"}")),
      alive_latency_(metrics_.latency("pl_serve_latency_ns{kind=\"alive\"}")),
      batch_latency_(metrics_.latency("pl_serve_latency_ns{kind=\"batch\"}")),
      scan_latency_(metrics_.latency("pl_serve_latency_ns{kind=\"scan\"}")),
      census_latency_(
          metrics_.latency("pl_serve_latency_ns{kind=\"census\"}")),
      advance_latency_(
          metrics_.latency("pl_serve_latency_ns{kind=\"advance\"}")) {
  record_metrics(snapshot_, metrics_);
}

AsnAnswer QueryService::answer_for(asn::Asn asn) const {
  AsnAnswer answer;
  answer.asn = asn;
  const AsnRow* row = snapshot_.find(asn);
  if (row == nullptr) return answer;
  answer.known = true;
  answer.admin_life_count = row->admin_count;
  answer.op_life_count = row->op_count;
  answer.transferred = (row->flags & kFlagTransferred) != 0;
  answer.dormant_squat = (row->flags & kFlagDormantSquat) != 0;
  answer.outside_activity = (row->flags & kFlagOutsideActivity) != 0;

  const util::Day end = snapshot_.archive_end();
  const auto admin = snapshot_.admin_lives(*row);
  if (!admin.empty()) {
    answer.admin_span =
        util::DayInterval{admin.front().life.days.first,
                          admin.back().life.days.last};
    const AdminLifeRow& latest = admin.back();
    answer.latest_registry = latest.life.registry;
    answer.latest_country = latest.life.country;
    answer.latest_registration = latest.life.registration_date;
    answer.latest_admin_category = latest.category;
    answer.currently_allocated = snapshot_.admin_alive_on(*row, end);
  }
  const auto op = snapshot_.op_lives(*row);
  if (!op.empty()) {
    answer.op_span = util::DayInterval{op.front().life.days.first,
                                       op.back().life.days.last};
    answer.currently_active = snapshot_.op_alive_on(*row, end);
  }
  return answer;
}

AliveAnswer QueryService::alive_for(asn::Asn asn, util::Day day) const {
  AliveAnswer answer;
  answer.asn = asn;
  const AsnRow* row = snapshot_.find(asn);
  if (row == nullptr) return answer;
  answer.admin_alive = snapshot_.admin_alive_on(*row, day);
  answer.op_alive = snapshot_.op_alive_on(*row, day);
  return answer;
}

AsnAnswer QueryService::lookup(asn::Asn asn) {
  const std::uint64_t seq = next_sequence();
  std::optional<obs::ScopedLatency> timer;
  if constexpr (obs::kEnabled)
    if ((seq & 7) == 0) timer.emplace(point_latency_);  // 1-in-8 sampling
  metrics_.counter("pl_serve_queries{kind=\"point\"}").add(1);
  const obs::RequestId rid =
      obs::derive_request_id(obs::kQueryStream, seq, 0);
  const auto shard =
      static_cast<std::uint32_t>(lookup_cache_.shard_index(asn.value));
  if (config_.enable_cache) {
    if (std::optional<AsnAnswer> cached = lookup_cache_.get(asn.value)) {
      hits_.add(1);
      record_event(rid, obs::EventKind::kLookup,
                   obs::query_detail(obs::kCacheHit, shard, 0, cached->known),
                   snapshot_.archive_end());
      return *cached;
    }
    misses_.add(1);
  }
  AsnAnswer answer = answer_for(asn);
  if (config_.enable_cache)
    evictions_.add(static_cast<std::int64_t>(
        lookup_cache_.put(asn.value, answer)));
  record_event(rid, obs::EventKind::kLookup,
               obs::query_detail(
                   config_.enable_cache ? obs::kCacheMiss : obs::kCacheNone,
                   shard, 0, answer.known),
               snapshot_.archive_end());
  return answer;
}

std::vector<AsnAnswer> QueryService::lookup_batch(
    const std::vector<asn::Asn>& asns) {
  obs::Span span = root_.child("serve.lookup_batch");
  span.note("items", static_cast<std::int64_t>(asns.size()));
  const std::uint64_t seq = next_sequence();
  const obs::ScopedLatency timer(batch_latency_);
  metrics_.counter("pl_serve_queries{kind=\"batch\"}").add(1);
  metrics_.histogram("pl_serve_batch_items", batch_bounds())
      .observe(static_cast<std::int64_t>(asns.size()));

  std::vector<AsnAnswer> answers(asns.size());

  // Probe phase (serial): cache hits fill immediately; misses are grouped
  // by ASN so duplicate keys in one batch compute once. Hit events are
  // recorded here; miss events in the (also serial) merge phase below.
  std::map<std::uint32_t, std::vector<std::size_t>> pending;
  for (std::size_t i = 0; i < asns.size(); ++i) {
    if (config_.enable_cache) {
      if (std::optional<AsnAnswer> cached = lookup_cache_.get(asns[i].value)) {
        hits_.add(1);
        answers[i] = *cached;
        record_event(
            obs::derive_request_id(obs::kQueryStream, seq, i),
            obs::EventKind::kLookup,
            obs::query_detail(
                obs::kCacheHit,
                static_cast<std::uint32_t>(
                    lookup_cache_.shard_index(asns[i].value)),
                0, cached->known),
            snapshot_.archive_end());
        continue;
      }
      misses_.add(1);
    }
    pending[asns[i].value].push_back(i);
  }
  span.note("misses", static_cast<std::int64_t>(pending.size()));

  // Miss phase: compute per-key answers into slots in parallel, then merge
  // serially in ascending key order — deterministic across thread counts.
  std::vector<std::pair<std::uint32_t, const std::vector<std::size_t>*>> keys;
  keys.reserve(pending.size());
  for (const auto& [key, indices] : pending) keys.emplace_back(key, &indices);
  std::vector<AsnAnswer> computed(keys.size());
  exec::parallel_for(
      keys.size(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t k = begin; k < end; ++k)
          computed[k] = answer_for(asn::Asn{keys[k].first});
      },
      /*grain=*/32);
  const std::uint32_t miss_bits =
      config_.enable_cache ? obs::kCacheMiss : obs::kCacheNone;
  for (std::size_t k = 0; k < keys.size(); ++k) {
    const auto shard = static_cast<std::uint32_t>(
        lookup_cache_.shard_index(keys[k].first));
    for (const std::size_t i : *keys[k].second) {
      answers[i] = computed[k];
      record_event(obs::derive_request_id(obs::kQueryStream, seq, i),
                   obs::EventKind::kLookup,
                   obs::query_detail(miss_bits, shard, 0, computed[k].known),
                   snapshot_.archive_end());
    }
    if (config_.enable_cache)
      evictions_.add(static_cast<std::int64_t>(
          lookup_cache_.put(keys[k].first, computed[k])));
  }
  return answers;
}

AliveAnswer QueryService::alive_on(asn::Asn asn, util::Day day) {
  const std::uint64_t seq = next_sequence();
  std::optional<obs::ScopedLatency> timer;
  if constexpr (obs::kEnabled)
    if ((seq & 7) == 0) timer.emplace(alive_latency_);  // 1-in-8 sampling
  metrics_.counter("pl_serve_queries{kind=\"alive\"}").add(1);
  const std::uint64_t key = alive_key(asn, day);
  const obs::RequestId rid =
      obs::derive_request_id(obs::kQueryStream, seq, 0);
  const auto shard =
      static_cast<std::uint32_t>(alive_cache_.shard_index(key));
  if (config_.enable_cache) {
    if (std::optional<AliveAnswer> cached = alive_cache_.get(key)) {
      hits_.add(1);
      record_event(rid, obs::EventKind::kAlive,
                   obs::query_detail(obs::kCacheHit, shard, 0,
                                     cached->admin_alive || cached->op_alive),
                   day);
      return *cached;
    }
    misses_.add(1);
  }
  AliveAnswer answer = alive_for(asn, day);
  if (config_.enable_cache)
    evictions_.add(static_cast<std::int64_t>(alive_cache_.put(key, answer)));
  record_event(rid, obs::EventKind::kAlive,
               obs::query_detail(
                   config_.enable_cache ? obs::kCacheMiss : obs::kCacheNone,
                   shard, 0, answer.admin_alive || answer.op_alive),
               day);
  return answer;
}

std::vector<AliveAnswer> QueryService::alive_on_batch(
    const std::vector<asn::Asn>& asns, util::Day day) {
  obs::Span span = root_.child("serve.alive_on_batch");
  span.note("items", static_cast<std::int64_t>(asns.size()));
  const std::uint64_t seq = next_sequence();
  const obs::ScopedLatency timer(batch_latency_);
  metrics_.counter("pl_serve_queries{kind=\"alive\"}").add(1);
  metrics_.histogram("pl_serve_batch_items", batch_bounds())
      .observe(static_cast<std::int64_t>(asns.size()));

  std::vector<AliveAnswer> answers(asns.size());
  std::map<std::uint32_t, std::vector<std::size_t>> pending;
  for (std::size_t i = 0; i < asns.size(); ++i) {
    const std::uint64_t key = alive_key(asns[i], day);
    if (config_.enable_cache) {
      if (std::optional<AliveAnswer> cached = alive_cache_.get(key)) {
        hits_.add(1);
        answers[i] = *cached;
        record_event(
            obs::derive_request_id(obs::kQueryStream, seq, i),
            obs::EventKind::kAlive,
            obs::query_detail(
                obs::kCacheHit,
                static_cast<std::uint32_t>(alive_cache_.shard_index(key)),
                0, cached->admin_alive || cached->op_alive),
            day);
        continue;
      }
      misses_.add(1);
    }
    pending[asns[i].value].push_back(i);
  }
  span.note("misses", static_cast<std::int64_t>(pending.size()));

  std::vector<std::pair<std::uint32_t, const std::vector<std::size_t>*>> keys;
  keys.reserve(pending.size());
  for (const auto& [key, indices] : pending) keys.emplace_back(key, &indices);
  std::vector<AliveAnswer> computed(keys.size());
  exec::parallel_for(
      keys.size(),
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t k = begin; k < end; ++k)
          computed[k] = alive_for(asn::Asn{keys[k].first}, day);
      },
      /*grain=*/32);
  const std::uint32_t miss_bits =
      config_.enable_cache ? obs::kCacheMiss : obs::kCacheNone;
  for (std::size_t k = 0; k < keys.size(); ++k) {
    const std::uint64_t key = alive_key(asn::Asn{keys[k].first}, day);
    const auto shard =
        static_cast<std::uint32_t>(alive_cache_.shard_index(key));
    for (const std::size_t i : *keys[k].second) {
      answers[i] = computed[k];
      record_event(obs::derive_request_id(obs::kQueryStream, seq, i),
                   obs::EventKind::kAlive,
                   obs::query_detail(
                       miss_bits, shard, 0,
                       computed[k].admin_alive || computed[k].op_alive),
                   day);
    }
    if (config_.enable_cache)
      evictions_.add(
          static_cast<std::int64_t>(alive_cache_.put(key, computed[k])));
  }
  return answers;
}

CensusAnswer QueryService::census(util::Day day) {
  const std::uint64_t seq = next_sequence();
  const obs::ScopedLatency timer(census_latency_);
  metrics_.counter("pl_serve_queries{kind=\"census\"}").add(1);
  const AliveCensus counts = snapshot_.alive_census(day);
  record_event(obs::derive_request_id(obs::kQueryStream, seq, 0),
               obs::EventKind::kCensus,
               obs::query_detail(obs::kCacheNone, 0, 0,
                                 counts.admin_alive + counts.op_alive > 0),
               day);
  return CensusAnswer{day, counts.admin_alive, counts.op_alive};
}

std::vector<AsnAnswer> QueryService::scan(const ScanQuery& query) {
  obs::Span span = root_.child("serve.scan");
  const std::uint64_t seq = next_sequence();
  const obs::ScopedLatency timer(scan_latency_);
  const obs::RequestId rid =
      obs::derive_request_id(obs::kQueryStream, seq, 0);
  metrics_.counter("pl_serve_queries{kind=\"scan\"}").add(1);

  std::vector<AsnAnswer> answers;
  const auto& rows = snapshot_.rows();

  // When a registry or country filter is set, walk that dimension's (much
  // smaller) row-index list instead of the whole table; both lists are
  // ascending so the output order is the same either way.
  const std::vector<std::uint32_t>* candidates = nullptr;
  if (query.registry) candidates = &snapshot_.rows_in_registry(*query.registry);
  if (query.country) {
    const auto& by_country = snapshot_.rows_by_country();
    const auto it = by_country.find(*query.country);
    if (it == by_country.end()) {
      span.note("results", 0);
      record_event(rid, obs::EventKind::kScan,
                   obs::query_detail(obs::kCacheNone, 0, 0, false), 0);
      return answers;
    }
    // Prefer the country list when both filters are set and it is shorter.
    if (candidates == nullptr || it->second.size() < candidates->size())
      candidates = &it->second;
  }

  const auto matches = [&](const AsnRow& row) {
    if (row.asn < query.first || query.last < row.asn) return false;
    if (query.registry) {
      bool in_registry = false;
      for (const AdminLifeRow& life : snapshot_.admin_lives(row))
        if (life.life.registry == *query.registry) {
          in_registry = true;
          break;
        }
      if (!in_registry) return false;
    }
    if (query.country) {
      bool in_country = false;
      for (const AdminLifeRow& life : snapshot_.admin_lives(row))
        if (life.life.country == *query.country) {
          in_country = true;
          break;
        }
      if (!in_country) return false;
    }
    if (query.admin_alive_on &&
        !snapshot_.admin_alive_on(row, *query.admin_alive_on))
      return false;
    if (query.op_alive_on && !snapshot_.op_alive_on(row, *query.op_alive_on))
      return false;
    return true;
  };

  if (candidates != nullptr) {
    for (const std::uint32_t r : *candidates) {
      if (answers.size() >= query.limit) break;
      if (matches(rows[r])) answers.push_back(answer_for(rows[r].asn));
    }
  } else {
    // ASN range prune via binary search over the sorted rows.
    const auto begin = std::lower_bound(
        rows.begin(), rows.end(), query.first,
        [](const AsnRow& row, asn::Asn key) { return row.asn < key; });
    for (auto it = begin; it != rows.end() && !(query.last < it->asn); ++it) {
      if (answers.size() >= query.limit) break;
      if (matches(*it)) answers.push_back(answer_for(it->asn));
    }
  }
  span.note("results", static_cast<std::int64_t>(answers.size()));
  record_event(rid, obs::EventKind::kScan,
               obs::query_detail(obs::kCacheNone, 0, 0, !answers.empty()),
               static_cast<std::int64_t>(answers.size()));
  return answers;
}

pl::Status QueryService::advance_day(const DayDelta& delta) {
  obs::Span span = root_.child("serve.advance_day");
  span.note("day", delta.day);
  const std::uint64_t seq = next_sequence();
  const obs::ScopedLatency timer(advance_latency_);
  const obs::RequestId rid =
      obs::derive_request_id(obs::kQueryStream, seq, 0);
  AdvanceStats stats;
  const pl::Status status = snapshot_.advance_day(delta, &stats);
  record_event(rid, obs::EventKind::kAdvanceDay,
               obs::query_detail(obs::kCacheNone, 0,
                                 static_cast<std::uint32_t>(status.code()),
                                 status.ok()),
               delta.day);
  if (!status.ok()) {
    metrics_.counter("pl_serve_advance_failures").add(1);
    return status;
  }
  span.note("facts", stats.facts);
  span.note("active", stats.active);
  span.note("touched_admin", stats.touched_admin);
  span.note("touched_op", stats.touched_op);
  span.note("reclassified", stats.reclassified);
  metrics_.counter("pl_serve_advance_days").add(1);
  lookup_cache_.clear();
  alive_cache_.clear();
  ++version_;
  record_metrics(snapshot_, metrics_);
  return status;
}

obs::Report QueryService::report() const {
  return obs::Report{trace_.tree(), metrics_.snapshot()};
}

}  // namespace pl::serve
