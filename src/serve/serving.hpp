// One-call "pipeline + snapshot" wrapper: run the simulated study and
// freeze its output into a serving Snapshot as an eighth traced stage
// (`serve.build_snapshot`), so the snapshot's cost shows up in the same
// report — and StageTimings — as every other stage.
#pragma once

#include "pipeline/pipeline.hpp"
#include "serve/snapshot.hpp"

namespace pl::serve {

struct ServingWorld {
  pipeline::Result result;
  Snapshot snapshot;
};

/// Run the full simulated pipeline, then build the serving snapshot inside
/// the run's root span via the pipeline's post_stage hook. The snapshot's
/// op timeout always follows `config.op_timeout_days` (the pipeline's knob
/// wins over `snapshot_config.op_timeout_days`), so the snapshot agrees
/// exactly with `result.admin` / `result.op` / `result.taxonomy`.
ServingWorld run_simulated_serving(pipeline::Config config,
                                   SnapshotConfig snapshot_config = {});

}  // namespace pl::serve
