// One-call "pipeline + snapshot" wrapper: run the simulated study and
// freeze its output into a serving Snapshot as an eighth traced stage
// (`serve.build_snapshot`), so the snapshot's cost shows up in the same
// report — and StageTimings — as every other stage. Optionally persists
// the snapshot (`serve.save_snapshot`, durable.hpp format) in the same
// breath, which is how a deployment seeds a DurableService directory.
#pragma once

#include <string>

#include "pipeline/pipeline.hpp"
#include "serve/snapshot.hpp"
#include "util/status.hpp"

namespace pl::serve {

struct ServingWorld {
  pipeline::Result result;
  Snapshot snapshot;
  /// Outcome of the optional `serve.save_snapshot` stage; kOk when no
  /// snapshot_path was given (nothing to save is not a failure).
  pl::Status save_status;
};

/// Run the full simulated pipeline, then build the serving snapshot inside
/// the run's root span via the pipeline's post_stage hook. The snapshot's
/// op timeout always follows `config.op_timeout_days` (the pipeline's knob
/// wins over `snapshot_config.op_timeout_days`), so the snapshot agrees
/// exactly with `result.admin` / `result.op` / `result.taxonomy`.
///
/// A non-empty `snapshot_path` adds a ninth traced stage that writes the
/// snapshot durably (atomic write-rename; see durable.hpp). Persistence
/// failures land in `ServingWorld::save_status` — the in-memory world is
/// still returned.
ServingWorld run_simulated_serving(pipeline::Config config,
                                   SnapshotConfig snapshot_config = {},
                                   const std::string& snapshot_path = {});

}  // namespace pl::serve
