// Crash-safe serving: durable snapshots + a day-delta write-ahead log.
//
// A long-lived serving process (paper 9's daily-update deployment) must
// survive a crash at any point inside `advance_day()` without losing folded
// days or silently serving corrupted state. This module layers durability
// over `serve::QueryService`:
//
//   * `save_snapshot` / `open_snapshot` — the full Snapshot (rows, config,
//     working set) serialized into one CRC frame (`robust/checkpoint.hpp`),
//     written atomically via write-to-temp + rename. Truncated, bit-flipped
//     or version-skewed files are rejected with `kDataLoss`, never loaded.
//   * `append_wal` / `replay_wal` — a write-ahead log of `DayDelta` records,
//     one CRC frame per day, appended BEFORE the in-memory fold. Replay on
//     open reconstructs the exact pre-crash state (bit-identical snapshot
//     fingerprint, locked by the crash-injection test); a torn trailing
//     record — the signature of a crash mid-append — is dropped, because a
//     day whose append never completed was never acknowledged.
//   * `DurableService` — owns the QueryService plus the on-disk directory:
//     WAL-append-then-fold on advance, periodic checkpoint (snapshot save +
//     WAL truncate), replay on open, quarantine of days that fail to fold,
//     and a structured `HealthReport` so operators see degradation instead
//     of guessing. Snapshot loads retry transient `kUnavailable` errors
//     with deterministic virtual-clock backoff.
//
// Crash discipline: every mutation of durable state passes named
// `robust::CrashPoints` sites (`kAdvanceCrashSites`); the crash test kills
// the operation at each one and proves recovery. DESIGN.md §12 documents
// the file formats, the WAL invariants, and the degradation policy.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "robust/crashpoint.hpp"
#include "serve/history_backend.hpp"
#include "serve/query.hpp"
#include "serve/snapshot.hpp"
#include "util/status.hpp"

namespace pl::serve {

// -- snapshot persistence --------------------------------------------------

/// Payload schema version inside the checkpoint frame. Bumped whenever the
/// serialized Snapshot layout changes; a mismatch is rejected as kDataLoss
/// ("snapshot format version skew"), never interpreted.
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

/// WAL record payload schema version (same skew policy).
inline constexpr std::uint32_t kWalFormatVersion = 1;

/// Serialize `snapshot` into one self-contained CRC frame (the exact bytes
/// `save_snapshot` writes). The history store embeds these frames as its
/// keyframes, so a keyframe and a snapshot file are the same format.
std::string encode_snapshot(const Snapshot& snapshot);

/// Parse a frame produced by `encode_snapshot`. kDataLoss when the frame or
/// payload fails validation (truncation, flipped bit, version skew, index
/// out of bounds); a rejected frame is NEVER partially applied.
pl::StatusOr<Snapshot> decode_snapshot(std::string_view frame);

/// Serialize `snapshot` into one CRC frame and write it to `path`
/// atomically: the bytes land in `path + ".tmp"` first and are renamed over
/// `path` only after a successful flush, so a crash mid-save leaves the
/// previous snapshot intact. kUnavailable on filesystem errors.
/// `crash` (nullable) threads the checkpoint crash sites through.
pl::Status save_snapshot(const Snapshot& snapshot, const std::string& path,
                         robust::CrashPoints* crash = nullptr);

/// Load a snapshot saved by `save_snapshot`. kNotFound when `path` does not
/// exist, kUnavailable when it cannot be read, kDataLoss when the frame or
/// payload fails validation (torn write, flipped bit, version skew, index
/// out of bounds). A kDataLoss file is NEVER partially applied.
pl::StatusOr<Snapshot> open_snapshot(const std::string& path);

// -- write-ahead log -------------------------------------------------------

/// Append one day as a self-contained CRC frame at the end of the WAL.
/// Called before the in-memory fold: a day is durable once this returns.
pl::Status append_wal(const std::string& path, const DayDelta& delta,
                      robust::CrashPoints* crash = nullptr);

/// Everything `replay_wal` recovered, plus its damage accounting. Records
/// that fail CRC or decode are skipped (frame length still advances the
/// cursor); an undecodable tail — torn final append or mid-file structure
/// damage — drops the remaining bytes.
struct WalReplay {
  std::vector<DayDelta> deltas;          ///< valid records, file order
  std::int64_t valid_records = 0;
  std::int64_t corrupt_records = 0;      ///< whole frames failing CRC/decode
  std::int64_t dropped_bytes = 0;        ///< undecodable tail dropped
  bool torn_tail = false;                ///< the file did not end cleanly
};

/// Scan the WAL at `path`. kNotFound when absent, kUnavailable when
/// unreadable; corruption is NOT an error — it is reported in the replay
/// accounting so the caller can degrade instead of dying.
pl::StatusOr<WalReplay> replay_wal(const std::string& path);

// -- deterministic retry ---------------------------------------------------

/// Fake monotonic clock for deterministic backoff: sleep just advances the
/// counter. Tests and the retry loop share one instance, so "how long did
/// we back off" is exact and reproducible.
class VirtualClock {
 public:
  std::int64_t now_ms() const noexcept { return now_ms_; }
  void sleep_ms(std::int64_t ms) noexcept { now_ms_ += ms < 0 ? 0 : ms; }

 private:
  std::int64_t now_ms_ = 0;
};

/// Bounded exponential backoff for transient (kUnavailable) load errors.
struct RetryPolicy {
  int max_attempts = 4;              ///< total attempts, first one included
  std::int64_t base_delay_ms = 50;   ///< delay before attempt 2
  std::int64_t max_delay_ms = 2000;  ///< cap for the doubling delay

  friend bool operator==(const RetryPolicy&, const RetryPolicy&) = default;
};

/// Loader signature for `load_with_retry` (and the DurableConfig test hook).
using SnapshotLoader = std::function<pl::StatusOr<Snapshot>()>;

/// Run `loader` until it succeeds or fails with anything other than
/// kUnavailable, sleeping on `clock` between attempts per `policy`. The
/// attempt count (>= 1) lands in `*attempts` when non-null.
pl::StatusOr<Snapshot> load_with_retry(const SnapshotLoader& loader,
                                       const RetryPolicy& policy,
                                       VirtualClock& clock,
                                       int* attempts = nullptr);

// -- the durable service ---------------------------------------------------

struct DurableConfig {
  /// Directory holding `snapshot.plsnap` and `days.plwal`. Must exist.
  std::string dir;
  /// Fold this many days between checkpoints (snapshot save + WAL truncate).
  /// 0 = never checkpoint automatically; the WAL just grows.
  int checkpoint_every_days = 16;
  RetryPolicy retry;
  /// Crash-injection hook for the durability tests; null in production.
  robust::CrashPoints* crash = nullptr;
  /// Test hook: overrides `open_snapshot(snapshot_path)` during open() so
  /// transient-failure retry paths can be exercised. Null = read the file.
  SnapshotLoader loader;
  /// Flight-recorder ring capacity (events retained per ring; see
  /// obs/flight.hpp). The recorder is shared with the wrapped QueryService
  /// so query and durability events land in one timeline.
  std::size_t flight_capacity = obs::kFlightDefaultCapacity;
  /// Optional snapshot history (not owned; must outlive the service). When
  /// set, open() seeds it from the recovered base state, every folded day —
  /// replayed or advanced — is appended, and it is attached to the wrapped
  /// QueryService for `as_of` time-travel queries. History is derived state:
  /// an append failure degrades health() but never fails the fold.
  HistoryBackend* history = nullptr;
};

/// Structured degradation report. `degraded` means the service is running
/// but NOT serving everything it was given: a snapshot was rejected, WAL
/// records were corrupt, or days were quarantined. A torn WAL tail alone is
/// not degradation — that day's append never completed, so it was never
/// acknowledged as durable.
struct HealthReport {
  bool degraded = false;
  bool snapshot_rejected = false;  ///< on-disk snapshot failed validation
  bool wal_torn_tail = false;      ///< trailing partial record dropped
  util::Day last_durable_day = 0;  ///< archive end of the served state
  util::Day snapshot_day = 0;      ///< archive end of the on-disk snapshot
  std::vector<util::Day> quarantined_days;  ///< failed to fold; not served
  std::int64_t wal_records = 0;          ///< live records past the snapshot
  std::int64_t wal_corrupt_records = 0;  ///< frames dropped on replay
  std::int64_t wal_dropped_bytes = 0;    ///< undecodable tail bytes
  std::int64_t replayed_days = 0;        ///< deltas folded from WAL on open
  std::int64_t load_attempts = 0;        ///< snapshot-load attempts (retries)
  std::string last_error;                ///< reason for the degradation

  friend bool operator==(const HealthReport&, const HealthReport&) = default;
};

/// Execution-order list of the crash sites `advance_day()` (and the
/// checkpoint it may trigger) passes through. The crash test iterates this
/// and asserts `CrashPoints::visited()` covers it, so a new site cannot be
/// added without being tested.
extern const std::vector<std::string_view> kAdvanceCrashSites;

/// A QueryService wrapped in durability: WAL-append-then-fold advances,
/// periodic checkpoints, replay on open, quarantine + HealthReport on bad
/// input. Same threading contract as QueryService (reads are concurrent,
/// advances are externally serialized).
class DurableService {
 public:
  /// Open the durable directory. If a snapshot file exists it is loaded
  /// (with retry; a corrupt one is rejected and `bootstrap` used instead —
  /// degraded, surfaced in health()); otherwise `bootstrap` is persisted as
  /// the base state. Any WAL is then replayed on top. Fails only on hard
  /// filesystem errors or an empty `config.dir`.
  static pl::StatusOr<DurableService> open(Snapshot bootstrap,
                                           DurableConfig config,
                                           QueryConfig query_config = {});

  DurableService(DurableService&&) = default;
  DurableService& operator=(DurableService&&) = default;

  /// Durably fold one day: validate, append to the WAL, fold in memory,
  /// maybe checkpoint. A delta that fails to fold is quarantined — the
  /// service keeps answering from the last good state and health() turns
  /// degraded. After an injected crash the instance is dead
  /// (kFailedPrecondition); reopen from disk.
  pl::Status advance_day(const DayDelta& delta);

  /// Force a checkpoint now (snapshot save + WAL truncate).
  pl::Status checkpoint();

  QueryService& queries() noexcept { return *service_; }
  const Snapshot& snapshot() const noexcept { return service_->snapshot(); }
  util::Day archive_end() const noexcept { return snapshot().archive_end(); }

  HealthReport health() const;
  /// Durability-layer trace + metrics (`serve.durable.*` spans,
  /// `pl_serve_wal_*` / `pl_serve_snapshot_*` metrics). The wrapped
  /// QueryService keeps its own report.
  obs::Report report() const;

  const DurableConfig& config() const noexcept { return config_; }
  std::string snapshot_path() const { return config_.dir + "/snapshot.plsnap"; }
  std::string wal_path() const { return config_.dir + "/days.plwal"; }
  /// Where the flight recorder is dumped (pl-flight/1) on crash,
  /// quarantine, or degradation.
  std::string flight_path() const { return config_.dir + "/flight.plflight"; }

  /// The shared flight recorder (also fed by `queries()`).
  const obs::FlightRecorder& flight() const noexcept { return *flight_; }

 private:
  DurableService(DurableConfig config, QueryConfig query_config);

  pl::Status open_impl(Snapshot bootstrap);
  pl::Status checkpoint_impl(obs::Span& parent);
  /// Append one folded day to the attached history (no-op when none).
  /// Best-effort: failures are counted and surfaced in health(), never
  /// propagated — the history is rebuildable from snapshot + WAL.
  void append_history(const DayDelta& delta);
  void quarantine(util::Day day, const pl::Status& why);
  bool crash_here(std::string_view site);
  void refresh_gauges();

  void record_flight(obs::EventKind kind, std::uint32_t detail,
                     std::int64_t a) noexcept;
  /// Persist the recorder to flight_path(). Best-effort by design: dump
  /// sites are already on failure paths, so a dump that cannot be written
  /// must not mask the original error.
  void dump_flight() noexcept;
  /// Record the kCrash event (detail = crc32 of the fired site) and dump.
  void note_crash();
  /// Record kDegraded and dump — called wherever health_.degraded turns on.
  void note_degraded();

  DurableConfig config_;
  QueryConfig query_config_;

  // Behind unique_ptr: Registry/Trace own mutexes and QueryService holds
  // references into its registry, so none of them are movable in place.
  std::unique_ptr<obs::Registry> metrics_;
  std::unique_ptr<obs::Trace> trace_;
  obs::Span root_;
  std::unique_ptr<obs::FlightRecorder> flight_;  ///< shared with service_
  std::unique_ptr<QueryService> service_;

  VirtualClock clock_;
  HealthReport health_;
  int days_since_checkpoint_ = 0;
  bool crashed_ = false;  ///< injected crash latched; instance is dead
};

}  // namespace pl::serve
