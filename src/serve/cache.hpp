// Sharded LRU cache for query answers.
//
// Keys are pre-packed uint64s (the QueryService owns the packing — see
// DESIGN.md §11.2). Each shard holds an independent LRU list guarded by its
// own mutex, so concurrent batch lookups rarely contend; the shard is chosen
// by a splitmix64-style bit mix of the key, which decorrelates the
// sequential ASN keys real query streams produce.
//
// Determinism note: the cache stores final answers keyed by their full
// query, so a hit returns byte-for-byte what the miss path would recompute —
// results cannot depend on cache state, only latency can. The serve oracle
// test runs every query cache-on and cache-off and asserts equality.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace pl::serve {

namespace detail {

/// Mix bits so nearby keys land on different shards (splitmix64 finalizer).
/// Implementation detail of ShardedLruCache's shard selection, not part of
/// the serve API surface.
inline std::uint64_t mix_key(std::uint64_t key) noexcept {
  key ^= key >> 30;
  key *= 0xBF58476D1CE4E5B9ULL;
  key ^= key >> 27;
  key *= 0x94D049BB133111EBULL;
  key ^= key >> 31;
  return key;
}

}  // namespace detail

template <typename Value>
class ShardedLruCache {
 public:
  /// `capacity` is the total entry budget, split evenly across shards.
  /// Shard count is rounded up to a power of two; capacity 0 disables
  /// storage entirely (every get misses, every put is dropped).
  explicit ShardedLruCache(std::size_t capacity, std::size_t shards = 8) {
    std::size_t rounded = 1;
    while (rounded < shards) rounded <<= 1;
    per_shard_capacity_ = capacity / rounded;
    if (capacity > 0 && per_shard_capacity_ == 0) per_shard_capacity_ = 1;
    shards_.reserve(rounded);
    for (std::size_t i = 0; i < rounded; ++i)
      shards_.push_back(std::make_unique<Shard>());
  }

  /// Look up `key`, bumping it to most-recently-used on a hit.
  std::optional<Value> get(std::uint64_t key) {
    Shard& shard = shard_for(key);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) return std::nullopt;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->second;
  }

  /// Insert or refresh `key`. Returns the number of entries evicted (0/1).
  std::size_t put(std::uint64_t key, Value value) {
    if (per_shard_capacity_ == 0) return 0;
    Shard& shard = shard_for(key);
    const std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->second = std::move(value);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return 0;
    }
    shard.lru.emplace_front(key, std::move(value));
    shard.index.emplace(key, shard.lru.begin());
    if (shard.lru.size() <= per_shard_capacity_) return 0;
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    return 1;
  }

  /// Shard a key maps to — pure key math, so the flight recorder can tag
  /// events with the shard even when caching is disabled.
  std::size_t shard_index(std::uint64_t key) const noexcept {
    return detail::mix_key(key) & (shards_.size() - 1);
  }

  void clear() {
    for (const std::unique_ptr<Shard>& shard : shards_) {
      const std::lock_guard<std::mutex> lock(shard->mutex);
      shard->lru.clear();
      shard->index.clear();
    }
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const std::unique_ptr<Shard>& shard : shards_) {
      const std::lock_guard<std::mutex> lock(shard->mutex);
      total += shard.get()->lru.size();
    }
    return total;
  }

 private:
  struct Shard {
    std::mutex mutex;
    std::list<std::pair<std::uint64_t, Value>> lru;  ///< front = most recent
    std::unordered_map<std::uint64_t,
                       typename std::list<std::pair<std::uint64_t, Value>>::
                           iterator>
        index;
  };

  Shard& shard_for(std::uint64_t key) noexcept {
    return *shards_[detail::mix_key(key) & (shards_.size() - 1)];
  }

  std::size_t per_shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace pl::serve
