// The serving layer's view of a snapshot history store.
//
// `history::HistoryStore` (the delta-compressed daily store) lives ABOVE
// serve in the layer DAG — it persists Snapshots and folds DayDeltas, both
// serve types. QueryService's `as_of` routing and DurableService's
// append-on-fold wiring therefore talk to this abstract backend instead:
// serve stays ignorant of keyframes and delta codecs, and the concrete
// store is injected by the caller (`attach_history`, `DurableConfig`).
#pragma once

#include "serve/snapshot.hpp"
#include "util/status.hpp"

namespace pl::serve {

/// Random access into the daily snapshot history plus the append hook the
/// durable fold calls. Implemented by `history::HistoryStore`.
class HistoryBackend {
 public:
  virtual ~HistoryBackend() = default;

  /// The snapshot "as of day D": every admin/op life, class, and flag
  /// exactly as a fresh build over the world truncated at D would produce.
  /// The pointer stays valid until the next at()/append_day()/reset() call
  /// on this backend (reconstruction reuses one cache slot in place).
  /// kNotFound when D is outside [earliest_day(), latest_day()].
  virtual pl::StatusOr<const Snapshot*> at(util::Day day) = 0;

  /// Record one folded day: `delta` is the day's input, `after` the
  /// snapshot state after folding it (`after.archive_end() == delta.day`).
  virtual pl::Status append_day(const DayDelta& delta,
                                const Snapshot& after) = 0;

  /// Drop any recorded history and restart it from `base` (first keyframe
  /// at `base.archive_end()`). DurableService calls this on open so replay
  /// can append the WAL days on top.
  virtual pl::Status reset(const Snapshot& base) = 0;

  /// True when no keyframe has been installed yet.
  virtual bool empty() const noexcept = 0;

  /// Day range the store can materialize, inclusive on both ends.
  virtual util::Day earliest_day() const noexcept = 0;
  virtual util::Day latest_day() const noexcept = 0;
};

}  // namespace pl::serve
