// The serving snapshot: the study's end product frozen into a compact,
// immutable, query-optimized store.
//
// A Snapshot joins everything the paper derives per ASN — administrative
// lives (4.1), operational lives (4.2), the joint taxonomy class (6), and
// the squat-detector verdicts (6.1.2 / 6.4) — into one sorted per-ASN index
// with three query paths:
//
//   * point lookup by ASN           O(log n) binary search over AsnRow;
//   * range scan by ASN / RIR / country   over per-dimension row indexes;
//   * "alive on day D" census       O(log n) over sorted start/end arrays.
//
// Construction happens once from pipeline output (`Snapshot::build`) or
// from published Listing-1 datasets (`Snapshot::from_datasets`, query-only).
// After that the snapshot only changes through `advance_day()`, which folds
// ONE new delegation day plus ONE BGP activity day in place: it extends the
// working set's restored spans and activity runs, then rebuilds lifetimes,
// classification and detector flags for exactly the ASNs the day touched.
// The advance path is locked by test to be bit-identical to rebuilding the
// snapshot from a full pipeline run over the extended world — the
// invariants that make that possible are catalogued in DESIGN.md §11.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "bgp/activity.hpp"
#include "obs/metrics.hpp"
#include "joint/squat.hpp"
#include "joint/taxonomy.hpp"
#include "lifetimes/admin.hpp"
#include "lifetimes/op.hpp"
#include "restore/types.hpp"
#include "util/status.hpp"

namespace pl::serve {

/// Per-ASN detector/status flag bits stamped on AsnRow. Only facts stable
/// under a moving archive end live here ("currently allocated/active" are
/// computed at query time against `archive_end()` instead, so untouched
/// rows stay byte-identical across advances).
enum AsnFlag : std::uint16_t {
  kFlagEverAllocated = 1u << 0,     ///< has at least one admin life
  kFlagEverActive = 1u << 1,        ///< has at least one op life
  kFlagTransferred = 1u << 2,       ///< any admin life crossed registries
  kFlagUnusedLife = 1u << 3,        ///< any admin life classified unused
  kFlagPartialOverlap = 1u << 4,    ///< any admin life partially overlapped
  kFlagCompleteOverlap = 1u << 5,   ///< any admin life completely overlapped
  kFlagDormantSquat = 1u << 6,      ///< any op life flagged dormant-awakening
  kFlagOutsideActivity = 1u << 7,   ///< any outside-delegation op life
                                    ///< (ever-allocated ASN)
};

/// One admin life plus its taxonomy class.
struct AdminLifeRow {
  lifetimes::AdminLifetime life;
  joint::Category category = joint::Category::kUnused;

  friend bool operator==(const AdminLifeRow&, const AdminLifeRow&) = default;
};

/// One op life plus its taxonomy class, best-overlap admin life (local
/// index within the ASN's admin rows) and detector verdicts.
struct OpLifeRow {
  lifetimes::OpLifetime life;
  joint::Category category = joint::Category::kOutsideDelegation;
  std::int32_t admin_index = -1;  ///< local index, -1 when none overlaps
  bool dormant_squat = false;
  bool outside_activity = false;

  friend bool operator==(const OpLifeRow&, const OpLifeRow&) = default;
};

/// Index entry for one ASN: slices into the admin/op row arrays plus the
/// stable flag bits. Rows are sorted by ASN — the point-lookup key.
struct AsnRow {
  asn::Asn asn;
  std::uint32_t admin_begin = 0;
  std::uint32_t admin_count = 0;
  std::uint32_t op_begin = 0;
  std::uint32_t op_count = 0;
  std::uint16_t flags = 0;

  friend bool operator==(const AsnRow&, const AsnRow&) = default;
};

struct SnapshotConfig {
  int op_timeout_days = lifetimes::kPaperTimeoutDays;
  lifetimes::AdminBuildConfig admin;
  joint::SquatDetectorConfig squat;
  /// Retain the build inputs (restored spans, activity, backdating anchors)
  /// so advance_day() can fold new days in. Query-only consumers drop this
  /// to halve the memory footprint.
  bool keep_working_set = true;

  friend bool operator==(const SnapshotConfig&, const SnapshotConfig&) =
      default;
};

/// What one registry said about one ASN on the new day.
struct DelegationFact {
  asn::Asn asn;
  asn::Rir registry = asn::Rir::kArin;
  dele::RecordState state;

  friend bool operator==(const DelegationFact&,
                         const DelegationFact&) = default;
};

/// One day of new input: the delegation facts of every registry plus the
/// ASNs the BGP visibility rule marked active. `slice_day` cuts one out of
/// a full archive; a deployment would assemble it from the day's delegation
/// files and collector dump instead.
struct DayDelta {
  util::Day day = 0;
  std::vector<DelegationFact> delegation;
  std::vector<asn::Asn> active;

  friend bool operator==(const DayDelta&, const DayDelta&) = default;
};

/// advance_day() accounting, surfaced as span notes by the QueryService.
struct AdvanceStats {
  std::int64_t facts = 0;           ///< delegation facts applied
  std::int64_t active = 0;          ///< ASNs marked active
  std::int64_t touched_admin = 0;   ///< ASNs whose admin lives recomputed
  std::int64_t touched_op = 0;      ///< ASNs whose op lives recomputed
  std::int64_t reclassified = 0;    ///< ASN rows rebuilt
};

struct AliveCensus {
  std::int64_t admin_alive = 0;  ///< admin lives covering the day
  std::int64_t op_alive = 0;     ///< op lives covering the day

  friend bool operator==(const AliveCensus&, const AliveCensus&) = default;
};

class Snapshot {
 public:
  /// An empty snapshot (no rows, archive end 0); useful as a slot to move
  /// a built snapshot into.
  Snapshot() = default;

  /// Build from restored pipeline output. Runs the same lifetime builders
  /// and classifier the pipeline stages run, so a snapshot built from a
  /// pipeline's restored archive agrees exactly with its Result datasets.
  static Snapshot build(const restore::RestoredArchive& archive,
                        const bgp::ActivityTable& activity,
                        util::Day archive_end, const SnapshotConfig& config = {});

  /// Build a query-only snapshot from already-built datasets (e.g. loaded
  /// from Listing-1 JSON). No working set: advance_day() on the result
  /// fails with kFailedPrecondition.
  static Snapshot from_datasets(lifetimes::AdminDataset admin,
                                lifetimes::OpDataset op,
                                const SnapshotConfig& config = {});

  // -- point / range / interval queries ----------------------------------

  /// Row for an ASN; nullptr when the study never saw it. O(log n).
  const AsnRow* find(asn::Asn asn) const noexcept;

  std::span<const AdminLifeRow> admin_lives(const AsnRow& row) const noexcept {
    return {admin_rows_.data() + row.admin_begin, row.admin_count};
  }
  std::span<const OpLifeRow> op_lives(const AsnRow& row) const noexcept {
    return {op_rows_.data() + row.op_begin, row.op_count};
  }

  bool admin_alive_on(const AsnRow& row, util::Day day) const noexcept;
  bool op_alive_on(const AsnRow& row, util::Day day) const noexcept;

  /// How many admin/op lives cover `day`, over the whole snapshot.
  /// O(log lives) via the sorted start/end arrays.
  AliveCensus alive_census(util::Day day) const noexcept;

  /// Row indices of ASNs that ever had an admin life under `rir`, ascending.
  const std::vector<std::uint32_t>& rows_in_registry(asn::Rir rir) const {
    return by_registry_[asn::index_of(rir)];
  }
  /// Row indices per country (admin lives' country), ascending.
  const std::map<asn::CountryCode, std::vector<std::uint32_t>>&
  rows_by_country() const noexcept {
    return by_country_;
  }

  const std::vector<AsnRow>& rows() const noexcept { return rows_; }
  util::Day archive_end() const noexcept { return archive_end_; }
  const SnapshotConfig& config() const noexcept { return config_; }
  std::size_t asn_count() const noexcept { return rows_.size(); }
  std::size_t admin_life_count() const noexcept { return admin_rows_.size(); }
  std::size_t op_life_count() const noexcept { return op_rows_.size(); }

  // -- incremental update ------------------------------------------------

  /// True when the snapshot kept its working set and can advance.
  bool can_advance() const noexcept { return working_.has_value(); }

  /// Fold one new day in. `delta.day` must be `archive_end() + 1`; at most
  /// one fact per (registry, ASN). On success the snapshot is bit-identical
  /// to `build()` over the extended inputs; on failure it is unchanged.
  pl::Status advance_day(const DayDelta& delta, AdvanceStats* stats = nullptr);

  /// Deep equality over everything — serving rows, derived indexes, and
  /// the working set. The advance-vs-rebuild tests assert with this.
  friend bool operator==(const Snapshot& a, const Snapshot& b);

  /// Binary persistence (durable.cpp): serializes the full private state —
  /// rows, config, and working set — and rebuilds the derived indexes on
  /// decode so a reopened snapshot compares equal to the one saved.
  friend class SnapshotCodec;

 private:
  /// Mutable build inputs advance_day() extends. Spans are canonicalized
  /// (adjacent same-state spans merged) so that daily extension and a fresh
  /// restoration of the extended world produce identical lists.
  struct WorkingSet {
    std::array<std::map<std::uint32_t, std::vector<restore::StateSpan>>,
               asn::kRirCount>
        spans;
    std::array<std::optional<util::Day>, asn::kRirCount> first_observed;
    bgp::ActivityTable activity;
    /// ASNs with an open-ended admin life — exactly the rows whose admin
    /// lives can change when the archive end moves without a new fact.
    std::set<std::uint32_t> open_asns;
  };

  struct BuiltAsn {
    AsnRow row;  ///< begin offsets filled at concatenation time
    std::vector<AdminLifeRow> admin;
    std::vector<OpLifeRow> op;
  };

  /// Classify + flag one ASN's lives into serving rows.
  static BuiltAsn build_asn_rows(asn::Asn asn,
                                 std::span<const lifetimes::AdminLifetime> admin,
                                 std::span<const lifetimes::OpLifetime> op,
                                 const SnapshotConfig& config);

  void assemble(const lifetimes::AdminDataset& admin,
                const lifetimes::OpDataset& op);
  void append_built(BuiltAsn&& built);
  void rebuild_indexes();

  std::vector<AsnRow> rows_;
  std::vector<AdminLifeRow> admin_rows_;
  std::vector<OpLifeRow> op_rows_;
  util::Day archive_end_ = 0;
  SnapshotConfig config_;

  // Derived serving indexes, deterministic functions of the rows above.
  std::array<std::vector<std::uint32_t>, asn::kRirCount> by_registry_;
  std::map<asn::CountryCode, std::vector<std::uint32_t>> by_country_;
  std::vector<util::Day> admin_starts_;  ///< sorted admin life start days
  std::vector<util::Day> admin_ends_;    ///< sorted admin life end days
  std::vector<util::Day> op_starts_;
  std::vector<util::Day> op_ends_;

  std::optional<WorkingSet> working_;
};

/// Cut one day out of a full archive + activity table: the per-registry
/// record states in force on `day` plus the ASNs active on `day`. Facts are
/// emitted registry-major (kAllRirs order), ascending ASN within; active
/// ASNs ascending — deterministic input for advance_day().
DayDelta slice_day(const restore::RestoredArchive& archive,
                   const bgp::ActivityTable& activity, util::Day day);

/// Restrict an archive to days <= `last_day` (spans clipped, emptied ASNs
/// dropped; audit reports are left as-is — they describe the original run).
restore::RestoredArchive truncate_archive(const restore::RestoredArchive& archive,
                                          util::Day last_day);

/// Restrict an activity table to days <= `last_day`.
bgp::ActivityTable truncate_activity(const bgp::ActivityTable& activity,
                                     util::Day last_day);

/// Publish the snapshot census into a metrics registry (gauges
/// `pl_serve_snapshot_asns` / `_admin_lives` / `_op_lives` and
/// `pl_serve_archive_end`).
void record_metrics(const Snapshot& snapshot, obs::Registry& metrics);

}  // namespace pl::serve
