#include "serve/io.hpp"

#include <utility>

#include "lifetimes/dataset_io.hpp"

namespace pl::serve {

pl::StatusOr<Snapshot> load_snapshot(const std::string& admin_json_path,
                                     const std::string& op_json_path,
                                     const SnapshotConfig& config) {
  pl::StatusOr<lifetimes::AdminDataset> admin =
      lifetimes::load_admin_json(admin_json_path);
  if (!admin.ok()) return admin.status();
  pl::StatusOr<lifetimes::OpDataset> op =
      lifetimes::load_op_json(op_json_path);
  if (!op.ok()) return op.status();
  return Snapshot::from_datasets(std::move(*admin), std::move(*op), config);
}

}  // namespace pl::serve
