#include "serve/durable.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "robust/checkpoint.hpp"
#include "util/crc32.hpp"

namespace pl::serve {
namespace {

// -- raw file helpers ------------------------------------------------------

bool file_exists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

pl::StatusOr<std::string> read_file(const std::string& path) {
  if (!file_exists(path))
    return pl::not_found_error("no such file: " + path);
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open())
    return pl::unavailable_error("cannot open " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) return pl::unavailable_error("read failed: " + path);
  return bytes;
}

/// Write `bytes` to `path` (truncating), flushing before returning.
pl::Status write_file(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open())
    return pl::unavailable_error("cannot open " + path + " for writing");
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out.good()) return pl::unavailable_error("write failed: " + path);
  return {};
}

pl::Status crash_status(std::string_view site) {
  return pl::internal_error("crash injected at " + std::string(site));
}

// -- scalar codecs ---------------------------------------------------------

void encode_double(robust::CheckpointWriter& w, double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  w.u64(bits);
}

double decode_double(robust::CheckpointReader& r) {
  const std::uint64_t bits = r.u64();
  double value = 0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

void encode_country(robust::CheckpointWriter& w, asn::CountryCode country) {
  w.boolean(!country.unknown());
  if (!country.unknown()) w.str(country.to_string());
}

pl::StatusOr<asn::CountryCode> decode_country(robust::CheckpointReader& r) {
  if (!r.boolean()) return asn::CountryCode{};
  const std::string_view text = r.str();
  const std::optional<asn::CountryCode> parsed = asn::CountryCode::parse(text);
  if (!r.ok() || !parsed.has_value())
    return pl::data_loss_error("bad country code in snapshot");
  return *parsed;
}

pl::StatusOr<asn::Rir> decode_rir(robust::CheckpointReader& r) {
  const std::uint8_t raw = r.u8();
  if (raw >= asn::kRirCount)
    return pl::data_loss_error("registry out of range");
  return asn::kAllRirs[raw];
}

pl::StatusOr<joint::Category> decode_category(robust::CheckpointReader& r) {
  const std::uint8_t raw = r.u8();
  if (raw > static_cast<std::uint8_t>(joint::Category::kOutsideDelegation))
    return pl::data_loss_error("taxonomy category out of range");
  return static_cast<joint::Category>(raw);
}

void encode_record_state(robust::CheckpointWriter& w,
                         const dele::RecordState& state) {
  w.u8(static_cast<std::uint8_t>(state.status));
  w.boolean(state.registration_date.has_value());
  if (state.registration_date.has_value()) w.i32(*state.registration_date);
  encode_country(w, state.country);
  w.u64(state.opaque_id);
}

pl::StatusOr<dele::RecordState> decode_record_state(
    robust::CheckpointReader& r) {
  dele::RecordState state;
  const std::uint8_t raw_status = r.u8();
  if (raw_status > static_cast<std::uint8_t>(dele::Status::kReserved))
    return pl::data_loss_error("delegation status out of range");
  state.status = static_cast<dele::Status>(raw_status);
  if (r.boolean()) state.registration_date = r.i32();
  auto country = decode_country(r);
  if (!country.ok()) return country.status();
  state.country = *country;
  state.opaque_id = r.u64();
  return state;
}

void encode_admin_life(robust::CheckpointWriter& w,
                       const lifetimes::AdminLifetime& life) {
  w.u32(life.asn.value);
  w.i32(life.registration_date);
  w.i32(life.days.first);
  w.i32(life.days.last);
  w.u8(static_cast<std::uint8_t>(asn::index_of(life.registry)));
  encode_country(w, life.country);
  w.u64(life.opaque_id);
  w.boolean(life.open_ended);
  w.boolean(life.transferred);
}

pl::StatusOr<lifetimes::AdminLifetime> decode_admin_life(
    robust::CheckpointReader& r) {
  lifetimes::AdminLifetime life;
  life.asn = asn::Asn{r.u32()};
  life.registration_date = r.i32();
  life.days.first = r.i32();
  life.days.last = r.i32();
  auto rir = decode_rir(r);
  if (!rir.ok()) return rir.status();
  life.registry = *rir;
  auto country = decode_country(r);
  if (!country.ok()) return country.status();
  life.country = *country;
  life.opaque_id = r.u64();
  life.open_ended = r.boolean();
  life.transferred = r.boolean();
  return life;
}

// -- WAL record codec ------------------------------------------------------

void encode_day_delta(robust::CheckpointWriter& w, const DayDelta& delta) {
  w.u32(kWalFormatVersion);
  w.i32(delta.day);
  w.varint(delta.delegation.size());
  for (const DelegationFact& fact : delta.delegation) {
    w.u32(fact.asn.value);
    w.u8(static_cast<std::uint8_t>(asn::index_of(fact.registry)));
    encode_record_state(w, fact.state);
  }
  w.varint(delta.active.size());
  for (const asn::Asn active : delta.active) w.u32(active.value);
}

pl::StatusOr<DayDelta> decode_day_delta(robust::CheckpointReader& r) {
  const std::uint32_t version = r.u32();
  if (r.ok() && version != kWalFormatVersion)
    return pl::data_loss_error("WAL format version skew");
  DayDelta delta;
  delta.day = r.i32();
  const std::uint64_t facts = r.container_size(7);
  delta.delegation.reserve(facts);
  for (std::uint64_t i = 0; r.ok() && i < facts; ++i) {
    DelegationFact fact;
    fact.asn = asn::Asn{r.u32()};
    auto rir = decode_rir(r);
    if (!rir.ok()) return rir.status();
    fact.registry = *rir;
    auto state = decode_record_state(r);
    if (!state.ok()) return state.status();
    fact.state = *state;
    delta.delegation.push_back(fact);
  }
  const std::uint64_t active = r.container_size(4);
  delta.active.reserve(active);
  for (std::uint64_t i = 0; r.ok() && i < active; ++i)
    delta.active.push_back(asn::Asn{r.u32()});
  if (!r.ok() || !r.at_end())
    return pl::data_loss_error("WAL record failed to decode: " +
                               std::string(r.error()));
  return delta;
}

// -- frame scanning (WAL is a concatenation of checkpoint frames) ----------

constexpr std::size_t kFrameHeaderBytes = 16;  // "PLCK" + u32 ver + u64 len
constexpr std::size_t kFrameTrailerBytes = 4;  // crc32

std::uint64_t read_le(std::string_view bytes, std::size_t offset, int width) {
  std::uint64_t value = 0;
  for (int i = 0; i < width; ++i)
    value |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(bytes[offset + i]))
             << (8 * i);
  return value;
}

}  // namespace

// -- snapshot codec (friend of Snapshot) -----------------------------------

class SnapshotCodec {
 public:
  static void encode(const Snapshot& snap, robust::CheckpointWriter& w) {
    w.u32(kSnapshotFormatVersion);
    w.i32(snap.archive_end_);

    const SnapshotConfig& config = snap.config_;
    w.i32(config.op_timeout_days);
    w.i32(config.admin.transfer_gap_tolerance);
    w.i64(config.squat.dormancy_days);
    encode_double(w, config.squat.max_relative_duration);
    w.boolean(config.keep_working_set);

    w.varint(snap.rows_.size());
    for (const AsnRow& row : snap.rows_) {
      w.u32(row.asn.value);
      w.u32(row.admin_begin);
      w.u32(row.admin_count);
      w.u32(row.op_begin);
      w.u32(row.op_count);
      w.u16(row.flags);
    }

    w.varint(snap.admin_rows_.size());
    for (const AdminLifeRow& row : snap.admin_rows_) {
      encode_admin_life(w, row.life);
      w.u8(static_cast<std::uint8_t>(row.category));
    }

    w.varint(snap.op_rows_.size());
    for (const OpLifeRow& row : snap.op_rows_) {
      w.u32(row.life.asn.value);
      w.i32(row.life.days.first);
      w.i32(row.life.days.last);
      w.u8(static_cast<std::uint8_t>(row.category));
      w.i32(row.admin_index);
      w.boolean(row.dormant_squat);
      w.boolean(row.outside_activity);
    }

    w.boolean(snap.working_.has_value());
    if (!snap.working_.has_value()) return;
    const Snapshot::WorkingSet& working = *snap.working_;
    for (std::size_t r = 0; r < asn::kRirCount; ++r) {
      w.varint(working.spans[r].size());
      for (const auto& [asn_value, spans] : working.spans[r]) {
        w.u32(asn_value);
        w.varint(spans.size());
        for (const restore::StateSpan& span : spans) {
          w.i32(span.days.first);
          w.i32(span.days.last);
          encode_record_state(w, span.state);
        }
      }
      w.boolean(working.first_observed[r].has_value());
      if (working.first_observed[r].has_value())
        w.i32(*working.first_observed[r]);
    }
    w.varint(working.activity.entries().size());
    for (const auto& [asn_key, days] : working.activity.entries()) {
      w.u32(asn_key.value);
      w.varint(days.runs().size());
      for (const util::DayInterval& run : days.runs()) {
        w.i32(run.first);
        w.i32(run.last);
      }
    }
    w.varint(working.open_asns.size());
    for (const std::uint32_t asn_value : working.open_asns) w.u32(asn_value);
  }

  static pl::StatusOr<Snapshot> decode(robust::CheckpointReader& r) {
    const std::uint32_t version = r.u32();
    if (r.ok() && version != kSnapshotFormatVersion)
      return pl::data_loss_error("snapshot format version skew");

    Snapshot snap;
    snap.archive_end_ = r.i32();
    snap.config_.op_timeout_days = r.i32();
    snap.config_.admin.transfer_gap_tolerance = r.i32();
    snap.config_.squat.dormancy_days = r.i64();
    snap.config_.squat.max_relative_duration = decode_double(r);
    snap.config_.keep_working_set = r.boolean();

    const std::uint64_t row_count = r.container_size(22);
    snap.rows_.reserve(row_count);
    for (std::uint64_t i = 0; r.ok() && i < row_count; ++i) {
      AsnRow row;
      row.asn = asn::Asn{r.u32()};
      row.admin_begin = r.u32();
      row.admin_count = r.u32();
      row.op_begin = r.u32();
      row.op_count = r.u32();
      row.flags = r.u16();
      snap.rows_.push_back(row);
    }

    const std::uint64_t admin_count = r.container_size(30);
    snap.admin_rows_.reserve(admin_count);
    for (std::uint64_t i = 0; r.ok() && i < admin_count; ++i) {
      AdminLifeRow row;
      auto life = decode_admin_life(r);
      if (!life.ok()) return life.status();
      row.life = *life;
      auto category = decode_category(r);
      if (!category.ok()) return category.status();
      row.category = *category;
      snap.admin_rows_.push_back(row);
    }

    const std::uint64_t op_count = r.container_size(19);
    snap.op_rows_.reserve(op_count);
    for (std::uint64_t i = 0; r.ok() && i < op_count; ++i) {
      OpLifeRow row;
      row.life.asn = asn::Asn{r.u32()};
      row.life.days.first = r.i32();
      row.life.days.last = r.i32();
      auto category = decode_category(r);
      if (!category.ok()) return category.status();
      row.category = *category;
      row.admin_index = r.i32();
      row.dormant_squat = r.boolean();
      row.outside_activity = r.boolean();
      snap.op_rows_.push_back(row);
    }

    if (r.boolean()) {
      Snapshot::WorkingSet working;
      for (std::size_t reg = 0; r.ok() && reg < asn::kRirCount; ++reg) {
        const std::uint64_t asns = r.container_size(6);
        for (std::uint64_t i = 0; r.ok() && i < asns; ++i) {
          const std::uint32_t asn_value = r.u32();
          const std::uint64_t span_count = r.container_size(11);
          std::vector<restore::StateSpan>& spans =
              working.spans[reg][asn_value];
          spans.reserve(span_count);
          for (std::uint64_t j = 0; r.ok() && j < span_count; ++j) {
            restore::StateSpan span;
            span.days.first = r.i32();
            span.days.last = r.i32();
            auto state = decode_record_state(r);
            if (!state.ok()) return state.status();
            span.state = *state;
            spans.push_back(std::move(span));
          }
        }
        if (r.boolean()) working.first_observed[reg] = r.i32();
      }
      const std::uint64_t activity_count = r.container_size(6);
      for (std::uint64_t i = 0; r.ok() && i < activity_count; ++i) {
        const asn::Asn asn_key{r.u32()};
        const std::uint64_t run_count = r.container_size(8);
        for (std::uint64_t j = 0; r.ok() && j < run_count; ++j) {
          util::DayInterval run;
          run.first = r.i32();
          run.last = r.i32();
          working.activity.mark_active(asn_key, run);
        }
      }
      const std::uint64_t open_count = r.container_size(4);
      for (std::uint64_t i = 0; r.ok() && i < open_count; ++i)
        working.open_asns.insert(r.u32());
      snap.working_ = std::move(working);
    }

    if (!r.ok() || !r.at_end())
      return pl::data_loss_error("snapshot failed to decode: " +
                                 std::string(r.error()));

    // Structural validation: the row index must stay inside the life
    // arrays and be sorted — a blob that passes CRC can still be hostile.
    for (std::size_t i = 0; i < snap.rows_.size(); ++i) {
      const AsnRow& row = snap.rows_[i];
      const std::uint64_t admin_end =
          static_cast<std::uint64_t>(row.admin_begin) + row.admin_count;
      const std::uint64_t op_end =
          static_cast<std::uint64_t>(row.op_begin) + row.op_count;
      if (admin_end > snap.admin_rows_.size() ||
          op_end > snap.op_rows_.size())
        return pl::data_loss_error("snapshot row index out of bounds");
      if (i > 0 && !(snap.rows_[i - 1].asn < row.asn))
        return pl::data_loss_error("snapshot rows not sorted by ASN");
    }

    snap.rebuild_indexes();
    return snap;
  }
};

// -- snapshot persistence --------------------------------------------------

std::string encode_snapshot(const Snapshot& snapshot) {
  robust::CheckpointWriter writer;
  SnapshotCodec::encode(snapshot, writer);
  return std::move(writer).finish();
}

pl::StatusOr<Snapshot> decode_snapshot(std::string_view frame) {
  robust::CheckpointReader reader(frame);
  if (!reader.ok())
    return pl::data_loss_error("snapshot rejected: " +
                               std::string(reader.error()));
  return SnapshotCodec::decode(reader);
}

pl::Status save_snapshot(const Snapshot& snapshot, const std::string& path,
                         robust::CrashPoints* crash) {
  const std::string frame = encode_snapshot(snapshot);

  const std::string tmp = path + ".tmp";
  if (crash != nullptr && crash->fire("durable.checkpoint.before_tmp"))
    return crash_status("durable.checkpoint.before_tmp");
  if (crash != nullptr && crash->fire("durable.checkpoint.torn_tmp")) {
    // Simulated process death halfway through the temp write: bytes land,
    // the rename never happens. The previous snapshot must stay intact.
    const pl::Status torn =
        write_file(tmp, std::string_view(frame).substr(0, frame.size() / 2));
    if (!torn.ok()) return torn;
    return crash_status("durable.checkpoint.torn_tmp");
  }
  const pl::Status written = write_file(tmp, frame);
  if (!written.ok()) return written;
  if (crash != nullptr && crash->fire("durable.checkpoint.after_tmp"))
    return crash_status("durable.checkpoint.after_tmp");
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    return pl::unavailable_error("rename failed: " + tmp + " -> " + path);
  if (crash != nullptr && crash->fire("durable.checkpoint.after_rename"))
    return crash_status("durable.checkpoint.after_rename");
  return {};
}

pl::StatusOr<Snapshot> open_snapshot(const std::string& path) {
  auto bytes = read_file(path);
  if (!bytes.ok()) return bytes.status();
  return decode_snapshot(*bytes);
}

// -- write-ahead log -------------------------------------------------------

pl::Status append_wal(const std::string& path, const DayDelta& delta,
                      robust::CrashPoints* crash) {
  robust::CheckpointWriter writer;
  encode_day_delta(writer, delta);
  const std::string frame = std::move(writer).finish();

  std::ofstream out(path, std::ios::binary | std::ios::app);
  if (!out.is_open())
    return pl::unavailable_error("cannot open WAL " + path + " for append");
  if (crash != nullptr && crash->fire("durable.wal.torn_append")) {
    // Simulated crash mid-append: half a frame lands. Replay must drop it
    // as a torn tail — this day was never acknowledged as durable.
    out.write(frame.data(), static_cast<std::streamsize>(frame.size() / 2));
    out.flush();
    return crash_status("durable.wal.torn_append");
  }
  out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  out.flush();
  if (!out.good())
    return pl::unavailable_error("WAL append failed: " + path);
  return {};
}

pl::StatusOr<WalReplay> replay_wal(const std::string& path) {
  auto bytes = read_file(path);
  if (!bytes.ok()) return bytes.status();
  const std::string_view wal = *bytes;

  WalReplay replay;
  std::size_t offset = 0;
  while (offset < wal.size()) {
    const std::size_t remaining = wal.size() - offset;
    if (remaining < kFrameHeaderBytes + kFrameTrailerBytes ||
        wal.compare(offset, 4, "PLCK") != 0) {
      // Header incomplete or unrecognizable: we cannot even find the next
      // frame boundary, so the rest of the file is unrecoverable.
      replay.torn_tail = true;
      replay.dropped_bytes += static_cast<std::int64_t>(remaining);
      break;
    }
    const std::uint64_t payload_len = read_le(wal, offset + 8, 8);
    const std::uint64_t frame_len =
        kFrameHeaderBytes + payload_len + kFrameTrailerBytes;
    if (payload_len > remaining - kFrameHeaderBytes - kFrameTrailerBytes) {
      // The final append never completed (or the length itself is garbage):
      // a partial frame can never become valid, drop it.
      replay.torn_tail = true;
      replay.dropped_bytes += static_cast<std::int64_t>(remaining);
      break;
    }
    const std::string_view frame = wal.substr(offset, frame_len);
    offset += frame_len;

    robust::CheckpointReader reader(frame);
    if (!reader.ok()) {
      ++replay.corrupt_records;  // CRC/version failure; boundary still known
      continue;
    }
    auto delta = decode_day_delta(reader);
    if (!delta.ok()) {
      ++replay.corrupt_records;
      continue;
    }
    ++replay.valid_records;
    replay.deltas.push_back(std::move(*delta));
  }
  return replay;
}

// -- deterministic retry ---------------------------------------------------

pl::StatusOr<Snapshot> load_with_retry(const SnapshotLoader& loader,
                                       const RetryPolicy& policy,
                                       VirtualClock& clock, int* attempts) {
  const int max_attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  std::int64_t delay = policy.base_delay_ms;
  pl::StatusOr<Snapshot> result = pl::internal_error("retry loop never ran");
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempts != nullptr) *attempts = attempt;
    result = loader();
    if (result.ok() || result.status().code() != pl::StatusCode::kUnavailable)
      return result;
    if (attempt == max_attempts) break;
    clock.sleep_ms(delay < policy.max_delay_ms ? delay : policy.max_delay_ms);
    delay *= 2;
  }
  return result;
}

// -- the durable service ---------------------------------------------------

const std::vector<std::string_view> kAdvanceCrashSites = {
    "durable.advance.before_append",  "durable.wal.torn_append",
    "durable.advance.after_append",   "durable.advance.after_fold",
    "durable.checkpoint.before_tmp",  "durable.checkpoint.torn_tmp",
    "durable.checkpoint.after_tmp",   "durable.checkpoint.after_rename",
};

DurableService::DurableService(DurableConfig config, QueryConfig query_config)
    : config_(std::move(config)),
      query_config_(query_config),
      metrics_(std::make_unique<obs::Registry>()),
      trace_(std::make_unique<obs::Trace>()),
      root_(trace_->root("serve.durable")),
      flight_(std::make_unique<obs::FlightRecorder>(config_.flight_capacity)) {
}

void DurableService::record_flight(obs::EventKind kind, std::uint32_t detail,
                                   std::int64_t a) noexcept {
  flight_->record(
      obs::FlightEvent{0, static_cast<std::uint32_t>(kind), detail, a, 0});
}

void DurableService::dump_flight() noexcept {
  // Best effort on purpose: every dump site is already handling a failure,
  // and a dump that cannot be written must not mask the original error.
  static_cast<void>(write_flight(flight_path(), *flight_));
}

void DurableService::note_crash() {
  const std::string& site = config_.crash->fired_site();
  record_flight(obs::EventKind::kCrash, util::crc32(site), archive_end());
  dump_flight();
}

void DurableService::note_degraded() {
  // May fire during open_impl before the QueryService exists (a rejected
  // snapshot degrades the service before anything serves).
  const std::int64_t day =
      service_ != nullptr ? archive_end() : health_.snapshot_day;
  record_flight(obs::EventKind::kDegraded,
                health_.snapshot_rejected ? 1u : 0u, day);
  dump_flight();
}

// pl-lint: allow(query-path-untraced) static factory: open_impl below opens
// the serve.durable.open span and records the kOpen flight event.
pl::StatusOr<DurableService> DurableService::open(Snapshot bootstrap,
                                                  DurableConfig config,
                                                  QueryConfig query_config) {
  if (config.dir.empty())
    return pl::invalid_argument_error("DurableConfig.dir is empty");
  DurableService service(std::move(config), query_config);
  pl::Status opened = service.open_impl(std::move(bootstrap));
  if (!opened.ok()) return opened;
  return service;
}

pl::Status DurableService::open_impl(Snapshot bootstrap) {
  obs::Span span = root_.child("serve.durable.open");
  const std::string spath = snapshot_path();

  Snapshot base;
  bool from_disk = false;
  if (config_.loader != nullptr || file_exists(spath)) {
    const SnapshotLoader loader = config_.loader != nullptr
                                      ? config_.loader
                                      : [&spath] { return open_snapshot(spath); };
    int attempts = 0;
    auto loaded = load_with_retry(loader, config_.retry, clock_, &attempts);
    health_.load_attempts = attempts;
    metrics_->counter("pl_serve_snapshot_load_attempts").add(attempts);
    if (loaded.ok()) {
      base = std::move(*loaded);
      from_disk = true;
    } else if (loaded.status().code() == pl::StatusCode::kDataLoss) {
      // A corrupt snapshot is rejected, never loaded; serve the bootstrap
      // state instead and say so. The bad file stays for forensics until
      // the next checkpoint replaces it atomically.
      health_.snapshot_rejected = true;
      health_.degraded = true;
      health_.last_error = std::string(loaded.status().message());
      metrics_->counter("pl_serve_snapshot_rejected").add(1);
      note_degraded();
      base = std::move(bootstrap);
    } else if (loaded.status().code() == pl::StatusCode::kNotFound) {
      base = std::move(bootstrap);
    } else {
      return loaded.status();  // unavailable even after retries: hard fail
    }
  } else {
    base = std::move(bootstrap);
  }

  if (!from_disk && !health_.snapshot_rejected) {
    // First open of this directory: persist the base state so a crash
    // before the first checkpoint still has something to recover from.
    pl::Status saved = save_snapshot(base, spath);
    if (!saved.ok()) return saved;
  }
  health_.snapshot_day = base.archive_end();
  span.note("snapshot_day", health_.snapshot_day);

  service_ =
      std::make_unique<QueryService>(std::move(base), query_config_,
                                     flight_.get());

  if (config_.history != nullptr) {
    // Seed (or re-anchor) the history at the recovered base state so the
    // WAL days replayed below extend it contiguously. A store that already
    // ends exactly at the base day is kept — the warm-restart case.
    if (config_.history->empty() ||
        config_.history->latest_day() != archive_end()) {
      pl::Status seeded = config_.history->reset(service_->snapshot());
      if (!seeded.ok()) {
        // History is derived, rebuildable state: detach and keep serving.
        metrics_->counter("pl_serve_history_append_failures").add(1);
        health_.last_error = std::string(seeded.message());
        config_.history = nullptr;
      }
    }
    if (config_.history != nullptr) service_->attach_history(config_.history);
  }

  const std::string wpath = wal_path();
  if (file_exists(wpath)) {
    obs::Span replay_span = root_.child("serve.durable.replay");
    auto replay = replay_wal(wpath);
    if (!replay.ok()) return replay.status();
    health_.wal_corrupt_records = replay->corrupt_records;
    health_.wal_dropped_bytes = replay->dropped_bytes;
    health_.wal_torn_tail = replay->torn_tail;
    if (replay->corrupt_records > 0) {
      health_.degraded = true;
      if (health_.last_error.empty())
        health_.last_error = "corrupt WAL records dropped on replay";
      note_degraded();
    }
    metrics_->counter("pl_serve_wal_corrupt_records")
        .add(replay->corrupt_records);
    metrics_->counter("pl_serve_wal_dropped_bytes")
        .add(replay->dropped_bytes);
    for (const DayDelta& delta : replay->deltas) {
      if (delta.day <= archive_end()) continue;  // already in the snapshot
      ++health_.wal_records;  // live: not yet covered by the snapshot file
      pl::Status folded = service_->advance_day(delta);
      if (!folded.ok()) {
        quarantine(delta.day, folded);
        continue;
      }
      record_flight(obs::EventKind::kReplayDay, 0, delta.day);
      ++health_.replayed_days;
      append_history(delta);
    }
    metrics_->counter("pl_serve_wal_replayed_days")
        .add(health_.replayed_days);
    replay_span.note("replayed_days", health_.replayed_days);
    replay_span.note("corrupt_records", health_.wal_corrupt_records);
    replay_span.note("torn_tail", health_.wal_torn_tail ? 1 : 0);
  }

  days_since_checkpoint_ = static_cast<int>(health_.replayed_days);
  refresh_gauges();
  record_flight(obs::EventKind::kOpen, health_.degraded ? 1u : 0u,
                archive_end());
  span.note("replayed_days", health_.replayed_days);
  span.note("degraded", health_.degraded ? 1 : 0);
  return {};
}

pl::Status DurableService::advance_day(const DayDelta& delta) {
  if (crashed_)
    return pl::failed_precondition_error(
        "durable service crashed (injected); reopen from disk");
  obs::Span span = root_.child("serve.durable.advance_day");
  span.note("day", delta.day);

  // Validate the sequence BEFORE the append: a mis-sequenced delta must
  // never land in the WAL, where replay would choke on it forever.
  if (delta.day != archive_end() + 1) {
    metrics_->counter("pl_serve_advance_rejected").add(1);
    return pl::invalid_argument_error(
        "advance_day expects day " + std::to_string(archive_end() + 1) +
        ", got " + std::to_string(delta.day));
  }

  if (crash_here("durable.advance.before_append"))
    return crash_status("durable.advance.before_append");

  pl::Status appended = append_wal(wal_path(), delta, config_.crash);
  if (!appended.ok()) {
    if (config_.crash != nullptr && config_.crash->fired()) {
      crashed_ = true;
      note_crash();
    }
    return appended;
  }
  metrics_->counter("pl_serve_wal_appends").add(1);
  ++health_.wal_records;

  if (crash_here("durable.advance.after_append"))
    return crash_status("durable.advance.after_append");

  pl::Status folded = service_->advance_day(delta);
  if (!folded.ok()) {
    quarantine(delta.day, folded);
    refresh_gauges();
    return folded;
  }

  if (crash_here("durable.advance.after_fold"))
    return crash_status("durable.advance.after_fold");

  append_history(delta);
  record_flight(obs::EventKind::kAdvance, 0, delta.day);
  ++days_since_checkpoint_;
  if (config_.checkpoint_every_days > 0 &&
      days_since_checkpoint_ >= config_.checkpoint_every_days) {
    pl::Status checkpointed = checkpoint_impl(span);
    if (!checkpointed.ok()) {
      if (crashed_) return checkpointed;
      // A failed checkpoint is not data loss: every folded day is still in
      // the WAL. Record it, keep serving, retry at the next boundary.
      metrics_->counter("pl_serve_checkpoint_failures").add(1);
      health_.last_error = std::string(checkpointed.message());
    }
  }
  refresh_gauges();
  return {};
}

pl::Status DurableService::checkpoint() {
  if (crashed_)
    return pl::failed_precondition_error(
        "durable service crashed (injected); reopen from disk");
  pl::Status status = checkpoint_impl(root_);
  refresh_gauges();
  return status;
}

pl::Status DurableService::checkpoint_impl(obs::Span& parent) {
  obs::Span span = parent.child("serve.durable.checkpoint");
  span.note("day", archive_end());
  pl::Status saved =
      save_snapshot(service_->snapshot(), snapshot_path(), config_.crash);
  if (!saved.ok()) {
    if (config_.crash != nullptr && config_.crash->fired()) {
      crashed_ = true;
      note_crash();
    }
    return saved;
  }
  // The snapshot now covers everything; truncate the WAL. A crash between
  // the rename above and this truncate is benign — replay skips records
  // at or before the snapshot's day.
  pl::Status truncated = write_file(wal_path(), {});
  if (!truncated.ok()) return truncated;
  metrics_->counter("pl_serve_snapshot_saves").add(1);
  record_flight(obs::EventKind::kCheckpoint, 0, archive_end());
  health_.snapshot_day = archive_end();
  health_.wal_records = 0;
  days_since_checkpoint_ = 0;
  return {};
}

void DurableService::append_history(const DayDelta& delta) {
  if (config_.history == nullptr) return;
  pl::Status appended =
      config_.history->append_day(delta, service_->snapshot());
  if (appended.ok()) {
    metrics_->counter("pl_serve_history_appends").add(1);
    return;
  }
  metrics_->counter("pl_serve_history_append_failures").add(1);
  health_.last_error = std::string(appended.message());
}

void DurableService::quarantine(util::Day day, const pl::Status& why) {
  health_.quarantined_days.push_back(day);
  health_.degraded = true;
  health_.last_error = std::string(why.message());
  metrics_->counter("pl_serve_quarantined_days").add(1);
  record_flight(obs::EventKind::kQuarantine,
                static_cast<std::uint32_t>(why.code()), day);
  note_degraded();
}

bool DurableService::crash_here(std::string_view site) {
  if (config_.crash == nullptr || !config_.crash->fire(site)) return false;
  crashed_ = true;
  note_crash();
  return true;
}

void DurableService::refresh_gauges() {
  metrics_->gauge("pl_serve_degraded").set(health_.degraded ? 1 : 0);
  metrics_->gauge("pl_serve_last_durable_day").set(archive_end());
  metrics_->gauge("pl_serve_snapshot_day").set(health_.snapshot_day);
}

HealthReport DurableService::health() const {
  HealthReport report = health_;
  // The WAL-before-fold invariant makes every folded day durable, so the
  // served archive end IS the last durable day.
  report.last_durable_day = archive_end();
  return report;
}

obs::Report DurableService::report() const {
  return {trace_->tree(), metrics_->snapshot()};
}

}  // namespace pl::serve
