#include "serve/snapshot.hpp"

#include <algorithm>
#include <utility>

#include "check/contracts.hpp"
#include "exec/pool.hpp"
#include "util/date.hpp"

namespace pl::serve {

namespace {

using restore::StateSpan;
using util::Day;

/// Merge adjacent same-state spans. The restorer may legitimately emit a
/// state's run split at a day where nothing changed (e.g. around a gap it
/// later filled); advance_day() extends the trailing span one day at a
/// time, so the working set must hold the canonical merged form for the
/// two paths to produce identical lists. Admin lifetimes are invariant
/// under this merge (a zero-gap same-state continuation merges under the
/// 4.1 rules either way), which the advance-vs-rebuild tests lock.
std::vector<StateSpan> canonicalize(const std::vector<StateSpan>& spans) {
  std::vector<StateSpan> out;
  out.reserve(spans.size());
  for (const StateSpan& span : spans) {
    if (!out.empty() && out.back().days.last + 1 == span.days.first &&
        out.back().state == span.state) {
      out.back().days.last = span.days.last;
    } else {
      out.push_back(span);
    }
  }
  return out;
}

/// Count of sorted values <= day.
std::int64_t count_le(const std::vector<Day>& sorted, Day day) noexcept {
  return std::upper_bound(sorted.begin(), sorted.end(), day) - sorted.begin();
}

/// Count of sorted values < day.
std::int64_t count_lt(const std::vector<Day>& sorted, Day day) noexcept {
  return std::lower_bound(sorted.begin(), sorted.end(), day) - sorted.begin();
}

}  // namespace

Snapshot::BuiltAsn Snapshot::build_asn_rows(
    asn::Asn asn, std::span<const lifetimes::AdminLifetime> admin,
    std::span<const lifetimes::OpLifetime> op, const SnapshotConfig& config) {
  const joint::AsnClassification cls = joint::classify_asn(admin, op);
  const joint::AsnSquatFlags squats =
      joint::flag_asn_squats(admin, op, cls, config.squat);

  BuiltAsn built;
  built.row.asn = asn;
  built.row.admin_count = static_cast<std::uint32_t>(admin.size());
  built.row.op_count = static_cast<std::uint32_t>(op.size());

  std::uint16_t flags = 0;
  if (!admin.empty()) flags |= kFlagEverAllocated;
  if (!op.empty()) flags |= kFlagEverActive;

  built.admin.reserve(admin.size());
  for (std::size_t a = 0; a < admin.size(); ++a) {
    built.admin.push_back(AdminLifeRow{admin[a], cls.admin_category[a]});
    if (admin[a].transferred) flags |= kFlagTransferred;
    switch (cls.admin_category[a]) {
      case joint::Category::kUnused: flags |= kFlagUnusedLife; break;
      case joint::Category::kPartialOverlap:
        flags |= kFlagPartialOverlap;
        break;
      case joint::Category::kCompleteOverlap:
        flags |= kFlagCompleteOverlap;
        break;
      case joint::Category::kOutsideDelegation: break;  // admin never is
    }
  }

  built.op.reserve(op.size());
  for (std::size_t o = 0; o < op.size(); ++o) {
    OpLifeRow row;
    row.life = op[o];
    row.category = cls.op_category[o];
    row.admin_index = static_cast<std::int32_t>(cls.op_to_admin[o]);
    row.dormant_squat = squats.dormant[o];
    row.outside_activity = squats.outside[o];
    if (row.dormant_squat) flags |= kFlagDormantSquat;
    if (row.outside_activity) flags |= kFlagOutsideActivity;
    built.op.push_back(row);
  }

  built.row.flags = flags;
  return built;
}

void Snapshot::append_built(BuiltAsn&& built) {
  if (built.admin.empty() && built.op.empty()) return;
  built.row.admin_begin = static_cast<std::uint32_t>(admin_rows_.size());
  built.row.op_begin = static_cast<std::uint32_t>(op_rows_.size());
  rows_.push_back(built.row);
  admin_rows_.insert(admin_rows_.end(), built.admin.begin(),
                     built.admin.end());
  op_rows_.insert(op_rows_.end(), built.op.begin(), built.op.end());
}

void Snapshot::assemble(const lifetimes::AdminDataset& admin,
                        const lifetimes::OpDataset& op) {
  rows_.clear();
  admin_rows_.clear();
  op_rows_.clear();

  struct Group {
    std::uint32_t asn;
    const std::vector<std::size_t>* admin_indices;
    const std::vector<std::size_t>* op_indices;
  };
  std::vector<Group> groups;
  groups.reserve(admin.by_asn.size() + op.by_asn.size());
  auto a_it = admin.by_asn.begin();
  auto o_it = op.by_asn.begin();
  while (a_it != admin.by_asn.end() || o_it != op.by_asn.end()) {
    if (o_it == op.by_asn.end() ||
        (a_it != admin.by_asn.end() && a_it->first < o_it->first)) {
      groups.push_back(Group{a_it->first, &a_it->second, nullptr});
      ++a_it;
    } else if (a_it == admin.by_asn.end() || o_it->first < a_it->first) {
      groups.push_back(Group{o_it->first, nullptr, &o_it->second});
      ++o_it;
    } else {
      groups.push_back(Group{a_it->first, &a_it->second, &o_it->second});
      ++a_it;
      ++o_it;
    }
  }

  const auto contiguous = [](const std::vector<std::size_t>& indices) {
    for (std::size_t i = 1; i < indices.size(); ++i)
      if (indices[i] != indices[0] + i) return false;
    return true;
  };

  // Per-ASN row construction is independent: build each group into its own
  // slot in parallel, then concatenate in ascending-ASN order (identical to
  // the serial loop — see DESIGN.md §8 on the slot-merge discipline).
  std::vector<BuiltAsn> slots(groups.size());
  exec::parallel_for(
      groups.size(),
      [&](std::size_t begin, std::size_t end) {
        std::vector<lifetimes::AdminLifetime> admin_scratch;
        std::vector<lifetimes::OpLifetime> op_scratch;
        for (std::size_t g = begin; g < end; ++g) {
          std::span<const lifetimes::AdminLifetime> admin_span;
          if (groups[g].admin_indices != nullptr) {
            const auto& indices = *groups[g].admin_indices;
            if (contiguous(indices)) {
              admin_span = {admin.lifetimes.data() + indices.front(),
                            indices.size()};
            } else {
              admin_scratch.clear();
              for (const std::size_t a : indices)
                admin_scratch.push_back(admin.lifetimes[a]);
              admin_span = admin_scratch;
            }
          }
          std::span<const lifetimes::OpLifetime> op_span;
          if (groups[g].op_indices != nullptr) {
            const auto& indices = *groups[g].op_indices;
            if (contiguous(indices)) {
              op_span = {op.lifetimes.data() + indices.front(),
                         indices.size()};
            } else {
              op_scratch.clear();
              for (const std::size_t o : indices)
                op_scratch.push_back(op.lifetimes[o]);
              op_span = op_scratch;
            }
          }
          slots[g] = build_asn_rows(asn::Asn{groups[g].asn}, admin_span,
                                    op_span, config_);
        }
      },
      /*grain=*/64);

  for (BuiltAsn& built : slots) append_built(std::move(built));

  PL_ASSERT_SORTED(rows_,
                   [](const AsnRow& a, const AsnRow& b) {
                     return a.asn < b.asn;
                   },
                   "snapshot rows after assemble()");
}

void Snapshot::rebuild_indexes() {
  for (auto& list : by_registry_) list.clear();
  by_country_.clear();
  admin_starts_.clear();
  admin_ends_.clear();
  op_starts_.clear();
  op_ends_.clear();
  admin_starts_.reserve(admin_rows_.size());
  admin_ends_.reserve(admin_rows_.size());
  op_starts_.reserve(op_rows_.size());
  op_ends_.reserve(op_rows_.size());

  for (std::uint32_t r = 0; r < rows_.size(); ++r) {
    const AsnRow& row = rows_[r];
    std::array<bool, asn::kRirCount> seen_registry{};
    std::set<asn::CountryCode> seen_country;
    for (const AdminLifeRow& life : admin_lives(row)) {
      admin_starts_.push_back(life.life.days.first);
      admin_ends_.push_back(life.life.days.last);
      const std::size_t rir = asn::index_of(life.life.registry);
      if (!seen_registry[rir]) {
        seen_registry[rir] = true;
        by_registry_[rir].push_back(r);
      }
      if (!life.life.country.unknown() &&
          seen_country.insert(life.life.country).second)
        by_country_[life.life.country].push_back(r);
    }
    for (const OpLifeRow& life : op_lives(row)) {
      op_starts_.push_back(life.life.days.first);
      op_ends_.push_back(life.life.days.last);
    }
  }
  std::sort(admin_starts_.begin(), admin_starts_.end());
  std::sort(admin_ends_.begin(), admin_ends_.end());
  std::sort(op_starts_.begin(), op_starts_.end());
  std::sort(op_ends_.begin(), op_ends_.end());
}

Snapshot Snapshot::build(const restore::RestoredArchive& archive,
                         const bgp::ActivityTable& activity,
                         util::Day archive_end, const SnapshotConfig& config) {
  PL_EXPECT(([&] {
              for (std::size_t r = 0; r < asn::kRirCount; ++r)
                if (archive.registries[r].rir != asn::kAllRirs[r])
                  return false;
              return true;
            })(),
            "Snapshot::build requires the canonical registry order "
            "(registries[i].rir == kAllRirs[i])");

  Snapshot snap;
  snap.config_ = config;
  snap.archive_end_ = archive_end;

  const lifetimes::AdminDataset admin =
      lifetimes::build_admin_lifetimes(archive, archive_end, config.admin);
  const lifetimes::OpDataset op =
      lifetimes::build_op_lifetimes(activity, config.op_timeout_days);
  snap.assemble(admin, op);
  snap.rebuild_indexes();

  if (config.keep_working_set) {
    WorkingSet working;
    for (std::size_t r = 0; r < asn::kRirCount; ++r)
      for (const auto& [asn_value, spans] : archive.registries[r].spans)
        working.spans[r].emplace(asn_value, canonicalize(spans));
    working.first_observed = lifetimes::registry_first_observed(archive);
    working.activity = activity;
    for (const AsnRow& row : snap.rows_)
      for (const AdminLifeRow& life : snap.admin_lives(row))
        if (life.life.open_ended) {
          working.open_asns.insert(row.asn.value);
          break;
        }
    snap.working_ = std::move(working);
  }
  return snap;
}

Snapshot Snapshot::from_datasets(lifetimes::AdminDataset admin,
                                 lifetimes::OpDataset op,
                                 const SnapshotConfig& config) {
  Snapshot snap;
  snap.config_ = config;
  snap.config_.keep_working_set = false;

  admin.index();
  if (op.by_asn.empty() && !op.lifetimes.empty()) {
    std::sort(op.lifetimes.begin(), op.lifetimes.end(),
              [](const lifetimes::OpLifetime& a,
                 const lifetimes::OpLifetime& b) {
                if (a.asn != b.asn) return a.asn < b.asn;
                return a.days.first < b.days.first;
              });
    for (std::size_t i = 0; i < op.lifetimes.size(); ++i)
      op.by_asn[op.lifetimes[i].asn.value].push_back(i);
  }

  util::Day end = admin.archive_end;
  for (const lifetimes::AdminLifetime& life : admin.lifetimes)
    end = std::max(end, life.days.last);
  for (const lifetimes::OpLifetime& life : op.lifetimes)
    end = std::max(end, life.days.last);
  snap.archive_end_ = end;

  snap.assemble(admin, op);
  snap.rebuild_indexes();
  return snap;
}

const AsnRow* Snapshot::find(asn::Asn asn) const noexcept {
  const auto it = std::lower_bound(
      rows_.begin(), rows_.end(), asn,
      [](const AsnRow& row, asn::Asn key) { return row.asn < key; });
  if (it == rows_.end() || it->asn != asn) return nullptr;
  return &*it;
}

bool Snapshot::admin_alive_on(const AsnRow& row, util::Day day) const noexcept {
  for (const AdminLifeRow& life : admin_lives(row))
    if (life.life.days.contains(day)) return true;
  return false;
}

bool Snapshot::op_alive_on(const AsnRow& row, util::Day day) const noexcept {
  for (const OpLifeRow& life : op_lives(row))
    if (life.life.days.contains(day)) return true;
  return false;
}

AliveCensus Snapshot::alive_census(util::Day day) const noexcept {
  // Lives covering `day` = lives started by `day` minus lives ended before
  // it; both counts are O(log n) over the sorted event arrays.
  AliveCensus census;
  census.admin_alive = count_le(admin_starts_, day) - count_lt(admin_ends_, day);
  census.op_alive = count_le(op_starts_, day) - count_lt(op_ends_, day);
  return census;
}

pl::Status Snapshot::advance_day(const DayDelta& delta, AdvanceStats* stats) {
  if (!working_)
    return pl::failed_precondition_error(
        "snapshot has no working set (built from datasets, not from a "
        "restored archive); advance_day needs Snapshot::build output");
  if (delta.day != archive_end_ + 1)
    return pl::invalid_argument_error(
        "advance_day expects day " + util::format_iso(archive_end_ + 1) +
        ", got " + util::format_iso(delta.day));

  // Validate before mutating so a rejected delta leaves the snapshot
  // untouched: at most one fact per (registry, ASN).
  {
    std::set<std::pair<std::size_t, std::uint32_t>> seen;
    for (const DelegationFact& fact : delta.delegation)
      if (!seen.emplace(asn::index_of(fact.registry), fact.asn.value).second)
        return pl::invalid_argument_error(
            "duplicate delegation fact for AS" + asn::to_string(fact.asn) +
            " in one registry on " + util::format_iso(delta.day));
  }

  WorkingSet& working = *working_;

  // ASNs needing admin recomputation: everything open-ended under the old
  // archive end (their open_ended bit — and possibly their last life's end
  // — depends on the moving end) plus everything with a delegated fact
  // today. Ops: everything active today. All other ASNs' rows are
  // unchanged by construction.
  std::set<std::uint32_t> touched_admin = working.open_asns;
  std::set<std::uint32_t> touched_op;

  for (const DelegationFact& fact : delta.delegation) {
    const std::size_t r = asn::index_of(fact.registry);
    auto& fo = working.first_observed[r];
    if (!fo) fo = delta.day;  // registry's first published day
    std::vector<StateSpan>& spans = working.spans[r][fact.asn.value];
    if (!spans.empty() && spans.back().days.last == delta.day - 1 &&
        spans.back().state == fact.state) {
      spans.back().days.last = delta.day;  // state unchanged: extend the run
    } else {
      spans.push_back(
          StateSpan{util::DayInterval{delta.day, delta.day}, fact.state});
    }
    if (dele::is_delegated(fact.state.status))
      touched_admin.insert(fact.asn.value);
  }

  for (const asn::Asn active : delta.active) {
    working.activity.mark_active(active, delta.day);
    touched_op.insert(active.value);
  }

  archive_end_ = delta.day;

  if (stats != nullptr) {
    stats->facts = static_cast<std::int64_t>(delta.delegation.size());
    stats->active = static_cast<std::int64_t>(delta.active.size());
    stats->touched_admin = static_cast<std::int64_t>(touched_admin.size());
    stats->touched_op = static_cast<std::int64_t>(touched_op.size());
  }

  // Rebuild the serving rows: untouched ASNs' rows are copied verbatim
  // (only begin offsets move); touched ASNs re-run the per-ASN builders —
  // the same code the full build path runs, which is what makes the
  // advance bit-identical to a rebuild.
  std::set<std::uint32_t> touched = touched_admin;
  touched.insert(touched_op.begin(), touched_op.end());

  std::vector<AsnRow> old_rows;
  std::vector<AdminLifeRow> old_admin;
  std::vector<OpLifeRow> old_op;
  old_rows.swap(rows_);
  old_admin.swap(admin_rows_);
  old_op.swap(op_rows_);
  rows_.reserve(old_rows.size() + touched.size());
  admin_rows_.reserve(old_admin.size());
  op_rows_.reserve(old_op.size());

  std::int64_t reclassified = 0;
  auto row_it = old_rows.begin();
  auto touched_it = touched.begin();
  while (row_it != old_rows.end() || touched_it != touched.end()) {
    if (touched_it == touched.end() ||
        (row_it != old_rows.end() && row_it->asn.value < *touched_it)) {
      // Untouched: copy the row and its lives, fixing offsets.
      AsnRow row = *row_it++;
      const std::uint32_t admin_begin = row.admin_begin;
      const std::uint32_t op_begin = row.op_begin;
      row.admin_begin = static_cast<std::uint32_t>(admin_rows_.size());
      row.op_begin = static_cast<std::uint32_t>(op_rows_.size());
      admin_rows_.insert(admin_rows_.end(), old_admin.begin() + admin_begin,
                         old_admin.begin() + admin_begin + row.admin_count);
      op_rows_.insert(op_rows_.end(), old_op.begin() + op_begin,
                      old_op.begin() + op_begin + row.op_count);
      rows_.push_back(row);
      continue;
    }

    const std::uint32_t asn_value = *touched_it++;
    const AsnRow* old_row =
        (row_it != old_rows.end() && row_it->asn.value == asn_value)
            ? &*row_it
            : nullptr;

    std::vector<lifetimes::AdminLifetime> admin_lifetimes;
    if (touched_admin.contains(asn_value)) {
      lifetimes::AsnSpansByRegistry span_lists{};
      bool any = false;
      for (std::size_t r = 0; r < asn::kRirCount; ++r) {
        const auto it = working.spans[r].find(asn_value);
        if (it != working.spans[r].end()) {
          span_lists[r] = &it->second;
          any = true;
        }
      }
      if (any)
        admin_lifetimes = lifetimes::build_asn_admin_lifetimes(
            asn_value, span_lists, working.first_observed, archive_end_,
            config_.admin);
    } else if (old_row != nullptr) {
      for (std::uint32_t a = 0; a < old_row->admin_count; ++a)
        admin_lifetimes.push_back(
            old_admin[old_row->admin_begin + a].life);
    }

    std::vector<lifetimes::OpLifetime> op_lifetimes;
    if (touched_op.contains(asn_value)) {
      const util::IntervalSet* activity =
          working.activity.activity(asn::Asn{asn_value});
      if (activity != nullptr)
        for (const util::DayInterval& days :
             activity->coalesce(config_.op_timeout_days))
          op_lifetimes.push_back(
              lifetimes::OpLifetime{asn::Asn{asn_value}, days});
    } else if (old_row != nullptr) {
      for (std::uint32_t o = 0; o < old_row->op_count; ++o)
        op_lifetimes.push_back(old_op[old_row->op_begin + o].life);
    }

    if (old_row != nullptr) ++row_it;

    if (touched_admin.contains(asn_value)) {
      const bool open = std::any_of(
          admin_lifetimes.begin(), admin_lifetimes.end(),
          [](const lifetimes::AdminLifetime& life) { return life.open_ended; });
      if (open)
        working.open_asns.insert(asn_value);
      else
        working.open_asns.erase(asn_value);
    }

    if (admin_lifetimes.empty() && op_lifetimes.empty()) continue;
    append_built(
        build_asn_rows(asn::Asn{asn_value}, admin_lifetimes, op_lifetimes,
                       config_));
    ++reclassified;
  }

  if (stats != nullptr) stats->reclassified = reclassified;
  rebuild_indexes();
  return {};
}

bool operator==(const Snapshot& a, const Snapshot& b) {
  if (!(a.rows_ == b.rows_ && a.admin_rows_ == b.admin_rows_ &&
        a.op_rows_ == b.op_rows_ && a.archive_end_ == b.archive_end_ &&
        a.config_ == b.config_ && a.by_registry_ == b.by_registry_ &&
        a.by_country_ == b.by_country_ &&
        a.admin_starts_ == b.admin_starts_ &&
        a.admin_ends_ == b.admin_ends_ && a.op_starts_ == b.op_starts_ &&
        a.op_ends_ == b.op_ends_))
    return false;
  if (a.working_.has_value() != b.working_.has_value()) return false;
  if (!a.working_.has_value()) return true;
  const Snapshot::WorkingSet& wa = *a.working_;
  const Snapshot::WorkingSet& wb = *b.working_;
  return wa.spans == wb.spans && wa.first_observed == wb.first_observed &&
         wa.activity.entries() == wb.activity.entries() &&
         wa.open_asns == wb.open_asns;
}

DayDelta slice_day(const restore::RestoredArchive& archive,
                   const bgp::ActivityTable& activity, util::Day day) {
  DayDelta delta;
  delta.day = day;
  for (std::size_t r = 0; r < asn::kRirCount; ++r) {
    const restore::RestoredRegistry& registry = archive.registries[r];
    for (const auto& [asn_value, spans] : registry.spans) {
      // Spans are sorted and disjoint: binary search the one covering day.
      const auto it = std::upper_bound(
          spans.begin(), spans.end(), day,
          [](util::Day d, const StateSpan& span) { return d < span.days.first; });
      if (it == spans.begin()) continue;
      const StateSpan& span = *std::prev(it);
      if (!span.days.contains(day)) continue;
      delta.delegation.push_back(
          DelegationFact{asn::Asn{asn_value}, asn::kAllRirs[r], span.state});
    }
  }
  for (const auto& [asn_key, days] : activity.entries())
    if (days.contains(day)) delta.active.push_back(asn_key);
  return delta;
}

restore::RestoredArchive truncate_archive(
    const restore::RestoredArchive& archive, util::Day last_day) {
  restore::RestoredArchive out;
  out.cross = archive.cross;
  for (std::size_t r = 0; r < asn::kRirCount; ++r) {
    out.registries[r].rir = archive.registries[r].rir;
    out.registries[r].report = archive.registries[r].report;
    for (const auto& [asn_value, spans] : archive.registries[r].spans) {
      std::vector<StateSpan> clipped;
      for (const StateSpan& span : spans) {
        if (span.days.first > last_day) break;
        StateSpan copy = span;
        copy.days.last = std::min(copy.days.last, last_day);
        clipped.push_back(copy);
      }
      if (!clipped.empty())
        out.registries[r].spans.emplace(asn_value, std::move(clipped));
    }
  }
  return out;
}

bgp::ActivityTable truncate_activity(const bgp::ActivityTable& activity,
                                     util::Day last_day) {
  bgp::ActivityTable out;
  for (const auto& [asn_key, days] : activity.entries())
    for (const util::DayInterval& run : days.runs()) {
      if (run.first > last_day) break;
      out.mark_active(asn_key,
                      util::DayInterval{run.first,
                                        std::min(run.last, last_day)});
    }
  return out;
}

void record_metrics(const Snapshot& snapshot, obs::Registry& metrics) {
  metrics.gauge("pl_serve_snapshot_asns")
      .set(static_cast<std::int64_t>(snapshot.asn_count()));
  metrics.gauge("pl_serve_snapshot_admin_lives")
      .set(static_cast<std::int64_t>(snapshot.admin_life_count()));
  metrics.gauge("pl_serve_snapshot_op_lives")
      .set(static_cast<std::int64_t>(snapshot.op_life_count()));
  metrics.gauge("pl_serve_archive_end")
      .set(static_cast<std::int64_t>(snapshot.archive_end()));
}

}  // namespace pl::serve
