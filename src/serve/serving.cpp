#include "serve/serving.hpp"

#include <utility>

#include "serve/durable.hpp"

namespace pl::serve {

ServingWorld run_simulated_serving(pipeline::Config config,
                                   SnapshotConfig snapshot_config,
                                   const std::string& snapshot_path) {
  ServingWorld world;
  snapshot_config.op_timeout_days = config.op_timeout_days;
  config.post_stage = [&world, &snapshot_config, &snapshot_path](
                          pipeline::Result& result, obs::Span& run,
                          obs::Registry& metrics) {
    obs::Span stage = run.child("serve.build_snapshot");
    world.snapshot =
        Snapshot::build(result.restored, result.op_world.activity,
                        result.truth.archive_end, snapshot_config);
    stage.note("asns", static_cast<std::int64_t>(world.snapshot.asn_count()));
    stage.note("admin_lives",
               static_cast<std::int64_t>(world.snapshot.admin_life_count()));
    stage.note("op_lives",
               static_cast<std::int64_t>(world.snapshot.op_life_count()));
    record_metrics(world.snapshot, metrics);
    stage.finish();

    if (!snapshot_path.empty()) {
      obs::Span save = run.child("serve.save_snapshot");
      world.save_status = save_snapshot(world.snapshot, snapshot_path);
      save.note("ok", world.save_status.ok() ? 1 : 0);
      save.note("day",
                static_cast<std::int64_t>(world.snapshot.archive_end()));
      metrics.counter("pl_serve_snapshot_saves")
          .add(world.save_status.ok() ? 1 : 0);
    }
  };
  world.result = pipeline::run_simulated(config);
  return world;
}

}  // namespace pl::serve
