#include "serve/serving.hpp"

#include <utility>

namespace pl::serve {

ServingWorld run_simulated_serving(pipeline::Config config,
                                   SnapshotConfig snapshot_config) {
  ServingWorld world;
  snapshot_config.op_timeout_days = config.op_timeout_days;
  config.post_stage = [&world, &snapshot_config](pipeline::Result& result,
                                                 obs::Span& run,
                                                 obs::Registry& metrics) {
    obs::Span stage = run.child("serve.build_snapshot");
    world.snapshot =
        Snapshot::build(result.restored, result.op_world.activity,
                        result.truth.archive_end, snapshot_config);
    stage.note("asns", static_cast<std::int64_t>(world.snapshot.asn_count()));
    stage.note("admin_lives",
               static_cast<std::int64_t>(world.snapshot.admin_life_count()));
    stage.note("op_lives",
               static_cast<std::int64_t>(world.snapshot.op_life_count()));
    record_metrics(world.snapshot, metrics);
  };
  world.result = pipeline::run_simulated(config);
  return world;
}

}  // namespace pl::serve
