// The query front-end over a serving Snapshot.
//
// QueryService answers the questions the paper's analyses keep asking —
// "what do we know about AS X?", "was it alive on day D?", "which ASNs in
// registry R / country C match?" — with flat value-type answers, a sharded
// LRU answer cache, and full obs instrumentation (`serve.*` spans,
// `pl_serve_*` metrics).
//
// The request shape is one struct: `Query{subject, options}`. The subject
// says WHAT is asked (point lookup, batch, alive, census, scan); the
// options say HOW — `QueryOptions::as_of` routes the question to a past
// day through an attached `HistoryBackend` (DESIGN.md §16), and
// `use_cache` lets a caller bypass the answer cache without changing the
// answer. The pre-redesign entry points (`lookup`, `lookup_batch`,
// `alive_on`, ...) remain as thin source-compat shims for one PR; they are
// bit-identical to `query()` with default options.
//
// Batch subjects are the primary API: vector-in/vector-out, misses computed
// in parallel over the exec pool. Answers are deterministic — bit-identical
// across PL_THREADS settings and cache on/off (the serve oracle test locks
// this) — because the cache stores full answers keyed by the full query and
// the parallel miss phase writes into per-index slots merged in order.
//
// Temporal queries ride the same history routing: `drift(from, to)` tallies
// the Table-3 taxonomy at two as-of days, `first_flip(asn, category)` finds
// the first recorded day an ASN's admin classification became `category`.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/latency.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "serve/cache.hpp"
#include "serve/history_backend.hpp"
#include "serve/snapshot.hpp"

namespace pl::serve {

struct QueryConfig {
  /// Total cached answers across both answer caches (0 disables storage).
  std::size_t cache_capacity = 4096;
  bool enable_cache = true;

  friend bool operator==(const QueryConfig&, const QueryConfig&) = default;
};

/// Everything the snapshot knows about one ASN, flattened for consumers
/// that don't want to walk life rows. `latest_*` describe the most recent
/// admin life; `currently_*` are evaluated against the snapshot's archive
/// end, so they stay correct as the service advances.
struct AsnAnswer {
  asn::Asn asn;
  bool known = false;  ///< false: the study never saw this ASN

  std::uint32_t admin_life_count = 0;
  std::uint32_t op_life_count = 0;
  util::DayInterval admin_span;  ///< hull of all admin lives (empty if none)
  util::DayInterval op_span;     ///< hull of all op lives (empty if none)

  asn::Rir latest_registry = asn::Rir::kArin;
  asn::CountryCode latest_country;
  util::Day latest_registration = 0;
  joint::Category latest_admin_category = joint::Category::kUnused;

  bool currently_allocated = false;
  bool currently_active = false;
  bool transferred = false;
  bool dormant_squat = false;
  bool outside_activity = false;

  friend bool operator==(const AsnAnswer&, const AsnAnswer&) = default;
};

/// "Was this ASN administratively / operationally alive on day D?"
struct AliveAnswer {
  asn::Asn asn;
  bool admin_alive = false;
  bool op_alive = false;

  friend bool operator==(const AliveAnswer&, const AliveAnswer&) = default;
};

/// Range scan over the per-ASN index. All filters are conjunctive; unset
/// optionals don't filter. Results come back in ascending ASN order.
struct ScanQuery {
  asn::Asn first{0};
  asn::Asn last{0xFFFFFFFFu};
  std::optional<asn::Rir> registry;         ///< any admin life under this RIR
  std::optional<asn::CountryCode> country;  ///< any admin life in this country
  std::optional<util::Day> admin_alive_on;
  std::optional<util::Day> op_alive_on;
  std::size_t limit = static_cast<std::size_t>(-1);
};

struct CensusAnswer {
  util::Day day = 0;
  std::int64_t admin_alive = 0;
  std::int64_t op_alive = 0;

  friend bool operator==(const CensusAnswer&, const CensusAnswer&) = default;
};

// -- the unified request shape ---------------------------------------------

/// What kind of question a Query asks. Point and batch kinds stay distinct
/// so the flight-event and metric shapes of the old entry points carry over
/// exactly (a point lookup records one event, a batch one per item).
enum class QueryKind : std::uint8_t {
  kLookup,       ///< one ASN          → QueryResult::lookups[0]
  kLookupBatch,  ///< many ASNs        → QueryResult::lookups
  kAlive,        ///< one ASN + day    → QueryResult::alive[0]
  kAliveBatch,   ///< many ASNs + day  → QueryResult::alive
  kCensus,       ///< one day          → QueryResult::census
  kScan,         ///< ScanQuery filter → QueryResult::lookups
};

/// How to answer: which day's snapshot, and whether the answer cache may
/// serve/store the result. Defaults reproduce the old entry points exactly.
struct QueryOptions {
  /// 0 (or the live archive end) = answer from the current snapshot. Any
  /// earlier day routes through the attached HistoryBackend: the answer is
  /// what the service would have said on that day. Requires
  /// `attach_history()`; fails kFailedPrecondition otherwise.
  util::Day as_of = 0;
  /// false = compute fresh, never probe or fill the cache. Answers are
  /// bit-identical either way (the oracle test locks this); as-of answers
  /// always bypass the cache, which is keyed by the live snapshot.
  bool use_cache = true;

  friend bool operator==(const QueryOptions&, const QueryOptions&) = default;
};

/// The subject of a query; which fields matter depends on `kind`.
struct QuerySubject {
  QueryKind kind = QueryKind::kLookup;
  std::vector<asn::Asn> asns;  ///< kLookup*/kAlive*: the ASN(s) asked about
  util::Day day = 0;           ///< kAlive*/kCensus: the day asked about
  ScanQuery scan;              ///< kScan: the filter
};

/// One request: subject + options. Build directly or via the factories.
struct Query {
  QuerySubject subject;
  QueryOptions options;

  static Query lookup(asn::Asn asn, QueryOptions options = {});
  static Query lookup_batch(std::vector<asn::Asn> asns,
                            QueryOptions options = {});
  static Query alive(asn::Asn asn, util::Day day, QueryOptions options = {});
  static Query alive_batch(std::vector<asn::Asn> asns, util::Day day,
                           QueryOptions options = {});
  static Query census(util::Day day, QueryOptions options = {});
  static Query scan(ScanQuery scan, QueryOptions options = {});
};

/// The answer slot matching the subject kind (see QueryKind). Unused slots
/// stay empty, so one result type covers every kind without a variant.
struct QueryResult {
  std::vector<AsnAnswer> lookups;
  std::vector<AliveAnswer> alive;
  std::optional<CensusAnswer> census;

  friend bool operator==(const QueryResult&, const QueryResult&) = default;
};

// -- temporal answers ------------------------------------------------------

/// Number of joint taxonomy classes (array index space for drift tallies).
inline constexpr std::size_t kTaxonomyCategories =
    static_cast<std::size_t>(joint::Category::kOutsideDelegation) + 1;

/// Table-3 taxonomy tallies at two as-of days: how many admin lives of each
/// class the study knew about then vs now. Indexed by joint::Category.
struct DriftAnswer {
  util::Day from = 0;
  util::Day to = 0;
  std::array<std::int64_t, kTaxonomyCategories> from_counts{};
  std::array<std::int64_t, kTaxonomyCategories> to_counts{};

  friend bool operator==(const DriftAnswer&, const DriftAnswer&) = default;
};

/// Query front-end owning a Snapshot, its caches, and its obs state.
/// Thread-compatible: concurrent reads are safe against each other but not
/// against advance_day(); callers serialize advances externally.
class QueryService {
 public:
  /// `flight` (nullable) shares an external recorder — DurableService passes
  /// its own so query and durability events interleave in one timeline. A
  /// stand-alone service owns a recorder of the default capacity instead,
  /// so every query is attributable either way.
  explicit QueryService(Snapshot snapshot, QueryConfig config = {},
                        obs::FlightRecorder* flight = nullptr);

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // -- the unified entry point ---------------------------------------------

  /// Answer one Query. kInvalidArgument when the subject is malformed
  /// (point kinds need exactly one ASN) or `as_of` is in the future;
  /// kFailedPrecondition when `as_of` needs a history store and none is
  /// attached; kNotFound when `as_of` predates the recorded history.
  pl::StatusOr<QueryResult> query(const Query& q);

  /// Attach the snapshot history used for `as_of` routing and the temporal
  /// queries. Not owned; must outlive the service (or be detached with
  /// nullptr). A DurableService wires its configured backend in here.
  void attach_history(HistoryBackend* history) noexcept {
    history_ = history;
  }
  HistoryBackend* history() const noexcept { return history_; }

  // -- temporal queries ----------------------------------------------------

  /// Taxonomy tallies as of `from` vs as of `to` (0 = today). Routes both
  /// days through the history store like any as_of query.
  pl::StatusOr<DriftAnswer> drift(util::Day from, util::Day to);

  /// First recorded day `asn`'s admin classification flipped TO `category`
  /// — the earliest day D in the stored history where the life covering D
  /// is classified `category` and the day before was not (a classification
  /// already in force at the start of the recorded range counts as day
  /// one). kNotFound when it never happened within the recorded range.
  pl::StatusOr<util::Day> first_flip(asn::Asn asn, joint::Category category);

  // -- point + batch shims (pre-redesign surface; one PR of source compat) --

  AsnAnswer lookup(asn::Asn asn);
  std::vector<AsnAnswer> lookup_batch(const std::vector<asn::Asn>& asns);

  AliveAnswer alive_on(asn::Asn asn, util::Day day);
  std::vector<AliveAnswer> alive_on_batch(const std::vector<asn::Asn>& asns,
                                          util::Day day);

  /// Whole-snapshot alive counts for one day (never cached: it is already
  /// O(log n) on the snapshot's sorted event arrays).
  CensusAnswer census(util::Day day);

  /// Filtered range scan; answers computed fresh (scans are unbounded in
  /// shape, so caching them would just churn the LRU).
  std::vector<AsnAnswer> scan(const ScanQuery& query);

  // -- incremental update ------------------------------------------------

  /// Fold one day into the snapshot. On success the answer caches are
  /// dropped (their archive-end-dependent bits went stale) and version()
  /// increments.
  pl::Status advance_day(const DayDelta& delta);

  // -- introspection -----------------------------------------------------

  const Snapshot& snapshot() const noexcept { return snapshot_; }
  const QueryConfig& config() const noexcept { return config_; }
  std::uint64_t version() const noexcept { return version_; }

  /// Trace tree + metrics snapshot for this service (pl-obs/2 exportable).
  obs::Report report() const;

  /// The flight recorder receiving this service's per-query events (owned
  /// or shared, see the constructor).
  const obs::FlightRecorder& flight() const noexcept { return *flight_; }

 private:
  // Every serving path is parameterized on the snapshot it answers from
  // (the live one or a history reconstruction) and on whether the cache
  // may participate — `use_cache` is only ever true for the live snapshot,
  // so past-day answers can never poison the (ASN-keyed) caches.
  AsnAnswer answer_for(const Snapshot& snap, asn::Asn asn) const;
  AliveAnswer alive_for(const Snapshot& snap, asn::Asn asn,
                        util::Day day) const;

  AsnAnswer lookup_impl(const Snapshot& snap, asn::Asn asn, bool use_cache);
  std::vector<AsnAnswer> lookup_batch_impl(const Snapshot& snap,
                                           const std::vector<asn::Asn>& asns,
                                           bool use_cache);
  AliveAnswer alive_impl(const Snapshot& snap, asn::Asn asn, util::Day day,
                         bool use_cache);
  std::vector<AliveAnswer> alive_batch_impl(const Snapshot& snap,
                                            const std::vector<asn::Asn>& asns,
                                            util::Day day, bool use_cache);
  CensusAnswer census_impl(const Snapshot& snap, util::Day day);
  std::vector<AsnAnswer> scan_impl(const Snapshot& snap,
                                   const ScanQuery& query);

  /// Resolve an as_of day to the snapshot to answer from: the live one for
  /// 0 / the current archive end, a history reconstruction otherwise. The
  /// pointer follows HistoryBackend::at()'s validity rule.
  pl::StatusOr<const Snapshot*> snapshot_as_of(util::Day day);

  static std::uint64_t alive_key(asn::Asn asn, util::Day day) noexcept {
    return (static_cast<std::uint64_t>(asn.value) << 32) |
           static_cast<std::uint32_t>(day);
  }

  /// Per-API-call sequence number feeding RequestId derivation. Gated on
  /// obs::kEnabled so the PL_OBS_OFF build pays nothing.
  std::uint64_t next_sequence() noexcept {
    if constexpr (obs::kEnabled)
      return sequence_.fetch_add(1, std::memory_order_relaxed);
    else
      return 0;
  }

  void record_event(obs::RequestId id, obs::EventKind kind,
                    std::uint32_t detail, std::int64_t a) noexcept {
    flight_->record(obs::FlightEvent{
        id.value, static_cast<std::uint32_t>(kind), detail, a, 0});
  }

  Snapshot snapshot_;
  QueryConfig config_;
  HistoryBackend* history_ = nullptr;  ///< as_of routing; not owned

  obs::Registry metrics_;
  obs::Trace trace_;
  obs::Span root_;

  // Flight recorder: owned unless an external one was passed in. Behind
  // unique_ptr so the atomics never move.
  std::unique_ptr<obs::FlightRecorder> owned_flight_;
  obs::FlightRecorder* flight_;

  ShardedLruCache<AsnAnswer> lookup_cache_;
  ShardedLruCache<AliveAnswer> alive_cache_;

  // Hot counters hoisted once (get-or-create takes the registry mutex).
  obs::Counter& hits_;
  obs::Counter& misses_;
  obs::Counter& evictions_;

  // Latency histograms hoisted the same way. Point-path samples are
  // decimated 1-in-8 (DESIGN.md §14.4) to keep the clock reads off the
  // common path; batch/scan/advance scopes time every call.
  obs::LatencyHisto& point_latency_;
  obs::LatencyHisto& alive_latency_;
  obs::LatencyHisto& batch_latency_;
  obs::LatencyHisto& scan_latency_;
  obs::LatencyHisto& census_latency_;
  obs::LatencyHisto& advance_latency_;

  std::atomic<std::uint64_t> sequence_{0};
  std::uint64_t version_ = 0;
};

}  // namespace pl::serve
