// Loading a query-only Snapshot from published Listing-1 datasets.
#pragma once

#include <string>

#include "serve/snapshot.hpp"
#include "util/status.hpp"

namespace pl::serve {

/// Load both Listing-1 JSON-lines files and assemble a query-only snapshot
/// (no working set — advance_day() fails with kFailedPrecondition).
/// Propagates the loader's kUnavailable / kDataLoss statuses.
pl::StatusOr<Snapshot> load_snapshot(const std::string& admin_json_path,
                                     const std::string& op_json_path,
                                     const SnapshotConfig& config = {});

}  // namespace pl::serve
