// Organizations: the holders of ASN delegations. Sibling relationships
// (one org holding many ASNs) drive two of the paper's findings — sporadic
// BGP use via sibling routing policies (6.1.1) and allocated-but-unused ASNs
// whose siblings are the ones routed (6.3).
#pragma once

#include <cstdint>
#include <vector>

#include "asn/asn.hpp"
#include "asn/country.hpp"
#include "asn/rir.hpp"

namespace pl::rirsim {

using OrgId = std::uint64_t;

/// Broad organization archetypes; they shape both how many ASNs an org
/// holds and how it behaves operationally.
enum class OrgKind : std::uint8_t {
  kSmallNetwork,   ///< typical single-ASN LIR/enterprise
  kLargeOperator,  ///< multi-ASN carrier; sibling routing effects
  kGovernment,     ///< large historic blocks, low BGP usage (DoD-style)
  kLegacyHolder,   ///< early-registration org (Verisign/France Telecom style)
  kNir,            ///< APNIC National Internet Registry (block delegations)
};

struct Organization {
  OrgId id = 0;
  OrgKind kind = OrgKind::kSmallNetwork;
  asn::Rir rir = asn::Rir::kArin;
  asn::CountryCode country;
  std::vector<asn::Asn> asns;  ///< every ASN ever delegated to this org
};

}  // namespace pl::rirsim
