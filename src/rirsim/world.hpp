// The world simulator: five registries, IANA, ERX history, inter-RIR
// transfers — producing the GroundTruth that both the delegation archive
// renderer and the BGP behaviour generator consume.
#pragma once

#include <cstdint>

#include "rirsim/registry_sim.hpp"
#include "rirsim/truth.hpp"

namespace pl::rirsim {

struct WorldConfig {
  std::uint64_t seed = 42;
  /// 1.0 reproduces the paper's scale (~127k admin lives). Tests use small
  /// scales for speed.
  double scale = 1.0;
  util::Day archive_begin = asn::archive_begin_day();
  util::Day archive_end = asn::archive_end_day();

  /// Convenience preset: the scale benches run at (full paper scale).
  static WorldConfig paper_scale(std::uint64_t seed = 42) {
    return WorldConfig{seed, 1.0, asn::archive_begin_day(),
                       asn::archive_end_day()};
  }

  /// Convenience preset for unit/integration tests.
  static WorldConfig test_scale(std::uint64_t seed = 42,
                                double scale = 0.02) {
    return WorldConfig{seed, scale, asn::archive_begin_day(),
                       asn::archive_end_day()};
  }
};

/// Generate the whole world deterministically.
GroundTruth build_world(const WorldConfig& config);

}  // namespace pl::rirsim
