// Per-RIR allocation policy and reporting-practice models.
//
// Every knob here is calibrated against a behaviour the paper documents
// (2, 5, Appendix A/B): birth-rate curves per era, lifetime-duration
// mixtures, quarantine and reuse aggressiveness, the 16->32-bit transition
// schedule, and registration-date bookkeeping quirks that the lifetime
// builder's rules (4.1) key on.
#pragma once

#include <array>
#include <cstdint>

#include "asn/rir.hpp"
#include "util/date.hpp"

namespace pl::rirsim {

/// Lifetime-duration mixture (targets the Fig. 5 CDF shape). Weights need
/// not sum to 1; they are normalized. "Open-ended" lives survive to the
/// archive horizon.
struct DurationMixture {
  double weight_short = 0.1;   ///< < 1 year (lognormal around ~5 months)
  double weight_medium = 0.25; ///< 1..5 years
  double weight_long = 0.25;   ///< 5..17 years
  double weight_open = 0.4;    ///< still allocated at horizon
};

/// Allocation policy for one registry.
struct RirPolicy {
  asn::Rir rir = asn::Rir::kArin;

  /// Births per quarter for a given calendar year (piecewise-constant
  /// within a year). Implements the Fig. 10 shape (dot-com bubble, RIPE's
  /// 2005-2013 volume, APNIC/LACNIC 2014 ramp).
  double births_per_quarter(int year) const noexcept;

  /// Fraction of new allocations that are 32-bit numbers in `year`
  /// (Fig. 12 / App. B schedule: 2007 opt-in, 2009 default, ARIN's late
  /// ramp, younger RIRs near-total conversion by 2020).
  double fraction_32bit(int year) const noexcept;

  /// Probability a new birth reuses a previously-returned number when the
  /// quarantine pool has one (drives Table 2 re-allocation shares).
  double reuse_preference = 0.5;

  /// Quarantine (reserved) duration after deallocation, in days.
  int quarantine_min_days = 60;
  int quarantine_max_days = 400;

  /// Probability that a deallocated life's reserved period is extended
  /// because dangling BGP announcements kept the number out of the pool
  /// (6.2, AS43268 case).
  double dangling_hold_probability = 0.01;

  /// Duration mixture for lives born in `year` — life expectancy converges
  /// across RIRs after ~2010 (5, Fig. 14).
  DurationMixture durations(int year) const noexcept;

  /// Probability that a reserved interruption happens inside a life
  /// (administrative issues, later returned to the same holder — the 4.1
  /// same-registration-date merge case).
  double interruption_probability = 0.01;

  /// AfriNIC resets registration dates when re-allocating to the same
  /// holder (everyone else keeps the original date) — the 4.1 exception.
  bool regdate_reset_on_same_holder_reallocation = false;

  /// Mean delay (days) between registration and the record first appearing
  /// in delegation files; 90.1% (AfriNIC)..99.35% (ARIN) appear within a
  /// day (4.1 footnote 6).
  double publish_delay_same_day_fraction = 0.99;

  /// APNIC delegates blocks to NIRs; block allocations appear at once in
  /// the file even though end-user delegation happens later (4.1).
  bool delegates_nir_blocks = false;

  /// Fraction of an era's births that are NIR block members (APNIC only).
  double nir_block_fraction = 0.0;
};

/// Default, paper-calibrated policy for each registry.
const RirPolicy& default_policy(asn::Rir rir) noexcept;

}  // namespace pl::rirsim
