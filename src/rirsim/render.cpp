#include "rirsim/render.hpp"

#include <algorithm>

namespace pl::rirsim {

namespace {

using dele::RecordChange;
using dele::RecordState;
using dele::Status;
using util::Day;
using util::DayInterval;

/// A contiguous span during which one channel shows one state for one ASN.
struct Span {
  DayInterval days;
  RecordState state;
};

/// Append change events for one ASN's ordered, non-overlapping spans.
void emit_spans(ChangeMap& map, asn::Asn asn, const std::vector<Span>& spans) {
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Span& span = spans[i];
    if (span.days.empty()) continue;
    // Skip no-op transitions (same state continuing from previous span).
    const bool continues_previous =
        i > 0 && !spans[i - 1].days.empty() &&
        spans[i - 1].days.last + 1 == span.days.first &&
        spans[i - 1].state == span.state;
    if (!continues_previous)
      map[span.days.first].push_back(RecordChange{asn, span.state});
    const bool has_adjacent_next =
        i + 1 < spans.size() && !spans[i + 1].days.empty() &&
        spans[i + 1].days.first == span.days.last + 1;
    if (!has_adjacent_next)
      map[span.days.last + 1].push_back(RecordChange{asn, std::nullopt});
  }
}

/// The registration date the files report for `life` on day `d` — the true
/// date modified by AfriNIC resets and administrative corrections.
Day reported_regdate(const TrueAdminLife& life, Day d) {
  Day date = life.registration_date;
  for (const Interruption& gap : life.interruptions)
    if (gap.regdate_reset && d > gap.days.last) date = gap.days.last + 1;
  if (life.regdate_correction && d >= life.regdate_correction->first)
    date = life.regdate_correction->second;
  return date;
}

/// Days at which the reported regdate changes within [first, last].
std::vector<Day> regdate_breakpoints(const TrueAdminLife& life,
                                     const DayInterval& window) {
  std::vector<Day> points;
  for (const Interruption& gap : life.interruptions)
    if (gap.regdate_reset && window.contains(gap.days.last + 1))
      points.push_back(gap.days.last + 1);
  if (life.regdate_correction && window.contains(life.regdate_correction->first))
    points.push_back(life.regdate_correction->first);
  std::sort(points.begin(), points.end());
  return points;
}

}  // namespace

RenderedRegistry render_registry(const GroundTruth& truth, asn::Rir rir) {
  RenderedRegistry out;

  // Collect spans per ASN per channel, then emit ordered events.
  std::map<std::uint32_t, std::vector<Span>> extended_spans;
  std::map<std::uint32_t, std::vector<Span>> regular_spans;

  for (std::size_t life_index = 0; life_index < truth.lives.size();
       ++life_index) {
    const TrueAdminLife& life = truth.lives[life_index];

    for (const RegistrySegment& segment : life.segments) {
      if (segment.rir != rir) continue;

      // The record reaches the files `publish_lag_days` after the true
      // start (only the first segment: transfers republish immediately).
      DayInterval published = segment.days;
      if (segment.days.first == life.days.first)
        published.first += life.publish_lag_days;
      if (published.empty()) continue;

      // Split the segment's allocated time around interruptions.
      std::vector<DayInterval> allocated = {published};
      std::vector<DayInterval> reserved_gaps;
      for (const Interruption& gap : life.interruptions) {
        const DayInterval g = gap.days.intersect(segment.days);
        if (g.empty()) continue;
        reserved_gaps.push_back(g);
        std::vector<DayInterval> next;
        for (const DayInterval& span : allocated) {
          if (!span.overlaps(g)) {
            next.push_back(span);
            continue;
          }
          if (span.first < g.first)
            next.push_back(DayInterval{span.first, g.first - 1});
          if (span.last > g.last)
            next.push_back(DayInterval{g.last + 1, span.last});
        }
        allocated = std::move(next);
      }

      const auto base_state = [&](Day on_day) {
        RecordState state;
        state.status = Status::kAllocated;
        state.registration_date = reported_regdate(life, on_day);
        state.country = life.country;
        state.opaque_id = life.org + 1;  // 0 means "none" in files
        return state;
      };

      auto& ext = extended_spans[life.asn.value];
      auto& reg = regular_spans[life.asn.value];

      for (const DayInterval& span : allocated) {
        // Further split where the reported regdate changes mid-span.
        std::vector<Day> cuts = regdate_breakpoints(life, span);
        Day cursor = span.first;
        cuts.push_back(span.last + 1);
        for (Day cut : cuts) {
          if (cut <= cursor) continue;
          const DayInterval piece{cursor, cut - 1};
          ext.push_back(Span{piece, base_state(piece.first)});
          reg.push_back(Span{piece, base_state(piece.first)});
          cursor = cut;
        }
      }

      // Interruptions appear as reserved in the extended channel and vanish
      // from the regular channel.
      for (const DayInterval& gap : reserved_gaps) {
        RecordState state;
        state.status = Status::kReserved;
        state.registration_date = std::nullopt;
        ext.push_back(Span{gap, state});
      }
    }

    // Post-life quarantine + availability, charged to the registry holding
    // the ASN at the end of the life.
    if (!life.open_ended &&
        life.segments.back().rir == rir) {
      const DayInterval quarantine = truth.quarantine_after[life_index];
      auto& ext = extended_spans[life.asn.value];
      if (!quarantine.empty()) {
        RecordState state;
        state.status = Status::kReserved;
        ext.push_back(Span{quarantine, state});
      }
      // Available until reallocated (next life's start) or horizon. Only
      // previously-used numbers are rendered as available (see DESIGN.md 5).
      const Day available_from =
          (quarantine.empty() ? life.days.last : quarantine.last) + 1;
      Day available_to = truth.archive_end;
      const auto it = truth.lives_by_asn.find(life.asn.value);
      if (it != truth.lives_by_asn.end()) {
        for (std::size_t other : it->second) {
          const TrueAdminLife& next_life = truth.lives[other];
          if (next_life.days.first > life.days.last) {
            available_to =
                std::min<Day>(available_to, next_life.days.first - 1);
            break;
          }
        }
      }
      if (available_from <= available_to) {
        RecordState state;
        state.status = Status::kAvailable;
        ext.push_back(Span{DayInterval{available_from, available_to}, state});
      }
    }
  }

  const auto finalize = [](std::map<std::uint32_t, std::vector<Span>>& spans,
                           ChangeMap& map) {
    for (auto& [asn_value, list] : spans) {
      std::sort(list.begin(), list.end(), [](const Span& a, const Span& b) {
        return a.days.first < b.days.first;
      });
      emit_spans(map, asn::Asn{asn_value}, list);
    }
  };
  finalize(extended_spans, out.extended);
  finalize(regular_spans, out.regular);
  return out;
}

}  // namespace pl::rirsim
