#include "rirsim/render.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

namespace pl::rirsim {

namespace {

using dele::RecordChange;
using dele::RecordState;
using dele::Status;
using util::Day;
using util::DayInterval;

/// A contiguous span during which one channel shows one state for one ASN.
struct Span {
  DayInterval days;
  RecordState state;
};

/// One change event before day-grouping.
struct Event {
  Day day;
  RecordChange change;
};

/// Append change events for one ASN's ordered, non-overlapping spans.
void emit_spans(std::vector<Event>& events, asn::Asn asn,
                const std::vector<Span>& spans) {
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Span& span = spans[i];
    if (span.days.empty()) continue;
    // Skip no-op transitions (same state continuing from previous span).
    const bool continues_previous =
        i > 0 && !spans[i - 1].days.empty() &&
        spans[i - 1].days.last + 1 == span.days.first &&
        spans[i - 1].state == span.state;
    if (!continues_previous)
      events.push_back(Event{span.days.first, RecordChange{asn, span.state}});
    const bool has_adjacent_next =
        i + 1 < spans.size() && !spans[i + 1].days.empty() &&
        spans[i + 1].days.first == span.days.last + 1;
    if (!has_adjacent_next)
      events.push_back(
          Event{span.days.last + 1, RecordChange{asn, std::nullopt}});
  }
}

/// The registration date the files report for `life` on day `d` — the true
/// date modified by AfriNIC resets and administrative corrections.
Day reported_regdate(const TrueAdminLife& life, Day d) {
  Day date = life.registration_date;
  for (const Interruption& gap : life.interruptions)
    if (gap.regdate_reset && d > gap.days.last) date = gap.days.last + 1;
  if (life.regdate_correction && d >= life.regdate_correction->first)
    date = life.regdate_correction->second;
  return date;
}

/// Days at which the reported regdate changes within [first, last].
std::vector<Day> regdate_breakpoints(const TrueAdminLife& life,
                                     const DayInterval& window) {
  std::vector<Day> points;
  for (const Interruption& gap : life.interruptions)
    if (gap.regdate_reset && window.contains(gap.days.last + 1))
      points.push_back(gap.days.last + 1);
  if (life.regdate_correction && window.contains(life.regdate_correction->first))
    points.push_back(life.regdate_correction->first);
  std::sort(points.begin(), points.end());
  return points;
}

}  // namespace

RenderedRegistry render_registry(const GroundTruth& truth, asn::Rir rir) {
  RenderedRegistry out;

  // Collect (asn, span) pairs per channel in truth order, group by ASN with
  // one stable sort, then emit ordered events. Flat vectors instead of a
  // map<asn, vector> — this runs inside the render stage's hot path and the
  // per-ASN node churn dominated the old version.
  std::vector<std::pair<std::uint32_t, Span>> extended_spans;
  std::vector<std::pair<std::uint32_t, Span>> regular_spans;
  // Most lives contribute a handful of spans; reserving up front keeps the
  // hot append loop realloc-free for typical truths.
  extended_spans.reserve(truth.lives.size() * 4);
  regular_spans.reserve(truth.lives.size() * 2);

  for (std::size_t life_index = 0; life_index < truth.lives.size();
       ++life_index) {
    const TrueAdminLife& life = truth.lives[life_index];

    for (const RegistrySegment& segment : life.segments) {
      if (segment.rir != rir) continue;

      // The record reaches the files `publish_lag_days` after the true
      // start (only the first segment: transfers republish immediately).
      DayInterval published = segment.days;
      if (segment.days.first == life.days.first)
        published.first += life.publish_lag_days;
      if (published.empty()) continue;

      const auto base_state = [&](Day on_day) {
        RecordState state;
        state.status = Status::kAllocated;
        state.registration_date = reported_regdate(life, on_day);
        state.country = life.country;
        state.opaque_id = life.org + 1;  // 0 means "none" in files
        return state;
      };

      // Fast path for the dominant shape — no interruptions and no regdate
      // correction — where the whole published window is one span and the
      // splitting scaffolding below would only allocate scratch vectors.
      if (life.interruptions.empty() && !life.regdate_correction) {
        extended_spans.emplace_back(life.asn.value,
                                    Span{published,
                                         base_state(published.first)});
        regular_spans.emplace_back(life.asn.value,
                                   Span{published,
                                        base_state(published.first)});
        continue;
      }

      // Split the segment's allocated time around interruptions.
      std::vector<DayInterval> allocated = {published};
      std::vector<DayInterval> reserved_gaps;
      for (const Interruption& gap : life.interruptions) {
        const DayInterval g = gap.days.intersect(segment.days);
        if (g.empty()) continue;
        reserved_gaps.push_back(g);
        std::vector<DayInterval> next;
        for (const DayInterval& span : allocated) {
          if (!span.overlaps(g)) {
            next.push_back(span);
            continue;
          }
          if (span.first < g.first)
            next.push_back(DayInterval{span.first, g.first - 1});
          if (span.last > g.last)
            next.push_back(DayInterval{g.last + 1, span.last});
        }
        allocated = std::move(next);
      }

      for (const DayInterval& span : allocated) {
        // Further split where the reported regdate changes mid-span.
        std::vector<Day> cuts = regdate_breakpoints(life, span);
        Day cursor = span.first;
        cuts.push_back(span.last + 1);
        for (Day cut : cuts) {
          if (cut <= cursor) continue;
          const DayInterval piece{cursor, cut - 1};
          extended_spans.emplace_back(life.asn.value,
                                      Span{piece, base_state(piece.first)});
          regular_spans.emplace_back(life.asn.value,
                                     Span{piece, base_state(piece.first)});
          cursor = cut;
        }
      }

      // Interruptions appear as reserved in the extended channel and vanish
      // from the regular channel.
      for (const DayInterval& gap : reserved_gaps) {
        RecordState state;
        state.status = Status::kReserved;
        state.registration_date = std::nullopt;
        extended_spans.emplace_back(life.asn.value, Span{gap, state});
      }
    }

    // Post-life quarantine + availability, charged to the registry holding
    // the ASN at the end of the life.
    if (!life.open_ended &&
        life.segments.back().rir == rir) {
      const DayInterval quarantine = truth.quarantine_after[life_index];
      if (!quarantine.empty()) {
        RecordState state;
        state.status = Status::kReserved;
        extended_spans.emplace_back(life.asn.value, Span{quarantine, state});
      }
      // Available until reallocated (next life's start) or horizon. Only
      // previously-used numbers are rendered as available (see DESIGN.md 5).
      const Day available_from =
          (quarantine.empty() ? life.days.last : quarantine.last) + 1;
      Day available_to = truth.archive_end;
      const auto it = truth.lives_by_asn.find(life.asn.value);
      if (it != truth.lives_by_asn.end()) {
        for (std::size_t other : it->second) {
          const TrueAdminLife& next_life = truth.lives[other];
          if (next_life.days.first > life.days.last) {
            available_to =
                std::min<Day>(available_to, next_life.days.first - 1);
            break;
          }
        }
      }
      if (available_from <= available_to) {
        RecordState state;
        state.status = Status::kAvailable;
        extended_spans.emplace_back(
            life.asn.value, Span{DayInterval{available_from, available_to},
                                 state});
      }
    }
  }

  const auto finalize = [](std::vector<std::pair<std::uint32_t, Span>>& spans,
                           ChangeMap& map) {
    // Group by ASN; the stable sort keeps each ASN's spans in truth order,
    // which the per-ASN day sort below relies on for determinism.
    std::stable_sort(spans.begin(), spans.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    std::vector<Event> events;
    events.reserve(spans.size() * 2);
    std::vector<Span> list;
    for (std::size_t i = 0; i < spans.size();) {
      const std::uint32_t asn_value = spans[i].first;
      list.clear();
      for (; i < spans.size() && spans[i].first == asn_value; ++i)
        list.push_back(spans[i].second);
      // Spans within one (ASN, channel) group are pairwise disjoint and
      // non-empty, so start days are distinct and the sorted order is
      // unique — skipping the sort for already-ordered groups (the common
      // case: one life emitted chronologically) cannot change the result.
      const auto by_start = [](const Span& a, const Span& b) {
        return a.days.first < b.days.first;
      };
      if (!std::is_sorted(list.begin(), list.end(), by_start))
        std::sort(list.begin(), list.end(), by_start);
      emit_spans(events, asn::Asn{asn_value}, list);
    }
    // Day-group the events with one counting pass over the day range —
    // stable by construction, so within each day the emit order (ascending
    // ASN) is preserved exactly as a stable sort by day would.
    if (events.empty()) return;
    Day min_day = events.front().day;
    Day max_day = events.front().day;
    for (const Event& event : events) {
      min_day = std::min(min_day, event.day);
      max_day = std::max(max_day, event.day);
    }
    std::vector<std::uint32_t> counts(
        static_cast<std::size_t>(max_day - min_day) + 1, 0);
    for (const Event& event : events)
      ++counts[static_cast<std::size_t>(event.day - min_day)];
    std::vector<std::uint32_t> slot(counts.size(), 0);
    std::size_t non_empty = 0;
    for (const std::uint32_t count : counts)
      if (count != 0) ++non_empty;
    map.reserve(non_empty);
    for (std::size_t d = 0; d < counts.size(); ++d) {
      if (counts[d] == 0) continue;
      slot[d] = static_cast<std::uint32_t>(map.size());
      DayChanges& day = map.emplace_back();
      day.day = min_day + static_cast<Day>(d);
      day.changes.reserve(counts[d]);
    }
    for (const Event& event : events)
      map[slot[static_cast<std::size_t>(event.day - min_day)]]
          .changes.push_back(event.change);
  };
  finalize(extended_spans, out.extended);
  finalize(regular_spans, out.regular);
  return out;
}

}  // namespace pl::rirsim
