// IANA's view: which RIR holds each ASN block. IANA delegates blocks of AS
// numbers to RIRs as needed (paper 2); an RIR publishing records for ASNs
// in blocks it was never delegated is one of the two causes of inter-RIR
// inconsistencies the restoration must clean (3.1.vi).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "asn/asn.hpp"
#include "asn/rir.hpp"
#include "util/date.hpp"

namespace pl::rirsim {

/// One IANA block delegation.
struct IanaBlock {
  asn::Asn first;
  std::uint32_t count = 0;
  asn::Rir rir = asn::Rir::kArin;
  util::Day delegated = 0;
};

/// Registry of IANA block delegations plus per-RIR allocation cursors used
/// by the simulator to hand out numbers.
class IanaBlockTable {
 public:
  /// Record a block delegation. Blocks must not overlap.
  void add_block(const IanaBlock& block);

  /// RIR holding `asn` (nullopt if the number was never delegated to any
  /// RIR). Restoration step vi consults this.
  std::optional<asn::Rir> owner(asn::Asn asn) const noexcept;

  const std::vector<IanaBlock>& blocks() const noexcept { return blocks_; }

  /// Count of 16-bit numbers delegated to `rir`.
  std::uint32_t sixteen_bit_stock(asn::Rir rir) const noexcept;

 private:
  std::vector<IanaBlock> blocks_;
  std::map<std::uint32_t, std::size_t> by_first_;  // first ASN -> block index
};

/// Build the default IANA plan used by the world simulator: per-RIR 16-bit
/// blocks sized to each registry's historical appetite, and disjoint 32-bit
/// ranges from 131072 upward. Deterministic.
IanaBlockTable make_default_iana_plan();

/// The 32-bit range base for each RIR in the default plan; the simulator
/// draws 32-bit allocations sequentially from these.
std::uint32_t default_32bit_base(asn::Rir rir) noexcept;

}  // namespace pl::rirsim
