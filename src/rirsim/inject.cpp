#include "rirsim/inject.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "rirsim/policy.hpp"

namespace pl::rirsim {

namespace {

using dele::ChannelDelta;
using dele::DayObservation;
using dele::FileCondition;
using dele::RecordChange;
using dele::RecordState;
using dele::Status;
using util::Day;
using util::DayInterval;
using util::Rng;

/// One `allocated_on` candidate: the life's day interval is duplicated here
/// so the common "not alive on that day" rejection never dereferences the
/// life (the candidate list is scanned a few hundred times per registry).
/// `slow` is null for the common shape — a single uninterrupted segment under
/// the registry — where day containment alone decides membership.
struct Candidate {
  DayInterval days;
  asn::Asn asn;
  const TrueAdminLife* slow = nullptr;
};

/// Lives that ever hold a segment under `rir`, in truth order — the only
/// candidates `allocated_on` needs to scan. Prefiltering once per registry
/// turns the injector's repeated full-truth scans into small-list walks.
std::vector<Candidate> lives_of(const GroundTruth& truth, asn::Rir rir) {
  std::vector<Candidate> out;
  for (const TrueAdminLife& life : truth.lives) {
    if (life.segments.size() == 1 && life.interruptions.empty()) {
      if (life.segments.front().rir == rir)
        out.push_back(Candidate{life.segments.front().days, life.asn});
      continue;
    }
    for (const RegistrySegment& segment : life.segments)
      if (segment.rir == rir) {
        out.push_back(Candidate{life.days, life.asn, &life});
        break;
      }
  }
  return out;
}

/// Allocated ASNs of `rir` on `day`, per ground truth (candidates from
/// `lives_of`, which preserves truth order so picks stay deterministic).
std::vector<asn::Asn> allocated_on(const std::vector<Candidate>& candidates,
                                   asn::Rir rir, Day day) {
  std::vector<asn::Asn> out;
  for (const Candidate& candidate : candidates) {
    if (!candidate.days.contains(day)) continue;
    if (candidate.slow == nullptr) {
      out.push_back(candidate.asn);
      continue;
    }
    const TrueAdminLife& life = *candidate.slow;
    if (life.registry_on(day) != rir) continue;
    bool interrupted = false;
    for (const Interruption& gap : life.interruptions)
      if (gap.days.contains(day)) interrupted = true;
    if (!interrupted) out.push_back(life.asn);
  }
  return out;
}

/// Streams one registry's perturbed archive.
class InjectedStream final : public dele::ArchiveStream {
 public:
  InjectedStream(asn::Rir rir, const RenderedRegistry& rendered,
                 const DefectSchedule& schedule, Day begin, Day end)
      : rir_(rir),
        rendered_(rendered),
        schedule_(schedule),
        day_(begin),
        end_(end) {
    build_event_index();
    // Replay pre-archive truth events so the first published file carries
    // the full historical content.
    replay_truth_until(begin);
  }

  asn::Rir registry() const noexcept override { return rir_; }

  std::optional<DayObservation> next() override {
    if (day_ > end_) return std::nullopt;
    const Day today = day_++;

    apply_truth_changes(today);
    apply_schedule_events(today);

    DayObservation observation;
    observation.day = today;
    observation.extended = emit_channel(Channel::kExtended, today);
    observation.regular = emit_channel(Channel::kRegular, today);
    return observation;
  }

 private:
  // One merged per-ASN cell instead of a hash map per concern: every apply
  // and emit step pays a single lookup where the old shape paid up to five
  // (truth, suppression, override, extra, emitted). A cleared flag is
  // exactly the old "key absent" case, and nothing here is ever iterated
  // (emission order comes from `dirty`), so hashing stays safe.
  struct Cell {
    RecordState truth;    ///< valid iff truth_present
    RecordState extra;    ///< valid iff extra_present
    RecordState emitted;  ///< valid iff emitted_present
    Day override_day = 0;  ///< valid iff has_override
    bool truth_present = false;
    bool extra_present = false;
    bool emitted_present = false;
    bool has_override = false;
    bool suppressed = false;
  };

  struct ChannelState {
    std::unordered_map<std::uint32_t, Cell> cells;
    /// ASNs whose visible record may have changed since the last published
    /// file. May hold duplicates and survives non-present days; emission
    /// sorts + dedupes, recovering the ordered-set iteration this replaces.
    std::vector<std::uint32_t> dirty;
    /// Monotone cursor into the channel's ChangeMap (days arrive in order).
    std::size_t cursor = 0;
  };

  ChannelState& state(Channel channel) noexcept {
    return channel == Channel::kExtended ? extended_ : regular_;
  }

  const ChangeMap& change_map(Channel channel) const noexcept {
    return channel == Channel::kExtended ? rendered_.extended
                                         : rendered_.regular;
  }

  /// Day-sorted (day, schedule index) events with a monotone cursor; the
  /// stable sort keeps same-day events in schedule order, exactly like the
  /// per-day vectors of the map-based index this replaces.
  struct EventIndex {
    std::vector<std::pair<Day, std::size_t>> events;
    std::size_t cursor = 0;

    void add(Day day, std::size_t index) { events.emplace_back(day, index); }

    void seal() {
      std::stable_sort(events.begin(), events.end(),
                       [](const auto& a, const auto& b) {
                         return a.first < b.first;
                       });
    }

    /// Invoke `fn(index)` for every event on `today`. Events dated before
    /// the first queried day (pre-archive date overrides) are skipped, as
    /// the keyed lookup this replaces never found them.
    template <typename Fn>
    void drain(Day today, Fn&& fn) {
      while (cursor < events.size() && events[cursor].first < today) ++cursor;
      for (; cursor < events.size() && events[cursor].first == today; ++cursor)
        fn(events[cursor].second);
    }
  };

  void build_event_index() {
    for (std::size_t i = 0; i < schedule_.suppressions.size(); ++i) {
      const auto& s = schedule_.suppressions[i];
      suppress_starts_.add(s.days.first, i);
      suppress_ends_.add(s.days.last + 1, i);
    }
    for (std::size_t i = 0; i < schedule_.date_overrides.size(); ++i)
      override_starts_.add(schedule_.date_overrides[i].from, i);
    for (std::size_t i = 0; i < schedule_.extras.size(); ++i) {
      const auto& e = schedule_.extras[i];
      extra_starts_.add(e.days.first, i);
      extra_ends_.add(e.days.last + 1, i);
    }
    for (std::size_t i = 0; i < schedule_.duplicates.size(); ++i) {
      const auto& d = schedule_.duplicates[i];
      duplicate_starts_.add(d.days.first, i);
      duplicate_ends_.add(d.days.last + 1, i);
    }
    for (EventIndex* index :
         {&suppress_starts_, &suppress_ends_, &override_starts_,
          &extra_starts_, &extra_ends_, &duplicate_starts_, &duplicate_ends_})
      index->seal();
  }

  void replay_truth_until(Day begin) {
    for (Channel channel : {Channel::kExtended, Channel::kRegular}) {
      ChannelState& cs = state(channel);
      const ChangeMap& map = change_map(channel);
      // Size the hot tables once; incremental rehashing of a growing
      // registry showed up in profiles.
      std::size_t change_total = 0;
      for (const DayChanges& day : map) change_total += day.changes.size();
      cs.cells.reserve(change_total / 2 + 1);
      for (; cs.cursor < map.size() && map[cs.cursor].day < begin;
           ++cs.cursor)
        for (const RecordChange& change : map[cs.cursor].changes) {
          Cell& cell = cs.cells[change.asn.value];
          if (change.state) {
            cell.truth = *change.state;
            cell.truth_present = true;
          } else {
            cell.truth_present = false;
          }
          cs.dirty.push_back(change.asn.value);
        }
    }
  }

  void apply_truth_changes(Day today) {
    for (Channel channel : {Channel::kExtended, Channel::kRegular}) {
      ChannelState& cs = state(channel);
      const ChangeMap& map = change_map(channel);
      for (; cs.cursor < map.size() && map[cs.cursor].day == today;
           ++cs.cursor)
        for (const RecordChange& change : map[cs.cursor].changes) {
          Cell& cell = cs.cells[change.asn.value];
          if (change.state) {
            cell.truth = *change.state;
            cell.truth_present = true;
          } else {
            cell.truth_present = false;
          }
          cs.dirty.push_back(change.asn.value);
        }
    }
  }

  void apply_schedule_events(Day today) {
    const auto for_channels = [&](Channel only, auto&& fn) {
      if (only == Channel::kExtended) {
        fn(extended_);
      } else {
        fn(regular_);
      }
    };

    suppress_starts_.drain(today, [&](std::size_t index) {
      const auto& s = schedule_.suppressions[index];
      for_channels(s.channel, [&](ChannelState& cs) {
        for (const asn::Asn a : s.asns) {
          cs.cells[a.value].suppressed = true;
          cs.dirty.push_back(a.value);
        }
      });
    });
    suppress_ends_.drain(today, [&](std::size_t index) {
      const auto& s = schedule_.suppressions[index];
      for_channels(s.channel, [&](ChannelState& cs) {
        for (const asn::Asn a : s.asns) {
          cs.cells[a.value].suppressed = false;
          cs.dirty.push_back(a.value);
        }
      });
    });
    override_starts_.drain(today, [&](std::size_t index) {
      const auto& o = schedule_.date_overrides[index];
      for (Channel channel : {Channel::kExtended, Channel::kRegular}) {
        ChannelState& cs = state(channel);
        Cell& cell = cs.cells[o.asn.value];
        cell.has_override = true;
        cell.override_day = o.shown;
        cs.dirty.push_back(o.asn.value);
      }
    });
    extra_starts_.drain(today, [&](std::size_t index) {
      const auto& e = schedule_.extras[index];
      for (Channel channel : {Channel::kExtended, Channel::kRegular}) {
        ChannelState& cs = state(channel);
        Cell& cell = cs.cells[e.asn.value];
        cell.extra = e.state;
        cell.extra_present = true;
        cs.dirty.push_back(e.asn.value);
      }
    });
    extra_ends_.drain(today, [&](std::size_t index) {
      const auto& e = schedule_.extras[index];
      for (Channel channel : {Channel::kExtended, Channel::kRegular}) {
        ChannelState& cs = state(channel);
        cs.cells[e.asn.value].extra_present = false;
        cs.dirty.push_back(e.asn.value);
      }
    });
    duplicate_starts_.drain(
        today, [&](std::size_t index) { active_duplicates_.insert(index); });
    duplicate_ends_.drain(
        today, [&](std::size_t index) { active_duplicates_.erase(index); });
  }

  /// What the channel's file shows for the cell today, nullopt if absent.
  static std::optional<RecordState> visible(const Cell& cell,
                                            Channel channel) {
    if (cell.suppressed) return std::nullopt;
    if (cell.truth_present) {
      RecordState shown = cell.truth;
      if (cell.has_override) shown.registration_date = cell.override_day;
      return shown;
    }
    if (cell.extra_present) {
      if (channel == Channel::kRegular &&
          !dele::is_delegated(cell.extra.status))
        return std::nullopt;
      return cell.extra;
    }
    return std::nullopt;
  }

  FileCondition condition(Channel channel, Day today) const {
    const asn::RirFacts& facts = asn::facts(rir_);
    const Day first = channel == Channel::kExtended
                          ? facts.first_extended_file
                          : facts.first_regular_file;
    if (today < first) return FileCondition::kNotPublished;
    if (channel == Channel::kRegular && facts.last_regular_file &&
        today > *facts.last_regular_file)
      return FileCondition::kNotPublished;
    const auto channel_index = static_cast<std::size_t>(channel);
    if (schedule_.corrupt_days[channel_index].contains(today))
      return FileCondition::kCorrupt;
    if (schedule_.missing_days[channel_index].contains(today))
      return FileCondition::kMissing;
    return FileCondition::kPresent;
  }

  ChannelDelta emit_channel(Channel channel, Day today) {
    ChannelDelta delta;
    delta.condition = condition(channel, today);
    delta.publish_minute = channel == Channel::kExtended ? 240 : 180;
    if (schedule_.newest_conflict_days.contains(today) &&
        channel == Channel::kExtended)
      delta.publish_minute = 400;

    if (delta.condition != FileCondition::kPresent) return delta;

    ChannelState& cs = state(channel);
    // Recover the ordered-unique iteration the old std::set gave: ascending
    // ASN, each at most once, accumulated across any unpublished days.
    std::sort(cs.dirty.begin(), cs.dirty.end());
    cs.dirty.erase(std::unique(cs.dirty.begin(), cs.dirty.end()),
                   cs.dirty.end());
    delta.changes.reserve(cs.dirty.size());
    for (const std::uint32_t asn_value : cs.dirty) {
      const auto cell_it = cs.cells.find(asn_value);
      if (cell_it == cs.cells.end()) continue;  // never materialized: no-op
      Cell& cell = cell_it->second;
      const std::optional<RecordState> now = visible(cell, channel);
      if (now) {
        if (!cell.emitted_present || !(cell.emitted == *now)) {
          delta.changes.push_back(RecordChange{asn::Asn{asn_value}, *now});
          cell.emitted = *now;
          cell.emitted_present = true;
        }
      } else if (cell.emitted_present) {
        delta.changes.push_back(
            RecordChange{asn::Asn{asn_value}, std::nullopt});
        cell.emitted_present = false;
      }
    }
    cs.dirty.clear();

    if (channel == Channel::kExtended) {
      for (const std::size_t index : active_duplicates_) {
        const auto& d = schedule_.duplicates[index];
        delta.duplicates.emplace_back(d.asn, d.state);
      }
    }
    return delta;
  }

  asn::Rir rir_;
  const RenderedRegistry& rendered_;
  const DefectSchedule& schedule_;
  Day day_;
  Day end_;

  ChannelState extended_;
  ChannelState regular_;

  EventIndex suppress_starts_;
  EventIndex suppress_ends_;
  EventIndex override_starts_;
  EventIndex extra_starts_;
  EventIndex extra_ends_;
  EventIndex duplicate_starts_;
  EventIndex duplicate_ends_;
  std::set<std::size_t> active_duplicates_;  ///< tiny, iterated in order
};

}  // namespace

SimulatedArchive::SimulatedArchive(const GroundTruth& truth,
                                   InjectorConfig config)
    : truth_(&truth), config_(config) {
  Rng rng(config.seed);

  for (asn::Rir rir : asn::kAllRirs) {
    const std::size_t rir_index = asn::index_of(rir);
    rendered_[rir_index] = render_registry(truth, rir);
    DefectSchedule& schedule = schedules_[rir_index];
    Rng rir_rng = rng.fork();
    const asn::RirFacts& facts = asn::facts(rir);
    const Day begin = truth.archive_begin;
    const Day end = truth.archive_end;
    const std::vector<Candidate> candidates = lives_of(truth, rir);

    // (i) Missing / corrupt file days, per channel, in short runs. The very
    // first and last day of each era always publish.
    for (Channel channel : {Channel::kExtended, Channel::kRegular}) {
      const auto channel_index = static_cast<std::size_t>(channel);
      const Day era_first = channel == Channel::kExtended
                                ? facts.first_extended_file
                                : facts.first_regular_file;
      Day day = std::max(begin, era_first) + 1;
      while (day < end) {
        if (rir_rng.chance(config.missing_day_rate / 2.5)) {
          const auto run = rir_rng.uniform(1, config.max_consecutive_missing);
          for (Day d = day; d < day + run && d < end; ++d)
            schedule.missing_days[channel_index].insert(d);
          day += static_cast<Day>(run);
        } else if (rir_rng.chance(config.corrupt_day_rate)) {
          schedule.corrupt_days[channel_index].insert(day);
          ++day;
        } else {
          ++day;
        }
      }
    }

    // (ii) Large record-drop episodes on the extended channel.
    for (int episode = 0; episode < config.drop_episodes_per_rir; ++episode) {
      const Day era_first = std::max(begin, facts.first_extended_file);
      if (era_first + 60 >= end) break;
      const Day day = era_first + static_cast<Day>(rir_rng.uniform(
                                      30, end - era_first - 30));
      auto allocated = allocated_on(candidates, rir, day);
      if (allocated.empty()) continue;
      auto group_size = static_cast<std::size_t>(
          std::max<std::int64_t>(10, static_cast<std::int64_t>(
              rir_rng.uniform(config.drop_group_min, config.drop_group_max) *
              config.scale)));
      group_size = std::min(group_size, allocated.size());
      // Deterministic partial shuffle.
      for (std::size_t i = 0; i < group_size; ++i) {
        const auto j = static_cast<std::size_t>(rir_rng.uniform(
            static_cast<std::int64_t>(i),
            static_cast<std::int64_t>(allocated.size()) - 1));
        std::swap(allocated[i], allocated[j]);
      }
      allocated.resize(group_size);
      const Day duration = static_cast<Day>(rir_rng.uniform(1, 3));
      schedule.suppressions.push_back(DefectSchedule::Suppression{
          Channel::kExtended, std::move(allocated),
          DayInterval{day, std::min<Day>(end - 1, day + duration - 1)}});
    }

    // (iii) Same-day file differences: the (newer) extended file briefly
    // loses a handful of ASNs the regular file still carries.
    if (rir != asn::Rir::kAfrinic) {
      const Day both_first = std::max(
          {begin, facts.first_extended_file, facts.first_regular_file});
      const Day both_last =
          facts.last_regular_file ? *facts.last_regular_file : end;
      for (Day day = both_first + 1; day + 5 < both_last; ++day) {
        if (!rir_rng.chance(config.same_day_diff_rate)) continue;
        auto allocated = allocated_on(candidates, rir, day);
        if (allocated.empty()) continue;
        const auto pick_count = static_cast<std::size_t>(
            rir_rng.uniform(1, 5));
        std::vector<asn::Asn> picked;
        for (std::size_t i = 0; i < pick_count; ++i)
          picked.push_back(allocated[static_cast<std::size_t>(rir_rng.uniform(
              0, static_cast<std::int64_t>(allocated.size()) - 1))]);
        const Day duration = static_cast<Day>(rir_rng.uniform(1, 4));
        schedule.suppressions.push_back(DefectSchedule::Suppression{
            Channel::kExtended, std::move(picked),
            DayInterval{day, std::min<Day>(both_last, day + duration - 1)}});
        for (Day d = day; d <= std::min<Day>(both_last, day + duration - 1);
             ++d)
          schedule.newest_conflict_days.insert(d);
        day += 30;  // keep episodes sparse
      }
    }

    // (iv) AfriNIC invalid duplicates.
    if (rir == asn::Rir::kAfrinic) {
      auto count = static_cast<int>(config.afrinic_duplicate_asns *
                                    config.scale);
      count = std::max(count, 1);
      const Day era_first = std::max(begin, facts.first_extended_file);
      int made = 0;
      for (const TrueAdminLife& life : truth.lives) {
        if (made >= count) break;
        if (life.birth_registry() != rir) continue;
        if (life.days.length() < 400) continue;
        if (life.days.last < era_first + 200) continue;
        if (!rir_rng.chance(0.2)) continue;
        const Day start = std::max<Day>(era_first + 10, life.days.first);
        const Day duration = static_cast<Day>(rir_rng.uniform(30, 180));
        RecordState wrong;
        wrong.status = Status::kReserved;
        schedule.duplicates.push_back(DefectSchedule::DuplicateRecord{
            life.asn,
            DayInterval{start, std::min<Day>(end, start + duration - 1)},
            wrong});
        ++made;
      }
    }

    // (v) AfriNIC future registration dates.
    if (rir == asn::Rir::kAfrinic) {
      int made = 0;
      const int count = std::max(1, static_cast<int>(
          config.afrinic_future_regdate * config.scale));
      for (const TrueAdminLife& life : truth.lives) {
        if (made >= count) break;
        if (life.birth_registry() != rir) continue;
        if (life.days.first <= facts.first_regular_file) continue;
        if (!rir_rng.chance(0.05)) continue;
        schedule.date_overrides.push_back(DefectSchedule::DateOverride{
            life.asn, life.days.first,
            life.registration_date + static_cast<Day>(rir_rng.uniform(2, 5))});
        ++made;
      }
    }

    // (v) RIPE placeholder registration dates on ERX resources.
    if (rir == asn::Rir::kRipeNcc) {
      const Day placeholder = util::make_day(1993, 9, 1);
      int made = 0;
      const int count = std::max(1, static_cast<int>(
          config.ripe_placeholder_count * config.scale));
      for (const TrueAdminLife& life : truth.lives) {
        if (made >= count) break;
        if (!life.erx_transfer) continue;
        if (life.segments.back().rir != rir) continue;
        const Day from = std::max<Day>(
            begin + 30,
            begin + static_cast<Day>(rir_rng.uniform(100, 2500)));
        if (from >= life.days.last) continue;
        schedule.date_overrides.push_back(
            DefectSchedule::DateOverride{life.asn, from, placeholder});
        ++made;
      }
    }

    // (vi-a) Mistaken allocations: this registry's files claim ASNs from a
    // block IANA delegated to another RIR.
    {
      const int blocks = std::max(1, static_cast<int>(
          config.mistaken_allocation_blocks * config.scale));
      for (int block = 0; block < blocks; ++block) {
        asn::Rir foreign = rir;
        while (foreign == rir)
          foreign = asn::kAllRirs[static_cast<std::size_t>(
              rir_rng.uniform(0, 4))];
        // Pick a run inside the foreign 16-bit lane.
        std::uint32_t lane_first = 0;
        std::uint32_t lane_count = 0;
        for (const IanaBlock& iana_block : truth.iana.blocks())
          if (iana_block.rir == foreign && iana_block.first.value < 65536) {
            lane_first = iana_block.first.value;
            lane_count = iana_block.count;
          }
        if (lane_count == 0) continue;
        const auto run = static_cast<std::uint32_t>(std::max<std::int64_t>(
            3, static_cast<std::int64_t>(rir_rng.uniform(10, 150) *
                                         config.scale)));
        const auto offset = static_cast<std::uint32_t>(rir_rng.uniform(
            0, static_cast<std::int64_t>(lane_count - run)));
        const Day era_first = std::max(begin, facts.first_regular_file);
        const Day start = era_first + static_cast<Day>(rir_rng.uniform(
                                          60, end - era_first - 60));
        const Day duration = static_cast<Day>(rir_rng.uniform(30, 300));
        for (std::uint32_t i = 0; i < run; ++i) {
          RecordState state;
          state.status = Status::kAllocated;
          state.registration_date = start - 100;
          state.country = asn::CountryCode::literal('Z', 'Y');
          schedule.extras.push_back(DefectSchedule::ExtraRecord{
              asn::Asn{lane_first + offset + i},
              DayInterval{start, std::min<Day>(end, start + duration - 1)},
              state, /*stale_transfer=*/false});
        }
      }
    }

    // (vi-b) Stale transfer data: this registry keeps records for ASNs it
    // transferred away.
    for (std::size_t life_index = 0; life_index < truth.lives.size();
         ++life_index) {
      const TrueAdminLife& life = truth.lives[life_index];
      for (std::size_t s = 0; s + 1 < life.segments.size(); ++s) {
        if (life.segments[s].rir != rir) continue;
        const Day transfer_day = life.segments[s + 1].days.first;
        if (transfer_day <= begin || transfer_day >= end) continue;
        if (!rir_rng.chance(config.stale_transfer_probability)) continue;
        RecordState stale;
        stale.status = Status::kAllocated;
        stale.registration_date = life.registration_date;
        stale.country = life.country;
        stale.opaque_id = life.org + 1;
        const Day duration = static_cast<Day>(
            rir_rng.uniform(5, config.stale_transfer_days_max));
        schedule.extras.push_back(DefectSchedule::ExtraRecord{
            life.asn,
            DayInterval{transfer_day,
                        std::min<Day>(end, transfer_day + duration - 1)},
            stale, /*stale_transfer=*/true});
      }
    }
  }
}

std::unique_ptr<dele::ArchiveStream> SimulatedArchive::stream(
    asn::Rir rir) const {
  return std::make_unique<InjectedStream>(
      rir, rendered_[asn::index_of(rir)], schedules_[asn::index_of(rir)],
      truth_->archive_begin, truth_->archive_end);
}

}  // namespace pl::rirsim
