#include "rirsim/inject.hpp"

#include <algorithm>

#include "rirsim/policy.hpp"

namespace pl::rirsim {

namespace {

using dele::ChannelDelta;
using dele::DayObservation;
using dele::FileCondition;
using dele::RecordChange;
using dele::RecordState;
using dele::Status;
using util::Day;
using util::DayInterval;
using util::Rng;

/// Allocated ASNs of `rir` on `day`, per ground truth.
std::vector<asn::Asn> allocated_on(const GroundTruth& truth, asn::Rir rir,
                                   Day day) {
  std::vector<asn::Asn> out;
  for (const TrueAdminLife& life : truth.lives) {
    if (!life.days.contains(day)) continue;
    if (life.registry_on(day) != rir) continue;
    bool interrupted = false;
    for (const Interruption& gap : life.interruptions)
      if (gap.days.contains(day)) interrupted = true;
    if (!interrupted) out.push_back(life.asn);
  }
  return out;
}

/// Streams one registry's perturbed archive.
class InjectedStream final : public dele::ArchiveStream {
 public:
  InjectedStream(asn::Rir rir, const RenderedRegistry& rendered,
                 const DefectSchedule& schedule, Day begin, Day end)
      : rir_(rir),
        rendered_(rendered),
        schedule_(schedule),
        day_(begin),
        end_(end) {
    build_event_index();
    // Replay pre-archive truth events so the first published file carries
    // the full historical content.
    replay_truth_until(begin);
  }

  asn::Rir registry() const noexcept override { return rir_; }

  std::optional<DayObservation> next() override {
    if (day_ > end_) return std::nullopt;
    const Day today = day_++;

    apply_truth_changes(today);
    apply_schedule_events(today);

    DayObservation observation;
    observation.day = today;
    observation.extended = emit_channel(Channel::kExtended, today);
    observation.regular = emit_channel(Channel::kRegular, today);
    return observation;
  }

 private:
  struct ChannelState {
    std::map<std::uint32_t, RecordState> truth;
    std::set<std::uint32_t> suppressed;
    std::map<std::uint32_t, Day> date_override;
    std::map<std::uint32_t, RecordState> extra;
    std::map<std::uint32_t, RecordState> emitted;
    std::set<std::uint32_t> dirty;
  };

  ChannelState& state(Channel channel) noexcept {
    return channel == Channel::kExtended ? extended_ : regular_;
  }

  const ChangeMap& change_map(Channel channel) const noexcept {
    return channel == Channel::kExtended ? rendered_.extended
                                         : rendered_.regular;
  }

  void build_event_index() {
    for (std::size_t i = 0; i < schedule_.suppressions.size(); ++i) {
      const auto& s = schedule_.suppressions[i];
      suppress_starts_[s.days.first].push_back(i);
      suppress_ends_[s.days.last + 1].push_back(i);
    }
    for (const auto& o : schedule_.date_overrides)
      override_starts_[o.from].push_back(&o);
    for (std::size_t i = 0; i < schedule_.extras.size(); ++i) {
      const auto& e = schedule_.extras[i];
      extra_starts_[e.days.first].push_back(i);
      extra_ends_[e.days.last + 1].push_back(i);
    }
    for (std::size_t i = 0; i < schedule_.duplicates.size(); ++i) {
      const auto& d = schedule_.duplicates[i];
      duplicate_starts_[d.days.first].push_back(i);
      duplicate_ends_[d.days.last + 1].push_back(i);
    }
  }

  void replay_truth_until(Day begin) {
    for (Channel channel : {Channel::kExtended, Channel::kRegular}) {
      ChannelState& cs = state(channel);
      const ChangeMap& map = change_map(channel);
      for (auto it = map.begin(); it != map.end() && it->first < begin; ++it)
        for (const RecordChange& change : it->second) {
          if (change.state)
            cs.truth[change.asn.value] = *change.state;
          else
            cs.truth.erase(change.asn.value);
          cs.dirty.insert(change.asn.value);
        }
    }
  }

  void apply_truth_changes(Day today) {
    for (Channel channel : {Channel::kExtended, Channel::kRegular}) {
      ChannelState& cs = state(channel);
      const ChangeMap& map = change_map(channel);
      const auto it = map.find(today);
      if (it == map.end()) continue;
      for (const RecordChange& change : it->second) {
        if (change.state)
          cs.truth[change.asn.value] = *change.state;
        else
          cs.truth.erase(change.asn.value);
        cs.dirty.insert(change.asn.value);
      }
    }
  }

  void apply_schedule_events(Day today) {
    const auto for_channels = [&](Channel only, auto&& fn) {
      if (only == Channel::kExtended) {
        fn(extended_);
      } else {
        fn(regular_);
      }
    };

    if (const auto it = suppress_starts_.find(today);
        it != suppress_starts_.end()) {
      for (std::size_t index : it->second) {
        const auto& s = schedule_.suppressions[index];
        for_channels(s.channel, [&](ChannelState& cs) {
          for (const asn::Asn a : s.asns) {
            cs.suppressed.insert(a.value);
            cs.dirty.insert(a.value);
          }
        });
      }
    }
    if (const auto it = suppress_ends_.find(today);
        it != suppress_ends_.end()) {
      for (std::size_t index : it->second) {
        const auto& s = schedule_.suppressions[index];
        for_channels(s.channel, [&](ChannelState& cs) {
          for (const asn::Asn a : s.asns) {
            cs.suppressed.erase(a.value);
            cs.dirty.insert(a.value);
          }
        });
      }
    }
    if (const auto it = override_starts_.find(today);
        it != override_starts_.end()) {
      for (const auto* o : it->second)
        for (Channel channel : {Channel::kExtended, Channel::kRegular}) {
          ChannelState& cs = state(channel);
          cs.date_override[o->asn.value] = o->shown;
          cs.dirty.insert(o->asn.value);
        }
    }
    if (const auto it = extra_starts_.find(today); it != extra_starts_.end()) {
      for (std::size_t index : it->second) {
        const auto& e = schedule_.extras[index];
        for (Channel channel : {Channel::kExtended, Channel::kRegular}) {
          ChannelState& cs = state(channel);
          cs.extra[e.asn.value] = e.state;
          cs.dirty.insert(e.asn.value);
        }
      }
    }
    if (const auto it = extra_ends_.find(today); it != extra_ends_.end()) {
      for (std::size_t index : it->second) {
        const auto& e = schedule_.extras[index];
        for (Channel channel : {Channel::kExtended, Channel::kRegular}) {
          ChannelState& cs = state(channel);
          cs.extra.erase(e.asn.value);
          cs.dirty.insert(e.asn.value);
        }
      }
    }
    if (const auto it = duplicate_starts_.find(today);
        it != duplicate_starts_.end())
      for (std::size_t index : it->second) active_duplicates_.insert(index);
    if (const auto it = duplicate_ends_.find(today);
        it != duplicate_ends_.end())
      for (std::size_t index : it->second) active_duplicates_.erase(index);
  }

  /// What the channel's file shows for `asn` today, nullopt if absent.
  std::optional<RecordState> visible(const ChannelState& cs, Channel channel,
                                     std::uint32_t asn_value) const {
    if (cs.suppressed.contains(asn_value)) return std::nullopt;
    const auto truth_it = cs.truth.find(asn_value);
    if (truth_it != cs.truth.end()) {
      RecordState shown = truth_it->second;
      if (const auto ov = cs.date_override.find(asn_value);
          ov != cs.date_override.end())
        shown.registration_date = ov->second;
      return shown;
    }
    const auto extra_it = cs.extra.find(asn_value);
    if (extra_it != cs.extra.end()) {
      if (channel == Channel::kRegular &&
          !dele::is_delegated(extra_it->second.status))
        return std::nullopt;
      return extra_it->second;
    }
    return std::nullopt;
  }

  FileCondition condition(Channel channel, Day today) const {
    const asn::RirFacts& facts = asn::facts(rir_);
    const Day first = channel == Channel::kExtended
                          ? facts.first_extended_file
                          : facts.first_regular_file;
    if (today < first) return FileCondition::kNotPublished;
    if (channel == Channel::kRegular && facts.last_regular_file &&
        today > *facts.last_regular_file)
      return FileCondition::kNotPublished;
    const auto channel_index = static_cast<std::size_t>(channel);
    if (schedule_.corrupt_days[channel_index].contains(today))
      return FileCondition::kCorrupt;
    if (schedule_.missing_days[channel_index].contains(today))
      return FileCondition::kMissing;
    return FileCondition::kPresent;
  }

  ChannelDelta emit_channel(Channel channel, Day today) {
    ChannelDelta delta;
    delta.condition = condition(channel, today);
    delta.publish_minute = channel == Channel::kExtended ? 240 : 180;
    if (schedule_.newest_conflict_days.contains(today) &&
        channel == Channel::kExtended)
      delta.publish_minute = 400;

    if (delta.condition != FileCondition::kPresent) return delta;

    ChannelState& cs = state(channel);
    delta.changes.reserve(cs.dirty.size());
    for (const std::uint32_t asn_value : cs.dirty) {
      const std::optional<RecordState> now = visible(cs, channel, asn_value);
      const auto emitted_it = cs.emitted.find(asn_value);
      const bool was_emitted = emitted_it != cs.emitted.end();
      if (now) {
        if (!was_emitted || !(emitted_it->second == *now)) {
          delta.changes.push_back(RecordChange{asn::Asn{asn_value}, *now});
          cs.emitted[asn_value] = *now;
        }
      } else if (was_emitted) {
        delta.changes.push_back(
            RecordChange{asn::Asn{asn_value}, std::nullopt});
        cs.emitted.erase(emitted_it);
      }
    }
    cs.dirty.clear();

    if (channel == Channel::kExtended) {
      for (const std::size_t index : active_duplicates_) {
        const auto& d = schedule_.duplicates[index];
        delta.duplicates.emplace_back(d.asn, d.state);
      }
    }
    return delta;
  }

  asn::Rir rir_;
  const RenderedRegistry& rendered_;
  const DefectSchedule& schedule_;
  Day day_;
  Day end_;

  ChannelState extended_;
  ChannelState regular_;

  std::map<Day, std::vector<std::size_t>> suppress_starts_;
  std::map<Day, std::vector<std::size_t>> suppress_ends_;
  std::map<Day, std::vector<const DefectSchedule::DateOverride*>>
      override_starts_;
  std::map<Day, std::vector<std::size_t>> extra_starts_;
  std::map<Day, std::vector<std::size_t>> extra_ends_;
  std::map<Day, std::vector<std::size_t>> duplicate_starts_;
  std::map<Day, std::vector<std::size_t>> duplicate_ends_;
  std::set<std::size_t> active_duplicates_;
};

}  // namespace

SimulatedArchive::SimulatedArchive(const GroundTruth& truth,
                                   InjectorConfig config)
    : truth_(&truth), config_(config) {
  Rng rng(config.seed);

  for (asn::Rir rir : asn::kAllRirs) {
    const std::size_t rir_index = asn::index_of(rir);
    rendered_[rir_index] = render_registry(truth, rir);
    DefectSchedule& schedule = schedules_[rir_index];
    Rng rir_rng = rng.fork();
    const asn::RirFacts& facts = asn::facts(rir);
    const Day begin = truth.archive_begin;
    const Day end = truth.archive_end;

    // (i) Missing / corrupt file days, per channel, in short runs. The very
    // first and last day of each era always publish.
    for (Channel channel : {Channel::kExtended, Channel::kRegular}) {
      const auto channel_index = static_cast<std::size_t>(channel);
      const Day era_first = channel == Channel::kExtended
                                ? facts.first_extended_file
                                : facts.first_regular_file;
      Day day = std::max(begin, era_first) + 1;
      while (day < end) {
        if (rir_rng.chance(config.missing_day_rate / 2.5)) {
          const auto run = rir_rng.uniform(1, config.max_consecutive_missing);
          for (Day d = day; d < day + run && d < end; ++d)
            schedule.missing_days[channel_index].insert(d);
          day += static_cast<Day>(run);
        } else if (rir_rng.chance(config.corrupt_day_rate)) {
          schedule.corrupt_days[channel_index].insert(day);
          ++day;
        } else {
          ++day;
        }
      }
    }

    // (ii) Large record-drop episodes on the extended channel.
    for (int episode = 0; episode < config.drop_episodes_per_rir; ++episode) {
      const Day era_first = std::max(begin, facts.first_extended_file);
      if (era_first + 60 >= end) break;
      const Day day = era_first + static_cast<Day>(rir_rng.uniform(
                                      30, end - era_first - 30));
      auto allocated = allocated_on(truth, rir, day);
      if (allocated.empty()) continue;
      auto group_size = static_cast<std::size_t>(
          std::max<std::int64_t>(10, static_cast<std::int64_t>(
              rir_rng.uniform(config.drop_group_min, config.drop_group_max) *
              config.scale)));
      group_size = std::min(group_size, allocated.size());
      // Deterministic partial shuffle.
      for (std::size_t i = 0; i < group_size; ++i) {
        const auto j = static_cast<std::size_t>(rir_rng.uniform(
            static_cast<std::int64_t>(i),
            static_cast<std::int64_t>(allocated.size()) - 1));
        std::swap(allocated[i], allocated[j]);
      }
      allocated.resize(group_size);
      const Day duration = static_cast<Day>(rir_rng.uniform(1, 3));
      schedule.suppressions.push_back(DefectSchedule::Suppression{
          Channel::kExtended, std::move(allocated),
          DayInterval{day, std::min<Day>(end - 1, day + duration - 1)}});
    }

    // (iii) Same-day file differences: the (newer) extended file briefly
    // loses a handful of ASNs the regular file still carries.
    if (rir != asn::Rir::kAfrinic) {
      const Day both_first = std::max(
          {begin, facts.first_extended_file, facts.first_regular_file});
      const Day both_last =
          facts.last_regular_file ? *facts.last_regular_file : end;
      for (Day day = both_first + 1; day + 5 < both_last; ++day) {
        if (!rir_rng.chance(config.same_day_diff_rate)) continue;
        auto allocated = allocated_on(truth, rir, day);
        if (allocated.empty()) continue;
        const auto pick_count = static_cast<std::size_t>(
            rir_rng.uniform(1, 5));
        std::vector<asn::Asn> picked;
        for (std::size_t i = 0; i < pick_count; ++i)
          picked.push_back(allocated[static_cast<std::size_t>(rir_rng.uniform(
              0, static_cast<std::int64_t>(allocated.size()) - 1))]);
        const Day duration = static_cast<Day>(rir_rng.uniform(1, 4));
        schedule.suppressions.push_back(DefectSchedule::Suppression{
            Channel::kExtended, std::move(picked),
            DayInterval{day, std::min<Day>(both_last, day + duration - 1)}});
        for (Day d = day; d <= std::min<Day>(both_last, day + duration - 1);
             ++d)
          schedule.newest_conflict_days.insert(d);
        day += 30;  // keep episodes sparse
      }
    }

    // (iv) AfriNIC invalid duplicates.
    if (rir == asn::Rir::kAfrinic) {
      auto count = static_cast<int>(config.afrinic_duplicate_asns *
                                    config.scale);
      count = std::max(count, 1);
      const Day era_first = std::max(begin, facts.first_extended_file);
      int made = 0;
      for (const TrueAdminLife& life : truth.lives) {
        if (made >= count) break;
        if (life.birth_registry() != rir) continue;
        if (life.days.length() < 400) continue;
        if (life.days.last < era_first + 200) continue;
        if (!rir_rng.chance(0.2)) continue;
        const Day start = std::max<Day>(era_first + 10, life.days.first);
        const Day duration = static_cast<Day>(rir_rng.uniform(30, 180));
        RecordState wrong;
        wrong.status = Status::kReserved;
        schedule.duplicates.push_back(DefectSchedule::DuplicateRecord{
            life.asn,
            DayInterval{start, std::min<Day>(end, start + duration - 1)},
            wrong});
        ++made;
      }
    }

    // (v) AfriNIC future registration dates.
    if (rir == asn::Rir::kAfrinic) {
      int made = 0;
      const int count = std::max(1, static_cast<int>(
          config.afrinic_future_regdate * config.scale));
      for (const TrueAdminLife& life : truth.lives) {
        if (made >= count) break;
        if (life.birth_registry() != rir) continue;
        if (life.days.first <= facts.first_regular_file) continue;
        if (!rir_rng.chance(0.05)) continue;
        schedule.date_overrides.push_back(DefectSchedule::DateOverride{
            life.asn, life.days.first,
            life.registration_date + static_cast<Day>(rir_rng.uniform(2, 5))});
        ++made;
      }
    }

    // (v) RIPE placeholder registration dates on ERX resources.
    if (rir == asn::Rir::kRipeNcc) {
      const Day placeholder = util::make_day(1993, 9, 1);
      int made = 0;
      const int count = std::max(1, static_cast<int>(
          config.ripe_placeholder_count * config.scale));
      for (const TrueAdminLife& life : truth.lives) {
        if (made >= count) break;
        if (!life.erx_transfer) continue;
        if (life.segments.back().rir != rir) continue;
        const Day from = std::max<Day>(
            begin + 30,
            begin + static_cast<Day>(rir_rng.uniform(100, 2500)));
        if (from >= life.days.last) continue;
        schedule.date_overrides.push_back(
            DefectSchedule::DateOverride{life.asn, from, placeholder});
        ++made;
      }
    }

    // (vi-a) Mistaken allocations: this registry's files claim ASNs from a
    // block IANA delegated to another RIR.
    {
      const int blocks = std::max(1, static_cast<int>(
          config.mistaken_allocation_blocks * config.scale));
      for (int block = 0; block < blocks; ++block) {
        asn::Rir foreign = rir;
        while (foreign == rir)
          foreign = asn::kAllRirs[static_cast<std::size_t>(
              rir_rng.uniform(0, 4))];
        // Pick a run inside the foreign 16-bit lane.
        std::uint32_t lane_first = 0;
        std::uint32_t lane_count = 0;
        for (const IanaBlock& iana_block : truth.iana.blocks())
          if (iana_block.rir == foreign && iana_block.first.value < 65536) {
            lane_first = iana_block.first.value;
            lane_count = iana_block.count;
          }
        if (lane_count == 0) continue;
        const auto run = static_cast<std::uint32_t>(std::max<std::int64_t>(
            3, static_cast<std::int64_t>(rir_rng.uniform(10, 150) *
                                         config.scale)));
        const auto offset = static_cast<std::uint32_t>(rir_rng.uniform(
            0, static_cast<std::int64_t>(lane_count - run)));
        const Day era_first = std::max(begin, facts.first_regular_file);
        const Day start = era_first + static_cast<Day>(rir_rng.uniform(
                                          60, end - era_first - 60));
        const Day duration = static_cast<Day>(rir_rng.uniform(30, 300));
        for (std::uint32_t i = 0; i < run; ++i) {
          RecordState state;
          state.status = Status::kAllocated;
          state.registration_date = start - 100;
          state.country = asn::CountryCode::literal('Z', 'Y');
          schedule.extras.push_back(DefectSchedule::ExtraRecord{
              asn::Asn{lane_first + offset + i},
              DayInterval{start, std::min<Day>(end, start + duration - 1)},
              state, /*stale_transfer=*/false});
        }
      }
    }

    // (vi-b) Stale transfer data: this registry keeps records for ASNs it
    // transferred away.
    for (std::size_t life_index = 0; life_index < truth.lives.size();
         ++life_index) {
      const TrueAdminLife& life = truth.lives[life_index];
      for (std::size_t s = 0; s + 1 < life.segments.size(); ++s) {
        if (life.segments[s].rir != rir) continue;
        const Day transfer_day = life.segments[s + 1].days.first;
        if (transfer_day <= begin || transfer_day >= end) continue;
        if (!rir_rng.chance(config.stale_transfer_probability)) continue;
        RecordState stale;
        stale.status = Status::kAllocated;
        stale.registration_date = life.registration_date;
        stale.country = life.country;
        stale.opaque_id = life.org + 1;
        const Day duration = static_cast<Day>(
            rir_rng.uniform(5, config.stale_transfer_days_max));
        schedule.extras.push_back(DefectSchedule::ExtraRecord{
            life.asn,
            DayInterval{transfer_day,
                        std::min<Day>(end, transfer_day + duration - 1)},
            stale, /*stale_transfer=*/true});
      }
    }
  }
}

std::unique_ptr<dele::ArchiveStream> SimulatedArchive::stream(
    asn::Rir rir) const {
  return std::make_unique<InjectedStream>(
      rir, rendered_[asn::index_of(rir)], schedules_[asn::index_of(rir)],
      truth_->archive_begin, truth_->archive_end);
}

}  // namespace pl::rirsim
