#include "rirsim/registry_sim.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "asn/country.hpp"

namespace pl::rirsim {

namespace {

using util::Day;
using util::DayInterval;
using util::Rng;

/// A previously-used number sitting in (or past) quarantine.
struct PoolEntry {
  asn::Asn asn;
  Day available_from = 0;
  int previous_lives = 0;
};

/// Number source for one registry: fresh 16-bit lane, fresh 32-bit lane, and
/// the reuse pool.
class NumberSource {
 public:
  NumberSource(const IanaBlockTable& iana, asn::Rir rir) {
    for (const IanaBlock& block : iana.blocks()) {
      if (block.rir != rir) continue;
      if (block.first.value < 65536) {
        lane16_next_ = block.first.value;
        lane16_end_ = block.first.value + block.count;
      } else {
        lane32_next_ = block.first.value;
        lane32_end_ = block.first.value + block.count;
      }
    }
  }

  bool has_16bit() const noexcept { return lane16_next_ < lane16_end_; }

  std::optional<asn::Asn> fresh_16bit() noexcept {
    if (!has_16bit()) return std::nullopt;
    return asn::Asn{lane16_next_++};
  }

  std::optional<asn::Asn> fresh_32bit() noexcept {
    if (lane32_next_ >= lane32_end_) return std::nullopt;
    return asn::Asn{lane32_next_++};
  }

  void retire_to_pool(PoolEntry entry) { pool_.push_back(entry); }

  /// Pop a reusable number available on or before `day`, if any.
  std::optional<PoolEntry> pop_reusable(Day day) noexcept {
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      if (pool_[i].available_from <= day) {
        PoolEntry entry = pool_[i];
        pool_[i] = pool_.back();
        pool_.pop_back();
        return entry;
      }
    }
    return std::nullopt;
  }

 private:
  std::uint32_t lane16_next_ = 0;
  std::uint32_t lane16_end_ = 0;
  std::uint32_t lane32_next_ = 0;
  std::uint32_t lane32_end_ = 0;
  std::vector<PoolEntry> pool_;
};

/// Sample a life duration in days from the policy's mixture.
std::int64_t sample_duration(const DurationMixture& mix, Rng& rng,
                             std::int64_t days_to_horizon) {
  const double weights[] = {mix.weight_short, mix.weight_medium,
                            mix.weight_long, mix.weight_open};
  switch (rng.weighted(weights)) {
    case 0:  // < 1 year, log-normal around ~5 months
      return std::clamp<std::int64_t>(
          static_cast<std::int64_t>(rng.lognormal(5.0, 0.7)), 7, 364);
    case 1:  // 1..5 years
      return rng.uniform(365, 5 * 365);
    case 2:  // 5..17 years
      return rng.uniform(5 * 365 + 1, 17 * 365);
    default:  // open-ended: survive past the horizon
      return days_to_horizon + 1;
  }
}

/// Country sampler with the (rir, year) pool and its weight table built once
/// per year instead of per birth — the pool itself never consumes rng, so
/// hoisting it out of the birth loop leaves the random stream untouched.
class CountrySampler {
 public:
  void rebuild(asn::Rir rir, int year) {
    pool_ = asn::country_pool(rir, year);
    weights_.clear();
    weights_.reserve(pool_.size() + 1);
    double total = 0;
    for (const auto& entry : pool_) {
      weights_.push_back(entry.weight);
      total += entry.weight;
    }
    // Long tail of other countries.
    weights_.push_back(std::max(0.0, 100.0 - total));
  }

  asn::CountryCode sample(Rng& rng) const {
    const std::size_t pick = rng.weighted(weights_);
    if (pick < pool_.size()) return pool_[pick].country;
    // Synthesize a tail country deterministically.
    const char a = static_cast<char>('A' + rng.uniform(0, 25));
    const char b = static_cast<char>('A' + rng.uniform(0, 25));
    return asn::CountryCode::literal(a, b);
  }

 private:
  std::vector<asn::CountryWeight> pool_;
  std::vector<double> weights_;
};

}  // namespace

RegistrySimResult simulate_registry(const RegistrySimConfig& config,
                                    const IanaBlockTable& iana,
                                    Rng& rng) {
  RegistrySimResult result;
  const RirPolicy& policy = config.policy;
  const Day horizon = config.horizon;

  NumberSource numbers(iana, policy.rir);

  // Organizations: multi-ASN operators accumulate siblings; special org
  // kinds are created lazily.
  std::vector<Organization>& orgs = result.orgs;
  std::vector<OrgId> multi_asn_orgs;  // candidates for sibling attachment

  const auto new_org = [&](OrgKind kind, asn::CountryCode country) {
    Organization org;
    org.id = orgs.size();
    org.kind = kind;
    org.rir = policy.rir;
    org.country = country;
    orgs.push_back(org);
    return org.id;
  };

  const int first_year = util::year_of(config.first_birth_day);
  const int last_year = util::year_of(horizon);

  // Pre-size the result vectors from the deterministic birth budget (no rng
  // involved): growth reallocations of the org/life tables otherwise dominate
  // this function's profile.
  {
    double budget_total = 0;
    for (int year = first_year; year <= last_year; ++year)
      budget_total += policy.births_per_quarter(year) * 4 * config.scale;
    const auto births_upper = static_cast<std::size_t>(budget_total) + 64;
    result.lives.reserve(births_upper);
    result.quarantine_after.reserve(births_upper);
    orgs.reserve(births_upper);
  }

  CountrySampler country_sampler;

  for (int year = first_year; year <= last_year; ++year) {
    country_sampler.rebuild(policy.rir, year);
    for (int quarter = 0; quarter < 4; ++quarter) {
      const Day quarter_start =
          util::make_day(year, static_cast<unsigned>(quarter * 3 + 1), 1);
      if (quarter_start > horizon) break;
      const Day quarter_end = std::min<Day>(
          horizon, util::make_day(quarter == 3 ? year + 1 : year,
                                  static_cast<unsigned>(quarter == 3
                                                            ? 1
                                                            : quarter * 3 + 4),
                                  1) -
                       1);

      // Stochastic rounding of the scaled budget keeps small scales fair.
      const double budget = policy.births_per_quarter(year) * config.scale;
      int births = static_cast<int>(budget);
      if (rng.chance(budget - births)) ++births;

      // APNIC NIR block delegations: a slice of the budget arrives as
      // contiguous blocks delegated at once.
      int nir_births = 0;
      if (policy.delegates_nir_blocks)
        nir_births = static_cast<int>(births * policy.nir_block_fraction);
      const int regular_births = births - nir_births;

      const auto make_life = [&](asn::Asn number, Day birth_day, OrgId org,
                                 asn::CountryCode country, int ordinal,
                                 bool nir) {
        TrueAdminLife life;
        life.asn = number;
        life.org = org;
        life.country = country;
        life.registration_date = birth_day;
        life.ordinal = ordinal;
        life.nir_block = nir;
        // Publication lag (footnote 6).
        if (!rng.chance(policy.publish_delay_same_day_fraction))
          life.publish_lag_days = static_cast<int>(
              rng.chance(0.85) ? rng.uniform(1, 3) : rng.uniform(4, 10));

        const std::int64_t duration = sample_duration(
            policy.durations(year), rng, horizon - birth_day);
        Day end = birth_day + static_cast<Day>(duration) - 1;
        if (end >= horizon) {
          end = horizon;
          life.open_ended = true;
        }
        life.days = DayInterval{birth_day, end};
        life.segments.push_back(RegistrySegment{policy.rir, life.days});

        // Mid-life reserved interruption, resolved back to the same holder.
        if (!nir && life.days.length() > 400 &&
            rng.chance(policy.interruption_probability)) {
          const Day gap_start = birth_day + static_cast<Day>(rng.uniform(
                                                100, life.days.length() - 200));
          const Day gap_len = static_cast<Day>(rng.uniform(10, 120));
          Interruption interruption;
          interruption.days = DayInterval{gap_start, gap_start + gap_len - 1};
          interruption.regdate_reset =
              policy.regdate_reset_on_same_holder_reallocation;
          life.interruptions.push_back(interruption);
        }

        // Rare administrative registration-date correction (4.1).
        if (!nir && life.days.length() > 700 && rng.chance(0.002)) {
          const Day when =
              birth_day + static_cast<Day>(rng.uniform(
                              300, life.days.length() - 100));
          const Day corrected =
              life.registration_date + static_cast<Day>(rng.uniform(-30, 30));
          life.regdate_correction = {{when, corrected}};
        }

        // Quarantine after a closed life.
        DayInterval quarantine{};
        if (!life.open_ended) {
          std::int64_t q_days = rng.uniform(policy.quarantine_min_days,
                                            policy.quarantine_max_days);
          if (rng.chance(policy.dangling_hold_probability))
            q_days += rng.uniform(200, 700);
          const Day q_end =
              std::min<Day>(horizon, life.days.last + static_cast<Day>(q_days));
          quarantine = DayInterval{life.days.last + 1, q_end};
          numbers.retire_to_pool(PoolEntry{
              number, life.days.last + static_cast<Day>(q_days) + 1,
              ordinal + 1});
        }

        result.lives.push_back(std::move(life));
        result.quarantine_after.push_back(quarantine);
      };

      for (int b = 0; b < regular_births; ++b) {
        const Day birth_day =
            quarter_start +
            static_cast<Day>(rng.uniform(0, quarter_end - quarter_start));

        // Number choice: reuse from the quarantine pool, else fresh.
        asn::Asn number;
        int ordinal = 0;
        const bool try_reuse = rng.chance(policy.reuse_preference);
        std::optional<PoolEntry> reused;
        if (try_reuse) reused = numbers.pop_reusable(birth_day);
        if (reused) {
          number = reused->asn;
          ordinal = reused->previous_lives;
        } else {
          const bool want_32 =
              year >= 2007 && rng.chance(policy.fraction_32bit(year));
          std::optional<asn::Asn> fresh =
              want_32 ? numbers.fresh_32bit() : numbers.fresh_16bit();
          if (!fresh) fresh = want_32 ? numbers.fresh_16bit()
                                      : numbers.fresh_32bit();
          if (!fresh) continue;  // registry exhausted both lanes
          number = *fresh;
        }

        // Organization: mostly new single-AS orgs; some siblings; rare
        // government/legacy blocks in the early eras.
        const asn::CountryCode country = country_sampler.sample(rng);
        OrgId org;
        if (!multi_asn_orgs.empty() && rng.chance(0.12)) {
          org = multi_asn_orgs[static_cast<std::size_t>(rng.uniform(
              0, static_cast<std::int64_t>(multi_asn_orgs.size()) - 1))];
        } else {
          OrgKind kind = OrgKind::kSmallNetwork;
          if (year < 1998 && rng.chance(0.06))
            kind = rng.chance(0.5) ? OrgKind::kGovernment
                                   : OrgKind::kLegacyHolder;
          else if (rng.chance(0.05))
            kind = OrgKind::kLargeOperator;
          org = new_org(kind, country);
          if (kind != OrgKind::kSmallNetwork) multi_asn_orgs.push_back(org);
        }
        orgs[org].asns.push_back(number);
        make_life(number, birth_day, org,
                  orgs[org].country.unknown() ? country : orgs[org].country,
                  ordinal, /*nir=*/false);
      }

      // NIR block delegations (APNIC): contiguous fresh numbers in one shot.
      if (nir_births > 0) {
        const Day birth_day =
            quarter_start +
            static_cast<Day>(rng.uniform(0, quarter_end - quarter_start));
        const asn::CountryCode country = country_sampler.sample(rng);
        const OrgId nir_org = new_org(OrgKind::kNir, country);
        for (int b = 0; b < nir_births; ++b) {
          const bool want_32 =
              year >= 2007 && rng.chance(policy.fraction_32bit(year));
          std::optional<asn::Asn> fresh =
              want_32 ? numbers.fresh_32bit() : numbers.fresh_16bit();
          if (!fresh) fresh = want_32 ? numbers.fresh_16bit()
                                      : numbers.fresh_32bit();
          if (!fresh) break;
          orgs[nir_org].asns.push_back(*fresh);
          make_life(*fresh, birth_day, nir_org, country, 0, /*nir=*/true);
        }
      }
    }
  }

  return result;
}

}  // namespace pl::rirsim
