// Error injection: perturbs the rendered delegation-file streams with every
// defect class the paper's restoration pipeline (3.1) was built to repair.
// Each defect is recorded in a DefectSchedule so tests can verify that
// restoration undoes exactly what was injected.
#pragma once

#include <memory>
#include <set>

#include "delegation/archive.hpp"
#include "rirsim/render.hpp"
#include "rirsim/truth.hpp"
#include "util/rng.hpp"

namespace pl::rirsim {

enum class Channel : std::uint8_t { kExtended, kRegular };

/// Rates and magnitudes for each defect class. Defaults follow the paper's
/// reported incidence; counts scale with WorldConfig::scale.
struct InjectorConfig {
  std::uint64_t seed = 7;
  double scale = 1.0;

  double missing_day_rate = 0.006;   ///< <1% of days miss a file (3.1)
  int max_consecutive_missing = 7;   ///< longest run observed: 7 (RIPE)
  double corrupt_day_rate = 0.0005;

  int drop_episodes_per_rir = 3;     ///< large record-drop groups (3.1.ii)
  int drop_group_min = 100;
  int drop_group_max = 3000;

  double same_day_diff_rate = 0.018; ///< 1.8% of days (3.1.iii)

  int afrinic_duplicate_asns = 16;   ///< invalid duplicates (3.1.iv)
  int afrinic_future_regdate = 4;    ///< future registration dates (3.1.v)
  int ripe_placeholder_count = 800;  ///< 1993-09-01 placeholders (3.1.v)

  int mistaken_allocation_blocks = 4;   ///< wrong-RIR allocations (3.1.vi)
  double stale_transfer_probability = 0.5;  ///< stale origin data (3.1.vi)
  int stale_transfer_days_max = 260;

  /// Publication delay is part of ground truth (TrueAdminLife::
  /// publish_lag_days, rendered directly); no injection needed.
};

/// Everything that was injected, for ground-truth verification.
struct DefectSchedule {
  struct Suppression {
    Channel channel;
    std::vector<asn::Asn> asns;
    util::DayInterval days;
  };
  struct DateOverride {
    asn::Asn asn;
    util::Day from;
    util::Day shown;
  };
  struct ExtraRecord {
    asn::Asn asn;
    util::DayInterval days;
    dele::RecordState state;
    bool stale_transfer = false;  ///< vs mistaken allocation
  };
  struct DuplicateRecord {
    asn::Asn asn;
    util::DayInterval days;
    dele::RecordState state;
  };

  std::set<util::Day> missing_days[2];  ///< per channel
  std::set<util::Day> corrupt_days[2];
  std::set<util::Day> newest_conflict_days;  ///< extended published last
  std::vector<Suppression> suppressions;
  std::vector<DateOverride> date_overrides;
  std::vector<ExtraRecord> extras;
  std::vector<DuplicateRecord> duplicates;
};

/// The simulated archive: renders + injects lazily per registry and hands
/// out day-delta streams compatible with the restoration pipeline.
class SimulatedArchive {
 public:
  SimulatedArchive(const GroundTruth& truth, InjectorConfig config);

  /// A fresh stream over [truth.archive_begin, truth.archive_end].
  std::unique_ptr<dele::ArchiveStream> stream(asn::Rir rir) const;

  const DefectSchedule& schedule(asn::Rir rir) const noexcept {
    return schedules_[asn::index_of(rir)];
  }

  const GroundTruth& truth() const noexcept { return *truth_; }

 private:
  const GroundTruth* truth_;
  InjectorConfig config_;
  RenderedRegistry rendered_[asn::kRirCount];
  DefectSchedule schedules_[asn::kRirCount];
};

}  // namespace pl::rirsim
