#include "rirsim/world.hpp"

#include <algorithm>
#include <cstdint>
#include <utility>

namespace pl::rirsim {

namespace {

using asn::Rir;
using util::Day;
using util::DayInterval;
using util::Rng;

/// Resample a life's holder country from the target region's pool — ERX
/// moved resources *because* the holder resided in the target region.
void relocate_holder(TrueAdminLife& life, Rir target, Rng& rng) {
  const auto pool = asn::country_pool(target,
                                      util::year_of(life.days.first));
  if (pool.empty()) return;
  std::vector<double> weights;
  weights.reserve(pool.size());
  for (const auto& entry : pool) weights.push_back(entry.weight);
  life.country = pool[rng.weighted(weights)].country;
}

/// Split a life's single segment at `transfer_day`, moving the tail to
/// `target`. Precondition: the life covers transfer_day.
void apply_transfer(TrueAdminLife& life, Day transfer_day, Rir target) {
  RegistrySegment& last = life.segments.back();
  const DayInterval tail{transfer_day, last.days.last};
  last.days.last = transfer_day - 1;
  if (last.days.empty()) {
    last.rir = target;
    last.days = tail;
  } else {
    life.segments.push_back(RegistrySegment{target, tail});
  }
}

}  // namespace

void GroundTruth::index() {
  lives_by_asn.clear();
  // Sort flat (asn, start) keys instead of indices whose comparator chases
  // the lives array: keys are unique (one ASN cannot have two lives starting
  // the same day), so the order matches the old two-field comparator.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> order;
  order.reserve(lives.size());
  for (std::size_t i = 0; i < lives.size(); ++i) {
    const std::uint64_t start_biased =
        static_cast<std::uint32_t>(lives[i].days.first) ^ 0x80000000u;
    order.emplace_back(
        (static_cast<std::uint64_t>(lives[i].asn.value) << 32) | start_biased,
        static_cast<std::uint32_t>(i));
  }
  std::sort(order.begin(), order.end());
  for (const auto& [key, i] : order)
    lives_by_asn[lives[i].asn.value].push_back(i);
  // Re-number ordinals to match temporal order (ERX moves don't change
  // order, but reuse across registries could).
  for (auto& [asn_value, indices] : lives_by_asn)
    for (std::size_t k = 0; k < indices.size(); ++k)
      lives[indices[k]].ordinal = static_cast<int>(k);
}

std::size_t GroundTruth::life_count(Rir rir) const noexcept {
  std::size_t count = 0;
  for (const TrueAdminLife& life : lives)
    if (life.birth_registry() == rir) ++count;
  return count;
}

GroundTruth build_world(const WorldConfig& config) {
  GroundTruth truth;
  truth.archive_begin = config.archive_begin;
  truth.archive_end = config.archive_end;
  truth.iana = make_default_iana_plan();

  Rng rng(config.seed);

  // Per-registry generation. Legacy (pre-RIR) numbers are modelled as ARIN
  // births, since ARIN inherited the InterNIC database (3.1.v).
  for (Rir rir : asn::kAllRirs) {
    RegistrySimConfig sim;
    sim.policy = default_policy(rir);
    sim.scale = config.scale;
    sim.horizon = config.archive_end;
    sim.first_birth_day = util::make_day(1984, 1, 1);
    Rng registry_rng = rng.fork();
    RegistrySimResult result =
        simulate_registry(sim, truth.iana, registry_rng);

    // Remap org ids into the world table.
    const OrgId base = truth.orgs.size();
    truth.orgs.reserve(truth.orgs.size() + result.orgs.size());
    truth.lives.reserve(truth.lives.size() + result.lives.size());
    truth.quarantine_after.reserve(truth.quarantine_after.size() +
                                   result.quarantine_after.size());
    for (Organization& org : result.orgs) {
      org.id += base;
      truth.orgs.push_back(std::move(org));
    }
    for (TrueAdminLife& life : result.lives) {
      life.org += base;
      truth.lives.push_back(std::move(life));
    }
    for (const DayInterval& q : result.quarantine_after)
      truth.quarantine_after.push_back(q);
  }

  // --- ERX phase 1 (2002-2003): early-registration ASNs move from ARIN to
  // RIPE/APNIC/LACNIC. 5,026 ASNs at paper scale.
  {
    Rng erx_rng = rng.fork();
    const auto target_count =
        static_cast<std::size_t>(5026 * config.scale);
    const Day erx_window_start = util::make_day(2002, 10, 1);
    const Day erx_window_end = util::make_day(2003, 9, 30);
    std::size_t moved = 0;
    for (std::size_t i = 0;
         i < truth.lives.size() && moved < target_count; ++i) {
      TrueAdminLife& life = truth.lives[i];
      if (life.birth_registry() != Rir::kArin) continue;
      if (util::year_of(life.registration_date) >= 1998) continue;
      if (!life.days.contains(erx_window_end)) continue;
      const Day transfer_day = erx_window_start + static_cast<Day>(
          erx_rng.uniform(0, erx_window_end - erx_window_start));
      const double pick = erx_rng.uniform01();
      const Rir target = pick < 0.60   ? Rir::kRipeNcc
                         : pick < 0.85 ? Rir::kApnic
                                       : Rir::kLacnic;
      apply_transfer(life, transfer_day, target);
      relocate_holder(life, target, erx_rng);
      life.erx_transfer = true;
      truth.erx[life.asn.value] = life.registration_date;
      ++moved;
    }
  }

  // --- ERX phase 2 (2005): AfriNIC receives 204 ASNs from ARIN and RIPE,
  // registration dates unaltered.
  {
    Rng erx_rng = rng.fork();
    const auto target_count = static_cast<std::size_t>(204 * config.scale);
    const Day transfer_day = util::make_day(2005, 7, 15);
    std::size_t moved = 0;
    for (std::size_t i = 0;
         i < truth.lives.size() && moved < target_count; ++i) {
      TrueAdminLife& life = truth.lives[i];
      const Rir birth = life.birth_registry();
      if (birth != Rir::kArin && birth != Rir::kRipeNcc) continue;
      if (life.erx_transfer) continue;
      if (util::year_of(life.registration_date) >= 2000) continue;
      if (!life.days.contains(transfer_day)) continue;
      if (!erx_rng.chance(0.3)) continue;
      apply_transfer(life, transfer_day, Rir::kAfrinic);
      relocate_holder(life, Rir::kAfrinic, erx_rng);
      life.erx_transfer = true;
      truth.erx[life.asn.value] = life.registration_date;
      ++moved;
    }
  }

  // --- Regular inter-RIR transfers (342 at paper scale, 4.1): gap-free
  // registry switches in the 2010s.
  {
    Rng transfer_rng = rng.fork();
    const auto target_count = static_cast<std::size_t>(342 * config.scale);
    const Day window_start = util::make_day(2012, 1, 1);
    std::size_t moved = 0;
    for (std::size_t i = 0;
         i < truth.lives.size() && moved < target_count; ++i) {
      TrueAdminLife& life = truth.lives[i];
      if (life.erx_transfer || life.segments.size() > 1 || life.nir_block)
        continue;
      if (life.days.first > window_start - 400 ||
          life.days.last < window_start + 400)
        continue;
      if (!transfer_rng.chance(0.01)) continue;
      const Day transfer_day = window_start + static_cast<Day>(
          transfer_rng.uniform(0, std::min<Day>(life.days.last,
                                                config.archive_end) -
                                      window_start - 1));
      if (!life.days.contains(transfer_day) ||
          transfer_day <= life.days.first)
        continue;
      const Rir source = life.birth_registry();
      Rir target = source;
      while (target == source)
        target = asn::kAllRirs[static_cast<std::size_t>(
            transfer_rng.uniform(0, 4))];
      apply_transfer(life, transfer_day, target);
      relocate_holder(life, target, transfer_rng);
      ++moved;
    }
  }

  truth.index();
  return truth;
}

}  // namespace pl::rirsim
