// Rendering ground truth into per-registry delegation-file timelines: for
// each (registry, channel) the exact record content the registry would
// publish each day, expressed as per-day change events. Error injection
// (inject.hpp) perturbs these streams afterwards.
#pragma once

#include <map>
#include <vector>

#include "delegation/record.hpp"
#include "rirsim/truth.hpp"

namespace pl::rirsim {

/// Per-day record-change events for one (registry, channel), keyed by day.
/// Events start at the beginning of simulated history (1984), well before
/// any file is published; the archive cursor replays early events silently
/// to seed the first file's content.
using ChangeMap = std::map<util::Day, std::vector<dele::RecordChange>>;

/// Both channels of one registry.
struct RenderedRegistry {
  ChangeMap extended;  ///< allocated + reserved + available(previously used)
  ChangeMap regular;   ///< delegated records only
};

/// Render one registry's truth timeline.
RenderedRegistry render_registry(const GroundTruth& truth, asn::Rir rir);

}  // namespace pl::rirsim
