// Rendering ground truth into per-registry delegation-file timelines: for
// each (registry, channel) the exact record content the registry would
// publish each day, expressed as per-day change events. Error injection
// (inject.hpp) perturbs these streams afterwards.
#pragma once

#include <vector>

#include "delegation/record.hpp"
#include "rirsim/truth.hpp"

namespace pl::rirsim {

/// All record changes one (registry, channel) publishes on one day.
struct DayChanges {
  util::Day day = 0;
  std::vector<dele::RecordChange> changes;
};

/// Per-day record-change events for one (registry, channel), ordered by
/// strictly increasing day (a flat sorted vector — the archive cursor walks
/// it monotonically, so a tree map would only add pointer chasing). Events
/// start at the beginning of simulated history (1984), well before any file
/// is published; the cursor replays early events silently to seed the first
/// file's content.
using ChangeMap = std::vector<DayChanges>;

/// Both channels of one registry.
struct RenderedRegistry {
  ChangeMap extended;  ///< allocated + reserved + available(previously used)
  ChangeMap regular;   ///< delegated records only
};

/// Render one registry's truth timeline.
RenderedRegistry render_registry(const GroundTruth& truth, asn::Rir rir);

}  // namespace pl::rirsim
