// Ground truth produced by the world simulator: the *actual* administrative
// history of every ASN, before delegation-file rendering and error
// injection. The pipeline's job is to recover (an approximation of) this
// from the noisy archive; tests measure how well it does.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "asn/asn.hpp"
#include "asn/country.hpp"
#include "asn/rir.hpp"
#include "rirsim/iana.hpp"
#include "rirsim/org.hpp"
#include "util/interval.hpp"

namespace pl::rirsim {

/// Part of a life spent under one registry (inter-RIR transfers split a
/// life into consecutive segments).
struct RegistrySegment {
  asn::Rir rir = asn::Rir::kArin;
  util::DayInterval days;
};

/// A reserved/administrative interruption *inside* one life: the holder kept
/// the number, the registry briefly parked it (4.1's same-registration-date
/// merge case).
struct Interruption {
  util::DayInterval days;
  /// AfriNIC resets the registration date on re-allocation to the same
  /// holder; set when that quirk applies to the resumption after this
  /// interruption.
  bool regdate_reset = false;
};

/// One true administrative life of one ASN.
struct TrueAdminLife {
  asn::Asn asn;
  OrgId org = 0;
  asn::CountryCode country;
  util::Day registration_date = 0;  ///< true original registration date
  util::DayInterval days;           ///< allocation span (end clipped to horizon)
  bool open_ended = false;          ///< still allocated at the horizon
  std::vector<RegistrySegment> segments;  ///< >=1, consecutive, gap-free
  std::vector<Interruption> interruptions;
  int ordinal = 0;                  ///< 0 for the ASN's first life, 1 next...
  bool erx_transfer = false;        ///< moved by the ERX project
  bool nir_block = false;           ///< part of an APNIC->NIR block delegation
  /// Mid-life administrative correction of the registration date: from day
  /// `first` onward the files report date `second`. Same life (4.1).
  std::optional<std::pair<util::Day, util::Day>> regdate_correction;
  /// Days between registration and the record's first appearance in the
  /// delegation files (footnote 6: 90.1%..99.35% appear within a day). The
  /// rendered file spans start this many days after `days.first`.
  int publish_lag_days = 0;

  /// Registry responsible at day `d` (the last segment covering d).
  asn::Rir registry_on(util::Day d) const noexcept {
    for (const RegistrySegment& s : segments)
      if (s.days.contains(d)) return s.rir;
    return segments.back().rir;
  }

  /// Registry of the first segment (used for per-RIR accounting; the paper
  /// attributes merged transfer lives to the allocating registry).
  asn::Rir birth_registry() const noexcept { return segments.front().rir; }
};

/// The ERX reference data: original registration dates for early-registration
/// transfers, mirroring ARIN's published pre-delegation-file records that the
/// paper used to repair placeholder dates (3.1.v).
using ErxReference = std::map<std::uint32_t, util::Day>;

/// Everything the simulator knows to be true.
struct GroundTruth {
  util::Day archive_begin = 0;
  util::Day archive_end = 0;
  std::vector<TrueAdminLife> lives;
  std::vector<Organization> orgs;  ///< indexed by OrgId
  IanaBlockTable iana;
  ErxReference erx;

  /// Post-life quarantine (reserved) spans, keyed by life index — rendered
  /// into extended files but not part of any life.
  std::vector<util::DayInterval> quarantine_after;  ///< parallel to `lives`

  /// Lives grouped by ASN (indices into `lives`, in start order).
  std::map<std::uint32_t, std::vector<std::size_t>> lives_by_asn;

  /// Rebuild `lives_by_asn` after mutating `lives`.
  void index();

  /// Count of lives whose birth registry is `rir`.
  std::size_t life_count(asn::Rir rir) const noexcept;
};

}  // namespace pl::rirsim
