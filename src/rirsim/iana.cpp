#include "rirsim/iana.hpp"

namespace pl::rirsim {

void IanaBlockTable::add_block(const IanaBlock& block) {
  by_first_.emplace(block.first.value, blocks_.size());
  blocks_.push_back(block);
}

std::optional<asn::Rir> IanaBlockTable::owner(asn::Asn asn) const noexcept {
  auto it = by_first_.upper_bound(asn.value);
  if (it == by_first_.begin()) return std::nullopt;
  --it;
  const IanaBlock& block = blocks_[it->second];
  if (asn.value < block.first.value + block.count) return block.rir;
  return std::nullopt;
}

std::uint32_t IanaBlockTable::sixteen_bit_stock(asn::Rir rir) const noexcept {
  std::uint32_t total = 0;
  for (const IanaBlock& block : blocks_)
    if (block.rir == rir && block.first.value < 65536)
      total += block.count;
  return total;
}

std::uint32_t default_32bit_base(asn::Rir rir) noexcept {
  // Disjoint 4M-wide 32-bit lanes per RIR, starting at the real 32-bit
  // allocatable base (AS 131072 = 2.0 in asdot).
  return 131072 + static_cast<std::uint32_t>(asn::index_of(rir)) * 4u * 1024 *
                      1024;
}

IanaBlockTable make_default_iana_plan() {
  IanaBlockTable table;
  using asn::Rir;
  using util::make_day;

  // 16-bit space: carve the allocatable range [1, 64495] into per-RIR lanes
  // proportional to historical appetite. (Real IANA delegations were
  // 1024-number blocks over time; a static carve preserves the property
  // restoration needs: every 16-bit number has exactly one legitimate RIR.)
  struct Lane {
    Rir rir;
    std::uint32_t first;
    std::uint32_t count;
  };
  constexpr Lane kLanes[] = {
      {Rir::kArin, 1, 26000},        // oldest, largest historic pool
      {Rir::kRipeNcc, 26001, 22000},
      {Rir::kApnic, 48001, 9000},
      {Rir::kLacnic, 57001, 5200},
      {Rir::kAfrinic, 62201, 2295},  // up to 64495 (64496.. reserved by RFC)
  };
  for (const Lane& lane : kLanes)
    table.add_block(IanaBlock{asn::Asn{lane.first}, lane.count, lane.rir,
                              make_day(1984, 1, 1)});

  // 32-bit space: one 4M lane per RIR from the 32-bit base. The simulator
  // only ever uses a small prefix of each lane.
  for (Rir rir : asn::kAllRirs)
    table.add_block(IanaBlock{asn::Asn{default_32bit_base(rir)},
                              4u * 1024 * 1024, rir, make_day(2007, 1, 1)});
  return table;
}

}  // namespace pl::rirsim
