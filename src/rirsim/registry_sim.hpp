// Single-registry allocation simulator: turns a RirPolicy into a stream of
// ground-truth administrative lives, organizations, and quarantine spans.
#pragma once

#include <vector>

#include "rirsim/policy.hpp"
#include "rirsim/truth.hpp"
#include "util/rng.hpp"

namespace pl::rirsim {

/// Configuration for one registry's generation run.
struct RegistrySimConfig {
  RirPolicy policy;
  double scale = 1.0;            ///< multiplier on birth budgets
  util::Day horizon = 0;         ///< archive end; open lives are clipped here
  util::Day first_birth_day = 0; ///< no births before this day
};

/// Output of one registry's run, to be merged into the world's GroundTruth.
struct RegistrySimResult {
  std::vector<TrueAdminLife> lives;
  std::vector<util::DayInterval> quarantine_after;  ///< parallel to lives
  std::vector<Organization> orgs;                   ///< org ids are local;
                                                    ///< world remaps them
};

/// Run the generator. `iana` supplies the registry's number lanes;
/// deterministic under `rng`'s seed.
RegistrySimResult simulate_registry(const RegistrySimConfig& config,
                                    const IanaBlockTable& iana,
                                    util::Rng& rng);

}  // namespace pl::rirsim
