#include "rirsim/policy.hpp"

namespace pl::rirsim {

namespace {

using asn::Rir;

double arin_births(int year) noexcept {
  // The US dominated the early Internet: ARIN (and the InterNIC records it
  // inherited) holds most pre-2000 registrations, keeping it the largest
  // registry until RIPE NCC's overtake in 2012 (Fig. 4).
  if (year < 1984) return 0;
  if (year < 1990) return 36;
  if (year < 1995) return 180;
  if (year < 1999) return 450;
  if (year < 2002) return 810;  // dot-com bubble spike (Fig. 10)
  if (year < 2005) return 378;
  if (year < 2010) return 378;
  if (year < 2014) return 342;
  if (year < 2018) return 270;
  return 252;
}

double ripe_births(int year) noexcept {
  if (year < 1990) return 0;
  if (year < 1995) return 27;
  if (year < 1999) return 90;
  if (year < 2002) return 225;
  if (year < 2004) return 360;
  if (year < 2005) return 495;
  if (year < 2014) return 585;  // RIPE's massive 2005-2013 volume (Fig. 11)
  if (year < 2018) return 495;
  return 450;
}

double apnic_births(int year) noexcept {
  if (year < 1987) return 0;
  if (year < 1990) return 4;
  if (year < 1995) return 36;
  if (year < 1999) return 108;
  if (year < 2002) return 180;
  if (year < 2009) return 162;
  if (year < 2014) return 216;
  return 432;  // post-2014 ramp (Fig. 10/11)
}

double lacnic_births(int year) noexcept {
  if (year < 1999) return 0;
  if (year < 2002) return 27;
  if (year < 2008) return 108;
  if (year < 2014) return 162;
  return 324;  // post-2014 ramp
}

double afrinic_births(int year) noexcept {
  if (year < 2005) return 0;  // AfriNIC recognized as an RIR in April 2005
  if (year < 2010) return 22;
  if (year < 2015) return 27;
  return 32;
}

double arin_32bit(int year) noexcept {
  if (year < 2007) return 0.0;
  if (year < 2009) return 0.03;
  if (year < 2014) return 0.10;  // ARIN ramps up only around 2014 (5)
  if (year < 2016) return 0.40;
  if (year < 2020) return 0.55;
  return 0.70;  // ~30% of 2020 allocations still 16-bit
}

double ripe_32bit(int year) noexcept {
  if (year < 2007) return 0.0;
  if (year < 2009) return 0.05;
  if (year < 2010) return 0.30;
  if (year < 2013) return 0.50;
  if (year < 2019) return 0.62;  // 16-bit stock keeps growing until ~2018
  return 0.92;
}

double apnic_32bit(int year) noexcept {
  if (year < 2007) return 0.0;
  if (year < 2009) return 0.05;
  if (year < 2010) return 0.40;
  if (year < 2016) return 0.62;  // peak 16-bit stock around mid-2016
  if (year < 2020) return 0.95;
  return 0.985;  // 16-bit is 1..1.7% of 2020 allocations
}

double lacnic_32bit(int year) noexcept {
  if (year < 2007) return 0.0;
  if (year < 2009) return 0.05;
  if (year < 2010) return 0.35;
  if (year < 2015) return 0.70;
  if (year < 2020) return 0.90;
  return 0.99;
}

double afrinic_32bit(int year) noexcept {
  if (year < 2007) return 0.0;
  if (year < 2010) return 0.05;
  if (year < 2014) return 0.35;  // 16-bit stock peaks around end of 2013
  if (year < 2018) return 0.90;
  return 0.985;
}

}  // namespace

double RirPolicy::births_per_quarter(int year) const noexcept {
  switch (rir) {
    case Rir::kAfrinic: return afrinic_births(year);
    case Rir::kApnic: return apnic_births(year);
    case Rir::kArin: return arin_births(year);
    case Rir::kLacnic: return lacnic_births(year);
    case Rir::kRipeNcc: return ripe_births(year);
  }
  return 0;
}

double RirPolicy::fraction_32bit(int year) const noexcept {
  switch (rir) {
    case Rir::kAfrinic: return afrinic_32bit(year);
    case Rir::kApnic: return apnic_32bit(year);
    case Rir::kArin: return arin_32bit(year);
    case Rir::kLacnic: return lacnic_32bit(year);
    case Rir::kRipeNcc: return ripe_32bit(year);
  }
  return 0;
}

DurationMixture RirPolicy::durations(int year) const noexcept {
  // Post-2010, life expectancy converges across RIRs (5, Fig. 14).
  if (year >= 2010) return DurationMixture{0.10, 0.20, 0.20, 0.50};
  switch (rir) {
    case Rir::kArin: return DurationMixture{0.06, 0.15, 0.24, 0.55};
    case Rir::kRipeNcc: return DurationMixture{0.08, 0.18, 0.24, 0.50};
    case Rir::kApnic: return DurationMixture{0.11, 0.22, 0.25, 0.42};
    case Rir::kAfrinic: return DurationMixture{0.09, 0.20, 0.26, 0.45};
    case Rir::kLacnic: return DurationMixture{0.13, 0.25, 0.25, 0.37};
  }
  return {};
}

const RirPolicy& default_policy(Rir rir) noexcept {
  static const auto kPolicies = [] {
    std::array<RirPolicy, asn::kRirCount> policies{};
    for (Rir r : asn::kAllRirs) {
      RirPolicy& p = policies[asn::index_of(r)];
      p.rir = r;
      switch (r) {
        case Rir::kArin:
          // ARIN reclaims out-of-compliance resources since 2010 and is the
          // heaviest re-allocator (Table 2: 21.9% two lives, 6.2% more).
          p.reuse_preference = 0.60;
          p.interruption_probability = 0.02;
          p.publish_delay_same_day_fraction = 0.9935;
          break;
        case Rir::kRipeNcc:
          p.reuse_preference = 0.22;
          p.interruption_probability = 0.012;
          p.publish_delay_same_day_fraction = 0.97;
          // RIPE made reuse faster in the mid-2010s, tolerating dangling
          // announcements (App. B) — but occasionally holding ASNs reserved
          // because of them (AS43268 case, 6.2).
          p.dangling_hold_probability = 0.02;
          break;
        case Rir::kApnic:
          p.reuse_preference = 0.12;
          p.interruption_probability = 0.008;
          p.publish_delay_same_day_fraction = 0.97;
          p.delegates_nir_blocks = true;
          p.nir_block_fraction = 0.15;
          break;
        case Rir::kLacnic:
          p.reuse_preference = 0.025;
          p.interruption_probability = 0.006;
          p.publish_delay_same_day_fraction = 0.96;
          break;
        case Rir::kAfrinic:
          p.reuse_preference = 0.05;
          p.interruption_probability = 0.01;
          p.publish_delay_same_day_fraction = 0.901;
          p.regdate_reset_on_same_holder_reallocation = true;  // 4.1 exception
          break;
      }
    }
    return policies;
  }();
  return kPolicies[asn::index_of(rir)];
}

}  // namespace pl::rirsim
