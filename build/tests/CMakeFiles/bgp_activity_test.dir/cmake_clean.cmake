file(REMOVE_RECURSE
  "CMakeFiles/bgp_activity_test.dir/bgp_activity_test.cpp.o"
  "CMakeFiles/bgp_activity_test.dir/bgp_activity_test.cpp.o.d"
  "bgp_activity_test"
  "bgp_activity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_activity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
