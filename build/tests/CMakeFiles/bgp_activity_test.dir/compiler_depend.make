# Empty compiler generated dependencies file for bgp_activity_test.
# This may be replaced when dependencies are built.
