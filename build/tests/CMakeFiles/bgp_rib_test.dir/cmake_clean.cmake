file(REMOVE_RECURSE
  "CMakeFiles/bgp_rib_test.dir/bgp_rib_test.cpp.o"
  "CMakeFiles/bgp_rib_test.dir/bgp_rib_test.cpp.o.d"
  "bgp_rib_test"
  "bgp_rib_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_rib_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
