file(REMOVE_RECURSE
  "CMakeFiles/util_date_test.dir/util_date_test.cpp.o"
  "CMakeFiles/util_date_test.dir/util_date_test.cpp.o.d"
  "util_date_test"
  "util_date_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_date_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
