# Empty compiler generated dependencies file for bgpsim_test.
# This may be replaced when dependencies are built.
