file(REMOVE_RECURSE
  "CMakeFiles/bgpsim_test.dir/bgpsim_test.cpp.o"
  "CMakeFiles/bgpsim_test.dir/bgpsim_test.cpp.o.d"
  "bgpsim_test"
  "bgpsim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgpsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
