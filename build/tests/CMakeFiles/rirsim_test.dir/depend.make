# Empty dependencies file for rirsim_test.
# This may be replaced when dependencies are built.
