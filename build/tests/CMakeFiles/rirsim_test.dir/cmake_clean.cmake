file(REMOVE_RECURSE
  "CMakeFiles/rirsim_test.dir/rirsim_test.cpp.o"
  "CMakeFiles/rirsim_test.dir/rirsim_test.cpp.o.d"
  "rirsim_test"
  "rirsim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rirsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
