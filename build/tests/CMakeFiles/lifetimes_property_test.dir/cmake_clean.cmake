file(REMOVE_RECURSE
  "CMakeFiles/lifetimes_property_test.dir/lifetimes_property_test.cpp.o"
  "CMakeFiles/lifetimes_property_test.dir/lifetimes_property_test.cpp.o.d"
  "lifetimes_property_test"
  "lifetimes_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lifetimes_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
