file(REMOVE_RECURSE
  "CMakeFiles/render_inject_test.dir/render_inject_test.cpp.o"
  "CMakeFiles/render_inject_test.dir/render_inject_test.cpp.o.d"
  "render_inject_test"
  "render_inject_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/render_inject_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
