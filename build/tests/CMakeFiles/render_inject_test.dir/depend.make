# Empty dependencies file for render_inject_test.
# This may be replaced when dependencies are built.
