file(REMOVE_RECURSE
  "CMakeFiles/asn_test.dir/asn_test.cpp.o"
  "CMakeFiles/asn_test.dir/asn_test.cpp.o.d"
  "asn_test"
  "asn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
