# Empty compiler generated dependencies file for asn_test.
# This may be replaced when dependencies are built.
