# Empty dependencies file for integration_seeds_test.
# This may be replaced when dependencies are built.
