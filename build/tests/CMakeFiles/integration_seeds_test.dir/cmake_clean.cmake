file(REMOVE_RECURSE
  "CMakeFiles/integration_seeds_test.dir/integration_seeds_test.cpp.o"
  "CMakeFiles/integration_seeds_test.dir/integration_seeds_test.cpp.o.d"
  "integration_seeds_test"
  "integration_seeds_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_seeds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
