file(REMOVE_RECURSE
  "CMakeFiles/lifetimes_prefix_test.dir/lifetimes_prefix_test.cpp.o"
  "CMakeFiles/lifetimes_prefix_test.dir/lifetimes_prefix_test.cpp.o.d"
  "lifetimes_prefix_test"
  "lifetimes_prefix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lifetimes_prefix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
