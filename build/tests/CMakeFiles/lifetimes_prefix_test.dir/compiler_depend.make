# Empty compiler generated dependencies file for lifetimes_prefix_test.
# This may be replaced when dependencies are built.
