file(REMOVE_RECURSE
  "CMakeFiles/bgp_prefix_test.dir/bgp_prefix_test.cpp.o"
  "CMakeFiles/bgp_prefix_test.dir/bgp_prefix_test.cpp.o.d"
  "bgp_prefix_test"
  "bgp_prefix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_prefix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
