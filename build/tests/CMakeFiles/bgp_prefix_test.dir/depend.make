# Empty dependencies file for bgp_prefix_test.
# This may be replaced when dependencies are built.
