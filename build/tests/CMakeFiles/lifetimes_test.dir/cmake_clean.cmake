file(REMOVE_RECURSE
  "CMakeFiles/lifetimes_test.dir/lifetimes_test.cpp.o"
  "CMakeFiles/lifetimes_test.dir/lifetimes_test.cpp.o.d"
  "lifetimes_test"
  "lifetimes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lifetimes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
