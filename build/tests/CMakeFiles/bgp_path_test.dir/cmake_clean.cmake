file(REMOVE_RECURSE
  "CMakeFiles/bgp_path_test.dir/bgp_path_test.cpp.o"
  "CMakeFiles/bgp_path_test.dir/bgp_path_test.cpp.o.d"
  "bgp_path_test"
  "bgp_path_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bgp_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
