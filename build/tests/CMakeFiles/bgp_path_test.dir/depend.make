# Empty dependencies file for bgp_path_test.
# This may be replaced when dependencies are built.
