# Empty dependencies file for joint_rpki_detector_test.
# This may be replaced when dependencies are built.
