file(REMOVE_RECURSE
  "CMakeFiles/joint_rpki_detector_test.dir/joint_rpki_detector_test.cpp.o"
  "CMakeFiles/joint_rpki_detector_test.dir/joint_rpki_detector_test.cpp.o.d"
  "joint_rpki_detector_test"
  "joint_rpki_detector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/joint_rpki_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
