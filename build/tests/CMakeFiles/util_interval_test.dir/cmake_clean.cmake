file(REMOVE_RECURSE
  "CMakeFiles/util_interval_test.dir/util_interval_test.cpp.o"
  "CMakeFiles/util_interval_test.dir/util_interval_test.cpp.o.d"
  "util_interval_test"
  "util_interval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_interval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
