
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/restore_test.cpp" "tests/CMakeFiles/restore_test.dir/restore_test.cpp.o" "gcc" "tests/CMakeFiles/restore_test.dir/restore_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pipeline/CMakeFiles/pl_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/joint/CMakeFiles/pl_joint.dir/DependInfo.cmake"
  "/root/repo/build/src/lifetimes/CMakeFiles/pl_lifetimes.dir/DependInfo.cmake"
  "/root/repo/build/src/restore/CMakeFiles/pl_restore.dir/DependInfo.cmake"
  "/root/repo/build/src/bgpsim/CMakeFiles/pl_bgpsim.dir/DependInfo.cmake"
  "/root/repo/build/src/rirsim/CMakeFiles/pl_rirsim.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/pl_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/delegation/CMakeFiles/pl_delegation.dir/DependInfo.cmake"
  "/root/repo/build/src/asn/CMakeFiles/pl_asn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
