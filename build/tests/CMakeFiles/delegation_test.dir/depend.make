# Empty dependencies file for delegation_test.
# This may be replaced when dependencies are built.
