# Empty dependencies file for bench_fig4_alive_census.
# This may be replaced when dependencies are built.
