# Empty dependencies file for bench_table4_apnic_countries.
# This may be replaced when dependencies are built.
