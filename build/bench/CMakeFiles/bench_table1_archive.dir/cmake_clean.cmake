file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_archive.dir/bench_table1_archive.cpp.o"
  "CMakeFiles/bench_table1_archive.dir/bench_table1_archive.cpp.o.d"
  "bench_table1_archive"
  "bench_table1_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
