# Empty dependencies file for bench_table1_archive.
# This may be replaced when dependencies are built.
