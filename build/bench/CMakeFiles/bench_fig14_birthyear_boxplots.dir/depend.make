# Empty dependencies file for bench_fig14_birthyear_boxplots.
# This may be replaced when dependencies are built.
