file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_visibility.dir/bench_ablation_visibility.cpp.o"
  "CMakeFiles/bench_ablation_visibility.dir/bench_ablation_visibility.cpp.o.d"
  "bench_ablation_visibility"
  "bench_ablation_visibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_visibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
