file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_squatting.dir/bench_fig8_squatting.cpp.o"
  "CMakeFiles/bench_fig8_squatting.dir/bench_fig8_squatting.cpp.o.d"
  "bench_fig8_squatting"
  "bench_fig8_squatting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_squatting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
