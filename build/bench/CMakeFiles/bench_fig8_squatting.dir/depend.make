# Empty dependencies file for bench_fig8_squatting.
# This may be replaced when dependencies are built.
