file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_restore.dir/bench_ablation_restore.cpp.o"
  "CMakeFiles/bench_ablation_restore.dir/bench_ablation_restore.cpp.o.d"
  "bench_ablation_restore"
  "bench_ablation_restore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_restore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
