# Empty dependencies file for bench_ablation_restore.
# This may be replaced when dependencies are built.
