file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_single_axis.dir/bench_fig13_single_axis.cpp.o"
  "CMakeFiles/bench_fig13_single_axis.dir/bench_fig13_single_axis.cpp.o.d"
  "bench_fig13_single_axis"
  "bench_fig13_single_axis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_single_axis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
