# Empty dependencies file for bench_fig13_single_axis.
# This may be replaced when dependencies are built.
