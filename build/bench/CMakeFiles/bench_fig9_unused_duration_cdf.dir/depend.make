# Empty dependencies file for bench_fig9_unused_duration_cdf.
# This may be replaced when dependencies are built.
