file(REMOVE_RECURSE
  "CMakeFiles/bench_prefix_informed.dir/bench_prefix_informed.cpp.o"
  "CMakeFiles/bench_prefix_informed.dir/bench_prefix_informed.cpp.o.d"
  "bench_prefix_informed"
  "bench_prefix_informed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prefix_informed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
