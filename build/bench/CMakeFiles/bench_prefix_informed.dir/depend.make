# Empty dependencies file for bench_prefix_informed.
# This may be replaced when dependencies are built.
