file(REMOVE_RECURSE
  "CMakeFiles/bench_rpki_counterfactual.dir/bench_rpki_counterfactual.cpp.o"
  "CMakeFiles/bench_rpki_counterfactual.dir/bench_rpki_counterfactual.cpp.o.d"
  "bench_rpki_counterfactual"
  "bench_rpki_counterfactual.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rpki_counterfactual.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
