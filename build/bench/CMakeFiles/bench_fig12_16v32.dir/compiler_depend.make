# Empty compiler generated dependencies file for bench_fig12_16v32.
# This may be replaced when dependencies are built.
