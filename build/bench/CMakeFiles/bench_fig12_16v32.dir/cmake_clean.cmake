file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_16v32.dir/bench_fig12_16v32.cpp.o"
  "CMakeFiles/bench_fig12_16v32.dir/bench_fig12_16v32.cpp.o.d"
  "bench_fig12_16v32"
  "bench_fig12_16v32.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_16v32.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
