# Empty dependencies file for bench_table3_taxonomy.
# This may be replaced when dependencies are built.
