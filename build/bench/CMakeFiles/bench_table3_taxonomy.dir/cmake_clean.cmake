file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_taxonomy.dir/bench_table3_taxonomy.cpp.o"
  "CMakeFiles/bench_table3_taxonomy.dir/bench_table3_taxonomy.cpp.o.d"
  "bench_table3_taxonomy"
  "bench_table3_taxonomy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_taxonomy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
