file(REMOVE_RECURSE
  "CMakeFiles/bench_detector_pr.dir/bench_detector_pr.cpp.o"
  "CMakeFiles/bench_detector_pr.dir/bench_detector_pr.cpp.o.d"
  "bench_detector_pr"
  "bench_detector_pr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_detector_pr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
