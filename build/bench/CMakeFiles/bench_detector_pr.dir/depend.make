# Empty dependencies file for bench_detector_pr.
# This may be replaced when dependencies are built.
