file(REMOVE_RECURSE
  "CMakeFiles/bench_appendix_exhaustion.dir/bench_appendix_exhaustion.cpp.o"
  "CMakeFiles/bench_appendix_exhaustion.dir/bench_appendix_exhaustion.cpp.o.d"
  "bench_appendix_exhaustion"
  "bench_appendix_exhaustion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendix_exhaustion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
