# Empty dependencies file for bench_appendix_exhaustion.
# This may be replaced when dependencies are built.
