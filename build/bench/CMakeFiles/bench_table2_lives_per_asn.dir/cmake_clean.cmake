file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_lives_per_asn.dir/bench_table2_lives_per_asn.cpp.o"
  "CMakeFiles/bench_table2_lives_per_asn.dir/bench_table2_lives_per_asn.cpp.o.d"
  "bench_table2_lives_per_asn"
  "bench_table2_lives_per_asn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_lives_per_asn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
