# Empty compiler generated dependencies file for bench_table2_lives_per_asn.
# This may be replaced when dependencies are built.
