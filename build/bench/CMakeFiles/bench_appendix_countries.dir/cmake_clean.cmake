file(REMOVE_RECURSE
  "CMakeFiles/bench_appendix_countries.dir/bench_appendix_countries.cpp.o"
  "CMakeFiles/bench_appendix_countries.dir/bench_appendix_countries.cpp.o.d"
  "bench_appendix_countries"
  "bench_appendix_countries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendix_countries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
