# Empty compiler generated dependencies file for bench_appendix_countries.
# This may be replaced when dependencies are built.
