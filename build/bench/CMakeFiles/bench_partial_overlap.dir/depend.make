# Empty dependencies file for bench_partial_overlap.
# This may be replaced when dependencies are built.
