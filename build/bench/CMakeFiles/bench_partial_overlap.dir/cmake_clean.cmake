file(REMOVE_RECURSE
  "CMakeFiles/bench_partial_overlap.dir/bench_partial_overlap.cpp.o"
  "CMakeFiles/bench_partial_overlap.dir/bench_partial_overlap.cpp.o.d"
  "bench_partial_overlap"
  "bench_partial_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partial_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
