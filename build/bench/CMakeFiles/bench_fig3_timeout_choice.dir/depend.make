# Empty dependencies file for bench_fig3_timeout_choice.
# This may be replaced when dependencies are built.
