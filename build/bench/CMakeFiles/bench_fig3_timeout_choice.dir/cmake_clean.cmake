file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_timeout_choice.dir/bench_fig3_timeout_choice.cpp.o"
  "CMakeFiles/bench_fig3_timeout_choice.dir/bench_fig3_timeout_choice.cpp.o.d"
  "bench_fig3_timeout_choice"
  "bench_fig3_timeout_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_timeout_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
