file(REMOVE_RECURSE
  "CMakeFiles/pl_util.dir/csv.cpp.o"
  "CMakeFiles/pl_util.dir/csv.cpp.o.d"
  "CMakeFiles/pl_util.dir/date.cpp.o"
  "CMakeFiles/pl_util.dir/date.cpp.o.d"
  "CMakeFiles/pl_util.dir/interval_set.cpp.o"
  "CMakeFiles/pl_util.dir/interval_set.cpp.o.d"
  "CMakeFiles/pl_util.dir/stats.cpp.o"
  "CMakeFiles/pl_util.dir/stats.cpp.o.d"
  "CMakeFiles/pl_util.dir/strings.cpp.o"
  "CMakeFiles/pl_util.dir/strings.cpp.o.d"
  "CMakeFiles/pl_util.dir/table.cpp.o"
  "CMakeFiles/pl_util.dir/table.cpp.o.d"
  "libpl_util.a"
  "libpl_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pl_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
