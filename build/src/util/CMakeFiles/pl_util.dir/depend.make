# Empty dependencies file for pl_util.
# This may be replaced when dependencies are built.
