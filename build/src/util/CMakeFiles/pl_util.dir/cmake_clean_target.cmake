file(REMOVE_RECURSE
  "libpl_util.a"
)
