file(REMOVE_RECURSE
  "libpl_lifetimes.a"
)
