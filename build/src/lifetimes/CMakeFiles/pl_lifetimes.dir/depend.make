# Empty dependencies file for pl_lifetimes.
# This may be replaced when dependencies are built.
