file(REMOVE_RECURSE
  "CMakeFiles/pl_lifetimes.dir/admin.cpp.o"
  "CMakeFiles/pl_lifetimes.dir/admin.cpp.o.d"
  "CMakeFiles/pl_lifetimes.dir/dataset_io.cpp.o"
  "CMakeFiles/pl_lifetimes.dir/dataset_io.cpp.o.d"
  "CMakeFiles/pl_lifetimes.dir/op.cpp.o"
  "CMakeFiles/pl_lifetimes.dir/op.cpp.o.d"
  "CMakeFiles/pl_lifetimes.dir/prefix_informed.cpp.o"
  "CMakeFiles/pl_lifetimes.dir/prefix_informed.cpp.o.d"
  "CMakeFiles/pl_lifetimes.dir/sensitivity.cpp.o"
  "CMakeFiles/pl_lifetimes.dir/sensitivity.cpp.o.d"
  "libpl_lifetimes.a"
  "libpl_lifetimes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pl_lifetimes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
