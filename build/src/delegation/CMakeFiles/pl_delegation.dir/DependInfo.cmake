
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/delegation/archive.cpp" "src/delegation/CMakeFiles/pl_delegation.dir/archive.cpp.o" "gcc" "src/delegation/CMakeFiles/pl_delegation.dir/archive.cpp.o.d"
  "/root/repo/src/delegation/file.cpp" "src/delegation/CMakeFiles/pl_delegation.dir/file.cpp.o" "gcc" "src/delegation/CMakeFiles/pl_delegation.dir/file.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asn/CMakeFiles/pl_asn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
