file(REMOVE_RECURSE
  "libpl_delegation.a"
)
