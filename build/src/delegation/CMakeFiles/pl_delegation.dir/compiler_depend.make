# Empty compiler generated dependencies file for pl_delegation.
# This may be replaced when dependencies are built.
