file(REMOVE_RECURSE
  "CMakeFiles/pl_delegation.dir/archive.cpp.o"
  "CMakeFiles/pl_delegation.dir/archive.cpp.o.d"
  "CMakeFiles/pl_delegation.dir/file.cpp.o"
  "CMakeFiles/pl_delegation.dir/file.cpp.o.d"
  "libpl_delegation.a"
  "libpl_delegation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pl_delegation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
