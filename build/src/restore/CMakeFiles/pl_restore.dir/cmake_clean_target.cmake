file(REMOVE_RECURSE
  "libpl_restore.a"
)
