# Empty compiler generated dependencies file for pl_restore.
# This may be replaced when dependencies are built.
