file(REMOVE_RECURSE
  "CMakeFiles/pl_restore.dir/pipeline.cpp.o"
  "CMakeFiles/pl_restore.dir/pipeline.cpp.o.d"
  "libpl_restore.a"
  "libpl_restore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pl_restore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
