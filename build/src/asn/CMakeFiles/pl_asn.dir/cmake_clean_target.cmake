file(REMOVE_RECURSE
  "libpl_asn.a"
)
