file(REMOVE_RECURSE
  "CMakeFiles/pl_asn.dir/asn.cpp.o"
  "CMakeFiles/pl_asn.dir/asn.cpp.o.d"
  "CMakeFiles/pl_asn.dir/country.cpp.o"
  "CMakeFiles/pl_asn.dir/country.cpp.o.d"
  "CMakeFiles/pl_asn.dir/rir.cpp.o"
  "CMakeFiles/pl_asn.dir/rir.cpp.o.d"
  "libpl_asn.a"
  "libpl_asn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pl_asn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
