# Empty compiler generated dependencies file for pl_asn.
# This may be replaced when dependencies are built.
