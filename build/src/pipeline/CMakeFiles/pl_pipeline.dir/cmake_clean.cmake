file(REMOVE_RECURSE
  "CMakeFiles/pl_pipeline.dir/pipeline.cpp.o"
  "CMakeFiles/pl_pipeline.dir/pipeline.cpp.o.d"
  "libpl_pipeline.a"
  "libpl_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pl_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
