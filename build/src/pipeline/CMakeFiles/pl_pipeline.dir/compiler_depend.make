# Empty compiler generated dependencies file for pl_pipeline.
# This may be replaced when dependencies are built.
