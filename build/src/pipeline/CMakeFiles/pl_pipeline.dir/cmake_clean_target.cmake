file(REMOVE_RECURSE
  "libpl_pipeline.a"
)
