file(REMOVE_RECURSE
  "CMakeFiles/pl_rirsim.dir/iana.cpp.o"
  "CMakeFiles/pl_rirsim.dir/iana.cpp.o.d"
  "CMakeFiles/pl_rirsim.dir/inject.cpp.o"
  "CMakeFiles/pl_rirsim.dir/inject.cpp.o.d"
  "CMakeFiles/pl_rirsim.dir/policy.cpp.o"
  "CMakeFiles/pl_rirsim.dir/policy.cpp.o.d"
  "CMakeFiles/pl_rirsim.dir/registry_sim.cpp.o"
  "CMakeFiles/pl_rirsim.dir/registry_sim.cpp.o.d"
  "CMakeFiles/pl_rirsim.dir/render.cpp.o"
  "CMakeFiles/pl_rirsim.dir/render.cpp.o.d"
  "CMakeFiles/pl_rirsim.dir/world.cpp.o"
  "CMakeFiles/pl_rirsim.dir/world.cpp.o.d"
  "libpl_rirsim.a"
  "libpl_rirsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pl_rirsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
