# Empty dependencies file for pl_rirsim.
# This may be replaced when dependencies are built.
