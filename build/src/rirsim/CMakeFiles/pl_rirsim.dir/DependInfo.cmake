
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rirsim/iana.cpp" "src/rirsim/CMakeFiles/pl_rirsim.dir/iana.cpp.o" "gcc" "src/rirsim/CMakeFiles/pl_rirsim.dir/iana.cpp.o.d"
  "/root/repo/src/rirsim/inject.cpp" "src/rirsim/CMakeFiles/pl_rirsim.dir/inject.cpp.o" "gcc" "src/rirsim/CMakeFiles/pl_rirsim.dir/inject.cpp.o.d"
  "/root/repo/src/rirsim/policy.cpp" "src/rirsim/CMakeFiles/pl_rirsim.dir/policy.cpp.o" "gcc" "src/rirsim/CMakeFiles/pl_rirsim.dir/policy.cpp.o.d"
  "/root/repo/src/rirsim/registry_sim.cpp" "src/rirsim/CMakeFiles/pl_rirsim.dir/registry_sim.cpp.o" "gcc" "src/rirsim/CMakeFiles/pl_rirsim.dir/registry_sim.cpp.o.d"
  "/root/repo/src/rirsim/render.cpp" "src/rirsim/CMakeFiles/pl_rirsim.dir/render.cpp.o" "gcc" "src/rirsim/CMakeFiles/pl_rirsim.dir/render.cpp.o.d"
  "/root/repo/src/rirsim/world.cpp" "src/rirsim/CMakeFiles/pl_rirsim.dir/world.cpp.o" "gcc" "src/rirsim/CMakeFiles/pl_rirsim.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/delegation/CMakeFiles/pl_delegation.dir/DependInfo.cmake"
  "/root/repo/build/src/asn/CMakeFiles/pl_asn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
