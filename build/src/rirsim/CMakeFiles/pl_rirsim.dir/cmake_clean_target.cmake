file(REMOVE_RECURSE
  "libpl_rirsim.a"
)
