file(REMOVE_RECURSE
  "CMakeFiles/pl_joint.dir/birdseye.cpp.o"
  "CMakeFiles/pl_joint.dir/birdseye.cpp.o.d"
  "CMakeFiles/pl_joint.dir/detector.cpp.o"
  "CMakeFiles/pl_joint.dir/detector.cpp.o.d"
  "CMakeFiles/pl_joint.dir/exhaustion.cpp.o"
  "CMakeFiles/pl_joint.dir/exhaustion.cpp.o.d"
  "CMakeFiles/pl_joint.dir/outside.cpp.o"
  "CMakeFiles/pl_joint.dir/outside.cpp.o.d"
  "CMakeFiles/pl_joint.dir/partial.cpp.o"
  "CMakeFiles/pl_joint.dir/partial.cpp.o.d"
  "CMakeFiles/pl_joint.dir/rpki.cpp.o"
  "CMakeFiles/pl_joint.dir/rpki.cpp.o.d"
  "CMakeFiles/pl_joint.dir/squat.cpp.o"
  "CMakeFiles/pl_joint.dir/squat.cpp.o.d"
  "CMakeFiles/pl_joint.dir/taxonomy.cpp.o"
  "CMakeFiles/pl_joint.dir/taxonomy.cpp.o.d"
  "CMakeFiles/pl_joint.dir/unused.cpp.o"
  "CMakeFiles/pl_joint.dir/unused.cpp.o.d"
  "CMakeFiles/pl_joint.dir/utilization.cpp.o"
  "CMakeFiles/pl_joint.dir/utilization.cpp.o.d"
  "libpl_joint.a"
  "libpl_joint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pl_joint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
