
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/joint/birdseye.cpp" "src/joint/CMakeFiles/pl_joint.dir/birdseye.cpp.o" "gcc" "src/joint/CMakeFiles/pl_joint.dir/birdseye.cpp.o.d"
  "/root/repo/src/joint/detector.cpp" "src/joint/CMakeFiles/pl_joint.dir/detector.cpp.o" "gcc" "src/joint/CMakeFiles/pl_joint.dir/detector.cpp.o.d"
  "/root/repo/src/joint/exhaustion.cpp" "src/joint/CMakeFiles/pl_joint.dir/exhaustion.cpp.o" "gcc" "src/joint/CMakeFiles/pl_joint.dir/exhaustion.cpp.o.d"
  "/root/repo/src/joint/outside.cpp" "src/joint/CMakeFiles/pl_joint.dir/outside.cpp.o" "gcc" "src/joint/CMakeFiles/pl_joint.dir/outside.cpp.o.d"
  "/root/repo/src/joint/partial.cpp" "src/joint/CMakeFiles/pl_joint.dir/partial.cpp.o" "gcc" "src/joint/CMakeFiles/pl_joint.dir/partial.cpp.o.d"
  "/root/repo/src/joint/rpki.cpp" "src/joint/CMakeFiles/pl_joint.dir/rpki.cpp.o" "gcc" "src/joint/CMakeFiles/pl_joint.dir/rpki.cpp.o.d"
  "/root/repo/src/joint/squat.cpp" "src/joint/CMakeFiles/pl_joint.dir/squat.cpp.o" "gcc" "src/joint/CMakeFiles/pl_joint.dir/squat.cpp.o.d"
  "/root/repo/src/joint/taxonomy.cpp" "src/joint/CMakeFiles/pl_joint.dir/taxonomy.cpp.o" "gcc" "src/joint/CMakeFiles/pl_joint.dir/taxonomy.cpp.o.d"
  "/root/repo/src/joint/unused.cpp" "src/joint/CMakeFiles/pl_joint.dir/unused.cpp.o" "gcc" "src/joint/CMakeFiles/pl_joint.dir/unused.cpp.o.d"
  "/root/repo/src/joint/utilization.cpp" "src/joint/CMakeFiles/pl_joint.dir/utilization.cpp.o" "gcc" "src/joint/CMakeFiles/pl_joint.dir/utilization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lifetimes/CMakeFiles/pl_lifetimes.dir/DependInfo.cmake"
  "/root/repo/build/src/asn/CMakeFiles/pl_asn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/restore/CMakeFiles/pl_restore.dir/DependInfo.cmake"
  "/root/repo/build/src/delegation/CMakeFiles/pl_delegation.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/pl_bgp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
