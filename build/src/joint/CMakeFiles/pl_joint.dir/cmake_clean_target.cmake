file(REMOVE_RECURSE
  "libpl_joint.a"
)
