# Empty compiler generated dependencies file for pl_joint.
# This may be replaced when dependencies are built.
