
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgpsim/attack.cpp" "src/bgpsim/CMakeFiles/pl_bgpsim.dir/attack.cpp.o" "gcc" "src/bgpsim/CMakeFiles/pl_bgpsim.dir/attack.cpp.o.d"
  "/root/repo/src/bgpsim/behavior.cpp" "src/bgpsim/CMakeFiles/pl_bgpsim.dir/behavior.cpp.o" "gcc" "src/bgpsim/CMakeFiles/pl_bgpsim.dir/behavior.cpp.o.d"
  "/root/repo/src/bgpsim/misconfig.cpp" "src/bgpsim/CMakeFiles/pl_bgpsim.dir/misconfig.cpp.o" "gcc" "src/bgpsim/CMakeFiles/pl_bgpsim.dir/misconfig.cpp.o.d"
  "/root/repo/src/bgpsim/route_gen.cpp" "src/bgpsim/CMakeFiles/pl_bgpsim.dir/route_gen.cpp.o" "gcc" "src/bgpsim/CMakeFiles/pl_bgpsim.dir/route_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rirsim/CMakeFiles/pl_rirsim.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/pl_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/asn/CMakeFiles/pl_asn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pl_util.dir/DependInfo.cmake"
  "/root/repo/build/src/delegation/CMakeFiles/pl_delegation.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
