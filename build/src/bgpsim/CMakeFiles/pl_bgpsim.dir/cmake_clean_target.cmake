file(REMOVE_RECURSE
  "libpl_bgpsim.a"
)
