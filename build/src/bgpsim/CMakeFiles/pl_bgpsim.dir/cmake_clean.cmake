file(REMOVE_RECURSE
  "CMakeFiles/pl_bgpsim.dir/attack.cpp.o"
  "CMakeFiles/pl_bgpsim.dir/attack.cpp.o.d"
  "CMakeFiles/pl_bgpsim.dir/behavior.cpp.o"
  "CMakeFiles/pl_bgpsim.dir/behavior.cpp.o.d"
  "CMakeFiles/pl_bgpsim.dir/misconfig.cpp.o"
  "CMakeFiles/pl_bgpsim.dir/misconfig.cpp.o.d"
  "CMakeFiles/pl_bgpsim.dir/route_gen.cpp.o"
  "CMakeFiles/pl_bgpsim.dir/route_gen.cpp.o.d"
  "libpl_bgpsim.a"
  "libpl_bgpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pl_bgpsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
