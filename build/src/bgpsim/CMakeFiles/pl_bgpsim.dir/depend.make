# Empty dependencies file for pl_bgpsim.
# This may be replaced when dependencies are built.
