
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgp/activity.cpp" "src/bgp/CMakeFiles/pl_bgp.dir/activity.cpp.o" "gcc" "src/bgp/CMakeFiles/pl_bgp.dir/activity.cpp.o.d"
  "/root/repo/src/bgp/collector.cpp" "src/bgp/CMakeFiles/pl_bgp.dir/collector.cpp.o" "gcc" "src/bgp/CMakeFiles/pl_bgp.dir/collector.cpp.o.d"
  "/root/repo/src/bgp/mrt.cpp" "src/bgp/CMakeFiles/pl_bgp.dir/mrt.cpp.o" "gcc" "src/bgp/CMakeFiles/pl_bgp.dir/mrt.cpp.o.d"
  "/root/repo/src/bgp/path.cpp" "src/bgp/CMakeFiles/pl_bgp.dir/path.cpp.o" "gcc" "src/bgp/CMakeFiles/pl_bgp.dir/path.cpp.o.d"
  "/root/repo/src/bgp/prefix.cpp" "src/bgp/CMakeFiles/pl_bgp.dir/prefix.cpp.o" "gcc" "src/bgp/CMakeFiles/pl_bgp.dir/prefix.cpp.o.d"
  "/root/repo/src/bgp/rib.cpp" "src/bgp/CMakeFiles/pl_bgp.dir/rib.cpp.o" "gcc" "src/bgp/CMakeFiles/pl_bgp.dir/rib.cpp.o.d"
  "/root/repo/src/bgp/roles.cpp" "src/bgp/CMakeFiles/pl_bgp.dir/roles.cpp.o" "gcc" "src/bgp/CMakeFiles/pl_bgp.dir/roles.cpp.o.d"
  "/root/repo/src/bgp/sanitizer.cpp" "src/bgp/CMakeFiles/pl_bgp.dir/sanitizer.cpp.o" "gcc" "src/bgp/CMakeFiles/pl_bgp.dir/sanitizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asn/CMakeFiles/pl_asn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
