file(REMOVE_RECURSE
  "libpl_bgp.a"
)
