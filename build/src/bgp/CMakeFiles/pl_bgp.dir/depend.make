# Empty dependencies file for pl_bgp.
# This may be replaced when dependencies are built.
