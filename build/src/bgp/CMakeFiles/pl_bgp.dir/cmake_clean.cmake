file(REMOVE_RECURSE
  "CMakeFiles/pl_bgp.dir/activity.cpp.o"
  "CMakeFiles/pl_bgp.dir/activity.cpp.o.d"
  "CMakeFiles/pl_bgp.dir/collector.cpp.o"
  "CMakeFiles/pl_bgp.dir/collector.cpp.o.d"
  "CMakeFiles/pl_bgp.dir/mrt.cpp.o"
  "CMakeFiles/pl_bgp.dir/mrt.cpp.o.d"
  "CMakeFiles/pl_bgp.dir/path.cpp.o"
  "CMakeFiles/pl_bgp.dir/path.cpp.o.d"
  "CMakeFiles/pl_bgp.dir/prefix.cpp.o"
  "CMakeFiles/pl_bgp.dir/prefix.cpp.o.d"
  "CMakeFiles/pl_bgp.dir/rib.cpp.o"
  "CMakeFiles/pl_bgp.dir/rib.cpp.o.d"
  "CMakeFiles/pl_bgp.dir/roles.cpp.o"
  "CMakeFiles/pl_bgp.dir/roles.cpp.o.d"
  "CMakeFiles/pl_bgp.dir/sanitizer.cpp.o"
  "CMakeFiles/pl_bgp.dir/sanitizer.cpp.o.d"
  "libpl_bgp.a"
  "libpl_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pl_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
