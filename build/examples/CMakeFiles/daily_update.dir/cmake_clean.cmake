file(REMOVE_RECURSE
  "CMakeFiles/daily_update.dir/daily_update.cpp.o"
  "CMakeFiles/daily_update.dir/daily_update.cpp.o.d"
  "daily_update"
  "daily_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daily_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
