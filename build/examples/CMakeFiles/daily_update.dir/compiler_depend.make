# Empty compiler generated dependencies file for daily_update.
# This may be replaced when dependencies are built.
