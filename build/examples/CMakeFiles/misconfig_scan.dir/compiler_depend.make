# Empty compiler generated dependencies file for misconfig_scan.
# This may be replaced when dependencies are built.
