file(REMOVE_RECURSE
  "CMakeFiles/misconfig_scan.dir/misconfig_scan.cpp.o"
  "CMakeFiles/misconfig_scan.dir/misconfig_scan.cpp.o.d"
  "misconfig_scan"
  "misconfig_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/misconfig_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
