file(REMOVE_RECURSE
  "CMakeFiles/rir_report.dir/rir_report.cpp.o"
  "CMakeFiles/rir_report.dir/rir_report.cpp.o.d"
  "rir_report"
  "rir_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rir_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
