# Empty dependencies file for rir_report.
# This may be replaced when dependencies are built.
