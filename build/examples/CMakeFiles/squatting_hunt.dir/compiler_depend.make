# Empty compiler generated dependencies file for squatting_hunt.
# This may be replaced when dependencies are built.
