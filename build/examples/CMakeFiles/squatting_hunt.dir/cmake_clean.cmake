file(REMOVE_RECURSE
  "CMakeFiles/squatting_hunt.dir/squatting_hunt.cpp.o"
  "CMakeFiles/squatting_hunt.dir/squatting_hunt.cpp.o.d"
  "squatting_hunt"
  "squatting_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/squatting_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
