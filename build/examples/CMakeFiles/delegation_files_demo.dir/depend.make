# Empty dependencies file for delegation_files_demo.
# This may be replaced when dependencies are built.
