file(REMOVE_RECURSE
  "CMakeFiles/delegation_files_demo.dir/delegation_files_demo.cpp.o"
  "CMakeFiles/delegation_files_demo.dir/delegation_files_demo.cpp.o.d"
  "delegation_files_demo"
  "delegation_files_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delegation_files_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
