// Squatting hunt: the paper's 6.1.2/6.4 workflow as a tool — driven off the
// serving layer.
//
// The detectors already ran when the snapshot was built: every op life
// carries its dormant-awakening / outside-delegation verdict, and every ASN
// row ORs them into flag bits. So the hunt is now a scan over the snapshot
// for flagged ASNs, followed by the semi-automatic inspection the paper did:
// daily prefix-origination counts and the upstream ASN in the announcements,
// looking for known hijack factories.
//
// Run:  ./squatting_hunt [scale] [seed]
#include <cstdlib>
#include <iostream>
#include <unordered_set>
#include <utility>

#include "bgpsim/route_gen.hpp"
#include "history/store.hpp"
#include "serve/query.hpp"
#include "serve/serving.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pl;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.2;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                      : 7;

  // --- Build both dimensions and freeze them into a serving snapshot.
  pipeline::Config config;
  config.seed = seed;
  config.scale = scale;
  serve::ServingWorld world = serve::run_simulated_serving(config);
  const bgpsim::OpWorld& op_world = world.result.op_world;
  serve::QueryService service(std::move(world.snapshot));

  // --- Find the candidates: one full-range scan, filtered on the detector
  // flag bits the snapshot build stamped on each row.
  std::vector<asn::Asn> dormant;
  std::vector<asn::Asn> outside;
  for (const serve::AsnAnswer& answer :
       service.query(serve::Query::scan(serve::ScanQuery{}))->lookups) {
    if (answer.dormant_squat) dormant.push_back(answer.asn);
    if (answer.outside_activity) outside.push_back(answer.asn);
  }
  std::cout << "flagged " << dormant.size()
            << " dormant awakenings and " << outside.size()
            << " outside-delegation lives\n\n";

  // --- Inspect candidates: prefix counts + upstream via route elements.
  const bgp::CollectorInfrastructure infra =
      bgp::make_default_infrastructure();
  const bgpsim::RouteGenerator generator(op_world, infra, seed + 5);
  const std::unordered_set<std::uint32_t> factories = {
      bgpsim::kHijackFactoryAsn, bgpsim::kBitcanalAsn,
      bgpsim::kSpammerUpstreamAsn};

  // Ground-truth labels, playing the role of NANOG/Spamhaus/BGPmon
  // cross-validation.
  std::unordered_set<std::uint32_t> labelled;
  for (const bgpsim::SquatEvent& event : op_world.attacks.events)
    labelled.insert(event.asn.value);

  const serve::Snapshot& snapshot = service.snapshot();
  util::TextTable table({"ASN", "awakening", "life (d)", "prefixes/day",
                         "upstream", "verdict"});
  int shown = 0;
  int confirmed = 0;
  std::unordered_set<std::uint32_t> counted;
  const auto inspect = [&](asn::Asn candidate) {
    const serve::AsnRow* row = snapshot.find(candidate);
    if (row == nullptr) return;
    // Probe the flagged op life (there can be several; take the first one
    // the detectors marked).
    const serve::OpLifeRow* suspect = nullptr;
    for (const serve::OpLifeRow& op : snapshot.op_lives(*row))
      if (op.dormant_squat || op.outside_activity) {
        suspect = &op;
        break;
      }
    if (suspect == nullptr) return;
    const lifetimes::OpLifetime& life = suspect->life;
    const util::Day probe =
        life.days.first + static_cast<util::Day>(life.days.length() / 2);
    const std::unordered_set<std::uint32_t> watch = {candidate.value};
    std::int64_t prefixes = 0;
    std::uint32_t upstream = 0;
    for (const bgp::Element& element :
         generator.elements_for_day(probe, &watch)) {
      ++prefixes;
      if (const auto hop = element.path.first_hop()) upstream = hop->value;
    }
    const bool factory_upstream = factories.contains(upstream);
    const bool is_labelled = labelled.contains(candidate.value);
    if (is_labelled && counted.insert(candidate.value).second) ++confirmed;
    if (shown < 12 && (factory_upstream || prefixes > 20)) {
      ++shown;
      table.add_row({asn::to_string(candidate),
                     util::format_iso(life.days.first),
                     std::to_string(life.days.length()),
                     std::to_string(prefixes),
                     "AS" + std::to_string(upstream),
                     is_labelled ? "CONFIRMED (ground truth)"
                                 : factory_upstream ? "suspicious upstream"
                                                    : "benign?"});
    }
  };
  for (const asn::Asn candidate : dormant) inspect(candidate);
  for (const asn::Asn candidate : outside) inspect(candidate);

  std::cout << "most suspicious candidates (high prefix volume or known "
               "hijack-factory upstream):\n";
  table.print(std::cout);

  std::cout << "\n" << confirmed << " of "
            << dormant.size() + outside.size()
            << " flagged ASNs are ground-truth malicious — like the paper, "
               "the filter surfaces squats but most candidates are benign "
               "irregular operations.\n";

  // --- When did each candidate turn bad? A history store over the trailing
  // weeks lets first_flip() pin the first recorded day an ASN's admin
  // classification became outside-delegation — the squat's onset, to the
  // day, without re-running the study per day.
  const util::Day end = snapshot.archive_end();
  auto history = history::HistoryStore::build(
      world.result.restored, op_world.activity, end - 14, end);
  if (history.ok()) {
    service.attach_history(&*history);
    int dated = 0;
    for (const asn::Asn candidate : outside) {
      const auto flip =
          service.first_flip(candidate, joint::Category::kOutsideDelegation);
      if (!flip.ok()) continue;  // kNotFound: flipped before the window
      std::cout << "  " << asn::to_string(candidate)
                << " first classified outside-delegation on "
                << util::format_iso(*flip) << "\n";
      if (++dated == 5) break;
    }
    if (dated == 0)
      std::cout << "  (no candidate flipped to outside-delegation within "
                   "the last 14 recorded days)\n";
  }
  return 0;
}
