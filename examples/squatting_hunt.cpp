// Squatting hunt: the paper's 6.1.2/6.4 workflow as a tool.
//
// Builds the joint lenses, flags operational lives that awaken after long
// dormancy (or appear outside any delegation), then inspects each candidate
// the way the paper did semi-automatically: daily prefix-origination counts
// and the upstream ASN in the announcements, looking for known hijack
// factories.
//
// Run:  ./squatting_hunt [scale] [seed]
#include <cstdlib>
#include <iostream>
#include <unordered_set>

#include "bgpsim/route_gen.hpp"
#include "joint/squat.hpp"
#include "lifetimes/op.hpp"
#include "restore/pipeline.hpp"
#include "rirsim/inject.hpp"
#include "rirsim/world.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pl;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.2;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                      : 7;

  // --- Build both dimensions.
  const rirsim::GroundTruth truth =
      rirsim::build_world(rirsim::WorldConfig::test_scale(seed, scale));
  bgpsim::OpWorldConfig op_config;
  op_config.behavior.seed = seed + 1;
  op_config.attacks.seed = seed + 2;
  op_config.attacks.scale = scale;
  op_config.misconfigs.seed = seed + 3;
  op_config.misconfigs.scale = scale;
  const bgpsim::OpWorld op_world = bgpsim::build_op_world(truth, op_config);

  rirsim::InjectorConfig injector;
  injector.seed = seed + 4;
  injector.scale = scale;
  const rirsim::SimulatedArchive archive(truth, injector);
  std::array<std::unique_ptr<dele::ArchiveStream>, asn::kRirCount> streams;
  for (asn::Rir rir : asn::kAllRirs)
    streams[asn::index_of(rir)] = archive.stream(rir);
  const restore::RestoredArchive restored = restore::restore_archive(
      std::move(streams), restore::RestoreConfig{}, &truth.erx,
      [&](asn::Asn a) { return truth.iana.owner(a); }, truth.archive_begin,
      &op_world.activity);
  const lifetimes::AdminDataset admin =
      lifetimes::build_admin_lifetimes(restored, truth.archive_end);
  const lifetimes::OpDataset op =
      lifetimes::build_op_lifetimes(op_world.activity);
  const joint::Taxonomy taxonomy = joint::classify(admin, op);

  // --- Run both detectors.
  const auto dormant = joint::detect_dormant_squats(taxonomy, admin, op);
  const auto outside =
      joint::detect_outside_delegation_activity(taxonomy, admin, op);
  std::cout << "flagged " << dormant.size()
            << " dormant awakenings and " << outside.size()
            << " outside-delegation lives\n\n";

  // --- Inspect candidates: prefix counts + upstream via route elements.
  const bgp::CollectorInfrastructure infra =
      bgp::make_default_infrastructure();
  const bgpsim::RouteGenerator generator(op_world, infra, seed + 5);
  const std::unordered_set<std::uint32_t> factories = {
      bgpsim::kHijackFactoryAsn, bgpsim::kBitcanalAsn,
      bgpsim::kSpammerUpstreamAsn};

  // Ground-truth labels, playing the role of NANOG/Spamhaus/BGPmon
  // cross-validation.
  std::unordered_set<std::uint32_t> labelled;
  for (const bgpsim::SquatEvent& event : op_world.attacks.events)
    labelled.insert(event.asn.value);

  util::TextTable table({"ASN", "awakening", "dormancy (d)", "rel. dur.",
                         "prefixes/day", "upstream", "verdict"});
  int shown = 0;
  int confirmed = 0;
  const auto inspect = [&](const joint::SquatCandidate& candidate) {
    const lifetimes::OpLifetime& life = op.lifetimes[candidate.op_index];
    const util::Day probe =
        life.days.first + static_cast<util::Day>(life.days.length() / 2);
    const std::unordered_set<std::uint32_t> watch = {candidate.asn.value};
    std::int64_t prefixes = 0;
    std::uint32_t upstream = 0;
    for (const bgp::Element& element :
         generator.elements_for_day(probe, &watch)) {
      ++prefixes;
      if (const auto hop = element.path.first_hop()) upstream = hop->value;
    }
    const bool factory_upstream = factories.contains(upstream);
    const bool is_labelled = labelled.contains(candidate.asn.value);
    if (is_labelled) ++confirmed;
    if (shown < 12 && (factory_upstream || prefixes > 20)) {
      ++shown;
      char rel[16];
      std::snprintf(rel, sizeof rel, "%.2f%%",
                    candidate.relative_duration * 100);
      table.add_row({asn::to_string(candidate.asn),
                     util::format_iso(life.days.first),
                     std::to_string(candidate.dormancy), rel,
                     std::to_string(prefixes),
                     "AS" + std::to_string(upstream),
                     is_labelled ? "CONFIRMED (ground truth)"
                                 : factory_upstream ? "suspicious upstream"
                                                    : "benign?"});
    }
  };
  for (const joint::SquatCandidate& candidate : dormant) inspect(candidate);
  for (const joint::SquatCandidate& candidate : outside) inspect(candidate);

  std::cout << "most suspicious candidates (high prefix volume or known "
               "hijack-factory upstream):\n";
  table.print(std::cout);

  std::cout << "\n" << confirmed << " of "
            << dormant.size() + outside.size()
            << " flagged lives are ground-truth malicious — like the paper, "
               "the filter surfaces squats but most candidates are benign "
               "irregular operations.\n";
  return 0;
}
