// Quickstart: the whole pipeline on a small world, end to end — then serve
// it.
//
//   world -> delegation archive (+defects) -> restoration ->
//   admin lifetimes; behaviour plans -> BGP activity -> op lifetimes;
//   joint taxonomy -> serving snapshot -> queries.
//
// One call into serve::run_simulated_serving runs the same stage wiring the
// tests, benches, and deployments share, plus an eighth traced stage that
// freezes the result into a serve::Snapshot. The example then asks the
// snapshot the questions the paper keeps asking — point lookups, a batch,
// a registry scan, an alive census — through serve::QueryService's unified
// `Query{subject, options}` shape instead of walking the datasets by hand.
// A history::HistoryStore over the trailing days then turns the same
// service into a time machine: `QueryOptions::as_of` answers from any
// recorded day, and drift() diffs the taxonomy between two days. Set
// PL_TRACE=run.json (and/or PL_PROM=run.prom) to dump the span tree +
// metrics snapshot.
//
// Run:  ./quickstart [scale] [seed]
//       PL_TRACE=run.json ./quickstart
#include <cstdlib>
#include <iostream>
#include <utility>
#include <vector>

#include "history/store.hpp"
#include "lifetimes/dataset_io.hpp"
#include "lifetimes/sensitivity.hpp"
#include "serve/query.hpp"
#include "serve/serving.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace pl;

  const double scale = argc > 1 ? std::atof(argv[1]) : 0.05;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                      : 42;

  std::cout << "building world (scale=" << scale << ", seed=" << seed
            << ")...\n";
  pipeline::Config config;
  config.seed = seed;
  config.scale = scale;
  serve::ServingWorld world = serve::run_simulated_serving(config);
  const pipeline::Result& result = world.result;

  const rirsim::GroundTruth& truth = result.truth;
  std::cout << "  ground truth: " << util::with_commas(
      static_cast<std::int64_t>(truth.lives.size()))
            << " admin lives, "
            << util::with_commas(static_cast<std::int64_t>(
                   truth.lives_by_asn.size()))
            << " ASNs, "
            << util::with_commas(static_cast<std::int64_t>(truth.orgs.size()))
            << " orgs\n";

  const restore::RestoredArchive& restored = result.restored;
  for (asn::Rir rir : asn::kAllRirs) {
    const auto& report = restored.registry(rir).report;
    std::cout << "  restored " << asn::display_name(rir) << ": "
              << report.days_processed << " days, " << report.files_missing
              << " missing files, " << report.recovered_from_regular
              << " records recovered\n";
  }

  // Joint taxonomy (Table 3) straight off the pipeline result.
  const joint::Taxonomy& taxonomy = result.taxonomy;
  std::cout << "\n  taxonomy (admin lives):\n";
  const char* labels[] = {"complete overlap", "partial overlap",
                          "unused admin", "outside delegation"};
  for (int c = 0; c < 4; ++c)
    std::cout << "    " << labels[c] << ": "
              << util::with_commas(taxonomy.admin_counts[
                     static_cast<std::size_t>(c)])
              << " admin / "
              << util::with_commas(taxonomy.op_counts[
                     static_cast<std::size_t>(c)])
              << " op\n";

  // --- Serve it. The snapshot joins both datasets plus the taxonomy and
  // detector verdicts into one per-ASN index; QueryService fronts it with a
  // cache and batch APIs.
  std::cout << "\n  snapshot: "
            << util::with_commas(static_cast<std::int64_t>(
                   world.snapshot.asn_count()))
            << " ASNs, "
            << util::with_commas(static_cast<std::int64_t>(
                   world.snapshot.admin_life_count()))
            << " admin lives, "
            << util::with_commas(static_cast<std::int64_t>(
                   world.snapshot.op_life_count()))
            << " op lives (built in " << result.timings.build_snapshot_ms
            << " ms)\n";
  serve::QueryService service(std::move(world.snapshot));

  // Point lookup: the first ASN with both an admin and an op dimension —
  // the "parallel lives" the paper is named for.
  for (const auto& [asn_value, indices] : result.admin.by_asn) {
    if (!result.op.by_asn.contains(asn_value)) continue;
    const serve::AsnAnswer answer =
        service.query(serve::Query::lookup(asn::Asn{asn_value}))
            ->lookups.front();
    std::cout << "\n  lookup(AS" << asn_value << "): "
              << answer.admin_life_count << " admin / "
              << answer.op_life_count << " op lives, registered "
              << util::format_iso(answer.latest_registration) << " under "
              << asn::display_name(answer.latest_registry)
              << (answer.currently_allocated ? ", currently allocated"
                                             : ", no longer allocated")
              << (answer.currently_active ? " and active" : "") << "\n";
    std::cout << "    " << lifetimes::admin_record_json(
        result.admin.lifetimes[indices.front()]) << "\n";
    break;
  }

  // Batch lookup: vector-in/vector-out, misses computed in parallel.
  std::vector<asn::Asn> batch;
  for (const serve::AsnRow& row : service.snapshot().rows()) {
    batch.push_back(row.asn);
    if (batch.size() == 64) break;
  }
  const std::vector<serve::AsnAnswer> answers =
      service.query(serve::Query::lookup_batch(batch))->lookups;
  std::int64_t transferred = 0;
  for (const serve::AsnAnswer& answer : answers)
    if (answer.transferred) ++transferred;
  std::cout << "  batch of " << answers.size() << " lookups: "
            << transferred << " ASNs ever transferred registries\n";

  // Registry scan + census, the §5 views.
  serve::ScanQuery ripe;
  ripe.registry = asn::Rir::kRipeNcc;
  ripe.limit = 5;
  std::cout << "  first RIPE ASNs: ";
  for (const serve::AsnAnswer& answer :
       service.query(serve::Query::scan(ripe))->lookups)
    std::cout << "AS" << answer.asn.value << " ";
  const util::Day end = service.snapshot().archive_end();
  const serve::CensusAnswer census =
      *service.query(serve::Query::census(end))->census;
  std::cout << "\n  census on " << util::format_iso(census.day) << ": "
            << util::with_commas(census.admin_alive)
            << " admin lives alive, " << util::with_commas(census.op_alive)
            << " op lives alive\n";

  // --- Time travel. A HistoryStore over the trailing days keeps every day
  // queryable: keyframe + compact per-day deltas, reconstructed in place on
  // demand. Attaching it routes `QueryOptions::as_of` through history; the
  // answer is bit-identical to rebuilding the study truncated at that day.
  auto history = history::HistoryStore::build(
      result.restored, result.op_world.activity, end - 10, end);
  if (!history.ok()) {
    std::cerr << "history build failed: " << history.status().to_string()
              << "\n";
    return 1;
  }
  service.attach_history(&*history);
  serve::QueryOptions week_ago;
  week_ago.as_of = end - 7;
  const serve::CensusAnswer then =
      *service.query(serve::Query::census(end - 7, week_ago))->census;
  const history::HistoryStats hstats = history->stats();
  std::cout << "  census as of " << util::format_iso(then.day) << ": "
            << util::with_commas(then.admin_alive) << " admin / "
            << util::with_commas(then.op_alive)
            << " op lives alive (reconstructed from "
            << hstats.keyframes << " keyframes + " << hstats.deltas
            << " deltas, mean delta "
            << static_cast<std::int64_t>(hstats.mean_delta_bytes())
            << " bytes)\n";
  const auto drift = service.drift(end - 7, end);
  if (drift.ok()) {
    std::cout << "  taxonomy drift over the last week:\n";
    for (int c = 0; c < 4; ++c)
      std::cout << "    " << labels[c] << ": "
                << util::with_commas(
                       drift->from_counts[static_cast<std::size_t>(c)])
                << " -> "
                << util::with_commas(
                       drift->to_counts[static_cast<std::size_t>(c)])
                << "\n";
  }

  const lifetimes::TimeoutChoice choice =
      lifetimes::evaluate_choice(result.op_world.activity, result.admin, 30);
  std::cout << "\n  30-day timeout sits at " << util::percent(
      choice.gap_fraction)
            << " of activity gaps and " << util::percent(
                   choice.one_or_less_fraction)
            << " of admin lives with <=1 op life\n";

  // Observability: the pipeline report plus the service's own serve.* view.
  const obs::Snapshot serve_metrics = service.report().metrics;
  std::cout << "\n  observability: "
            << result.report.metrics.counters.size()
            << " pipeline counters; serve cache "
            << serve_metrics.counter_value("pl_serve_cache_hits") << " hits / "
            << serve_metrics.counter_value("pl_serve_cache_misses")
            << " misses; restore stage " << result.timings.restore_ms
            << " ms of " << result.timings.total_ms << " ms total\n";
  if (std::getenv("PL_TRACE") == nullptr &&
      std::getenv("PL_PROM") == nullptr)
    std::cout << "  (PL_TRACE=run.json dumps the span tree + metrics as "
                 "JSON; PL_PROM=run.prom the Prometheus text format)\n";

  std::cout << "\nquickstart OK\n";
  return 0;
}
