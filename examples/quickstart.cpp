// Quickstart: the whole pipeline on a small world, end to end.
//
//   world -> delegation archive (+defects) -> restoration ->
//   admin lifetimes; behaviour plans -> BGP activity -> op lifetimes;
//   joint taxonomy -> headline numbers.
//
// Run:  ./quickstart [scale] [seed]
#include <cstdlib>
#include <iostream>

#include "bgpsim/route_gen.hpp"
#include "joint/taxonomy.hpp"
#include "lifetimes/dataset_io.hpp"
#include "lifetimes/sensitivity.hpp"
#include "restore/pipeline.hpp"
#include "rirsim/inject.hpp"
#include "rirsim/world.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace pl;

  const double scale = argc > 1 ? std::atof(argv[1]) : 0.05;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                      : 42;

  std::cout << "building world (scale=" << scale << ", seed=" << seed
            << ")...\n";
  rirsim::WorldConfig world_config = rirsim::WorldConfig::test_scale(seed,
                                                                     scale);
  const rirsim::GroundTruth truth = rirsim::build_world(world_config);
  std::cout << "  ground truth: " << util::with_commas(
      static_cast<std::int64_t>(truth.lives.size()))
            << " admin lives, "
            << util::with_commas(static_cast<std::int64_t>(
                   truth.lives_by_asn.size()))
            << " ASNs, "
            << util::with_commas(static_cast<std::int64_t>(truth.orgs.size()))
            << " orgs\n";

  // Operational dimension.
  bgpsim::OpWorldConfig op_config;
  op_config.behavior.seed = seed + 1;
  op_config.attacks.seed = seed + 2;
  op_config.attacks.scale = scale;
  op_config.misconfigs.seed = seed + 3;
  op_config.misconfigs.scale = scale;
  const bgpsim::OpWorld op_world = bgpsim::build_op_world(truth, op_config);
  std::cout << "  op world: "
            << util::with_commas(static_cast<std::int64_t>(
                   op_world.behavior.plans.size()))
            << " ASN plans, "
            << util::with_commas(static_cast<std::int64_t>(
                   op_world.attacks.events.size()))
            << " squat events, "
            << util::with_commas(static_cast<std::int64_t>(
                   op_world.misconfigs.events.size()))
            << " misconfig events\n";

  // Delegation archive with injected defects, then restoration.
  rirsim::InjectorConfig injector;
  injector.seed = seed + 4;
  injector.scale = scale;
  const rirsim::SimulatedArchive archive(truth, injector);

  restore::RestoreConfig restore_config;
  std::array<std::unique_ptr<dele::ArchiveStream>, asn::kRirCount> streams;
  for (asn::Rir rir : asn::kAllRirs)
    streams[asn::index_of(rir)] = archive.stream(rir);
  const restore::RestoredArchive restored = restore::restore_archive(
      std::move(streams), restore_config, &truth.erx,
      [&](asn::Asn a) { return truth.iana.owner(a); }, truth.archive_begin,
      &op_world.activity);

  for (asn::Rir rir : asn::kAllRirs) {
    const auto& report = restored.registry(rir).report;
    std::cout << "  restored " << asn::display_name(rir) << ": "
              << report.days_processed << " days, " << report.files_missing
              << " missing files, " << report.recovered_from_regular
              << " records recovered, " << report.placeholder_dates_restored
              << " placeholder dates restored\n";
  }
  std::cout << "  cross-RIR: " << restored.cross.overlapping_asns
            << " overlapping ASNs, " << restored.cross.stale_spans_trimmed
            << " stale spans trimmed, "
            << restored.cross.mistaken_spans_removed
            << " mistaken spans removed\n";

  // Lifetimes.
  const lifetimes::AdminDataset admin =
      lifetimes::build_admin_lifetimes(restored, truth.archive_end);
  const lifetimes::OpDataset op =
      lifetimes::build_op_lifetimes(op_world.activity);
  std::cout << "  admin dataset: "
            << util::with_commas(static_cast<std::int64_t>(
                   admin.lifetimes.size()))
            << " lifetimes / " << util::with_commas(static_cast<std::int64_t>(
                   admin.asn_count()))
            << " ASNs\n";
  std::cout << "  op dataset:    "
            << util::with_commas(static_cast<std::int64_t>(
                   op.lifetimes.size()))
            << " lifetimes / " << util::with_commas(static_cast<std::int64_t>(
                   op.asn_count()))
            << " ASNs\n";

  // Listing-1 style records for one ASN with both dimensions.
  for (const auto& [asn_value, indices] : admin.by_asn) {
    if (!op.by_asn.contains(asn_value)) continue;
    std::cout << "\n  example records (ASN " << asn_value << "):\n";
    std::cout << "    " << lifetimes::admin_record_json(
        admin.lifetimes[indices.front()]) << "\n";
    std::cout << "    " << lifetimes::op_record_json(
        op.lifetimes[op.by_asn.at(asn_value).front()]) << "\n";
    break;
  }

  // Joint taxonomy (Table 3).
  const joint::Taxonomy taxonomy = joint::classify(admin, op);
  std::cout << "\n  taxonomy (admin lives):\n";
  const char* labels[] = {"complete overlap", "partial overlap",
                          "unused admin", "outside delegation"};
  for (int c = 0; c < 4; ++c)
    std::cout << "    " << labels[c] << ": "
              << util::with_commas(taxonomy.admin_counts[
                     static_cast<std::size_t>(c)])
              << " admin / "
              << util::with_commas(taxonomy.op_counts[
                     static_cast<std::size_t>(c)])
              << " op\n";

  const lifetimes::TimeoutChoice choice =
      lifetimes::evaluate_choice(op_world.activity, admin, 30);
  std::cout << "\n  30-day timeout sits at " << util::percent(
      choice.gap_fraction)
            << " of activity gaps and " << util::percent(
                   choice.one_or_less_fraction)
            << " of admin lives with <=1 op life\n";

  std::cout << "\nquickstart OK\n";
  return 0;
}
