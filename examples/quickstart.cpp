// Quickstart: the whole pipeline on a small world, end to end.
//
//   world -> delegation archive (+defects) -> restoration ->
//   admin lifetimes; behaviour plans -> BGP activity -> op lifetimes;
//   joint taxonomy -> headline numbers.
//
// One call into pipeline::run_simulated runs the same stage wiring the
// tests, benches, and deployments share — the example only prints the
// result. The run is fully instrumented: set PL_TRACE=run.json (and/or
// PL_PROM=run.prom) to dump the span tree + metrics snapshot.
//
// Run:  ./quickstart [scale] [seed]
//       PL_TRACE=run.json ./quickstart
#include <cstdlib>
#include <iostream>

#include "lifetimes/dataset_io.hpp"
#include "lifetimes/sensitivity.hpp"
#include "pipeline/pipeline.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace pl;

  const double scale = argc > 1 ? std::atof(argv[1]) : 0.05;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                      : 42;

  std::cout << "building world (scale=" << scale << ", seed=" << seed
            << ")...\n";
  pipeline::Config config;
  config.seed = seed;
  config.scale = scale;
  const pipeline::Result result = pipeline::run_simulated(config);

  const rirsim::GroundTruth& truth = result.truth;
  std::cout << "  ground truth: " << util::with_commas(
      static_cast<std::int64_t>(truth.lives.size()))
            << " admin lives, "
            << util::with_commas(static_cast<std::int64_t>(
                   truth.lives_by_asn.size()))
            << " ASNs, "
            << util::with_commas(static_cast<std::int64_t>(truth.orgs.size()))
            << " orgs\n";

  const bgpsim::OpWorld& op_world = result.op_world;
  std::cout << "  op world: "
            << util::with_commas(static_cast<std::int64_t>(
                   op_world.behavior.plans.size()))
            << " ASN plans, "
            << util::with_commas(static_cast<std::int64_t>(
                   op_world.attacks.events.size()))
            << " squat events, "
            << util::with_commas(static_cast<std::int64_t>(
                   op_world.misconfigs.events.size()))
            << " misconfig events\n";

  const restore::RestoredArchive& restored = result.restored;
  for (asn::Rir rir : asn::kAllRirs) {
    const auto& report = restored.registry(rir).report;
    std::cout << "  restored " << asn::display_name(rir) << ": "
              << report.days_processed << " days, " << report.files_missing
              << " missing files, " << report.recovered_from_regular
              << " records recovered, " << report.placeholder_dates_restored
              << " placeholder dates restored\n";
  }
  std::cout << "  cross-RIR: " << restored.cross.overlapping_asns
            << " overlapping ASNs, " << restored.cross.stale_spans_trimmed
            << " stale spans trimmed, "
            << restored.cross.mistaken_spans_removed
            << " mistaken spans removed\n";

  const lifetimes::AdminDataset& admin = result.admin;
  const lifetimes::OpDataset& op = result.op;
  std::cout << "  admin dataset: "
            << util::with_commas(static_cast<std::int64_t>(
                   admin.lifetimes.size()))
            << " lifetimes / " << util::with_commas(static_cast<std::int64_t>(
                   admin.asn_count()))
            << " ASNs\n";
  std::cout << "  op dataset:    "
            << util::with_commas(static_cast<std::int64_t>(
                   op.lifetimes.size()))
            << " lifetimes / " << util::with_commas(static_cast<std::int64_t>(
                   op.asn_count()))
            << " ASNs\n";

  // Listing-1 style records for one ASN with both dimensions.
  for (const auto& [asn_value, indices] : admin.by_asn) {
    if (!op.by_asn.contains(asn_value)) continue;
    std::cout << "\n  example records (ASN " << asn_value << "):\n";
    std::cout << "    " << lifetimes::admin_record_json(
        admin.lifetimes[indices.front()]) << "\n";
    std::cout << "    " << lifetimes::op_record_json(
        op.lifetimes[op.by_asn.at(asn_value).front()]) << "\n";
    break;
  }

  // Joint taxonomy (Table 3).
  const joint::Taxonomy& taxonomy = result.taxonomy;
  std::cout << "\n  taxonomy (admin lives):\n";
  const char* labels[] = {"complete overlap", "partial overlap",
                          "unused admin", "outside delegation"};
  for (int c = 0; c < 4; ++c)
    std::cout << "    " << labels[c] << ": "
              << util::with_commas(taxonomy.admin_counts[
                     static_cast<std::size_t>(c)])
              << " admin / "
              << util::with_commas(taxonomy.op_counts[
                     static_cast<std::size_t>(c)])
              << " op\n";

  const lifetimes::TimeoutChoice choice =
      lifetimes::evaluate_choice(op_world.activity, admin, 30);
  std::cout << "\n  30-day timeout sits at " << util::percent(
      choice.gap_fraction)
            << " of activity gaps and " << util::percent(
                   choice.one_or_less_fraction)
            << " of admin lives with <=1 op life\n";

  // Observability report: stage tree + metrics travel with the result.
  std::cout << "\n  observability: "
            << result.report.metrics.counters.size() << " counters, "
            << result.report.metrics.gauges.size() << " gauges, "
            << result.report.metrics.histograms.size() << " histograms; "
            << "restore stage " << result.timings.restore_ms << " ms of "
            << result.timings.total_ms << " ms total\n";
  if (std::getenv("PL_TRACE") == nullptr &&
      std::getenv("PL_PROM") == nullptr)
    std::cout << "  (PL_TRACE=run.json dumps the span tree + metrics as "
                 "JSON; PL_PROM=run.prom the Prometheus text format)\n";

  std::cout << "\nquickstart OK\n";
  return 0;
}
